//! Convenience constructors for the policy-only shared-LLC baselines.
//!
//! These are thin wrappers over the cache crate's [`ClassicLlc`] with the
//! appropriate policy plugged in; they exist so the simulation driver and
//! the experiment binaries can name every scheme uniformly.

use nucache_cache::policy::{Dip, Drrip, Lru, TadipF};
use nucache_cache::{CacheGeometry, ClassicLlc};

/// The shared-LRU baseline the paper normalizes against.
pub fn lru(geom: CacheGeometry, num_cores: usize) -> ClassicLlc<Lru> {
    ClassicLlc::new(geom, Lru::new(&geom), num_cores)
}

/// DIP (thread-oblivious dynamic insertion).
pub fn dip(geom: CacheGeometry, num_cores: usize, seed: u64) -> ClassicLlc<Dip> {
    ClassicLlc::new(geom, Dip::new(&geom, seed), num_cores)
}

/// DRRIP (dynamic re-reference interval prediction).
pub fn drrip(geom: CacheGeometry, num_cores: usize, seed: u64) -> ClassicLlc<Drrip> {
    ClassicLlc::new(geom, Drrip::new(&geom, seed), num_cores)
}

/// TADIP-F (thread-aware dynamic insertion with feedback).
pub fn tadip(geom: CacheGeometry, num_cores: usize, seed: u64) -> ClassicLlc<TadipF> {
    ClassicLlc::new(geom, TadipF::new(&geom, num_cores, seed), num_cores)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nucache_cache::SharedLlc;
    use nucache_common::{AccessKind, CoreId, LineAddr, Pc};

    fn geom() -> CacheGeometry {
        CacheGeometry::new(64 * 8 * 64, 8, 64)
    }

    #[test]
    fn constructors_name_their_schemes() {
        assert_eq!(lru(geom(), 2).scheme_name(), "lru");
        assert_eq!(dip(geom(), 2, 1).scheme_name(), "dip");
        assert_eq!(drrip(geom(), 2, 1).scheme_name(), "drrip");
        assert_eq!(tadip(geom(), 2, 1).scheme_name(), "tadip-f");
    }

    #[test]
    fn baselines_are_functional() {
        let mut l = lru(geom(), 2);
        l.access(CoreId::new(0), Pc::new(1), LineAddr::new(9), AccessKind::Read);
        assert!(l.access(CoreId::new(0), Pc::new(1), LineAddr::new(9), AccessKind::Read).is_hit());
    }
}
