//! Promotion/Insertion Pseudo-Partitioning (PIPP).
//!
//! PIPP pursues the same utility targets as UCP but enforces them softly:
//! instead of hard quotas at eviction time, each core inserts new lines at
//! a stack position derived from its allocation (bigger quota → closer to
//! MRU) and hits promote a line by only a single position, with
//! probability `p_prom`, rather than jumping to MRU. Evictions always
//! take the LRU-most line. Cores classified as streaming (near-zero
//! shadow utility) insert at the LRU-most position so their lines become
//! immediate victim candidates.

use crate::lookahead::lookahead_partition;
use nucache_cache::meta::{AccessOutcome, LineMeta};
use nucache_cache::shadow::UtilityMonitor;
use nucache_cache::{AuditStats, CacheGeometry, SetArray, SharedLlc};
use nucache_common::{AccessKind, CacheStats, CoreId, DetRng, LineAddr, Pc};

/// Single-step promotion probability on a hit (value from the original
/// proposal).
pub const PROMOTION_PROB: f64 = 0.75;

/// Shadow hit-rate below which a core is treated as streaming.
pub const STREAM_UTILITY_THRESHOLD: f64 = 0.02;

/// A PIPP-managed shared LLC.
///
/// # Examples
///
/// ```
/// use nucache_cache::{CacheGeometry, SharedLlc};
/// use nucache_partition::PippLlc;
/// let geom = CacheGeometry::new(512 * 1024, 16, 64);
/// let llc = PippLlc::new(geom, 4, 50_000, 7);
/// assert_eq!(llc.allocations().iter().sum::<usize>(), 16);
/// ```
#[derive(Debug)]
pub struct PippLlc {
    array: SetArray,
    /// Per-set recency stacks, flattened into one whole-LLC allocation.
    stacks: RecencyStacks,
    monitors: Vec<UtilityMonitor>,
    alloc: Vec<usize>,
    streaming: Vec<bool>,
    epoch_len: u64,
    accesses_in_epoch: u64,
    repartitions: u64,
    rng: DetRng,
    stats: CacheStats,
    core_stats: Vec<CacheStats>,
}

impl PippLlc {
    /// Creates a PIPP LLC for `num_cores` cores repartitioning every
    /// `epoch_len` accesses.
    ///
    /// # Panics
    ///
    /// Panics if `num_cores` is zero, the associativity is smaller than
    /// the core count, or `epoch_len` is zero.
    pub fn new(geom: CacheGeometry, num_cores: usize, epoch_len: u64, seed: u64) -> Self {
        assert!(num_cores > 0, "need at least one core");
        assert!(geom.associativity() >= num_cores, "fewer ways than cores");
        assert!(epoch_len > 0, "zero epoch length");
        let base = geom.associativity() / num_cores;
        let mut alloc = vec![base; num_cores];
        for a in alloc.iter_mut().take(geom.associativity() - base * num_cores) {
            *a += 1;
        }
        PippLlc {
            array: SetArray::new(geom),
            stacks: RecencyStacks::new(geom.num_sets(), geom.associativity()),
            monitors: (0..num_cores)
                .map(|_| UtilityMonitor::new(&geom, 5.min(geom.set_bits())))
                .collect(),
            alloc,
            streaming: vec![false; num_cores],
            epoch_len,
            accesses_in_epoch: 0,
            repartitions: 0,
            rng: DetRng::substream(seed, 0x9199),
            stats: CacheStats::default(),
            core_stats: vec![CacheStats::default(); num_cores],
        }
    }

    /// Current per-core way targets.
    pub fn allocations(&self) -> &[usize] {
        &self.alloc
    }

    /// Which cores are currently classified streaming.
    pub fn streaming_flags(&self) -> &[bool] {
        &self.streaming
    }

    /// Number of repartitions performed so far.
    pub const fn repartitions(&self) -> u64 {
        self.repartitions
    }

    /// Insertion distance from the LRU end for `core`: a core with
    /// allocation `w` inserts `w - 1` positions above LRU (0 = LRU-most);
    /// streaming cores insert at the LRU-most position regardless.
    fn insert_depth(&self, core: CoreId) -> usize {
        if self.streaming[core.index()] {
            0
        } else {
            self.alloc[core.index()].saturating_sub(1)
        }
    }

    fn epoch_tick(&mut self) {
        self.accesses_in_epoch += 1;
        if self.accesses_in_epoch < self.epoch_len {
            return;
        }
        self.accesses_in_epoch = 0;
        self.repartitions += 1;
        let assoc = self.array.geometry().associativity();
        let curves: Vec<Vec<u64>> = self.monitors.iter().map(|m| m.utility_curve()).collect();
        self.alloc = lookahead_partition(&curves, assoc, 1);
        for (c, m) in self.monitors.iter_mut().enumerate() {
            let shadow_hits: u64 = m.hits_at_rank().iter().sum();
            let shadow_accesses = m.accesses();
            self.streaming[c] = shadow_accesses > 100
                && (shadow_hits as f64 / shadow_accesses as f64) < STREAM_UTILITY_THRESHOLD;
            m.decay();
        }
    }
}

/// Per-set recency stacks flattened into one whole-LLC allocation:
/// `ways[set*assoc .. set*assoc + len[set]]` lists ways MRU-first, only
/// valid ways appear. One contiguous buffer instead of a `Vec` per set
/// keeps the hot promote/insert/pop paths on a single allocation.
#[derive(Debug)]
struct RecencyStacks {
    ways: Vec<u8>,
    len: Vec<u8>,
    assoc: usize,
}

impl RecencyStacks {
    fn new(sets: usize, assoc: usize) -> Self {
        assert!(assoc <= u8::MAX as usize, "associativity exceeds stack element range");
        RecencyStacks { ways: vec![0; sets * assoc], len: vec![0; sets], assoc }
    }

    /// The occupied portion of `set`'s stack, MRU-first (test inspection
    /// only — the hot paths index the flat arrays directly).
    #[cfg(test)]
    fn set(&self, set: usize) -> &[u8] {
        let base = set * self.assoc;
        &self.ways[base..base + self.len[set] as usize]
    }

    #[inline]
    fn len_of(&self, set: usize) -> usize {
        self.len[set] as usize
    }

    /// Moves `way` one position toward MRU (no-op if already MRU-most).
    ///
    /// # Panics
    ///
    /// Panics if `way` is not resident in the stack.
    #[inline]
    fn promote_one(&mut self, set: usize, way: usize) {
        let base = set * self.assoc;
        let stack = &mut self.ways[base..base + self.len[set] as usize];
        let pos = stack.iter().position(|&w| w as usize == way).expect("hit way in stack");
        if pos > 0 {
            stack.swap(pos, pos - 1);
        }
    }

    /// Removes and returns the LRU-most way.
    ///
    /// # Panics
    ///
    /// Panics if the stack is empty.
    #[inline]
    fn pop_lru(&mut self, set: usize) -> u8 {
        let len = self.len[set] as usize;
        assert!(len > 0, "full set has full stack");
        self.len[set] = (len - 1) as u8;
        self.ways[set * self.assoc + len - 1]
    }

    /// Inserts `way` at `depth` positions above the LRU end (0 = LRU-most).
    #[inline]
    fn insert_above_lru(&mut self, set: usize, way: u8, depth: usize) {
        let base = set * self.assoc;
        let len = self.len[set] as usize;
        debug_assert!(depth <= len && len < self.assoc);
        let at = base + len - depth;
        self.ways.copy_within(at..base + len, at + 1);
        self.ways[at] = way;
        self.len[set] = (len + 1) as u8;
    }
}

impl SharedLlc for PippLlc {
    fn access(&mut self, core: CoreId, pc: Pc, line: LineAddr, kind: AccessKind) -> AccessOutcome {
        let geom = *self.array.geometry();
        self.monitors[core.index()].observe(line);
        self.epoch_tick();
        let set = geom.set_of(line);
        let tag = geom.tag_of(line);
        if let Some(way) = self.array.find(set, tag) {
            self.stats.record_hit();
            self.core_stats[core.index()].record_hit();
            if kind.is_write() {
                self.array.mark_dirty(set, way);
            }
            // Single-step probabilistic promotion.
            if self.rng.chance(PROMOTION_PROB) {
                self.stacks.promote_one(set, way);
            }
            return AccessOutcome::Hit;
        }
        self.stats.record_miss();
        self.core_stats[core.index()].record_miss();
        let (way, evicted) = match self.array.invalid_way(set) {
            Some(w) => (w, self.array.fill(set, w, LineMeta::new(tag, core, pc, kind.is_write()))),
            None => {
                let victim_way = self.stacks.pop_lru(set) as usize;
                let ev =
                    self.array.fill(set, victim_way, LineMeta::new(tag, core, pc, kind.is_write()));
                (victim_way, ev)
            }
        };
        if let Some(ev) = evicted {
            self.stats.record_eviction(ev.dirty);
        }
        // Insert at the core's depth from the LRU end.
        let depth = self.insert_depth(core).min(self.stacks.len_of(set));
        self.stacks.insert_above_lru(set, way as u8, depth);
        AccessOutcome::Miss { evicted }
    }

    fn stats(&self) -> &CacheStats {
        &self.stats
    }

    fn core_stats(&self) -> &[CacheStats] {
        &self.core_stats
    }

    fn reset_stats(&mut self) {
        self.stats.clear();
        self.core_stats.iter_mut().for_each(CacheStats::clear);
    }

    fn geometry(&self) -> &CacheGeometry {
        self.array.geometry()
    }

    fn scheme_name(&self) -> String {
        "pipp".to_string()
    }

    fn set_audit(&mut self, enabled: bool) {
        if enabled {
            self.array.enable_audit();
        } else {
            self.array.disable_audit();
        }
    }

    fn audit_stats(&self) -> Option<AuditStats> {
        self.array
            .audit_enabled()
            .then(|| AuditStats { array_ops: self.array.audit_ops(), epoch_checks: 0 })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geom() -> CacheGeometry {
        CacheGeometry::new(64 * 8 * 64, 8, 64) // 64 sets, 8-way
    }

    fn read(llc: &mut PippLlc, core: u8, line: u64) -> AccessOutcome {
        llc.access(CoreId::new(core), Pc::new(core as u64), LineAddr::new(line), AccessKind::Read)
    }

    #[test]
    fn stack_tracks_residency() {
        let mut llc = PippLlc::new(geom(), 2, 1_000_000, 1);
        for n in 0..64u64 {
            read(&mut llc, 0, n * 64); // all set 0
        }
        assert_eq!(llc.stacks.len_of(0), 8);
        let mut sorted = llc.stacks.set(0).to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 8, "stack must hold each way exactly once");
    }

    #[test]
    fn hit_and_miss_accounting() {
        let mut llc = PippLlc::new(geom(), 2, 1_000_000, 1);
        assert!(read(&mut llc, 1, 3).is_miss());
        assert!(read(&mut llc, 1, 3).is_hit());
        assert_eq!(llc.core_stats()[1].hits, 1);
    }

    #[test]
    fn streaming_core_classified_and_demoted() {
        let mut llc = PippLlc::new(geom(), 2, 5_000, 2);
        // Core 0 reuses, core 1 streams.
        for round in 0..30_000u64 {
            read(&mut llc, 0, round % 128); // loop over 128 lines (2/set)
            read(&mut llc, 1, (1 << 20) + round); // fresh line every round
            if llc.repartitions() >= 2 {
                break;
            }
        }
        assert!(llc.repartitions() >= 2);
        assert!(llc.streaming_flags()[1], "streamer must be classified");
        assert!(!llc.streaming_flags()[0], "reuser must not be classified streaming");
        assert!(llc.allocations()[0] > llc.allocations()[1]);
    }

    #[test]
    fn pseudo_partitioning_protects_reuser_from_stream() {
        let mut llc = PippLlc::new(geom(), 2, 5_000, 3);
        // Warm up through at least one repartition so core 1 is marked
        // streaming and core 0 has a large allocation.
        let mut sline = 1 << 20;
        for round in 0..40_000u64 {
            read(&mut llc, 0, round % 256); // 4 lines/set, reused
            read(&mut llc, 1, sline);
            sline += 1;
        }
        llc.reset_stats();
        for round in 0..20_000u64 {
            read(&mut llc, 0, round % 256);
            read(&mut llc, 1, sline);
            sline += 1;
        }
        let reuser_hit_rate = llc.core_stats()[0].hit_rate();
        assert!(
            reuser_hit_rate > 0.8,
            "PIPP must shield the reuser from the stream, hit rate {reuser_hit_rate}"
        );
    }

    #[test]
    fn capacity_conserved_and_stacks_consistent() {
        let mut llc = PippLlc::new(geom(), 2, 500, 4);
        for n in 0..20_000u64 {
            read(&mut llc, (n % 2) as u8, n * 7);
        }
        assert!(llc.array.total_occupancy() <= 64 * 8);
        for s in 0..64 {
            assert_eq!(
                llc.stacks.len_of(s),
                llc.array.occupancy(s),
                "stack/array disagree in set {s}"
            );
        }
    }

    #[test]
    fn reset_stats_clears() {
        let mut llc = PippLlc::new(geom(), 2, 1000, 5);
        read(&mut llc, 0, 1);
        llc.reset_stats();
        assert_eq!(llc.stats().accesses(), 0);
    }
}
