//! Utility-based Cache Partitioning (UCP).
//!
//! Each core owns a sampled shadow LRU directory with per-rank hit
//! counters (UMON-DSS, provided by the cache substrate). Every epoch the
//! lookahead algorithm converts the resulting utility curves into per-core
//! way quotas; quotas are enforced lazily at victim-selection time: a
//! miss from an under-quota core evicts the LRU line of some over-quota
//! core, while a miss from a core at/over quota recycles that core's own
//! LRU line. Lines are never migrated eagerly on repartition — the quota
//! drift resolves itself within a few misses, as in the hardware scheme.

use crate::lookahead::lookahead_partition;
use nucache_cache::meta::{AccessOutcome, LineMeta};
use nucache_cache::shadow::UtilityMonitor;
use nucache_cache::{AuditStats, CacheGeometry, SetArray, SharedLlc};
use nucache_common::{AccessKind, CacheStats, CoreId, LineAddr, Pc};

/// Default set-sampling shift for the UMONs (1 set in 32).
pub const DEFAULT_UMON_SHIFT: u32 = 5;

/// A UCP-managed shared LLC.
///
/// # Examples
///
/// ```
/// use nucache_cache::{CacheGeometry, SharedLlc};
/// use nucache_partition::UcpLlc;
/// let geom = CacheGeometry::new(512 * 1024, 16, 64);
/// let llc = UcpLlc::new(geom, 4, 50_000);
/// assert_eq!(llc.allocations().iter().sum::<usize>(), 16);
/// ```
#[derive(Debug)]
pub struct UcpLlc {
    array: SetArray,
    // Recency stamps, LRU across the whole set (allocation decides victims).
    stamp: u64,
    last_touch: Vec<u64>,
    monitors: Vec<UtilityMonitor>,
    alloc: Vec<usize>,
    epoch_len: u64,
    accesses_in_epoch: u64,
    repartitions: u64,
    stats: CacheStats,
    core_stats: Vec<CacheStats>,
}

impl UcpLlc {
    /// Creates a UCP LLC for `num_cores` cores repartitioning every
    /// `epoch_len` LLC accesses, with default UMON sampling.
    pub fn new(geom: CacheGeometry, num_cores: usize, epoch_len: u64) -> Self {
        Self::with_umon_shift(geom, num_cores, epoch_len, DEFAULT_UMON_SHIFT)
    }

    /// Creates a UCP LLC with an explicit UMON set-sampling shift.
    ///
    /// # Panics
    ///
    /// Panics if `num_cores` is zero, the associativity is smaller than
    /// the core count (no way to give each core a way), or `epoch_len`
    /// is zero.
    pub fn with_umon_shift(
        geom: CacheGeometry,
        num_cores: usize,
        epoch_len: u64,
        umon_shift: u32,
    ) -> Self {
        assert!(num_cores > 0, "need at least one core");
        assert!(geom.associativity() >= num_cores, "fewer ways than cores");
        assert!(epoch_len > 0, "zero epoch length");
        let shift = umon_shift.min(geom.set_bits());
        let base = geom.associativity() / num_cores;
        let mut alloc = vec![base; num_cores];
        for a in alloc.iter_mut().take(geom.associativity() - base * num_cores) {
            *a += 1;
        }
        UcpLlc {
            array: SetArray::new(geom),
            stamp: 0,
            last_touch: vec![0; geom.num_lines()],
            monitors: (0..num_cores).map(|_| UtilityMonitor::new(&geom, shift)).collect(),
            alloc,
            epoch_len,
            accesses_in_epoch: 0,
            repartitions: 0,
            stats: CacheStats::default(),
            core_stats: vec![CacheStats::default(); num_cores],
        }
    }

    /// Current per-core way quotas.
    pub fn allocations(&self) -> &[usize] {
        &self.alloc
    }

    /// Number of repartitions performed so far.
    pub const fn repartitions(&self) -> u64 {
        self.repartitions
    }

    fn geometry_copy(&self) -> CacheGeometry {
        *self.array.geometry()
    }

    fn touch(&mut self, set: usize, way: usize) {
        self.stamp += 1;
        let assoc = self.geometry_copy().associativity();
        self.last_touch[set * assoc + way] = self.stamp;
    }

    /// Victim selection under quotas: evict the LRU line of a core that
    /// exceeds its quota (preferring the most over-quota situation via
    /// plain LRU among over-quota lines); if nobody is over quota (can
    /// happen transiently right after repartitioning), fall back to the
    /// requester's own LRU line, then to global LRU.
    fn victim(&self, set: usize, requester: CoreId) -> usize {
        let geom = self.geometry_copy();
        let assoc = geom.associativity();
        let base = set * assoc;
        let cores = self.array.core_column(set);
        let valid = self.array.valid_mask(set);
        let stamps = &self.last_touch[base..base + assoc];
        // One pass over the valid mask gathers per-core occupancy; the
        // associativity cap (<= 64, and cores <= ways) bounds the counter
        // array so nothing is heap-allocated on the miss path.
        let mut occupancy = [0u8; 64];
        let mut m = valid;
        while m != 0 {
            let w = m.trailing_zeros() as usize;
            m &= m - 1;
            occupancy[cores[w].index()] += 1;
        }
        // First-minimum scan over valid ways matching `pred` — same tie
        // break as `filter(..).min_by_key(..)` over ascending way order.
        let min_where = |pred: &dyn Fn(usize) -> bool| -> Option<usize> {
            let mut best: Option<usize> = None;
            let mut m = valid;
            while m != 0 {
                let w = m.trailing_zeros() as usize;
                m &= m - 1;
                if pred(cores[w].index()) && best.is_none_or(|b| stamps[w] < stamps[b]) {
                    best = Some(w);
                }
            }
            best
        };
        let req = requester.index();
        // If the requester is at/over its quota, recycle its own LRU line.
        let candidate_own = min_where(&|c| c == req);
        if usize::from(occupancy[req]) >= self.alloc[req] {
            if let Some(w) = candidate_own {
                return w;
            }
        }
        // Requester deserves growth: take the LRU line among over-quota
        // cores' lines.
        if let Some(w) = min_where(&|c| usize::from(occupancy[c]) > self.alloc[c]) {
            return w;
        }
        // Transient: fall back to own LRU, then global LRU.
        candidate_own.unwrap_or_else(|| (0..assoc).min_by_key(|&w| stamps[w]).expect("assoc > 0"))
    }

    fn epoch_tick(&mut self) {
        self.accesses_in_epoch += 1;
        if self.accesses_in_epoch < self.epoch_len {
            return;
        }
        self.accesses_in_epoch = 0;
        self.repartitions += 1;
        let geom = self.geometry_copy();
        let curves: Vec<Vec<u64>> = self.monitors.iter().map(|m| m.utility_curve()).collect();
        self.alloc = lookahead_partition(&curves, geom.associativity(), 1);
        for m in &mut self.monitors {
            m.decay();
        }
    }
}

impl SharedLlc for UcpLlc {
    fn access(&mut self, core: CoreId, pc: Pc, line: LineAddr, kind: AccessKind) -> AccessOutcome {
        let geom = self.geometry_copy();
        self.monitors[core.index()].observe(line);
        self.epoch_tick();
        let set = geom.set_of(line);
        let tag = geom.tag_of(line);
        if let Some(way) = self.array.find(set, tag) {
            self.stats.record_hit();
            self.core_stats[core.index()].record_hit();
            self.touch(set, way);
            if kind.is_write() {
                self.array.mark_dirty(set, way);
            }
            return AccessOutcome::Hit;
        }
        self.stats.record_miss();
        self.core_stats[core.index()].record_miss();
        let way = match self.array.invalid_way(set) {
            Some(w) => w,
            None => self.victim(set, core),
        };
        let evicted = self.array.fill(set, way, LineMeta::new(tag, core, pc, kind.is_write()));
        if let Some(ev) = evicted {
            self.stats.record_eviction(ev.dirty);
        }
        self.touch(set, way);
        AccessOutcome::Miss { evicted }
    }

    fn stats(&self) -> &CacheStats {
        &self.stats
    }

    fn core_stats(&self) -> &[CacheStats] {
        &self.core_stats
    }

    fn reset_stats(&mut self) {
        self.stats.clear();
        self.core_stats.iter_mut().for_each(CacheStats::clear);
    }

    fn geometry(&self) -> &CacheGeometry {
        self.array.geometry()
    }

    fn scheme_name(&self) -> String {
        "ucp".to_string()
    }

    fn set_audit(&mut self, enabled: bool) {
        if enabled {
            self.array.enable_audit();
        } else {
            self.array.disable_audit();
        }
    }

    fn audit_stats(&self) -> Option<AuditStats> {
        self.array
            .audit_enabled()
            .then(|| AuditStats { array_ops: self.array.audit_ops(), epoch_checks: 0 })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geom() -> CacheGeometry {
        CacheGeometry::new(64 * 8 * 64, 8, 64) // 64 sets, 8-way
    }

    fn read(llc: &mut UcpLlc, core: u8, line: u64) -> AccessOutcome {
        llc.access(CoreId::new(core), Pc::new(core as u64), LineAddr::new(line), AccessKind::Read)
    }

    #[test]
    fn initial_allocation_splits_ways() {
        let llc = UcpLlc::new(geom(), 3, 1000);
        assert_eq!(llc.allocations().iter().sum::<usize>(), 8);
        assert!(llc.allocations().iter().all(|&a| a >= 2));
    }

    #[test]
    fn basic_hit_miss_accounting() {
        let mut llc = UcpLlc::new(geom(), 2, 1_000_000);
        assert!(read(&mut llc, 0, 5).is_miss());
        assert!(read(&mut llc, 0, 5).is_hit());
        assert_eq!(llc.core_stats()[0].hits, 1);
    }

    #[test]
    fn repartition_rewards_reuse_heavy_core() {
        // Core 0 loops over 4 lines/set in every set (high utility up to 4
        // ways); core 1 streams (zero utility). After an epoch, core 0's
        // quota should grow well past the even split.
        let mut llc = UcpLlc::new(geom(), 2, 20_000);
        let mut stream_line = 1_000_000u64;
        for _ in 0..30_000 {
            for k in 0..4u64 {
                for s in 0..8u64 {
                    read(&mut llc, 0, s + 64 * k);
                }
            }
            for _ in 0..32 {
                read(&mut llc, 1, stream_line);
                stream_line += 1;
            }
            if llc.repartitions() > 2 {
                break;
            }
        }
        assert!(llc.repartitions() >= 1);
        assert!(
            llc.allocations()[0] >= 4,
            "reuse-heavy core should win ways: {:?}",
            llc.allocations()
        );
        assert!(llc.allocations()[1] <= 4);
    }

    #[test]
    fn quota_enforcement_protects_under_quota_core() {
        // Force allocations manually via an epoch with clear utility, then
        // verify the streamer cannot push the loop core below quota.
        let mut llc = UcpLlc::new(geom(), 2, 10_000);
        // Warm: core 0 keeps 4 lines hot in set 0.
        for _ in 0..5_000 {
            for k in 0..4u64 {
                read(&mut llc, 0, 64 * k); // set 0
            }
            read(&mut llc, 1, 7); // also set 7? line 7 -> set 7; stream instead:
        }
        // Flood set 0 from core 1.
        for n in 0..10_000u64 {
            read(&mut llc, 1, 64 * n); // every line maps to set 0
        }
        // Core 0's 4 hot lines must still hit (they are within its quota).
        let before = llc.core_stats()[0].hits;
        for k in 0..4u64 {
            assert!(read(&mut llc, 0, 64 * k).is_hit(), "hot line {k} was evicted");
        }
        assert_eq!(llc.core_stats()[0].hits, before + 4);
    }

    #[test]
    fn capacity_conserved() {
        let mut llc = UcpLlc::new(geom(), 2, 500);
        for n in 0..5_000 {
            read(&mut llc, (n % 2) as u8, n);
        }
        assert!(llc.array.total_occupancy() <= 64 * 8);
    }

    #[test]
    fn reset_stats_clears_counters() {
        let mut llc = UcpLlc::new(geom(), 2, 1000);
        read(&mut llc, 0, 1);
        llc.reset_stats();
        assert_eq!(llc.stats().accesses(), 0);
        assert_eq!(llc.core_stats()[0].accesses(), 0);
    }

    #[test]
    #[should_panic(expected = "fewer ways than cores")]
    fn too_many_cores_rejected() {
        let _ = UcpLlc::new(CacheGeometry::new(64 * 2 * 4, 2, 64), 3, 100);
    }
}
