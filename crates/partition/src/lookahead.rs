//! The lookahead partitioning algorithm.
//!
//! Given per-core utility curves (expected hits as a function of allocated
//! ways), the algorithm repeatedly grants ways to whichever core currently
//! offers the highest *marginal utility per way*, looking ahead across
//! multi-way grants so that cores with S-shaped curves (no benefit until
//! several ways) still compete fairly. This greedy-with-lookahead scheme
//! is the standard way to sidestep the NP-hardness of optimal
//! partitioning while capturing its benefit in practice.

/// Computes a way partition from per-core utility curves.
///
/// `curves[c][w]` is the (scaled) number of hits core `c` is predicted to
/// receive with `w` ways; each curve must have `total_ways + 1` entries
/// and be non-decreasing. Every core is guaranteed at least `min_ways`
/// ways; the remainder is distributed by maximum marginal utility. Ways
/// left over when all curves flatten are distributed round-robin so the
/// full associativity is always assigned.
///
/// Returns one allocation per core, summing to `total_ways`.
///
/// # Panics
///
/// Panics if `curves` is empty, any curve is shorter than
/// `total_ways + 1`, or `min_ways * cores > total_ways`.
///
/// # Examples
///
/// ```
/// use nucache_partition::lookahead_partition;
/// // Core 0 saturates after 2 ways; core 1 keeps benefiting.
/// let c0 = vec![0, 80, 100, 100, 100];
/// let c1 = vec![0, 40, 80, 120, 160];
/// let alloc = lookahead_partition(&[c0, c1], 4, 1);
/// assert_eq!(alloc.iter().sum::<usize>(), 4);
/// assert!(alloc[1] >= 2);
/// ```
pub fn lookahead_partition(curves: &[Vec<u64>], total_ways: usize, min_ways: usize) -> Vec<usize> {
    assert!(!curves.is_empty(), "no cores");
    let cores = curves.len();
    assert!(min_ways * cores <= total_ways, "min_ways over-commits the cache");
    for (c, curve) in curves.iter().enumerate() {
        assert!(
            curve.len() > total_ways,
            "curve for core {c} too short: {} < {}",
            curve.len(),
            total_ways + 1
        );
    }

    let mut alloc = vec![min_ways; cores];
    let mut balance = total_ways - min_ways * cores;

    while balance > 0 {
        // For each core, the best (utility-per-way, ways) step within the
        // remaining balance.
        let mut best: Option<(f64, usize, usize)> = None; // (mu, core, step)
        for c in 0..cores {
            let have = alloc[c];
            let base = curves[c][have.min(total_ways)];
            for step in 1..=balance {
                let gain = curves[c][(have + step).min(total_ways)].saturating_sub(base);
                if gain == 0 {
                    continue;
                }
                let mu = gain as f64 / step as f64;
                // Ties go to the core holding fewer ways so equally hungry
                // cores split the cache instead of the first one taking all.
                let better = match best {
                    None => true,
                    Some((bmu, bc, _)) => {
                        mu > bmu * (1.0 + 1e-9)
                            || ((mu - bmu).abs() <= bmu * 1e-9 && alloc[c] < alloc[bc])
                    }
                };
                if better {
                    best = Some((mu, c, step));
                }
            }
        }
        match best {
            Some((_, c, step)) => {
                alloc[c] += step;
                balance -= step;
            }
            None => break, // every curve is flat: fall through to round-robin
        }
    }

    // Distribute any leftover ways round-robin (flat curves still own
    // physical ways).
    let mut c = 0;
    while balance > 0 {
        alloc[c % cores] += 1;
        balance -= 1;
        c += 1;
    }

    debug_assert_eq!(alloc.iter().sum::<usize>(), total_ways);
    alloc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocations_sum_to_total() {
        let curves = vec![vec![0, 1, 2, 3, 4, 5, 6, 7, 8], vec![0, 8, 9, 9, 9, 9, 9, 9, 9]];
        let alloc = lookahead_partition(&curves, 8, 1);
        assert_eq!(alloc.iter().sum::<usize>(), 8);
        assert!(alloc.iter().all(|&a| a >= 1));
    }

    #[test]
    fn high_utility_core_wins_ways() {
        // Core 0: each way worth 100 hits. Core 1: each worth 1.
        let c0: Vec<u64> = (0..=8).map(|w| w * 100).collect();
        let c1: Vec<u64> = (0..=8).collect();
        let alloc = lookahead_partition(&[c0, c1], 8, 1);
        assert_eq!(alloc, vec![7, 1]);
    }

    #[test]
    fn lookahead_sees_past_flat_prefix() {
        // Core 0 gains nothing until 4 ways, then a huge jump: a purely
        // greedy single-step algorithm would starve it.
        let c0 = vec![0, 0, 0, 0, 1000, 1000, 1000, 1000, 1000];
        let c1: Vec<u64> = (0..=8).map(|w| w * 10).collect();
        let alloc = lookahead_partition(&[c0, c1], 8, 1);
        assert!(alloc[0] >= 4, "lookahead must grant the 4-way step, got {alloc:?}");
    }

    #[test]
    fn flat_curves_fall_back_to_round_robin() {
        let flat = vec![0u64; 9];
        let alloc = lookahead_partition(&[flat.clone(), flat], 8, 1);
        assert_eq!(alloc.iter().sum::<usize>(), 8);
        assert_eq!(alloc, vec![4, 4]);
    }

    #[test]
    fn min_ways_respected() {
        let c0: Vec<u64> = (0..=16).map(|w| w * 100).collect();
        let c1 = vec![0u64; 17];
        let alloc = lookahead_partition(&[c0, c1], 16, 2);
        assert!(alloc[1] >= 2);
        assert_eq!(alloc.iter().sum::<usize>(), 16);
    }

    #[test]
    fn single_core_takes_everything() {
        let c: Vec<u64> = (0..=4).collect();
        assert_eq!(lookahead_partition(&[c], 4, 1), vec![4]);
    }

    #[test]
    #[should_panic(expected = "over-commits")]
    fn overcommitted_min_rejected() {
        let c = vec![0u64; 5];
        let _ = lookahead_partition(&[c.clone(), c, vec![0u64; 5]], 4, 2);
    }

    #[test]
    #[should_panic(expected = "too short")]
    fn short_curve_rejected() {
        let _ = lookahead_partition(&[vec![0, 1]], 4, 0);
    }

    #[test]
    fn four_core_scenario() {
        // Two hungry cores, one modest, one streaming (flat).
        let hungry: Vec<u64> = (0..=16).map(|w| w * 50).collect();
        let modest: Vec<u64> = (0..=16).map(|w| (w * 10).min(40)).collect();
        let flat = vec![0u64; 17];
        let alloc = lookahead_partition(&[hungry.clone(), hungry, modest, flat], 16, 1);
        assert_eq!(alloc.iter().sum::<usize>(), 16);
        assert!(alloc[0] >= 5 && alloc[1] >= 5);
        assert_eq!(alloc[3], 1, "streamer gets only the floor");
    }
}
