//! Shared-LLC baseline managers for the NUcache reproduction.
//!
//! NUcache's evaluation compares against the well-known cache-partitioning
//! schemes of its era. This crate implements them on top of the
//! `nucache-cache` substrate:
//!
//! * [`UcpLlc`] — Utility-based Cache Partitioning: per-core UMON shadow
//!   monitors feed the lookahead algorithm, and the resulting way quotas
//!   are enforced at victim-selection time.
//! * [`PippLlc`] — Promotion/Insertion Pseudo-Partitioning: the same
//!   utility targets enforced softly through per-core insertion positions
//!   and probabilistic single-step promotion.
//! * TADIP-F and the plain LRU baseline, available through
//!   [`baselines`]'s constructors (they are thin wrappers over the cache
//!   crate's policy machinery).
//! * [`lookahead`] — the marginal-utility partitioning algorithm itself,
//!   exposed separately so tests and experiments can probe it directly.
//!
//! # Examples
//!
//! ```
//! use nucache_cache::{CacheGeometry, SharedLlc};
//! use nucache_partition::UcpLlc;
//! use nucache_common::{AccessKind, CoreId, LineAddr, Pc};
//!
//! let geom = CacheGeometry::new(1024 * 1024, 16, 64);
//! let mut llc = UcpLlc::new(geom, 2, 100_000);
//! llc.access(CoreId::new(0), Pc::new(1), LineAddr::new(7), AccessKind::Read);
//! assert_eq!(llc.stats().misses, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baselines;
pub mod lookahead;
pub mod pipp;
pub mod ucp;

pub use lookahead::lookahead_partition;
pub use pipp::PippLlc;
pub use ucp::UcpLlc;
