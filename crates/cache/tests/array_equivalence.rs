//! Property test pinning the struct-of-arrays `SetArray` to the
//! semantics of the original frame-per-`Option` layout.
//!
//! A straightforward `Vec<Option<LineMeta>>` model executes the same
//! random operation sequence as the real array; every observable —
//! `find`, `invalid_way`, `occupancy`, `get`, `line_addr`, eviction
//! reports, `total_occupancy` — must agree at every step.

use nucache_cache::meta::{EvictedLine, LineMeta};
use nucache_cache::{CacheGeometry, SetArray};
use nucache_common::{CoreId, LineAddr, Pc};
use proptest::prelude::*;

/// Reference implementation: the pre-SoA frame array.
struct ModelArray {
    geom: CacheGeometry,
    frames: Vec<Option<LineMeta>>,
}

impl ModelArray {
    fn new(geom: CacheGeometry) -> Self {
        ModelArray { geom, frames: vec![None; geom.num_lines()] }
    }

    fn idx(&self, set: usize, way: usize) -> usize {
        set * self.geom.associativity() + way
    }

    fn set(&self, set: usize) -> &[Option<LineMeta>] {
        let b = self.idx(set, 0);
        &self.frames[b..b + self.geom.associativity()]
    }

    fn find(&self, set: usize, tag: u64) -> Option<usize> {
        self.set(set).iter().position(|f| matches!(f, Some(m) if m.tag == tag))
    }

    fn invalid_way(&self, set: usize) -> Option<usize> {
        self.set(set).iter().position(Option::is_none)
    }

    fn occupancy(&self, set: usize) -> usize {
        self.set(set).iter().filter(|f| f.is_some()).count()
    }

    fn get(&self, set: usize, way: usize) -> Option<LineMeta> {
        self.frames[self.idx(set, way)]
    }

    fn fill(&mut self, set: usize, way: usize, meta: LineMeta) -> Option<EvictedLine> {
        let i = self.idx(set, way);
        self.frames[i].replace(meta).map(|m| self.to_evicted(set, m))
    }

    fn invalidate(&mut self, set: usize, way: usize) -> Option<EvictedLine> {
        let i = self.idx(set, way);
        self.frames[i].take().map(|m| self.to_evicted(set, m))
    }

    fn mark_dirty(&mut self, set: usize, way: usize) {
        let i = self.idx(set, way);
        self.frames[i].as_mut().expect("model mark_dirty on invalid frame").dirty = true;
    }

    fn line_addr(&self, set: usize, way: usize) -> Option<LineAddr> {
        self.get(set, way).map(|m| self.geom.line_of(m.tag, set))
    }

    fn total_occupancy(&self) -> usize {
        self.frames.iter().filter(|f| f.is_some()).count()
    }

    fn to_evicted(&self, set: usize, m: LineMeta) -> EvictedLine {
        EvictedLine { line: self.geom.line_of(m.tag, set), dirty: m.dirty, core: m.core, pc: m.pc }
    }
}

const SETS: usize = 4;
const WAYS: usize = 4;
const TAGS: u64 = 8; // small tag space forces matches and overwrites

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]
    #[test]
    fn soa_matches_frame_model(
        ops in prop::collection::vec((0u8..4, 0usize..SETS, 0usize..WAYS, 0u64..TAGS), 1..400),
    ) {
        let geom = CacheGeometry::new((SETS * WAYS * 64) as u64, WAYS, 64);
        prop_assert_eq!(geom.num_sets(), SETS);
        let mut soa = SetArray::new(geom);
        let mut model = ModelArray::new(geom);

        for (op, set, way, tag) in ops {
            match op {
                0 => {
                    let meta = LineMeta::new(
                        tag,
                        CoreId::new((tag % 4) as u8),
                        Pc::new(0x400 + tag * 16),
                        tag & 1 == 1,
                    );
                    prop_assert_eq!(soa.fill(set, way, meta), model.fill(set, way, meta));
                }
                1 => {
                    prop_assert_eq!(soa.invalidate(set, way), model.invalidate(set, way));
                }
                2 => {
                    // mark_dirty is only legal on valid frames.
                    if model.get(set, way).is_some() {
                        soa.mark_dirty(set, way);
                        model.mark_dirty(set, way);
                    }
                }
                _ => {
                    prop_assert_eq!(soa.find(set, tag), model.find(set, tag));
                }
            }
            // Every observable agrees after every operation.
            prop_assert_eq!(soa.invalid_way(set), model.invalid_way(set));
            prop_assert_eq!(soa.occupancy(set), model.occupancy(set));
            prop_assert_eq!(soa.get(set, way), model.get(set, way));
            prop_assert_eq!(soa.line_addr(set, way), model.line_addr(set, way));
        }

        prop_assert_eq!(soa.total_occupancy(), model.total_occupancy());
        for set in 0..SETS {
            for tag in 0..TAGS {
                prop_assert_eq!(soa.find(set, tag), model.find(set, tag));
            }
            for way in 0..WAYS {
                prop_assert_eq!(soa.get(set, way), model.get(set, way));
            }
        }
    }
}
