//! Property-based tests over every replacement policy.

use nucache_cache::policy::{
    Bip, Dip, Drrip, Fifo, Lip, Lru, Nru, RandomEvict, Srrip, TadipF, TreePlru,
};
use nucache_cache::{BasicCache, CacheGeometry, ReplacementPolicy};
use nucache_common::{AccessKind, CoreId, LineAddr, Pc};
use proptest::prelude::*;

fn geom() -> CacheGeometry {
    CacheGeometry::new(64 * 4 * 8, 4, 64) // 8 sets, 4-way
}

/// Exercises a policy through a cache with an arbitrary trace and checks
/// the universal invariants: victims in range (implied by no panic),
/// immediate re-access hits, occupancy bounded, stats consistent.
fn check_policy<P: ReplacementPolicy>(policy: P, trace: &[(u64, bool)]) {
    let g = geom();
    let mut cache = BasicCache::new(g, policy);
    for &(line, w) in trace {
        let kind = if w { AccessKind::Write } else { AccessKind::Read };
        cache.access(LineAddr::new(line), kind, CoreId::new(0), Pc::new(line % 7));
        assert!(
            cache
                .access(LineAddr::new(line), AccessKind::Read, CoreId::new(0), Pc::new(0))
                .is_hit(),
            "immediate re-access must hit"
        );
        assert!(cache.occupancy() <= g.num_lines());
    }
    let s = *cache.stats();
    assert_eq!(s.hits + s.misses, s.accesses());
    assert!(s.evictions <= s.misses, "each eviction is caused by a filling miss");
}

macro_rules! policy_property {
    ($name:ident, $make:expr) => {
        proptest! {
            // Each case replays up to 800 accesses; 64 cases per policy
            // keeps the suite brisk even unoptimized.
            #![proptest_config(ProptestConfig::with_cases(64))]
            #[test]
            fn $name(trace in prop::collection::vec((0u64..200, any::<bool>()), 1..400)) {
                check_policy($make, &trace);
            }
        }
    };
}

policy_property!(lru_invariants, Lru::new(&geom()));
policy_property!(fifo_invariants, Fifo::new(&geom()));
policy_property!(random_invariants, RandomEvict::new(&geom(), 1));
policy_property!(nru_invariants, Nru::new(&geom()));
policy_property!(plru_invariants, TreePlru::new(&geom()));
policy_property!(lip_invariants, Lip::new(&geom()));
policy_property!(bip_invariants, Bip::new(&geom(), 1));
policy_property!(dip_invariants, Dip::new(&geom(), 1));
policy_property!(srrip_invariants, Srrip::new(&geom()));
policy_property!(drrip_invariants, Drrip::new(&geom(), 1));
policy_property!(tadip_invariants, TadipF::new(&geom(), 2, 1));

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    /// Two caches with the same deterministic policy and trace agree on
    /// every outcome (policies with RNGs use fixed seeds, so this holds
    /// for all of them).
    #[test]
    fn policies_are_deterministic(trace in prop::collection::vec(0u64..100, 1..200)) {
        let g = geom();
        let mut a = BasicCache::new(g, Drrip::new(&g, 42));
        let mut b = BasicCache::new(g, Drrip::new(&g, 42));
        for &line in &trace {
            let ra = a.access(LineAddr::new(line), AccessKind::Read, CoreId::new(0), Pc::new(0));
            let rb = b.access(LineAddr::new(line), AccessKind::Read, CoreId::new(0), Pc::new(0));
            prop_assert_eq!(ra, rb);
        }
    }

    /// A single-way cache under any policy behaves identically: the last
    /// accessed line is resident, nothing else.
    #[test]
    fn direct_mapped_equivalence(trace in prop::collection::vec(0u64..64, 1..200)) {
        let g = CacheGeometry::new(64 * 8, 1, 64); // 8 sets, direct-mapped
        let mut lru = BasicCache::new(g, Lru::new(&g));
        let mut fifo = BasicCache::new(g, Fifo::new(&g));
        for &line in &trace {
            let a = lru.access(LineAddr::new(line), AccessKind::Read, CoreId::new(0), Pc::new(0));
            let b = fifo.access(LineAddr::new(line), AccessKind::Read, CoreId::new(0), Pc::new(0));
            prop_assert_eq!(a.is_hit(), b.is_hit(), "direct-mapped caches are policy-free");
        }
    }

    /// Writes never change hit/miss behaviour, only dirtiness: replaying
    /// the same trace with all-reads gives identical hit sequences under
    /// LRU.
    #[test]
    fn write_kind_does_not_affect_placement(
        trace in prop::collection::vec((0u64..100, any::<bool>()), 1..200),
    ) {
        let g = geom();
        let mut rw = BasicCache::new(g, Lru::new(&g));
        let mut ro = BasicCache::new(g, Lru::new(&g));
        for &(line, w) in &trace {
            let kind = if w { AccessKind::Write } else { AccessKind::Read };
            let a = rw.access(LineAddr::new(line), kind, CoreId::new(0), Pc::new(0));
            let b = ro.access(LineAddr::new(line), AccessKind::Read, CoreId::new(0), Pc::new(0));
            prop_assert_eq!(a.is_hit(), b.is_hit());
        }
        prop_assert!(rw.stats().writebacks >= ro.stats().writebacks);
    }
}
