//! Belady's OPT: offline-optimal replacement for headroom analysis.
//!
//! Given a complete line-address trace, OPT evicts the resident line
//! whose next use lies farthest in the future — the provably minimal
//! number of misses for a set-associative cache with demand fills. No
//! online policy (NUcache included) can beat it; the experiments use it
//! to show how much of the remaining headroom each scheme captures.
//!
//! Two passes: the first links each access to the trace index of the
//! line's next use; the second simulates, keeping per-set residents
//! keyed by next-use index.

use crate::config::CacheGeometry;
use nucache_common::{CacheStats, LineAddr};
// nucache-audit: allow-file(nondeterministic-iteration) -- OPT oracle maps are
// lookup-only (insert/get/remove by key); nothing iterates them, so hasher
// state cannot reach the results.
use std::collections::HashMap;

/// Result of an OPT simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OptResult {
    /// Hit/miss counters under OPT.
    pub stats: CacheStats,
}

/// Simulates Belady's OPT over `trace` for a cache shaped like `geom`.
///
/// Runs in `O(N log A)` time and `O(N)` space for a trace of `N`
/// accesses.
///
/// # Examples
///
/// ```
/// use nucache_cache::{opt::optimal_misses, CacheGeometry};
/// use nucache_common::LineAddr;
///
/// let geom = CacheGeometry::new(64 * 2, 2, 64); // one 2-way set
/// // Loop of 3 over 2 ways: LRU gets zero hits, OPT keeps one line hot.
/// let trace: Vec<LineAddr> = (0..30).map(|i| LineAddr::new(i % 3)).collect();
/// let r = optimal_misses(&geom, &trace);
/// assert!(r.stats.hits > 0);
/// ```
pub fn optimal_misses(geom: &CacheGeometry, trace: &[LineAddr]) -> OptResult {
    // Pass 1: next_use[i] = index of the next access to trace[i]'s line
    // (usize::MAX if never again).
    let mut next_use = vec![usize::MAX; trace.len()];
    let mut last_seen: HashMap<u64, usize> = HashMap::new();
    for (i, line) in trace.iter().enumerate().rev() {
        let entry = last_seen.insert(line.0, i);
        if let Some(next) = entry {
            next_use[i] = next;
        }
    }

    // Pass 2: per-set residents as (next_use, line) ordered sets, plus a
    // line -> current next_use map for hit updates.
    let num_sets = geom.num_sets();
    let assoc = geom.associativity();
    let mut residents: Vec<std::collections::BTreeSet<(usize, u64)>> =
        vec![std::collections::BTreeSet::new(); num_sets];
    let mut keyed: HashMap<u64, usize> = HashMap::new();
    let mut stats = CacheStats::default();

    for (i, line) in trace.iter().enumerate() {
        let set = geom.set_of(*line);
        let nu = next_use[i];
        if let Some(&old_key) = keyed.get(&line.0) {
            // Hit: re-key the line to its new next use.
            stats.record_hit();
            let removed = residents[set].remove(&(old_key, line.0));
            debug_assert!(removed, "resident line must be in its set");
            residents[set].insert((nu, line.0));
            keyed.insert(line.0, nu);
            continue;
        }
        stats.record_miss();
        if residents[set].len() == assoc {
            // Evict the farthest-next-use line. `usize::MAX` (never used
            // again) sorts last, exactly as OPT wants.
            let victim = *residents[set].iter().next_back().expect("full set");
            residents[set].remove(&victim);
            keyed.remove(&victim.1);
            stats.record_eviction(false);
        }
        residents[set].insert((nu, line.0));
        keyed.insert(line.0, nu);
    }
    OptResult { stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::basic::BasicCache;
    use crate::policy::Lru;
    use nucache_common::{AccessKind, CoreId, Pc};

    fn lru_hits(geom: &CacheGeometry, trace: &[LineAddr]) -> u64 {
        let mut c = BasicCache::new(*geom, Lru::new(geom));
        for &l in trace {
            c.access(l, AccessKind::Read, CoreId::new(0), Pc::new(0));
        }
        c.stats().hits
    }

    fn one_set(assoc: usize) -> CacheGeometry {
        CacheGeometry::new(64 * assoc as u64, assoc, 64)
    }

    #[test]
    fn opt_never_loses_to_lru() {
        // Deterministic pseudo-random trace: OPT >= LRU must hold.
        let geom = CacheGeometry::new(64 * 4 * 4, 4, 64);
        let mut x = 12345u64;
        let trace: Vec<LineAddr> = (0..5000)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                LineAddr::new((x >> 33) % 64)
            })
            .collect();
        let opt = optimal_misses(&geom, &trace);
        assert!(opt.stats.hits >= lru_hits(&geom, &trace));
        assert_eq!(opt.stats.accesses(), 5000);
    }

    #[test]
    fn opt_beats_lru_on_cyclic_thrash() {
        let geom = one_set(2);
        let trace: Vec<LineAddr> = (0..300).map(|i| LineAddr::new(i % 3)).collect();
        assert_eq!(lru_hits(&geom, &trace), 0);
        let opt = optimal_misses(&geom, &trace);
        // OPT keeps one of the three lines resident across the cycle:
        // roughly one hit per iteration.
        assert!(opt.stats.hits >= 140, "opt hits = {}", opt.stats.hits);
    }

    #[test]
    fn opt_is_perfect_when_everything_fits() {
        let geom = one_set(4);
        let trace: Vec<LineAddr> = (0..100).map(|i| LineAddr::new(i % 4)).collect();
        let opt = optimal_misses(&geom, &trace);
        assert_eq!(opt.stats.misses, 4, "only compulsory misses");
    }

    #[test]
    fn empty_and_single_access() {
        let geom = one_set(2);
        assert_eq!(optimal_misses(&geom, &[]).stats.accesses(), 0);
        let r = optimal_misses(&geom, &[LineAddr::new(9)]);
        assert_eq!(r.stats.misses, 1);
    }

    #[test]
    fn sets_are_independent() {
        // Two sets, direct-mapped: accesses alternate sets; no
        // interference.
        let geom = CacheGeometry::new(64 * 2, 1, 64);
        let trace: Vec<LineAddr> =
            (0..50).flat_map(|_| [LineAddr::new(0), LineAddr::new(1)]).collect();
        let r = optimal_misses(&geom, &trace);
        assert_eq!(r.stats.misses, 2);
    }

    #[test]
    fn repeated_same_line_in_trace_is_handled() {
        // Back-to-back duplicates exercise the re-keying path where the
        // next use is the immediately following index.
        let geom = one_set(1);
        let trace = vec![LineAddr::new(5); 10];
        let r = optimal_misses(&geom, &trace);
        assert_eq!(r.stats.hits, 9);
    }
}
