//! Per-core private cache hierarchy (L1 + L2) in front of the shared LLC.
//!
//! The private levels filter the access stream: only L2 misses (and dirty
//! L2 victims, as write-backs) reach the shared LLC, which is where every
//! scheme under study lives. Both levels are LRU and write-back /
//! write-allocate. The hierarchy is non-inclusive non-exclusive
//! ("mostly-inclusive"), the common design point for this literature:
//! lines are filled into both levels on the way in, but an eviction at an
//! outer level does not back-invalidate inner ones.

use crate::basic::BasicCache;
use crate::config::CacheGeometry;
use crate::policy::Lru;
use nucache_common::{AccessKind, CacheStats, CoreId, LineAddr, Pc};

/// Where a private-hierarchy access was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrivateOutcome {
    /// Hit in the L1.
    L1Hit,
    /// Missed L1, hit L2.
    L2Hit,
    /// Missed both: the access must be sent to the shared LLC. Carries a
    /// dirty L2 victim (a write-back toward the LLC) if the L2 fill
    /// displaced one.
    LlcAccess {
        /// Dirty line displaced from the L2 by this fill, if any.
        writeback: Option<LineAddr>,
    },
}

impl PrivateOutcome {
    /// `true` when the access must continue to the shared LLC.
    pub const fn reaches_llc(&self) -> bool {
        matches!(self, PrivateOutcome::LlcAccess { .. })
    }
}

/// One core's private L1 + L2 stack.
///
/// # Examples
///
/// ```
/// use nucache_cache::hierarchy::PrivateHierarchy;
/// use nucache_cache::CacheGeometry;
/// use nucache_common::{AccessKind, CoreId, LineAddr, Pc};
///
/// let l1 = CacheGeometry::new(32 * 1024, 8, 64);
/// let l2 = CacheGeometry::new(256 * 1024, 8, 64);
/// let mut h = PrivateHierarchy::new(CoreId::new(0), l1, l2);
/// let out = h.access(Pc::new(1), LineAddr::new(10), AccessKind::Read);
/// assert!(out.reaches_llc());
/// assert!(!h.access(Pc::new(1), LineAddr::new(10), AccessKind::Read).reaches_llc());
/// ```
#[derive(Debug)]
pub struct PrivateHierarchy {
    core: CoreId,
    l1: BasicCache<Lru>,
    l2: BasicCache<Lru>,
}

impl PrivateHierarchy {
    /// Creates an empty private stack for `core`.
    pub fn new(core: CoreId, l1_geom: CacheGeometry, l2_geom: CacheGeometry) -> Self {
        PrivateHierarchy {
            core,
            l1: BasicCache::new(l1_geom, Lru::new(&l1_geom)),
            l2: BasicCache::new(l2_geom, Lru::new(&l2_geom)),
        }
    }

    /// The owning core.
    pub const fn core(&self) -> CoreId {
        self.core
    }

    /// L1 counters.
    pub fn l1_stats(&self) -> &CacheStats {
        self.l1.stats()
    }

    /// L2 counters.
    pub fn l2_stats(&self) -> &CacheStats {
        self.l2.stats()
    }

    /// Resets both levels' counters (contents retained).
    pub fn reset_stats(&mut self) {
        self.l1.clear_stats();
        self.l2.clear_stats();
    }

    /// Runs one access through L1 then L2.
    #[inline]
    pub fn access(&mut self, pc: Pc, line: LineAddr, kind: AccessKind) -> PrivateOutcome {
        let l1_out = self.l1.access(line, kind, self.core, pc);
        if l1_out.is_hit() {
            return PrivateOutcome::L1Hit;
        }
        // A dirty L1 victim is absorbed by the L2 (write-back path): mark
        // the line dirty there if resident; if it already left the L2 the
        // write-back proceeds downstream invisibly for our purposes.
        if let Some(ev) = l1_out.evicted() {
            if ev.dirty {
                self.l2_absorb_writeback(ev.line);
            }
        }
        let l2_out = self.l2.access(line, kind, self.core, pc);
        if l2_out.is_hit() {
            return PrivateOutcome::L2Hit;
        }
        let writeback = l2_out.evicted().filter(|ev| ev.dirty).map(|ev| ev.line);
        PrivateOutcome::LlcAccess { writeback }
    }

    fn l2_absorb_writeback(&mut self, line: LineAddr) {
        // Re-touch as a write so the line is marked dirty; this also
        // (reasonably) refreshes its recency. The probe-then-touch is a
        // single tag lookup; a missing line means the write-back already
        // left the L2 and proceeds downstream invisibly for our purposes.
        self.l2.rehit_write(line);
    }

    /// Total demand accesses seen at L1.
    pub fn demand_accesses(&self) -> u64 {
        self.l1.stats().accesses()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> PrivateHierarchy {
        // L1: 1 set x 2 ways; L2: 2 sets x 2 ways.
        PrivateHierarchy::new(
            CoreId::new(0),
            CacheGeometry::new(64 * 2, 2, 64),
            CacheGeometry::new(64 * 4, 2, 64),
        )
    }

    fn read(h: &mut PrivateHierarchy, n: u64) -> PrivateOutcome {
        h.access(Pc::new(1), LineAddr::new(n), AccessKind::Read)
    }

    #[test]
    fn levels_filter_in_order() {
        let mut h = tiny();
        assert!(read(&mut h, 0).reaches_llc());
        assert_eq!(read(&mut h, 0), PrivateOutcome::L1Hit);
        // Push 0 out of the single-set L1 with lines 2 and 3; in the
        // 2-set L2, line 3 maps to the other set, so 0 stays resident.
        read(&mut h, 2);
        read(&mut h, 3);
        assert_eq!(read(&mut h, 0), PrivateOutcome::L2Hit);
    }

    #[test]
    fn l2_victims_surface_as_writebacks_only_when_dirty() {
        let mut h = tiny();
        // Dirty line 0 in both levels.
        h.access(Pc::new(1), LineAddr::new(0), AccessKind::Write);
        // L1 evicts 0 (dirty) while L2 still holds it -> absorbed.
        h.access(Pc::new(1), LineAddr::new(2), AccessKind::Read);
        h.access(Pc::new(1), LineAddr::new(4), AccessKind::Read);
        // Now force L2 set 0 (lines 0,2,4 map there: set = line & 1...).
        // Lines 0,2,4 are all even => L2 set 0. Line 4's fill already
        // displaced one of {0,2}; keep pushing until the dirty 0 leaves.
        let mut saw_dirty_wb = false;
        for n in [6u64, 8, 10] {
            if let PrivateOutcome::LlcAccess { writeback: Some(wb) } = read(&mut h, n) {
                if wb == LineAddr::new(0) {
                    saw_dirty_wb = true;
                }
            }
        }
        assert!(saw_dirty_wb, "dirty L2 victim must surface as a write-back");
    }

    #[test]
    fn clean_victims_produce_no_writebacks() {
        let mut h = tiny();
        for n in (0..20).map(|k| k * 2) {
            if let PrivateOutcome::LlcAccess { writeback } = read(&mut h, n) {
                assert_eq!(writeback, None, "all lines are clean");
            }
        }
    }

    #[test]
    fn stats_reset_keeps_contents() {
        let mut h = tiny();
        read(&mut h, 0);
        h.reset_stats();
        assert_eq!(h.demand_accesses(), 0);
        assert_eq!(read(&mut h, 0), PrivateOutcome::L1Hit);
    }
}
