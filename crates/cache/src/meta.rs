//! Per-line metadata and access outcomes.

use nucache_common::{CoreId, LineAddr, Pc};

/// Metadata for one resident cache line.
///
/// Besides the tag and dirty bit, every line remembers the core and the
/// static instruction (PC) that allocated it — NUcache and the
/// partitioning baselines all key decisions on one or both.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LineMeta {
    /// Tag bits (line address with set-index bits stripped).
    pub tag: u64,
    /// Whether the line has been written since it was filled.
    pub dirty: bool,
    /// Core whose miss allocated the line.
    pub core: CoreId,
    /// Static instruction whose miss allocated the line.
    pub pc: Pc,
}

impl LineMeta {
    /// Creates metadata for a freshly filled line.
    pub const fn new(tag: u64, core: CoreId, pc: Pc, dirty: bool) -> Self {
        LineMeta { tag, dirty, core, pc }
    }
}

/// A line pushed out of the cache, reported to the caller so outer layers
/// (write-back accounting, DeliWays admission, Next-Use monitoring) can
/// react.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvictedLine {
    /// Full line address of the victim.
    pub line: LineAddr,
    /// Whether the victim was dirty (needs a write-back).
    pub dirty: bool,
    /// Core that had allocated the victim.
    pub core: CoreId,
    /// PC that had allocated the victim.
    pub pc: Pc,
}

/// Result of one cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessOutcome {
    /// The line was present.
    Hit,
    /// The line was absent and has been filled; `evicted` reports the
    /// victim if the fill displaced a valid line.
    Miss {
        /// Victim displaced by the fill, if any.
        evicted: Option<EvictedLine>,
    },
}

impl AccessOutcome {
    /// `true` on [`AccessOutcome::Hit`].
    pub const fn is_hit(&self) -> bool {
        matches!(self, AccessOutcome::Hit)
    }

    /// `true` on [`AccessOutcome::Miss`].
    pub const fn is_miss(&self) -> bool {
        !self.is_hit()
    }

    /// The displaced victim, if this was a miss that evicted one.
    pub const fn evicted(&self) -> Option<EvictedLine> {
        match self {
            AccessOutcome::Hit => None,
            AccessOutcome::Miss { evicted } => *evicted,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_predicates() {
        assert!(AccessOutcome::Hit.is_hit());
        assert!(!AccessOutcome::Hit.is_miss());
        let miss = AccessOutcome::Miss { evicted: None };
        assert!(miss.is_miss());
        assert_eq!(miss.evicted(), None);
    }

    #[test]
    fn evicted_passthrough() {
        let ev = EvictedLine {
            line: LineAddr::new(42),
            dirty: true,
            core: CoreId::new(1),
            pc: Pc::new(0x400),
        };
        let miss = AccessOutcome::Miss { evicted: Some(ev) };
        assert_eq!(miss.evicted(), Some(ev));
        assert_eq!(AccessOutcome::Hit.evicted(), None);
    }

    #[test]
    fn line_meta_ctor() {
        let m = LineMeta::new(7, CoreId::new(2), Pc::new(3), false);
        assert_eq!(m.tag, 7);
        assert!(!m.dirty);
    }
}
