//! Set-dueling machinery shared by DIP, DRRIP and TADIP.
//!
//! Set dueling dedicates a few "leader" sets to each competing policy and
//! a saturating counter (PSEL) to track which leader group misses less;
//! all remaining "follower" sets use the currently winning policy.

/// Which policy a set duels for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SetRole {
    /// Leader set hard-wired to policy A.
    LeaderA,
    /// Leader set hard-wired to policy B.
    LeaderB,
    /// Follower set using whichever policy currently wins.
    Follower,
}

/// A two-policy set-dueling selector with a saturating PSEL counter.
///
/// Leader sets are assigned by the complement-select scheme: within each
/// contiguous block of `sets / leaders_per_policy` sets, the first set
/// leads for A and the middle set leads for B, spreading leaders evenly.
///
/// The PSEL convention follows the DIP paper: misses in A-leaders
/// *increment* PSEL, misses in B-leaders *decrement* it, and followers use
/// policy B when PSEL is in its upper half (A is misbehaving) and A
/// otherwise.
///
/// # Examples
///
/// ```
/// use nucache_cache::dueling::{DuelingSelector, SetRole};
/// let mut d = DuelingSelector::new(1024, 32, 10);
/// assert_eq!(d.role(0), SetRole::LeaderA);
/// for _ in 0..600 { d.record_miss(0); } // A-leaders missing a lot
/// assert!(!d.a_wins());
/// ```
#[derive(Debug, Clone)]
pub struct DuelingSelector {
    num_sets: usize,
    stride: usize,
    psel: u32,
    psel_max: u32,
}

impl DuelingSelector {
    /// Creates a selector over `num_sets` sets with `leaders_per_policy`
    /// leader sets for each policy and a `psel_bits`-bit PSEL counter.
    ///
    /// # Panics
    ///
    /// Panics if `leaders_per_policy` is zero or too large for the set
    /// count, or if `psel_bits` is 0 or > 31.
    pub fn new(num_sets: usize, leaders_per_policy: usize, psel_bits: u32) -> Self {
        assert!(leaders_per_policy > 0, "need at least one leader per policy");
        assert!(2 * leaders_per_policy <= num_sets, "too many leader sets");
        assert!(psel_bits > 0 && psel_bits < 32, "psel_bits out of range");
        let stride = num_sets / leaders_per_policy;
        let psel_max = (1u32 << psel_bits) - 1;
        DuelingSelector { num_sets, stride, psel: psel_max / 2, psel_max }
    }

    /// The dueling role of `set`.
    pub fn role(&self, set: usize) -> SetRole {
        debug_assert!(set < self.num_sets);
        let offset = set % self.stride;
        if offset == 0 {
            SetRole::LeaderA
        } else if offset == self.stride / 2 {
            SetRole::LeaderB
        } else {
            SetRole::Follower
        }
    }

    /// Records a demand miss in `set`, updating PSEL if it is a leader.
    pub fn record_miss(&mut self, set: usize) {
        match self.role(set) {
            SetRole::LeaderA => self.psel = (self.psel + 1).min(self.psel_max),
            SetRole::LeaderB => self.psel = self.psel.saturating_sub(1),
            SetRole::Follower => {}
        }
    }

    /// `true` when followers should use policy A (A-leaders miss less).
    pub fn a_wins(&self) -> bool {
        self.psel <= self.psel_max / 2
    }

    /// Whether `set` should currently behave as policy A.
    pub fn use_a(&self, set: usize) -> bool {
        match self.role(set) {
            SetRole::LeaderA => true,
            SetRole::LeaderB => false,
            SetRole::Follower => self.a_wins(),
        }
    }

    /// Current PSEL value (for tests and introspection).
    pub fn psel(&self) -> u32 {
        self.psel
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leader_counts_match() {
        let d = DuelingSelector::new(1024, 32, 10);
        let mut a = 0;
        let mut b = 0;
        for s in 0..1024 {
            match d.role(s) {
                SetRole::LeaderA => a += 1,
                SetRole::LeaderB => b += 1,
                SetRole::Follower => {}
            }
        }
        assert_eq!(a, 32);
        assert_eq!(b, 32);
    }

    #[test]
    fn psel_starts_neutral_and_saturates() {
        let mut d = DuelingSelector::new(64, 4, 4);
        assert!(d.a_wins());
        for _ in 0..1000 {
            d.record_miss(0); // LeaderA misses
        }
        assert_eq!(d.psel(), 15);
        assert!(!d.a_wins());
        for _ in 0..1000 {
            d.record_miss(8); // stride = 16, offset 8 => LeaderB misses
        }
        assert_eq!(d.psel(), 0);
        assert!(d.a_wins());
    }

    #[test]
    fn followers_track_winner_leaders_do_not() {
        let mut d = DuelingSelector::new(64, 4, 4);
        for _ in 0..1000 {
            d.record_miss(0);
        }
        assert!(!d.a_wins());
        assert!(d.use_a(0), "A-leader always runs A");
        assert!(!d.use_a(8), "B-leader always runs B");
        assert!(!d.use_a(1), "follower tracks the winner");
    }

    #[test]
    fn follower_misses_ignored() {
        let mut d = DuelingSelector::new(64, 4, 4);
        let before = d.psel();
        d.record_miss(3);
        assert_eq!(d.psel(), before);
    }

    #[test]
    #[should_panic(expected = "too many leader sets")]
    fn rejects_oversubscribed_leaders() {
        let _ = DuelingSelector::new(16, 16, 4);
    }
}
