//! The shared-LLC interface and the classic (policy-only) organization.

use crate::audit::AuditStats;
use crate::basic::BasicCache;
use crate::config::CacheGeometry;
use crate::meta::AccessOutcome;
use crate::policy::ReplacementPolicy;
use nucache_common::telemetry::Event;
use nucache_common::{AccessKind, CacheStats, CoreId, LineAddr, Pc};

/// A shared last-level cache organization.
///
/// Every LLC scheme in the workspace — the LRU baseline, DIP/DRRIP/TADIP
/// insertion policies, UCP/PIPP way partitioning, and NUcache itself —
/// implements this trait, so the simulation driver and the experiment
/// binaries swap schemes freely.
///
/// Implementations maintain both aggregate and per-core hit/miss counters;
/// `access` returns the outcome so callers can model timing and propagate
/// evictions.
pub trait SharedLlc {
    /// Performs one demand access from `core`/`pc` to `line`.
    fn access(&mut self, core: CoreId, pc: Pc, line: LineAddr, kind: AccessKind) -> AccessOutcome;

    /// Aggregate counters since construction (or the last reset).
    fn stats(&self) -> &CacheStats;

    /// Per-core counters, indexed by core id.
    fn core_stats(&self) -> &[CacheStats];

    /// Resets all counters (contents are retained, mirroring how warmup is
    /// excluded from measurement).
    fn reset_stats(&mut self);

    /// The LLC geometry.
    fn geometry(&self) -> &CacheGeometry;

    /// Scheme name as it appears in tables (e.g. `"lru"`, `"ucp"`,
    /// `"nucache"`).
    fn scheme_name(&self) -> String;

    /// Enables (or disables) internal telemetry: while enabled, the
    /// scheme buffers epoch-level [`Event`]s describing its adaptive
    /// state for [`SharedLlc::drain_events`] to collect.
    ///
    /// The default is a no-op — schemes with no epoch-level internals
    /// (plain replacement policies) simply have nothing to report, and
    /// schemes that do report pay nothing while disabled beyond one
    /// branch per epoch.
    fn set_telemetry(&mut self, _enabled: bool) {}

    /// Removes and returns the telemetry events buffered since the last
    /// drain (empty unless [`SharedLlc::set_telemetry`] enabled
    /// collection). The simulation driver drains at its own snapshot
    /// cadence and forwards everything to the active event sink, so
    /// scheme internals never need a direct sink reference.
    fn drain_events(&mut self) -> Vec<Event> {
        Vec::new()
    }

    /// Enables (or disables) the differential audit oracle: while enabled,
    /// every tag-array operation is mirrored into a naive
    /// [`ReferenceArray`](crate::audit::ReferenceArray) and cross-checked,
    /// and organizations with epoch-level state (NUcache) additionally
    /// verify their epoch invariants. Divergences panic at the faulting
    /// operation.
    ///
    /// The default is a no-op so that scheme wrappers without direct array
    /// access keep compiling; every organization in this workspace
    /// overrides it.
    fn set_audit(&mut self, _enabled: bool) {}

    /// Work counters of the audit oracle: `Some` with the number of
    /// mirrored operations and epoch checks when auditing is enabled,
    /// `None` when it is off or unsupported.
    fn audit_stats(&self) -> Option<AuditStats> {
        None
    }
}

/// A classic shared LLC: one [`BasicCache`] with a replacement policy and
/// per-core accounting on top.
///
/// # Examples
///
/// ```
/// use nucache_cache::{CacheGeometry, ClassicLlc, SharedLlc, policy::Lru};
/// use nucache_common::{AccessKind, CoreId, LineAddr, Pc};
///
/// let geom = CacheGeometry::new(1024 * 1024, 16, 64);
/// let mut llc = ClassicLlc::new(geom, Lru::new(&geom), 2);
/// llc.access(CoreId::new(1), Pc::new(0x400), LineAddr::new(7), AccessKind::Read);
/// assert_eq!(llc.core_stats()[1].misses, 1);
/// ```
#[derive(Debug)]
pub struct ClassicLlc<P> {
    cache: BasicCache<P>,
    core_stats: Vec<CacheStats>,
}

impl<P: ReplacementPolicy> ClassicLlc<P> {
    /// Creates a classic LLC for `num_cores` cores.
    ///
    /// # Panics
    ///
    /// Panics if `num_cores` is zero.
    pub fn new(geom: CacheGeometry, policy: P, num_cores: usize) -> Self {
        assert!(num_cores > 0, "need at least one core");
        ClassicLlc {
            cache: BasicCache::new(geom, policy),
            core_stats: vec![CacheStats::default(); num_cores],
        }
    }

    /// The wrapped cache (for policy introspection in tests).
    pub fn cache(&self) -> &BasicCache<P> {
        &self.cache
    }
}

impl<P: ReplacementPolicy> SharedLlc for ClassicLlc<P> {
    fn access(&mut self, core: CoreId, pc: Pc, line: LineAddr, kind: AccessKind) -> AccessOutcome {
        let out = self.cache.access(line, kind, core, pc);
        let cs = &mut self.core_stats[core.index()];
        if out.is_hit() {
            cs.record_hit();
        } else {
            cs.record_miss();
        }
        out
    }

    fn stats(&self) -> &CacheStats {
        self.cache.stats()
    }

    fn core_stats(&self) -> &[CacheStats] {
        &self.core_stats
    }

    fn reset_stats(&mut self) {
        self.cache.clear_stats();
        self.core_stats.iter_mut().for_each(CacheStats::clear);
    }

    fn geometry(&self) -> &CacheGeometry {
        self.cache.geometry()
    }

    fn scheme_name(&self) -> String {
        self.cache.policy().name().to_string()
    }

    fn set_audit(&mut self, enabled: bool) {
        self.cache.set_audit(enabled);
    }

    fn audit_stats(&self) -> Option<AuditStats> {
        self.cache
            .array()
            .audit_enabled()
            .then(|| AuditStats { array_ops: self.cache.array().audit_ops(), epoch_checks: 0 })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::Lru;

    fn llc() -> ClassicLlc<Lru> {
        let g = CacheGeometry::new(64 * 2 * 4, 2, 64); // 4 sets, 2-way
        ClassicLlc::new(g, Lru::new(&g), 2)
    }

    #[test]
    fn per_core_attribution() {
        let mut l = llc();
        l.access(CoreId::new(0), Pc::new(1), LineAddr::new(1), AccessKind::Read);
        l.access(CoreId::new(1), Pc::new(2), LineAddr::new(1), AccessKind::Read);
        assert_eq!(l.core_stats()[0].misses, 1);
        assert_eq!(l.core_stats()[1].hits, 1);
        assert_eq!(l.stats().accesses(), 2);
    }

    #[test]
    fn reset_preserves_contents() {
        let mut l = llc();
        l.access(CoreId::new(0), Pc::new(1), LineAddr::new(1), AccessKind::Read);
        l.reset_stats();
        assert_eq!(l.stats().accesses(), 0);
        let out = l.access(CoreId::new(0), Pc::new(1), LineAddr::new(1), AccessKind::Read);
        assert!(out.is_hit(), "contents must survive a stats reset");
    }

    #[test]
    fn scheme_name_matches_policy() {
        assert_eq!(llc().scheme_name(), "lru");
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_cores_rejected() {
        let g = CacheGeometry::new(1024, 2, 64);
        let _ = ClassicLlc::new(g, Lru::new(&g), 0);
    }

    #[test]
    fn audited_classic_llc_counts_checks() {
        let mut l = llc();
        // Constructors auto-enable auditing under debug_invariants; start
        // from a known-off state either way.
        l.set_audit(false);
        assert_eq!(l.audit_stats(), None);
        l.set_audit(true);
        for n in 0..32 {
            l.access(CoreId::new(0), Pc::new(1), LineAddr::new(n), AccessKind::Read);
        }
        let stats = l.audit_stats().expect("auditing is on");
        assert!(stats.array_ops > 0);
        l.set_audit(false);
        assert_eq!(l.audit_stats(), None);
    }

    #[test]
    fn telemetry_defaults_are_inert() {
        // Classic organizations have no epoch-level internals: enabling
        // telemetry is accepted and drains nothing.
        let mut l = llc();
        l.set_telemetry(true);
        l.access(CoreId::new(0), Pc::new(1), LineAddr::new(1), AccessKind::Read);
        assert!(l.drain_events().is_empty());
    }
}
