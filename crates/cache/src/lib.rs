//! Set-associative cache substrate for the NUcache reproduction.
//!
//! This crate provides everything a last-level-cache study needs below the
//! policy-innovation layer:
//!
//! * [`CacheGeometry`] — size/associativity/block-size arithmetic;
//! * [`SetArray`] — raw tag storage with lookup/fill/invalidate helpers;
//! * [`ReplacementPolicy`] and implementations (LRU, FIFO, Random, NRU,
//!   tree-PLRU, SRRIP/BRRIP/DRRIP, LIP/BIP/DIP, TADIP-F);
//! * [`BasicCache`] — a policy-driven set-associative cache used for the
//!   private levels and for classic shared-LLC baselines;
//! * set-dueling machinery ([`dueling::DuelingSelector`]);
//! * sampled shadow tag directories and UCP's UMON utility monitor
//!   ([`shadow`]);
//! * a private L1/L2 [`hierarchy::PrivateHierarchy`] that filters the
//!   access stream reaching the shared LLC;
//! * the [`SharedLlc`] trait that every shared-LLC organization in the
//!   workspace (classic, UCP, PIPP, TADIP, NUcache) implements;
//! * Belady's offline-optimal replacement ([`opt`]) for headroom
//!   analysis.
//!
//! # Examples
//!
//! ```
//! use nucache_cache::{BasicCache, CacheGeometry, policy::Lru};
//! use nucache_common::{AccessKind, CoreId, LineAddr, Pc};
//!
//! let geom = CacheGeometry::new(32 * 1024, 8, 64);
//! let mut l1 = BasicCache::new(geom, Lru::new(&geom));
//! let line = LineAddr::new(0x40);
//! assert!(!l1.access(line, AccessKind::Read, CoreId::new(0), Pc::new(0)).is_hit());
//! assert!(l1.access(line, AccessKind::Read, CoreId::new(0), Pc::new(0)).is_hit());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod array;
pub mod audit;
pub mod basic;
pub mod config;
pub mod dueling;
pub mod hierarchy;
pub mod llc;
pub mod meta;
pub mod opt;
pub mod policy;
pub mod shadow;
pub mod stackdist;

pub use array::SetArray;
pub use audit::{AuditStats, ReferenceArray};
pub use basic::BasicCache;
pub use config::CacheGeometry;
pub use llc::{ClassicLlc, SharedLlc};
pub use meta::{AccessOutcome, EvictedLine, LineMeta};
pub use policy::ReplacementPolicy;
