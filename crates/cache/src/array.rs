//! Raw tag storage: the `SetArray` every cache organization builds on.

use crate::audit::ReferenceArray;
use crate::config::CacheGeometry;
use crate::meta::{EvictedLine, LineMeta};
use nucache_common::{CoreId, LineAddr, Pc};
use std::cell::Cell;

/// Tag-equality bitmask over a row of exactly `N` tags: bit `i` is set
/// when `row[i] == tag`. The const trip count lets the compiler unroll
/// and auto-vectorize the compares (u64x4-wide compare + movemask on
/// SSE/AVX targets). Returns 0 when `row.len() != N`; callers dispatch
/// on the length, so the mismatch arm is unreachable.
#[inline(always)]
fn eq_mask<const N: usize>(row: &[u64], tag: u64) -> u64 {
    debug_assert_eq!(row.len(), N, "eq_mask dispatched with the wrong width");
    let mut m = 0u64;
    if let Ok(arr) = <&[u64; N]>::try_from(row) {
        for (i, &t) in arr.iter().enumerate() {
            m |= u64::from(t == tag) << i;
        }
    }
    m
}

/// [`eq_mask`] for uncommon associativities: the same compare, four ways
/// per step, with a runtime trip count.
fn eq_mask_any(row: &[u64], tag: u64) -> u64 {
    let (quads, tail) = row.split_at(row.len() & !3);
    let mut matches = 0u64;
    for (qi, q) in quads.chunks_exact(4).enumerate() {
        let m = u64::from(q[0] == tag)
            | u64::from(q[1] == tag) << 1
            | u64::from(q[2] == tag) << 2
            | u64::from(q[3] == tag) << 3;
        matches |= m << (4 * qi);
    }
    for (j, &t) in tail.iter().enumerate() {
        matches |= u64::from(t == tag) << (quads.len() + j);
    }
    matches
}

/// Tag/metadata storage for a set-associative structure, with no
/// replacement policy of its own.
///
/// Organizations (classic caches, UCP/PIPP variants, NUcache's
/// MainWays/DeliWays) keep their ordering state elsewhere and use this
/// array for the mechanical parts: tag match, fill into a way, invalidate,
/// dirty-bit maintenance.
///
/// # Layout
///
/// Storage is struct-of-arrays rather than `Vec<Option<LineMeta>>`: tags
/// live in one packed `Vec<u64>` (indexed `set * assoc + way`), validity
/// and dirty state are one `u64` bitmask per set, and the rarely-read
/// core/PC attribution sits in side arrays. The hot probes — [`find`],
/// [`invalid_way`], [`occupancy`] — reduce to a branchless compare loop
/// plus bit tricks over the masks instead of chasing `Option` discriminants
/// through interleaved metadata.
///
/// [`find`]: SetArray::find
/// [`invalid_way`]: SetArray::invalid_way
/// [`occupancy`]: SetArray::occupancy
///
/// # Examples
///
/// ```
/// use nucache_cache::{CacheGeometry, SetArray};
/// use nucache_cache::meta::LineMeta;
/// use nucache_common::{CoreId, LineAddr, Pc};
///
/// let geom = CacheGeometry::new(8 * 1024, 4, 64);
/// let mut arr = SetArray::new(geom);
/// let line = LineAddr::new(0x10);
/// let (set, tag) = (geom.set_of(line), geom.tag_of(line));
/// assert!(arr.find(set, tag).is_none());
/// arr.fill(set, 0, LineMeta::new(tag, CoreId::new(0), Pc::new(0), false));
/// assert_eq!(arr.find(set, tag), Some(0));
/// ```
#[derive(Debug, Clone)]
pub struct SetArray {
    geom: CacheGeometry,
    // All per-frame vectors are indexed `set * assoc + way`.
    tags: Vec<u64>,
    cores: Vec<CoreId>,
    pcs: Vec<Pc>,
    // Per-set bitmasks, bit `way` of `valid[set]` / `dirty[set]`.
    valid: Vec<u64>,
    dirty: Vec<u64>,
    /// Differential oracle: when present, every operation is replayed on
    /// this naive model and the answers compared (see [`crate::audit`]).
    mirror: Option<Box<ReferenceArray>>,
    /// Operations mirrored and checked so far. A `Cell` because the hot
    /// probes (`find`, `get`, ...) take `&self`.
    audit_ops: Cell<u64>,
}

impl SetArray {
    /// Creates an empty array for the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if the associativity exceeds 64 (one mask word per set).
    pub fn new(geom: CacheGeometry) -> Self {
        assert!(geom.associativity() <= 64, "associativity above 64 unsupported");
        #[allow(unused_mut)] // mut only needed under debug_invariants
        let mut arr = SetArray {
            geom,
            tags: vec![0; geom.num_lines()],
            cores: vec![CoreId::new(0); geom.num_lines()],
            pcs: vec![Pc::new(0); geom.num_lines()],
            valid: vec![0; geom.num_sets()],
            dirty: vec![0; geom.num_sets()],
            mirror: None,
            audit_ops: Cell::new(0),
        };
        #[cfg(feature = "debug_invariants")]
        arr.enable_audit();
        arr
    }

    /// Enables differential auditing: a [`ReferenceArray`] is seeded from
    /// the current contents and every subsequent operation is replayed on
    /// it and cross-checked. Divergences panic at the faulting operation.
    pub fn enable_audit(&mut self) {
        let mut reference = Box::new(ReferenceArray::new(self.geom));
        for set in 0..self.geom.num_sets() {
            for way in 0..self.geom.associativity() {
                if let Some(m) = self.get(set, way) {
                    reference.fill(set, way, m);
                }
            }
        }
        self.mirror = Some(reference);
    }

    /// Drops the audit mirror; operations stop being checked. The
    /// [`SetArray::audit_ops`] counter is retained.
    pub fn disable_audit(&mut self) {
        self.mirror = None;
    }

    /// Whether the audit mirror is active.
    pub fn audit_enabled(&self) -> bool {
        self.mirror.is_some()
    }

    /// Operations mirrored into the reference model and compared so far.
    pub fn audit_ops(&self) -> u64 {
        self.audit_ops.get()
    }

    #[cold]
    #[inline(never)]
    fn audit_read<T: PartialEq + std::fmt::Debug>(&self, op: &str, fast: &T, slow: &T) {
        self.audit_ops.set(self.audit_ops.get() + 1);
        assert!(
            fast == slow,
            "audit divergence in SetArray::{op}: soa={fast:?}, reference={slow:?}"
        );
    }

    /// The geometry this array was built for.
    pub const fn geometry(&self) -> &CacheGeometry {
        &self.geom
    }

    #[inline]
    fn base(&self, set: usize) -> usize {
        debug_assert!(set < self.geom.num_sets(), "set index out of range");
        set * self.geom.associativity()
    }

    /// Bitmask with one bit per way.
    #[inline]
    fn full_mask(&self) -> u64 {
        let assoc = self.geom.associativity();
        if assoc == 64 {
            u64::MAX
        } else {
            (1u64 << assoc) - 1
        }
    }

    #[inline]
    fn way_bit(&self, set: usize, way: usize) -> u64 {
        debug_assert!(way < self.geom.associativity(), "way index out of range");
        debug_assert!(set < self.geom.num_sets(), "set index out of range");
        1u64 << way
    }

    /// Way holding `tag` in `set`, if resident.
    ///
    /// The compare runs u64x4-wide over the packed tag row: the row is
    /// sliced once (one bounds check) and compared with a compile-time
    /// trip count for the common associativities, so the compiler fully
    /// unrolls each row into SIMD compare + movemask steps instead of a
    /// scalar compare-per-way loop it cannot unroll.
    #[inline]
    pub fn find(&self, set: usize, tag: u64) -> Option<usize> {
        let base = self.base(set);
        let assoc = self.geom.associativity();
        let row = &self.tags[base..base + assoc];
        let matches = match assoc {
            16 => eq_mask::<16>(row, tag),
            8 => eq_mask::<8>(row, tag),
            4 => eq_mask::<4>(row, tag),
            _ => eq_mask_any(row, tag),
        };
        let hits = matches & self.valid[set];
        let found = if hits == 0 { None } else { Some(hits.trailing_zeros() as usize) };
        if let Some(m) = &self.mirror {
            self.audit_read("find", &found, &m.find(set, tag));
        }
        found
    }

    /// First invalid way in `set`, if any.
    #[inline]
    pub fn invalid_way(&self, set: usize) -> Option<usize> {
        let free = !self.valid[set] & self.full_mask();
        let way = if free == 0 { None } else { Some(free.trailing_zeros() as usize) };
        if let Some(m) = &self.mirror {
            self.audit_read("invalid_way", &way, &m.invalid_way(set));
        }
        way
    }

    /// Number of valid lines in `set`.
    #[inline]
    pub fn occupancy(&self, set: usize) -> usize {
        let n = self.valid[set].count_ones() as usize;
        if let Some(m) = &self.mirror {
            self.audit_read("occupancy", &n, &m.occupancy(set));
        }
        n
    }

    /// Metadata at `(set, way)`, reassembled from the packed columns.
    #[inline]
    pub fn get(&self, set: usize, way: usize) -> Option<LineMeta> {
        let bit = self.way_bit(set, way);
        if self.valid[set] & bit == 0 {
            if let Some(m) = &self.mirror {
                self.audit_read("get", &None, &m.get(set, way));
            }
            return None;
        }
        let i = self.base(set) + way;
        let meta = LineMeta {
            tag: self.tags[i],
            dirty: self.dirty[set] & bit != 0,
            core: self.cores[i],
            pc: self.pcs[i],
        };
        if let Some(m) = &self.mirror {
            self.audit_read("get", &Some(meta), &m.get(set, way));
        }
        Some(meta)
    }

    /// The displaced-line view of `(set, way)`, read straight from the
    /// packed columns (no `LineMeta` reassembly round-trip). Forced
    /// inline: it sits on the fill/evict hot path and the compiler
    /// otherwise outlines it once `fill` is itself inlined into a large
    /// caller.
    #[inline(always)]
    fn read_evicted(&self, set: usize, bit: u64, i: usize) -> Option<EvictedLine> {
        if self.valid[set] & bit == 0 {
            return None;
        }
        Some(EvictedLine {
            line: self.geom.line_of(self.tags[i], set),
            dirty: self.dirty[set] & bit != 0,
            core: self.cores[i],
            pc: self.pcs[i],
        })
    }

    /// Writes `meta` into `(set, way)`, returning the displaced line (as an
    /// [`EvictedLine`] with its full address reconstructed) if the frame
    /// was valid.
    #[inline]
    pub fn fill(&mut self, set: usize, way: usize, meta: LineMeta) -> Option<EvictedLine> {
        let bit = self.way_bit(set, way);
        let i = self.base(set) + way;
        let old = self.read_evicted(set, bit, i);
        self.tags[i] = meta.tag;
        self.cores[i] = meta.core;
        self.pcs[i] = meta.pc;
        self.valid[set] |= bit;
        if meta.dirty {
            self.dirty[set] |= bit;
        } else {
            self.dirty[set] &= !bit;
        }
        if let Some(m) = &mut self.mirror {
            let slow = m.fill(set, way, meta);
            self.audit_read("fill", &old, &slow);
        }
        old
    }

    /// Invalidates `(set, way)`, returning the line that was there.
    #[inline]
    pub fn invalidate(&mut self, set: usize, way: usize) -> Option<EvictedLine> {
        let bit = self.way_bit(set, way);
        let old = self.read_evicted(set, bit, self.base(set) + way);
        self.valid[set] &= !bit;
        self.dirty[set] &= !bit;
        if let Some(m) = &mut self.mirror {
            let slow = m.invalidate(set, way);
            self.audit_read("invalidate", &old, &slow);
        }
        old
    }

    /// Marks `(set, way)` dirty.
    ///
    /// # Panics
    ///
    /// Panics if the frame is invalid — callers only mark lines they just
    /// hit or filled.
    #[inline]
    pub fn mark_dirty(&mut self, set: usize, way: usize) {
        let bit = self.way_bit(set, way);
        assert!(self.valid[set] & bit != 0, "marking an invalid frame dirty");
        self.dirty[set] |= bit;
        if let Some(m) = &mut self.mirror {
            let slow_valid = m.get(set, way).is_some();
            if slow_valid {
                m.mark_dirty(set, way);
            }
            // The SoA assert above passed, so the reference must agree the
            // frame is valid.
            self.audit_read("mark_dirty", &true, &slow_valid);
        }
    }

    /// Reconstructs the full line address of the line at `(set, way)`.
    pub fn line_addr(&self, set: usize, way: usize) -> Option<LineAddr> {
        let bit = self.way_bit(set, way);
        let addr = if self.valid[set] & bit == 0 {
            None
        } else {
            Some(self.geom.line_of(self.tags[self.base(set) + way], set))
        };
        if let Some(m) = &self.mirror {
            self.audit_read("line_addr", &addr, &m.line_addr(set, way));
        }
        addr
    }

    /// Total valid lines across all sets.
    pub fn total_occupancy(&self) -> usize {
        let n = self.valid.iter().map(|v| v.count_ones() as usize).sum();
        if let Some(m) = &self.mirror {
            self.audit_read("total_occupancy", &n, &m.total_occupancy());
        }
        n
    }

    /// Test hook: writes a tag word directly, bypassing the audit mirror,
    /// to prove the oracle catches a corrupted substrate.
    #[cfg(test)]
    pub(crate) fn corrupt_tag_for_test(&mut self, set: usize, way: usize, tag: u64) {
        let i = self.base(set) + way;
        self.tags[i] = tag;
    }

    /// Valid-way bitmask for `set` (bit `way` set when the frame holds a
    /// line). Lets organizations walk only the occupied ways of a set
    /// (`mask.trailing_zeros()` chains) instead of probing every frame
    /// through [`SetArray::get`].
    #[inline]
    pub fn valid_mask(&self, set: usize) -> u64 {
        debug_assert!(set < self.geom.num_sets(), "set index out of range");
        self.valid[set]
    }

    /// Owner-core column for `set`: one entry per way, in way order.
    /// Entries for invalid ways are stale — combine with
    /// [`SetArray::valid_mask`] to walk only live lines. This is the
    /// cheap path for quota/occupancy scans that would otherwise
    /// reassemble a full [`LineMeta`] per way through [`SetArray::get`].
    #[inline]
    pub fn core_column(&self, set: usize) -> &[CoreId] {
        let base = self.base(set);
        &self.cores[base..base + self.geom.associativity()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nucache_common::{CoreId, Pc};

    fn small() -> (CacheGeometry, SetArray) {
        let g = CacheGeometry::new(1024, 4, 64); // 4 sets x 4 ways
        (g, SetArray::new(g))
    }

    fn meta(tag: u64) -> LineMeta {
        LineMeta::new(tag, CoreId::new(0), Pc::new(0), false)
    }

    #[test]
    fn fill_find_invalidate_cycle() {
        let (_, mut arr) = small();
        assert_eq!(arr.find(0, 7), None);
        assert_eq!(arr.fill(0, 2, meta(7)), None);
        assert_eq!(arr.find(0, 7), Some(2));
        assert_eq!(arr.occupancy(0), 1);
        let ev = arr.invalidate(0, 2).unwrap();
        assert!(!ev.dirty);
        assert_eq!(arr.find(0, 7), None);
    }

    #[test]
    fn fill_reports_displaced_line() {
        let (g, mut arr) = small();
        arr.fill(1, 0, meta(5));
        arr.mark_dirty(1, 0);
        let ev = arr.fill(1, 0, meta(9)).unwrap();
        assert!(ev.dirty);
        assert_eq!(ev.line, g.line_of(5, 1));
    }

    #[test]
    fn fill_clears_stale_dirty_bit() {
        let (_, mut arr) = small();
        arr.fill(2, 1, meta(5));
        arr.mark_dirty(2, 1);
        arr.fill(2, 1, meta(9)); // clean fill over a dirty line
        let ev = arr.invalidate(2, 1).unwrap();
        assert!(!ev.dirty);
    }

    #[test]
    fn invalid_way_scans_in_order() {
        let (_, mut arr) = small();
        arr.fill(3, 0, meta(1));
        arr.fill(3, 1, meta(2));
        assert_eq!(arr.invalid_way(3), Some(2));
        arr.fill(3, 2, meta(3));
        arr.fill(3, 3, meta(4));
        assert_eq!(arr.invalid_way(3), None);
    }

    #[test]
    fn stale_tag_without_valid_bit_misses() {
        let (_, mut arr) = small();
        arr.fill(0, 1, meta(7));
        arr.invalidate(0, 1);
        // The tag word still holds 7; the cleared valid bit must win.
        assert_eq!(arr.find(0, 7), None);
        assert_eq!(arr.get(0, 1), None);
    }

    #[test]
    fn line_addr_reconstruction() {
        let (g, mut arr) = small();
        let line = LineAddr::new(0x1234);
        let (set, tag) = (g.set_of(line), g.tag_of(line));
        arr.fill(set, 1, meta(tag));
        assert_eq!(arr.line_addr(set, 1), Some(line));
        assert_eq!(arr.line_addr(set, 0), None);
    }

    #[test]
    fn total_occupancy_counts_everything() {
        let (_, mut arr) = small();
        arr.fill(0, 0, meta(1));
        arr.fill(1, 1, meta(2));
        arr.fill(2, 2, meta(3));
        assert_eq!(arr.total_occupancy(), 3);
    }

    #[test]
    fn get_roundtrips_metadata() {
        let (_, mut arr) = small();
        let m = LineMeta::new(11, CoreId::new(3), Pc::new(0x400), true);
        arr.fill(1, 2, m);
        assert_eq!(arr.get(1, 2), Some(m));
    }

    #[test]
    #[should_panic(expected = "invalid frame")]
    fn mark_dirty_requires_valid() {
        let (_, mut arr) = small();
        arr.mark_dirty(0, 0);
    }

    #[test]
    fn audited_array_agrees_with_reference() {
        let (_, mut arr) = small();
        arr.fill(0, 3, meta(7)); // pre-audit state is seeded into the mirror
        arr.enable_audit();
        assert!(arr.audit_enabled());
        assert_eq!(arr.find(0, 7), Some(3));
        arr.fill(1, 0, meta(5));
        arr.mark_dirty(1, 0);
        let ev = arr.invalidate(1, 0).unwrap();
        assert!(ev.dirty);
        assert_eq!(arr.invalid_way(1), Some(0));
        assert_eq!(arr.occupancy(0), 1);
        assert_eq!(arr.total_occupancy(), 1);
        assert!(arr.audit_ops() > 0, "mirror comparisons must have run");
        arr.disable_audit();
        assert!(!arr.audit_enabled());
    }

    #[test]
    #[should_panic(expected = "audit divergence in SetArray::find")]
    fn audit_catches_corrupted_tag() {
        let (_, mut arr) = small();
        arr.enable_audit();
        arr.fill(0, 0, meta(7));
        arr.corrupt_tag_for_test(0, 0, 9); // bypasses the mirror
        let _ = arr.find(0, 9); // SoA says hit, reference says miss
    }
}
