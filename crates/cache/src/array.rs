//! Raw tag storage: the `SetArray` every cache organization builds on.

use crate::config::CacheGeometry;
use crate::meta::{EvictedLine, LineMeta};
use nucache_common::LineAddr;

/// Tag/metadata storage for a set-associative structure, with no
/// replacement policy of its own.
///
/// Organizations (classic caches, UCP/PIPP variants, NUcache's
/// MainWays/DeliWays) keep their ordering state elsewhere and use this
/// array for the mechanical parts: tag match, fill into a way, invalidate,
/// dirty-bit maintenance.
///
/// # Examples
///
/// ```
/// use nucache_cache::{CacheGeometry, SetArray};
/// use nucache_cache::meta::LineMeta;
/// use nucache_common::{CoreId, LineAddr, Pc};
///
/// let geom = CacheGeometry::new(8 * 1024, 4, 64);
/// let mut arr = SetArray::new(geom);
/// let line = LineAddr::new(0x10);
/// let (set, tag) = (geom.set_of(line), geom.tag_of(line));
/// assert!(arr.find(set, tag).is_none());
/// arr.fill(set, 0, LineMeta::new(tag, CoreId::new(0), Pc::new(0), false));
/// assert_eq!(arr.find(set, tag), Some(0));
/// ```
#[derive(Debug, Clone)]
pub struct SetArray {
    geom: CacheGeometry,
    // sets[set * assoc + way]
    frames: Vec<Option<LineMeta>>,
}

impl SetArray {
    /// Creates an empty array for the given geometry.
    pub fn new(geom: CacheGeometry) -> Self {
        SetArray { geom, frames: vec![None; geom.num_lines()] }
    }

    /// The geometry this array was built for.
    pub const fn geometry(&self) -> &CacheGeometry {
        &self.geom
    }

    #[inline]
    fn base(&self, set: usize) -> usize {
        debug_assert!(set < self.geom.num_sets(), "set index out of range");
        set * self.geom.associativity()
    }

    /// The frames of one set, indexed by way.
    pub fn set(&self, set: usize) -> &[Option<LineMeta>] {
        let b = self.base(set);
        &self.frames[b..b + self.geom.associativity()]
    }

    /// Way holding `tag` in `set`, if resident.
    pub fn find(&self, set: usize, tag: u64) -> Option<usize> {
        self.set(set).iter().position(|f| matches!(f, Some(m) if m.tag == tag))
    }

    /// First invalid way in `set`, if any.
    pub fn invalid_way(&self, set: usize) -> Option<usize> {
        self.set(set).iter().position(Option::is_none)
    }

    /// Number of valid lines in `set`.
    pub fn occupancy(&self, set: usize) -> usize {
        self.set(set).iter().filter(|f| f.is_some()).count()
    }

    /// Metadata at `(set, way)`.
    pub fn get(&self, set: usize, way: usize) -> Option<&LineMeta> {
        self.frames[self.base(set) + way].as_ref()
    }

    /// Mutable metadata at `(set, way)`.
    pub fn get_mut(&mut self, set: usize, way: usize) -> Option<&mut LineMeta> {
        let i = self.base(set) + way;
        self.frames[i].as_mut()
    }

    /// Writes `meta` into `(set, way)`, returning the displaced line (as an
    /// [`EvictedLine`] with its full address reconstructed) if the frame
    /// was valid.
    pub fn fill(&mut self, set: usize, way: usize, meta: LineMeta) -> Option<EvictedLine> {
        let i = self.base(set) + way;
        let old = self.frames[i].replace(meta);
        old.map(|m| self.to_evicted(set, m))
    }

    /// Invalidates `(set, way)`, returning the line that was there.
    pub fn invalidate(&mut self, set: usize, way: usize) -> Option<EvictedLine> {
        let i = self.base(set) + way;
        let old = self.frames[i].take();
        old.map(|m| self.to_evicted(set, m))
    }

    /// Marks `(set, way)` dirty.
    ///
    /// # Panics
    ///
    /// Panics if the frame is invalid — callers only mark lines they just
    /// hit or filled.
    pub fn mark_dirty(&mut self, set: usize, way: usize) {
        self.get_mut(set, way).expect("marking an invalid frame dirty").dirty = true;
    }

    /// Reconstructs the full line address of the line at `(set, way)`.
    pub fn line_addr(&self, set: usize, way: usize) -> Option<LineAddr> {
        self.get(set, way).map(|m| self.geom.line_of(m.tag, set))
    }

    /// Total valid lines across all sets.
    pub fn total_occupancy(&self) -> usize {
        self.frames.iter().filter(|f| f.is_some()).count()
    }

    fn to_evicted(&self, set: usize, m: LineMeta) -> EvictedLine {
        EvictedLine { line: self.geom.line_of(m.tag, set), dirty: m.dirty, core: m.core, pc: m.pc }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nucache_common::{CoreId, Pc};

    fn small() -> (CacheGeometry, SetArray) {
        let g = CacheGeometry::new(1024, 4, 64); // 4 sets x 4 ways
        (g, SetArray::new(g))
    }

    fn meta(tag: u64) -> LineMeta {
        LineMeta::new(tag, CoreId::new(0), Pc::new(0), false)
    }

    #[test]
    fn fill_find_invalidate_cycle() {
        let (_, mut arr) = small();
        assert_eq!(arr.find(0, 7), None);
        assert_eq!(arr.fill(0, 2, meta(7)), None);
        assert_eq!(arr.find(0, 7), Some(2));
        assert_eq!(arr.occupancy(0), 1);
        let ev = arr.invalidate(0, 2).unwrap();
        assert!(!ev.dirty);
        assert_eq!(arr.find(0, 7), None);
    }

    #[test]
    fn fill_reports_displaced_line() {
        let (g, mut arr) = small();
        arr.fill(1, 0, meta(5));
        arr.mark_dirty(1, 0);
        let ev = arr.fill(1, 0, meta(9)).unwrap();
        assert!(ev.dirty);
        assert_eq!(ev.line, g.line_of(5, 1));
    }

    #[test]
    fn invalid_way_scans_in_order() {
        let (_, mut arr) = small();
        arr.fill(3, 0, meta(1));
        arr.fill(3, 1, meta(2));
        assert_eq!(arr.invalid_way(3), Some(2));
        arr.fill(3, 2, meta(3));
        arr.fill(3, 3, meta(4));
        assert_eq!(arr.invalid_way(3), None);
    }

    #[test]
    fn line_addr_reconstruction() {
        let (g, mut arr) = small();
        let line = LineAddr::new(0x1234);
        let (set, tag) = (g.set_of(line), g.tag_of(line));
        arr.fill(set, 1, meta(tag));
        assert_eq!(arr.line_addr(set, 1), Some(line));
        assert_eq!(arr.line_addr(set, 0), None);
    }

    #[test]
    fn total_occupancy_counts_everything() {
        let (_, mut arr) = small();
        arr.fill(0, 0, meta(1));
        arr.fill(1, 1, meta(2));
        arr.fill(2, 2, meta(3));
        assert_eq!(arr.total_occupancy(), 3);
    }

    #[test]
    #[should_panic(expected = "invalid frame")]
    fn mark_dirty_requires_valid() {
        let (_, mut arr) = small();
        arr.mark_dirty(0, 0);
    }
}
