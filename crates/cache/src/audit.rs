//! Differential audit oracle for the tag substrate.
//!
//! The struct-of-arrays [`SetArray`](crate::SetArray) is the hot probe
//! path of every simulation; its bitmask tricks are exactly the kind of
//! code where an off-by-one silently corrupts results instead of
//! crashing. This module provides the textbook model to check it
//! against: [`ReferenceArray`] stores one `Option<LineMeta>` per frame
//! and implements the same contract with the most obvious code possible.
//!
//! When auditing is enabled (the `debug_invariants` cargo feature, a
//! scheme's `set_audit(true)`, or `simulate --audit`), every `SetArray`
//! operation is mirrored into a `ReferenceArray` and the results are
//! compared; any disagreement panics immediately with both models'
//! answers. A run that completes therefore completed with *zero
//! divergences* over every array operation it performed.

use crate::config::CacheGeometry;
use crate::meta::{EvictedLine, LineMeta};

/// Work counters reported by an enabled audit oracle.
///
/// A completed run with non-zero counters is the evidence that the
/// differential checks actually executed (divergences never return —
/// they panic at the faulting operation).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AuditStats {
    /// Array operations mirrored into the reference model and compared.
    pub array_ops: u64,
    /// Epoch-level invariant checks performed (NUcache selection epochs).
    pub epoch_checks: u64,
}

impl AuditStats {
    /// Sums two reports (e.g. array + organization-level counters).
    pub const fn merged(self, other: AuditStats) -> AuditStats {
        AuditStats {
            array_ops: self.array_ops + other.array_ops,
            epoch_checks: self.epoch_checks + other.epoch_checks,
        }
    }
}

/// The textbook tag array: one `Option<LineMeta>` per frame, linear
/// scans, no bit tricks.
///
/// Deliberately naive — this is the *specification* the optimized
/// [`SetArray`](crate::SetArray) is differentially tested against, so it
/// favours obviousness over speed everywhere.
///
/// # Examples
///
/// ```
/// use nucache_cache::audit::ReferenceArray;
/// use nucache_cache::{CacheGeometry, LineMeta};
/// use nucache_common::{CoreId, Pc};
///
/// let geom = CacheGeometry::new(8 * 1024, 4, 64);
/// let mut arr = ReferenceArray::new(geom);
/// arr.fill(0, 2, LineMeta::new(7, CoreId::new(0), Pc::new(0), false));
/// assert_eq!(arr.find(0, 7), Some(2));
/// assert_eq!(arr.occupancy(0), 1);
/// ```
#[derive(Debug, Clone)]
pub struct ReferenceArray {
    geom: CacheGeometry,
    /// Indexed `set * assoc + way`, exactly one frame per way.
    frames: Vec<Option<LineMeta>>,
}

impl ReferenceArray {
    /// Creates an empty reference array for the given geometry.
    pub fn new(geom: CacheGeometry) -> Self {
        ReferenceArray { geom, frames: vec![None; geom.num_lines()] }
    }

    fn idx(&self, set: usize, way: usize) -> usize {
        assert!(set < self.geom.num_sets(), "set index out of range");
        assert!(way < self.geom.associativity(), "way index out of range");
        set * self.geom.associativity() + way
    }

    /// Way holding `tag` in `set`, if resident (lowest way wins).
    pub fn find(&self, set: usize, tag: u64) -> Option<usize> {
        (0..self.geom.associativity())
            .find(|&way| matches!(self.frames[self.idx(set, way)], Some(m) if m.tag == tag))
    }

    /// First invalid way in `set`, if any.
    pub fn invalid_way(&self, set: usize) -> Option<usize> {
        (0..self.geom.associativity()).find(|&way| self.frames[self.idx(set, way)].is_none())
    }

    /// Number of valid lines in `set`.
    pub fn occupancy(&self, set: usize) -> usize {
        (0..self.geom.associativity())
            .filter(|&way| self.frames[self.idx(set, way)].is_some())
            .count()
    }

    /// Metadata at `(set, way)`.
    pub fn get(&self, set: usize, way: usize) -> Option<LineMeta> {
        self.frames[self.idx(set, way)]
    }

    /// Writes `meta` into `(set, way)`, returning the displaced line.
    pub fn fill(&mut self, set: usize, way: usize, meta: LineMeta) -> Option<EvictedLine> {
        let i = self.idx(set, way);
        let old = self.frames[i].map(|m| self.to_evicted(set, m));
        self.frames[i] = Some(meta);
        old
    }

    /// Invalidates `(set, way)`, returning the line that was there.
    pub fn invalidate(&mut self, set: usize, way: usize) -> Option<EvictedLine> {
        let i = self.idx(set, way);
        let old = self.frames[i].map(|m| self.to_evicted(set, m));
        self.frames[i] = None;
        old
    }

    /// Marks `(set, way)` dirty.
    ///
    /// # Panics
    ///
    /// Panics if the frame is invalid.
    pub fn mark_dirty(&mut self, set: usize, way: usize) {
        let i = self.idx(set, way);
        let m = self.frames[i].as_mut().expect("marking an invalid frame dirty");
        m.dirty = true;
    }

    /// Full line address of the line at `(set, way)`, if valid.
    pub fn line_addr(&self, set: usize, way: usize) -> Option<nucache_common::LineAddr> {
        self.frames[self.idx(set, way)].map(|m| self.geom.line_of(m.tag, set))
    }

    /// Total valid lines across all sets.
    pub fn total_occupancy(&self) -> usize {
        self.frames.iter().filter(|f| f.is_some()).count()
    }

    fn to_evicted(&self, set: usize, m: LineMeta) -> EvictedLine {
        EvictedLine { line: self.geom.line_of(m.tag, set), dirty: m.dirty, core: m.core, pc: m.pc }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nucache_common::{CoreId, Pc};

    fn meta(tag: u64) -> LineMeta {
        LineMeta::new(tag, CoreId::new(0), Pc::new(0), false)
    }

    #[test]
    fn reference_fill_find_invalidate() {
        let geom = CacheGeometry::new(1024, 4, 64);
        let mut arr = ReferenceArray::new(geom);
        assert_eq!(arr.find(0, 9), None);
        assert_eq!(arr.invalid_way(0), Some(0));
        arr.fill(0, 1, meta(9));
        assert_eq!(arr.find(0, 9), Some(1));
        assert_eq!(arr.invalid_way(0), Some(0));
        assert_eq!(arr.occupancy(0), 1);
        assert_eq!(arr.total_occupancy(), 1);
        arr.mark_dirty(0, 1);
        let ev = arr.invalidate(0, 1).expect("line present");
        assert!(ev.dirty);
        assert_eq!(arr.find(0, 9), None);
    }

    #[test]
    fn reference_fill_reports_displaced() {
        let geom = CacheGeometry::new(1024, 4, 64);
        let mut arr = ReferenceArray::new(geom);
        arr.fill(2, 0, meta(5));
        let ev = arr.fill(2, 0, meta(6)).expect("displaces tag 5");
        assert_eq!(ev.line, geom.line_of(5, 2));
        assert_eq!(arr.line_addr(2, 0), Some(geom.line_of(6, 2)));
    }

    #[test]
    fn stats_merge() {
        let a = AuditStats { array_ops: 3, epoch_checks: 1 };
        let b = AuditStats { array_ops: 2, epoch_checks: 0 };
        assert_eq!(a.merged(b), AuditStats { array_ops: 5, epoch_checks: 1 });
    }
}
