//! Cache geometry: size, associativity and block-size arithmetic.

use nucache_common::LineAddr;
use std::fmt;

/// The block (line) size used throughout the evaluation, in bytes.
///
/// Every cache level in the baseline system uses this block size;
/// DESIGN.md binds its configuration table to this constant.
pub const DEFAULT_BLOCK_BYTES: u32 = 64;

/// The shape of one cache: capacity, associativity and block size.
///
/// All three are fixed at construction; derived quantities (set count,
/// index bits) are computed once and reused on every access.
///
/// # Examples
///
/// ```
/// use nucache_cache::CacheGeometry;
/// let llc = CacheGeometry::new(4 * 1024 * 1024, 16, 64);
/// assert_eq!(llc.num_sets(), 4096);
/// assert_eq!(llc.num_lines(), 65536);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheGeometry {
    size_bytes: u64,
    associativity: usize,
    block_bytes: u32,
    set_bits: u32,
    block_bits: u32,
}

impl CacheGeometry {
    /// Creates a geometry from total capacity, associativity and block
    /// size.
    ///
    /// # Panics
    ///
    /// Panics if any argument is zero, the block size is not a power of
    /// two, or the implied set count is not a power of two (the usual
    /// indexing scheme requires it).
    pub fn new(size_bytes: u64, associativity: usize, block_bytes: u32) -> Self {
        assert!(size_bytes > 0 && associativity > 0 && block_bytes > 0, "zero-sized geometry");
        assert!(block_bytes.is_power_of_two(), "block size must be a power of two");
        let block_bits = block_bytes.trailing_zeros();
        let lines = size_bytes / block_bytes as u64;
        assert!(
            lines.is_multiple_of(associativity as u64),
            "capacity must be a whole number of sets (lines={lines}, assoc={associativity})"
        );
        let sets = lines / associativity as u64;
        assert!(sets.is_power_of_two(), "set count must be a power of two, got {sets}");
        CacheGeometry {
            size_bytes,
            associativity,
            block_bytes,
            set_bits: sets.trailing_zeros(),
            block_bits,
        }
    }

    /// Total capacity in bytes.
    pub const fn size_bytes(&self) -> u64 {
        self.size_bytes
    }

    /// Ways per set.
    pub const fn associativity(&self) -> usize {
        self.associativity
    }

    /// Block (line) size in bytes.
    pub const fn block_bytes(&self) -> u32 {
        self.block_bytes
    }

    /// Number of sets.
    pub const fn num_sets(&self) -> usize {
        1 << self.set_bits
    }

    /// Total number of line frames.
    pub const fn num_lines(&self) -> usize {
        self.num_sets() * self.associativity
    }

    /// log2 of the set count.
    pub const fn set_bits(&self) -> u32 {
        self.set_bits
    }

    /// log2 of the block size.
    pub const fn block_bits(&self) -> u32 {
        self.block_bits
    }

    /// Set index for a line address.
    pub const fn set_of(&self, line: LineAddr) -> usize {
        line.set_index(self.set_bits)
    }

    /// Tag for a line address.
    pub const fn tag_of(&self, line: LineAddr) -> u64 {
        line.tag(self.set_bits)
    }

    /// Rebuilds the line address stored as `(tag, set)`.
    pub const fn line_of(&self, tag: u64, set: usize) -> LineAddr {
        LineAddr::from_tag_set(tag, set, self.set_bits)
    }

    /// Returns a copy with a different associativity (same set count), the
    /// transformation used when reserving DeliWays or building shadow
    /// directories.
    ///
    /// # Panics
    ///
    /// Panics if `associativity` is zero.
    pub fn with_associativity(&self, associativity: usize) -> CacheGeometry {
        assert!(associativity > 0, "zero associativity");
        CacheGeometry {
            size_bytes: self.num_sets() as u64 * associativity as u64 * self.block_bytes as u64,
            associativity,
            ..*self
        }
    }
}

impl fmt::Display for CacheGeometry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let kb = self.size_bytes / 1024;
        if kb >= 1024 && kb.is_multiple_of(1024) {
            write!(f, "{}MB/{}-way/{}B", kb / 1024, self.associativity, self.block_bytes)
        } else {
            write!(f, "{}KB/{}-way/{}B", kb, self.associativity, self.block_bytes)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_quantities() {
        let g = CacheGeometry::new(2 * 1024 * 1024, 16, 64);
        assert_eq!(g.num_sets(), 2048);
        assert_eq!(g.set_bits(), 11);
        assert_eq!(g.block_bits(), 6);
        assert_eq!(g.num_lines(), 32768);
    }

    #[test]
    fn tag_set_roundtrip() {
        let g = CacheGeometry::new(1024 * 1024, 8, 64);
        let line = LineAddr::new(0xabc_def0);
        assert_eq!(g.line_of(g.tag_of(line), g.set_of(line)), line);
    }

    #[test]
    fn with_associativity_keeps_sets() {
        let g = CacheGeometry::new(1024 * 1024, 16, 64);
        let h = g.with_associativity(4);
        assert_eq!(h.num_sets(), g.num_sets());
        assert_eq!(h.associativity(), 4);
        assert_eq!(h.size_bytes(), g.size_bytes() / 4);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_block_rejected() {
        let _ = CacheGeometry::new(1024, 2, 48);
    }

    #[test]
    #[should_panic(expected = "whole number of sets")]
    fn ragged_sets_rejected() {
        let _ = CacheGeometry::new(64 * 3, 2, 64); // 3 lines, 2-way
    }

    #[test]
    fn display_formats() {
        let g = CacheGeometry::new(4 * 1024 * 1024, 16, 64);
        assert_eq!(format!("{g}"), "4MB/16-way/64B");
        let s = CacheGeometry::new(32 * 1024, 8, 64);
        assert_eq!(format!("{s}"), "32KB/8-way/64B");
    }
}
