//! True least-recently-used replacement.

use crate::config::CacheGeometry;
use crate::policy::{FillCtx, ReplacementPolicy};

/// Least-recently-used replacement using per-way last-touch stamps.
///
/// A monotone counter stamps every hit and fill; the victim is the way
/// with the oldest stamp. With the small associativities of real caches a
/// linear minimum scan beats maintaining a linked stack.
///
/// # Examples
///
/// ```
/// use nucache_cache::{BasicCache, CacheGeometry, ReplacementPolicy, policy::Lru};
/// let geom = CacheGeometry::new(64 * 4, 4, 64); // one 4-way set
/// let cache = BasicCache::new(geom, Lru::new(&geom));
/// assert_eq!(cache.policy().name(), "lru");
/// ```
#[derive(Debug, Clone)]
pub struct Lru {
    assoc: usize,
    stamp: u64,
    last_touch: Vec<u64>,
}

impl Lru {
    /// Creates LRU state for `geom`.
    pub fn new(geom: &CacheGeometry) -> Self {
        Lru { assoc: geom.associativity(), stamp: 0, last_touch: vec![0; geom.num_lines()] }
    }

    #[inline]
    fn idx(&self, set: usize, way: usize) -> usize {
        set * self.assoc + way
    }

    fn touch(&mut self, set: usize, way: usize) {
        self.stamp += 1;
        let i = self.idx(set, way);
        self.last_touch[i] = self.stamp;
    }

    /// Recency rank of `way` within `set`: 0 = MRU, `assoc-1` = LRU.
    /// Used by monitors that need stack positions (UMON).
    pub fn recency_rank(&self, set: usize, way: usize) -> usize {
        let mine = self.last_touch[self.idx(set, way)];
        (0..self.assoc).filter(|&w| w != way && self.last_touch[self.idx(set, w)] > mine).count()
    }
}

impl ReplacementPolicy for Lru {
    fn on_hit(&mut self, set: usize, way: usize) {
        self.touch(set, way);
    }

    fn on_fill(&mut self, set: usize, way: usize, _ctx: &FillCtx) {
        self.touch(set, way);
    }

    fn victim(&mut self, set: usize) -> usize {
        let base = set * self.assoc;
        (0..self.assoc).min_by_key(|&w| self.last_touch[base + w]).expect("non-zero associativity")
    }

    fn on_invalidate(&mut self, set: usize, way: usize) {
        let i = self.idx(set, way);
        self.last_touch[i] = 0;
    }

    fn name(&self) -> &'static str {
        "lru"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::basic::BasicCache;
    use crate::policy::testutil::{one_set, touch};

    #[test]
    fn evicts_least_recently_used() {
        let g = one_set(4);
        let mut c = BasicCache::new(g, Lru::new(&g));
        for n in 0..4 {
            assert!(!touch(&mut c, n));
        }
        // Touch 0 to make it MRU; line 1 is now LRU.
        assert!(touch(&mut c, 0));
        assert!(!touch(&mut c, 4)); // evicts 1
        assert!(touch(&mut c, 0));
        assert!(touch(&mut c, 2));
        assert!(touch(&mut c, 3));
        assert!(!touch(&mut c, 1), "line 1 should have been the victim");
    }

    #[test]
    fn lru_stack_property_on_loop() {
        // A cyclic loop over assoc+1 distinct lines yields zero hits under
        // true LRU (the classic thrash pattern).
        let g = one_set(4);
        let mut c = BasicCache::new(g, Lru::new(&g));
        let mut hits = 0;
        for _ in 0..10 {
            for n in 0..5 {
                if touch(&mut c, n) {
                    hits += 1;
                }
            }
        }
        assert_eq!(hits, 0);
    }

    #[test]
    fn recency_rank_orders_ways() {
        let g = one_set(4);
        let mut c = BasicCache::new(g, Lru::new(&g));
        for n in 0..4 {
            touch(&mut c, n);
        }
        // Fill order 0,1,2,3 -> way of line 3 is MRU (rank 0), way of 0 is rank 3.
        assert_eq!(c.policy().recency_rank(0, 3), 0);
        assert_eq!(c.policy().recency_rank(0, 0), 3);
    }

    #[test]
    fn invalidate_clears_recency() {
        let g = one_set(2);
        let mut c = BasicCache::new(g, Lru::new(&g));
        touch(&mut c, 0);
        touch(&mut c, 1);
        c.invalidate_line(nucache_common::LineAddr::new(1));
        // Refill: the invalidated way is reused first (invalid-way preference),
        // and line 0 must still be resident.
        assert!(!touch(&mut c, 2));
        assert!(touch(&mut c, 0));
    }
}
