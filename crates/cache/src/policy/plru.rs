//! Binary-tree pseudo-LRU replacement.

use crate::config::CacheGeometry;
use crate::policy::{FillCtx, ReplacementPolicy};

/// Tree-PLRU: one bit per internal node of a binary tree over the ways.
///
/// On a touch, the bits along the root-to-way path are pointed *away*
/// from the way; the victim is found by following the bits from the root.
/// Requires power-of-two associativity.
#[derive(Debug, Clone)]
pub struct TreePlru {
    assoc: usize,
    levels: u32,
    // bits[set * (assoc - 1) + node]; node 0 is the root,
    // children of node i are 2i+1 and 2i+2.
    bits: Vec<bool>,
}

impl TreePlru {
    /// Creates tree-PLRU state for `geom`.
    ///
    /// # Panics
    ///
    /// Panics if the associativity is not a power of two.
    pub fn new(geom: &CacheGeometry) -> Self {
        let assoc = geom.associativity();
        assert!(assoc.is_power_of_two(), "tree-PLRU needs power-of-two associativity");
        TreePlru {
            assoc,
            levels: assoc.trailing_zeros(),
            bits: vec![false; geom.num_sets() * (assoc - 1).max(1)],
        }
    }

    fn touch(&mut self, set: usize, way: usize) {
        if self.assoc == 1 {
            return;
        }
        let base = set * (self.assoc - 1);
        let mut node = 0usize;
        for level in (0..self.levels).rev() {
            let go_right = (way >> level) & 1 == 1;
            // Point the bit away from the touched way.
            self.bits[base + node] = !go_right;
            node = 2 * node + 1 + usize::from(go_right);
        }
    }
}

impl ReplacementPolicy for TreePlru {
    fn on_hit(&mut self, set: usize, way: usize) {
        self.touch(set, way);
    }

    fn on_fill(&mut self, set: usize, way: usize, _ctx: &FillCtx) {
        self.touch(set, way);
    }

    fn victim(&mut self, set: usize) -> usize {
        if self.assoc == 1 {
            return 0;
        }
        let base = set * (self.assoc - 1);
        let mut node = 0usize;
        let mut way = 0usize;
        for _ in 0..self.levels {
            let go_right = self.bits[base + node];
            way = (way << 1) | usize::from(go_right);
            node = 2 * node + 1 + usize::from(go_right);
        }
        way
    }

    fn name(&self) -> &'static str {
        "plru"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::basic::BasicCache;
    use crate::policy::testutil::{one_set, touch};

    #[test]
    fn victim_avoids_most_recent() {
        let g = one_set(4);
        let mut p = TreePlru::new(&g);
        let ctx = FillCtx::new(nucache_common::CoreId::new(0), nucache_common::Pc::new(0));
        for w in 0..4 {
            p.on_fill(0, w, &ctx);
        }
        let v = p.victim(0);
        assert_ne!(v, 3, "most recently touched way must not be the victim");
    }

    #[test]
    fn single_way_degenerate() {
        let g = one_set(1);
        let mut p = TreePlru::new(&g);
        assert_eq!(p.victim(0), 0);
    }

    #[test]
    fn approximates_lru_on_reuse() {
        let g = one_set(4);
        let mut c = BasicCache::new(g, TreePlru::new(&g));
        for n in 0..4 {
            touch(&mut c, n);
        }
        // Re-touch 1..3; way holding 0 becomes plru-victim territory.
        for n in 1..4 {
            assert!(touch(&mut c, n));
        }
        touch(&mut c, 9);
        assert!(!touch(&mut c, 0), "oldest line should have been displaced");
    }

    #[test]
    fn eight_way_victim_in_range() {
        let g = one_set(8);
        let mut p = TreePlru::new(&g);
        let ctx = FillCtx::new(nucache_common::CoreId::new(0), nucache_common::Pc::new(0));
        for w in [3, 7, 0, 5] {
            p.on_fill(0, w, &ctx);
        }
        assert!(p.victim(0) < 8);
    }
}
