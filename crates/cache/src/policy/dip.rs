//! Insertion-policy family: LIP, BIP and DIP.
//!
//! These policies keep LRU's eviction rule but change *where* an incoming
//! line is inserted in the recency stack:
//!
//! * **LIP** inserts at the LRU position, so a never-reused line is the
//!   next victim — thrash-resistant but unable to exploit recency.
//! * **BIP** is LIP with a small probability (epsilon) of a normal MRU
//!   insertion, letting a slowly changing working set rotate in.
//! * **DIP** set-duels LRU against BIP and lets the winner govern
//!   follower sets.

use crate::config::CacheGeometry;
use crate::dueling::DuelingSelector;
use crate::policy::{FillCtx, ReplacementPolicy};
use nucache_common::DetRng;

/// How a fill is placed into the recency stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Insertion {
    Mru,
    Lru,
}

/// Shared recency core for the insertion-policy family.
///
/// Recency is tracked with last-touch stamps as in [`crate::policy::Lru`];
/// an LRU-position insertion is implemented by stamping the fill *older*
/// than everything currently in the set.
#[derive(Debug, Clone)]
struct RecencyCore {
    assoc: usize,
    stamp: u64,
    // Monotone "old" stamp source for LRU-position inserts: decreases, so
    // successive LRU-inserts are ordered among themselves (older first).
    old_stamp: u64,
    last_touch: Vec<u64>,
}

impl RecencyCore {
    fn new(geom: &CacheGeometry) -> Self {
        RecencyCore {
            assoc: geom.associativity(),
            stamp: u64::MAX / 2,
            old_stamp: u64::MAX / 2,
            last_touch: vec![0; geom.num_lines()],
        }
    }

    fn on_hit(&mut self, set: usize, way: usize) {
        self.stamp += 1;
        self.last_touch[set * self.assoc + way] = self.stamp;
    }

    fn on_fill(&mut self, set: usize, way: usize, ins: Insertion) {
        let stamp = match ins {
            Insertion::Mru => {
                self.stamp += 1;
                self.stamp
            }
            Insertion::Lru => {
                self.old_stamp -= 1;
                self.old_stamp
            }
        };
        self.last_touch[set * self.assoc + way] = stamp;
    }

    fn victim(&self, set: usize) -> usize {
        let base = set * self.assoc;
        (0..self.assoc).min_by_key(|&w| self.last_touch[base + w]).expect("non-zero associativity")
    }
}

/// LRU-insertion policy: fills land at the LRU position.
#[derive(Debug, Clone)]
pub struct Lip {
    core: RecencyCore,
}

impl Lip {
    /// Creates LIP state for `geom`.
    pub fn new(geom: &CacheGeometry) -> Self {
        Lip { core: RecencyCore::new(geom) }
    }
}

impl ReplacementPolicy for Lip {
    fn on_hit(&mut self, set: usize, way: usize) {
        self.core.on_hit(set, way);
    }

    fn on_fill(&mut self, set: usize, way: usize, _ctx: &FillCtx) {
        self.core.on_fill(set, way, Insertion::Lru);
    }

    fn victim(&mut self, set: usize) -> usize {
        self.core.victim(set)
    }

    fn name(&self) -> &'static str {
        "lip"
    }
}

/// Bimodal-insertion policy: LIP with an epsilon of MRU insertions.
#[derive(Debug)]
pub struct Bip {
    core: RecencyCore,
    epsilon: f64,
    rng: DetRng,
}

/// MRU-insertion probability used by BIP in the original proposal (1/32).
pub const BIP_EPSILON: f64 = 1.0 / 32.0;

impl Bip {
    /// Creates BIP state with the canonical epsilon of 1/32.
    pub fn new(geom: &CacheGeometry, seed: u64) -> Self {
        Bip::with_epsilon(geom, seed, BIP_EPSILON)
    }

    /// Creates BIP state with an explicit MRU-insertion probability.
    pub fn with_epsilon(geom: &CacheGeometry, seed: u64, epsilon: f64) -> Self {
        Bip { core: RecencyCore::new(geom), epsilon, rng: DetRng::substream(seed, 0xb1b) }
    }

    fn choose_insertion(&mut self) -> Insertion {
        if self.rng.chance(self.epsilon) {
            Insertion::Mru
        } else {
            Insertion::Lru
        }
    }
}

impl ReplacementPolicy for Bip {
    fn on_hit(&mut self, set: usize, way: usize) {
        self.core.on_hit(set, way);
    }

    fn on_fill(&mut self, set: usize, way: usize, _ctx: &FillCtx) {
        let ins = self.choose_insertion();
        self.core.on_fill(set, way, ins);
    }

    fn victim(&mut self, set: usize) -> usize {
        self.core.victim(set)
    }

    fn name(&self) -> &'static str {
        "bip"
    }
}

/// Dynamic-insertion policy: set-duels LRU (policy A) against BIP
/// (policy B).
#[derive(Debug)]
pub struct Dip {
    core: RecencyCore,
    selector: DuelingSelector,
    epsilon: f64,
    rng: DetRng,
}

impl Dip {
    /// Creates DIP state with 32 leader sets per policy and a 10-bit PSEL
    /// (scaled down automatically for tiny caches).
    pub fn new(geom: &CacheGeometry, seed: u64) -> Self {
        let leaders = (geom.num_sets() / 16).clamp(1, 32);
        Dip {
            core: RecencyCore::new(geom),
            selector: DuelingSelector::new(geom.num_sets(), leaders, 10),
            epsilon: BIP_EPSILON,
            rng: DetRng::substream(seed, 0xd1b),
        }
    }

    /// Whether followers currently insert MRU (LRU policy winning).
    pub fn lru_winning(&self) -> bool {
        self.selector.a_wins()
    }
}

impl ReplacementPolicy for Dip {
    fn on_hit(&mut self, set: usize, way: usize) {
        self.core.on_hit(set, way);
    }

    fn on_fill(&mut self, set: usize, way: usize, _ctx: &FillCtx) {
        // Short-circuit keeps the RNG stream identical: the epsilon draw
        // only happens for BIP-following sets, as before.
        let ins = if self.selector.use_a(set) || self.rng.chance(self.epsilon) {
            Insertion::Mru
        } else {
            Insertion::Lru
        };
        self.core.on_fill(set, way, ins);
    }

    fn on_miss(&mut self, set: usize, _ctx: &FillCtx) {
        self.selector.record_miss(set);
    }

    fn victim(&mut self, set: usize) -> usize {
        self.core.victim(set)
    }

    fn name(&self) -> &'static str {
        "dip"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::basic::BasicCache;
    use crate::policy::testutil::{one_set, touch};
    use crate::CacheGeometry;
    use nucache_common::{AccessKind, CoreId, LineAddr, Pc};

    #[test]
    fn lip_resists_thrash() {
        // Loop of assoc+1 lines: LRU gets 0 hits, LIP keeps assoc-1 of the
        // loop resident and hits on them every iteration.
        let g = one_set(4);
        let mut lip = BasicCache::new(g, Lip::new(&g));
        let mut hits = 0;
        for _ in 0..50 {
            for n in 0..5 {
                if touch(&mut lip, n) {
                    hits += 1;
                }
            }
        }
        assert!(hits >= 100, "LIP should retain part of the loop, got {hits} hits");
    }

    #[test]
    fn lip_loses_recency_friendly() {
        // Strong recency: always re-reference the newest line once.
        // LIP still works but must not crash; sanity check only.
        let g = one_set(2);
        let mut c = BasicCache::new(g, Lip::new(&g));
        touch(&mut c, 0);
        assert!(touch(&mut c, 0));
    }

    #[test]
    fn bip_eventually_rotates_working_set() {
        let g = one_set(4);
        let mut c = BasicCache::new(g, Bip::new(&g, 11));
        // Phase 1: lines 0..4 resident.
        for _ in 0..10 {
            for n in 0..4 {
                touch(&mut c, n);
            }
        }
        // Phase 2: switch working set to 10..14; epsilon-MRU insertions
        // must eventually admit the new set.
        let mut late_hits = 0;
        for round in 0..400 {
            for n in 10..14 {
                if touch(&mut c, n) && round > 200 {
                    late_hits += 1;
                }
            }
        }
        assert!(late_hits > 300, "BIP should adapt to the new working set, got {late_hits}");
    }

    #[test]
    fn dip_follows_winner_on_thrash() {
        // Thrashing workload across many sets: BIP side must win.
        let g = CacheGeometry::new(64 * 4 * 64, 4, 64); // 64 sets, 4-way
        let mut c = BasicCache::new(g, Dip::new(&g, 5));
        let lines_per_set = 6; // loop bigger than assoc => thrash
        for _ in 0..60 {
            for k in 0..lines_per_set {
                for s in 0..64u64 {
                    let line = LineAddr::new(s + 64 * k + 64 * 100);
                    c.access(line, AccessKind::Read, CoreId::new(0), Pc::new(1));
                }
            }
        }
        assert!(!c.policy().lru_winning(), "thrash must drive DIP to BIP");
        let hit_rate = c.stats().hit_rate();
        assert!(hit_rate > 0.1, "DIP should salvage hits under thrash, got {hit_rate}");
    }

    #[test]
    fn dip_behaves_like_lru_on_friendly() {
        let g = CacheGeometry::new(64 * 4 * 16, 4, 64); // 16 sets
        let mut c = BasicCache::new(g, Dip::new(&g, 5));
        // Working set fits: every set holds <= 4 lines.
        for _ in 0..50 {
            for n in 0..32u64 {
                c.access(LineAddr::new(n), AccessKind::Read, CoreId::new(0), Pc::new(1));
            }
        }
        assert!(c.policy().lru_winning());
        assert!(c.stats().hit_rate() > 0.9);
    }
}
