//! SHiP-PC: Signature-based Hit Prediction (Wu et al., MICRO 2011).
//!
//! A successor to the PC-based line of work NUcache belongs to, included
//! as an extra comparison point. SHiP keeps SRRIP's eviction rule but
//! predicts each fill's re-reference behaviour from the *signature* (here
//! the allocating PC, hashed): a table of saturating counters (SHCT)
//! learns, per signature, whether lines get re-referenced before
//! eviction. Fills from never-reused signatures insert at distant RRPV
//! (immediate victim candidates); others insert at long.

use crate::config::CacheGeometry;
use crate::policy::{FillCtx, ReplacementPolicy};
use nucache_common::Pc;

const RRPV_BITS: u32 = 2;
const RRPV_MAX: u8 = (1 << RRPV_BITS) - 1;
const SHCT_MAX: u8 = 7; // 3-bit counters, as proposed

/// SHiP-PC replacement policy.
///
/// # Examples
///
/// ```
/// use nucache_cache::{BasicCache, CacheGeometry, ReplacementPolicy, policy::ShipPc};
/// let geom = CacheGeometry::new(64 * 1024, 16, 64);
/// let cache = BasicCache::new(geom, ShipPc::new(&geom));
/// assert_eq!(cache.policy().name(), "ship-pc");
/// ```
#[derive(Debug, Clone)]
pub struct ShipPc {
    assoc: usize,
    rrpv: Vec<u8>,
    /// Signature that allocated each line.
    line_sig: Vec<u16>,
    /// Whether each line has been re-referenced since its fill.
    reused: Vec<bool>,
    /// Signature history counter table.
    shct: Vec<u8>,
}

/// Entries in the signature history counter table (16K, as proposed).
pub const SHCT_ENTRIES: usize = 16 * 1024;

impl ShipPc {
    /// Creates SHiP-PC state for `geom`.
    pub fn new(geom: &CacheGeometry) -> Self {
        ShipPc {
            assoc: geom.associativity(),
            rrpv: vec![RRPV_MAX; geom.num_lines()],
            line_sig: vec![0; geom.num_lines()],
            reused: vec![false; geom.num_lines()],
            // Weakly "reuses" so new signatures are not written off
            // before evidence arrives.
            shct: vec![1; SHCT_ENTRIES],
        }
    }

    /// Hashes a PC into a signature-table index.
    fn signature(pc: Pc) -> u16 {
        // Fold the PC; drop the low instruction-alignment bits.
        let x = pc.0 >> 2;
        ((x ^ (x >> 14) ^ (x >> 28)) & (SHCT_ENTRIES as u64 - 1)) as u16
    }

    /// Current predicted-reuse counter for a PC (for tests).
    pub fn prediction_for(&self, pc: Pc) -> u8 {
        self.shct[Self::signature(pc) as usize]
    }

    fn frame(&self, set: usize, way: usize) -> usize {
        set * self.assoc + way
    }

    /// Records the outcome of a line leaving frame `f`.
    fn train_on_departure(&mut self, f: usize) {
        let sig = self.line_sig[f] as usize;
        if self.reused[f] {
            self.shct[sig] = (self.shct[sig] + 1).min(SHCT_MAX);
        } else {
            self.shct[sig] = self.shct[sig].saturating_sub(1);
        }
    }
}

impl ReplacementPolicy for ShipPc {
    fn on_hit(&mut self, set: usize, way: usize) {
        let f = self.frame(set, way);
        self.rrpv[f] = 0;
        self.reused[f] = true;
    }

    fn on_fill(&mut self, set: usize, way: usize, ctx: &FillCtx) {
        let f = self.frame(set, way);
        // The departing line (if it carried state) trains the table when
        // the cache reuses a frame directly; eviction-driven departures
        // are trained in `victim`.
        let sig = Self::signature(ctx.pc);
        self.line_sig[f] = sig;
        self.reused[f] = false;
        self.rrpv[f] = if self.shct[sig as usize] == 0 { RRPV_MAX } else { RRPV_MAX - 1 };
    }

    fn victim(&mut self, set: usize) -> usize {
        let base = set * self.assoc;
        let way = loop {
            if let Some(w) = (0..self.assoc).find(|&w| self.rrpv[base + w] == RRPV_MAX) {
                break w;
            }
            for w in 0..self.assoc {
                self.rrpv[base + w] += 1;
            }
        };
        self.train_on_departure(base + way);
        way
    }

    fn on_invalidate(&mut self, set: usize, way: usize) {
        let f = self.frame(set, way);
        self.train_on_departure(f);
        self.rrpv[f] = RRPV_MAX;
        self.reused[f] = false;
    }

    fn name(&self) -> &'static str {
        "ship-pc"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::basic::BasicCache;
    use crate::policy::testutil::one_set;
    use nucache_common::{AccessKind, CoreId, LineAddr};

    fn read(c: &mut BasicCache<ShipPc>, pc: u64, line: u64) -> bool {
        c.access(LineAddr::new(line), AccessKind::Read, CoreId::new(0), Pc::new(pc)).is_hit()
    }

    #[test]
    fn streaming_pc_learns_distant_insertion() {
        let g = one_set(4);
        let mut c = BasicCache::new(g, ShipPc::new(&g));
        // PC 0x200 streams; every line dies unreused.
        for n in 0..64 {
            read(&mut c, 0x200, 1000 + n);
        }
        assert_eq!(c.policy().prediction_for(Pc::new(0x200)), 0, "streamer must be written off");
    }

    #[test]
    fn reused_pc_keeps_positive_prediction() {
        let g = one_set(4);
        let mut c = BasicCache::new(g, ShipPc::new(&g));
        for _ in 0..50 {
            for n in 0..3 {
                read(&mut c, 0x100, n);
            }
        }
        assert!(c.policy().prediction_for(Pc::new(0x100)) > 0);
    }

    #[test]
    fn reusers_survive_a_written_off_stream() {
        let g = one_set(4);
        let mut c = BasicCache::new(g, ShipPc::new(&g));
        // Train: establish the stream as useless.
        for n in 0..200 {
            read(&mut c, 0x200, 1000 + n);
        }
        // Working pair from a reusing PC.
        read(&mut c, 0x100, 0);
        read(&mut c, 0x100, 1);
        read(&mut c, 0x100, 0);
        read(&mut c, 0x100, 1);
        // Stream continues; its distant-inserted lines evict each other.
        let mut reuse_hits = 0;
        for n in 0..40 {
            read(&mut c, 0x200, 2000 + n);
            if read(&mut c, 0x100, n % 2) {
                reuse_hits += 1;
            }
        }
        assert!(reuse_hits >= 38, "SHiP must shield reusers from a known stream: {reuse_hits}/40");
    }

    #[test]
    fn signature_hash_stays_in_table() {
        for pc in [0u64, 4, 0xdead_beef, u64::MAX] {
            assert!((ShipPc::signature(Pc::new(pc)) as usize) < SHCT_ENTRIES);
        }
    }
}
