//! Not-recently-used replacement (single reference bit per line).

use crate::config::CacheGeometry;
use crate::policy::{FillCtx, ReplacementPolicy};

/// NRU replacement: one reference bit per line.
///
/// Hits and fills set the bit; the victim is the lowest-numbered way with
/// a clear bit. When every bit in a set is set, all bits (in that set) are
/// cleared first — the standard "epoch reset".
#[derive(Debug, Clone)]
pub struct Nru {
    assoc: usize,
    referenced: Vec<bool>,
}

impl Nru {
    /// Creates NRU state for `geom`.
    pub fn new(geom: &CacheGeometry) -> Self {
        Nru { assoc: geom.associativity(), referenced: vec![false; geom.num_lines()] }
    }

    fn set_bits(&mut self, set: usize) -> &mut [bool] {
        let base = set * self.assoc;
        &mut self.referenced[base..base + self.assoc]
    }
}

impl ReplacementPolicy for Nru {
    fn on_hit(&mut self, set: usize, way: usize) {
        self.referenced[set * self.assoc + way] = true;
    }

    fn on_fill(&mut self, set: usize, way: usize, _ctx: &FillCtx) {
        self.referenced[set * self.assoc + way] = true;
    }

    fn victim(&mut self, set: usize) -> usize {
        let bits = self.set_bits(set);
        if bits.iter().all(|&b| b) {
            bits.iter_mut().for_each(|b| *b = false);
        }
        let bits = self.set_bits(set);
        bits.iter().position(|&b| !b).expect("cleared at least one bit")
    }

    fn on_invalidate(&mut self, set: usize, way: usize) {
        self.referenced[set * self.assoc + way] = false;
    }

    fn name(&self) -> &'static str {
        "nru"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::basic::BasicCache;
    use crate::policy::testutil::{one_set, touch};

    #[test]
    fn victim_prefers_unreferenced() {
        let g = one_set(4);
        let mut p = Nru::new(&g);
        let ctx = FillCtx::new(nucache_common::CoreId::new(0), nucache_common::Pc::new(0));
        for w in 0..4 {
            p.on_fill(0, w, &ctx);
        }
        // All referenced: victim forces a reset then picks way 0.
        assert_eq!(p.victim(0), 0);
        // After the reset, touching way 1 protects it.
        p.on_hit(0, 1);
        assert_eq!(p.victim(0), 0);
        p.on_hit(0, 0);
        assert_eq!(p.victim(0), 2);
    }

    #[test]
    fn behaves_in_cache() {
        let g = one_set(2);
        let mut c = BasicCache::new(g, Nru::new(&g));
        touch(&mut c, 0);
        touch(&mut c, 1);
        assert!(touch(&mut c, 0));
        assert!(touch(&mut c, 1));
        touch(&mut c, 2);
        // One of {0,1} was evicted; cache still functions and hits on 2.
        assert!(touch(&mut c, 2));
    }
}
