//! TADIP-F: thread-aware dynamic insertion policy with feedback.
//!
//! DIP picks one insertion policy (MRU vs bimodal) for the whole cache;
//! with several cores sharing the LLC that single choice is wrong whenever
//! the co-runners disagree. TADIP gives each core its own policy bit,
//! learned with per-core leader sets and per-core PSEL counters. In the
//! feedback (-F) variant, a core's leader sets observe the *current*
//! policy choices of all other cores, so the cores' decisions co-adapt.

use crate::config::CacheGeometry;
use crate::policy::dip::BIP_EPSILON;
use crate::policy::{FillCtx, ReplacementPolicy};
use nucache_common::{CoreId, DetRng};

/// Per-set role in TADIP's dueling layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TadipRole {
    /// Leader set where `core` is forced to MRU insertion.
    LeaderMru(usize),
    /// Leader set where `core` is forced to bimodal insertion.
    LeaderBip(usize),
    /// Follower set: every core uses its learned policy.
    Follower,
}

/// TADIP-F insertion policy for a shared cache.
///
/// Recency/eviction is LRU; per-core insertion is MRU or bimodal, chosen
/// by per-core saturating PSEL counters updated on leader-set misses.
#[derive(Debug)]
pub struct TadipF {
    assoc: usize,
    num_cores: usize,
    stamp: u64,
    old_stamp: u64,
    last_touch: Vec<u64>,
    block: usize,
    psel: Vec<u32>,
    psel_max: u32,
    rng: DetRng,
}

impl TadipF {
    /// Creates TADIP-F state for `geom` shared by `num_cores` cores.
    ///
    /// # Panics
    ///
    /// Panics if `num_cores` is zero or the cache has fewer than
    /// `2 * num_cores` sets (no room for the leader layout).
    pub fn new(geom: &CacheGeometry, num_cores: usize, seed: u64) -> Self {
        assert!(num_cores > 0, "need at least one core");
        let sets = geom.num_sets();
        assert!(sets >= 2 * num_cores, "too few sets for TADIP leader layout");
        // Aim for 32 leader sets per (core, policy); shrink on small
        // caches. The floor of 1 matters: `sets / 32` is 0 below 32 sets
        // and doubling zero would never terminate.
        let mut block = (sets / 32).max(1);
        while block < 2 * num_cores {
            block *= 2;
        }
        let psel_max = (1u32 << 10) - 1;
        TadipF {
            assoc: geom.associativity(),
            num_cores,
            stamp: u64::MAX / 2,
            old_stamp: u64::MAX / 2,
            last_touch: vec![0; geom.num_lines()],
            block,
            psel: vec![psel_max / 2; num_cores],
            psel_max,
            rng: DetRng::substream(seed, 0x7ad1),
        }
    }

    fn role(&self, set: usize) -> TadipRole {
        let offset = set % self.block;
        if offset < 2 * self.num_cores {
            let core = offset / 2;
            if offset.is_multiple_of(2) {
                TadipRole::LeaderMru(core)
            } else {
                TadipRole::LeaderBip(core)
            }
        } else {
            TadipRole::Follower
        }
    }

    /// Whether `core` currently prefers MRU insertion in follower sets.
    ///
    /// PSEL convention: misses in the core's MRU-leader sets increment,
    /// misses in its BIP-leader sets decrement; low PSEL means MRU wins.
    pub fn mru_preferred(&self, core: CoreId) -> bool {
        self.psel[core.index()] <= self.psel_max / 2
    }

    fn inserts_mru(&mut self, set: usize, core: CoreId) -> bool {
        let forced = match self.role(set) {
            TadipRole::LeaderMru(c) if c == core.index() => Some(true),
            TadipRole::LeaderBip(c) if c == core.index() => Some(false),
            _ => None,
        };
        match forced {
            Some(true) => true,
            // Bimodal: mostly LRU-position, epsilon MRU.
            Some(false) => self.rng.chance(BIP_EPSILON),
            None => {
                if self.mru_preferred(core) {
                    true
                } else {
                    self.rng.chance(BIP_EPSILON)
                }
            }
        }
    }
}

impl ReplacementPolicy for TadipF {
    fn on_hit(&mut self, set: usize, way: usize) {
        self.stamp += 1;
        self.last_touch[set * self.assoc + way] = self.stamp;
    }

    fn on_fill(&mut self, set: usize, way: usize, ctx: &FillCtx) {
        let stamp = if self.inserts_mru(set, ctx.core) {
            self.stamp += 1;
            self.stamp
        } else {
            self.old_stamp -= 1;
            self.old_stamp
        };
        self.last_touch[set * self.assoc + way] = stamp;
    }

    fn on_miss(&mut self, set: usize, ctx: &FillCtx) {
        match self.role(set) {
            TadipRole::LeaderMru(c) if c == ctx.core.index() => {
                self.psel[c] = (self.psel[c] + 1).min(self.psel_max);
            }
            TadipRole::LeaderBip(c) if c == ctx.core.index() => {
                self.psel[c] = self.psel[c].saturating_sub(1);
            }
            _ => {}
        }
    }

    fn victim(&mut self, set: usize) -> usize {
        let base = set * self.assoc;
        (0..self.assoc).min_by_key(|&w| self.last_touch[base + w]).expect("non-zero associativity")
    }

    fn on_invalidate(&mut self, set: usize, way: usize) {
        self.last_touch[set * self.assoc + way] = 0;
    }

    fn name(&self) -> &'static str {
        "tadip-f"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::basic::BasicCache;
    use crate::CacheGeometry;
    use nucache_common::{AccessKind, LineAddr, Pc};

    fn geom() -> CacheGeometry {
        CacheGeometry::new(64 * 4 * 64, 4, 64) // 64 sets, 4-way
    }

    #[test]
    fn leader_layout_covers_all_cores() {
        let g = geom();
        let t = TadipF::new(&g, 4, 1);
        let mut mru = [0; 4];
        let mut bip = [0; 4];
        for s in 0..g.num_sets() {
            match t.role(s) {
                TadipRole::LeaderMru(c) => mru[c] += 1,
                TadipRole::LeaderBip(c) => bip[c] += 1,
                TadipRole::Follower => {}
            }
        }
        for c in 0..4 {
            assert!(mru[c] > 0 && bip[c] > 0, "core {c} missing leaders");
            assert_eq!(mru[c], bip[c]);
        }
    }

    #[test]
    fn thrashing_core_learns_bip() {
        let g = geom();
        let mut c = BasicCache::new(g, TadipF::new(&g, 2, 3));
        // Core 0 thrashes every set with 6 distinct lines/set.
        for _ in 0..80 {
            for k in 0..6u64 {
                for s in 0..64u64 {
                    c.access(
                        LineAddr::new(s + 64 * k),
                        AccessKind::Read,
                        CoreId::new(0),
                        Pc::new(1),
                    );
                }
            }
        }
        assert!(
            !c.policy().mru_preferred(CoreId::new(0)),
            "thrashing core should learn bimodal insertion"
        );
    }

    #[test]
    fn friendly_core_keeps_mru() {
        let g = geom();
        let mut c = BasicCache::new(g, TadipF::new(&g, 2, 3));
        for _ in 0..80 {
            for n in 0..128u64 {
                // 2 lines per set: fits easily.
                c.access(LineAddr::new(n), AccessKind::Read, CoreId::new(1), Pc::new(2));
            }
        }
        assert!(c.policy().mru_preferred(CoreId::new(1)));
        assert!(c.stats().hit_rate() > 0.9);
    }

    #[test]
    fn per_core_decisions_are_independent() {
        let g = geom();
        let mut c = BasicCache::new(g, TadipF::new(&g, 2, 3));
        for _ in 0..80 {
            // Core 0: thrash (6 lines/set in a disjoint region).
            for k in 0..6u64 {
                for s in 0..64u64 {
                    c.access(
                        LineAddr::new(0x10000 + s + 64 * k),
                        AccessKind::Read,
                        CoreId::new(0),
                        Pc::new(1),
                    );
                }
            }
            // Core 1: small reused set.
            for n in 0..64u64 {
                c.access(LineAddr::new(n), AccessKind::Read, CoreId::new(1), Pc::new(2));
            }
        }
        assert!(!c.policy().mru_preferred(CoreId::new(0)));
        assert!(c.policy().mru_preferred(CoreId::new(1)));
    }

    #[test]
    #[should_panic(expected = "too few sets")]
    fn rejects_tiny_cache() {
        let g = CacheGeometry::new(64 * 4, 4, 64); // 1 set
        let _ = TadipF::new(&g, 2, 0);
    }

    #[test]
    fn small_caches_construct_and_work() {
        // Regression: with fewer than 32 sets, the leader-block sizing
        // used to start at zero and loop forever.
        let g = CacheGeometry::new(64 * 4 * 8, 4, 64); // 8 sets
        let mut c = BasicCache::new(g, TadipF::new(&g, 2, 1));
        for n in 0..200u64 {
            c.access(
                LineAddr::new(n % 40),
                AccessKind::Read,
                CoreId::new((n % 2) as u8),
                Pc::new(1),
            );
        }
        assert_eq!(c.stats().accesses(), 200);
    }
}
