//! Replacement policies for [`BasicCache`](crate::BasicCache).
//!
//! A policy owns all of its per-set ordering state (recency stamps, RRPV
//! counters, PLRU trees, …) and reacts to three events the cache reports:
//! hit, fill, and miss-without-fill-yet. The cache itself handles the
//! mechanics of tag match and prefers invalid ways on fills; a policy is
//! only consulted for a victim when the set is full.
//!
//! Implemented policies:
//!
//! | Policy | Module | Origin |
//! |---|---|---|
//! | LRU | [`lru`] | classic |
//! | FIFO | [`fifo`] | classic |
//! | Random | [`random`] | classic |
//! | NRU | [`nru`] | classic (single reference bit) |
//! | Tree-PLRU | [`plru`] | classic |
//! | LIP / BIP / DIP | [`dip`] | Qureshi et al., ISCA 2007 |
//! | SRRIP / BRRIP / DRRIP | [`rrip`] | Jaleel et al., ISCA 2010 |
//! | SHiP-PC | [`ship`] | Wu et al., MICRO 2011 (post-dates NUcache; extra comparison point) |
//! | TADIP-F | [`tadip`] | Jaleel et al., PACT 2008 |

pub mod dip;
pub mod fifo;
pub mod lru;
pub mod nru;
pub mod plru;
pub mod random;
pub mod rrip;
pub mod ship;
pub mod tadip;

pub use dip::{Bip, Dip, Lip};
pub use fifo::Fifo;
pub use lru::Lru;
pub use nru::Nru;
pub use plru::TreePlru;
pub use random::RandomEvict;
pub use rrip::{Brrip, Drrip, Srrip};
pub use ship::ShipPc;
pub use tadip::TadipF;

use nucache_common::{CoreId, Pc};

/// Context a policy receives when a line is filled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FillCtx {
    /// Core whose miss triggered the fill.
    pub core: CoreId,
    /// PC whose miss triggered the fill.
    pub pc: Pc,
}

impl FillCtx {
    /// Creates a fill context.
    pub const fn new(core: CoreId, pc: Pc) -> Self {
        FillCtx { core, pc }
    }
}

/// A cache replacement policy.
///
/// Implementations are constructed against a concrete
/// [`CacheGeometry`](crate::CacheGeometry) and keep per-set state sized
/// accordingly. All methods take `set`/`way` indices that the caller
/// guarantees in range.
pub trait ReplacementPolicy {
    /// Called on every demand hit at `(set, way)`.
    fn on_hit(&mut self, set: usize, way: usize);

    /// Called when a line is installed at `(set, way)`.
    fn on_fill(&mut self, set: usize, way: usize, ctx: &FillCtx);

    /// Called on every demand miss to `set` (before the fill), so
    /// dueling-based policies can update their selectors.
    fn on_miss(&mut self, _set: usize, _ctx: &FillCtx) {}

    /// Chooses the way to evict from a full `set`.
    fn victim(&mut self, set: usize) -> usize;

    /// Called when an external actor invalidates `(set, way)`.
    fn on_invalidate(&mut self, _set: usize, _way: usize) {}

    /// Short human-readable policy name (e.g. `"lru"`, `"drrip"`).
    fn name(&self) -> &'static str;
}

#[cfg(test)]
pub(crate) mod testutil {
    //! Shared harness for exercising policies through a tiny cache.

    use super::*;
    use crate::basic::BasicCache;
    use crate::config::CacheGeometry;
    use nucache_common::{AccessKind, LineAddr};

    /// 1-set geometry with the given associativity (64B blocks).
    pub fn one_set(assoc: usize) -> CacheGeometry {
        CacheGeometry::new(64 * assoc as u64, assoc, 64)
    }

    /// Accesses line number `n` (sets are ignored: single-set geometry).
    pub fn touch<P: ReplacementPolicy>(cache: &mut BasicCache<P>, n: u64) -> bool {
        cache.access(LineAddr::new(n), AccessKind::Read, CoreId::new(0), Pc::new(n)).is_hit()
    }
}
