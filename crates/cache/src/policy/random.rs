//! Uniform-random replacement.

use crate::config::CacheGeometry;
use crate::policy::{FillCtx, ReplacementPolicy};
use nucache_common::DetRng;

/// Random replacement: the victim is a uniformly random way.
///
/// Deterministic under a fixed seed, like everything in the workspace.
#[derive(Debug)]
pub struct RandomEvict {
    assoc: usize,
    rng: DetRng,
}

/// Substream label separating replacement randomness from other consumers
/// of the same seed.
const STREAM_LABEL: u64 = 0x7a6d_0e41;

impl RandomEvict {
    /// Creates random-replacement state for `geom` with an explicit seed.
    pub fn new(geom: &CacheGeometry, seed: u64) -> Self {
        RandomEvict { assoc: geom.associativity(), rng: DetRng::substream(seed, STREAM_LABEL) }
    }
}

impl ReplacementPolicy for RandomEvict {
    fn on_hit(&mut self, _set: usize, _way: usize) {}

    fn on_fill(&mut self, _set: usize, _way: usize, _ctx: &FillCtx) {}

    fn victim(&mut self, _set: usize) -> usize {
        self.rng.index(self.assoc)
    }

    fn name(&self) -> &'static str {
        "random"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::basic::BasicCache;
    use crate::policy::testutil::{one_set, touch};

    #[test]
    fn victims_are_in_range_and_deterministic() {
        let g = one_set(4);
        let mut a = RandomEvict::new(&g, 7);
        let mut b = RandomEvict::new(&g, 7);
        for _ in 0..100 {
            let va = a.victim(0);
            assert!(va < 4);
            assert_eq!(va, b.victim(0));
        }
    }

    #[test]
    fn random_breaks_thrash_sometimes() {
        // Unlike LRU, random replacement gets *some* hits on a loop one
        // line larger than the set.
        let g = one_set(4);
        let mut c = BasicCache::new(g, RandomEvict::new(&g, 3));
        let mut hits = 0u32;
        for _ in 0..200 {
            for n in 0..5 {
                if touch(&mut c, n) {
                    hits += 1;
                }
            }
        }
        assert!(hits > 0, "random replacement should avoid total thrash");
    }
}
