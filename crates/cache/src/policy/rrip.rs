//! Re-reference interval prediction: SRRIP, BRRIP and DRRIP.
//!
//! Each line carries an M-bit re-reference prediction value (RRPV).
//! Victims are lines predicted to be re-referenced in the distant future
//! (RRPV == max); when none exists, every RRPV in the set is aged up
//! until one does.
//!
//! * **SRRIP** inserts with "long" re-reference prediction (max-1) and
//!   promotes to 0 on hit (hit-priority variant).
//! * **BRRIP** usually inserts "distant" (max), occasionally "long".
//! * **DRRIP** set-duels SRRIP against BRRIP.

use crate::config::CacheGeometry;
use crate::dueling::DuelingSelector;
use crate::policy::{FillCtx, ReplacementPolicy};
use nucache_common::DetRng;

/// RRPV width used throughout (2 bits, as in the original evaluation).
pub const RRPV_BITS: u32 = 2;

const RRPV_MAX: u8 = (1 << RRPV_BITS) - 1;

/// Shared RRPV array logic.
#[derive(Debug, Clone)]
struct RripCore {
    assoc: usize,
    rrpv: Vec<u8>,
}

impl RripCore {
    fn new(geom: &CacheGeometry) -> Self {
        RripCore { assoc: geom.associativity(), rrpv: vec![RRPV_MAX; geom.num_lines()] }
    }

    fn on_hit(&mut self, set: usize, way: usize) {
        self.rrpv[set * self.assoc + way] = 0;
    }

    fn insert(&mut self, set: usize, way: usize, rrpv: u8) {
        self.rrpv[set * self.assoc + way] = rrpv;
    }

    fn victim(&mut self, set: usize) -> usize {
        let base = set * self.assoc;
        loop {
            if let Some(w) = (0..self.assoc).find(|&w| self.rrpv[base + w] == RRPV_MAX) {
                return w;
            }
            for w in 0..self.assoc {
                self.rrpv[base + w] += 1;
            }
        }
    }

    fn on_invalidate(&mut self, set: usize, way: usize) {
        self.rrpv[set * self.assoc + way] = RRPV_MAX;
    }
}

/// Static RRIP: insert at RRPV = max-1, promote to 0 on hit.
#[derive(Debug, Clone)]
pub struct Srrip {
    core: RripCore,
}

impl Srrip {
    /// Creates SRRIP state for `geom`.
    pub fn new(geom: &CacheGeometry) -> Self {
        Srrip { core: RripCore::new(geom) }
    }
}

impl ReplacementPolicy for Srrip {
    fn on_hit(&mut self, set: usize, way: usize) {
        self.core.on_hit(set, way);
    }

    fn on_fill(&mut self, set: usize, way: usize, _ctx: &FillCtx) {
        self.core.insert(set, way, RRPV_MAX - 1);
    }

    fn victim(&mut self, set: usize) -> usize {
        self.core.victim(set)
    }

    fn on_invalidate(&mut self, set: usize, way: usize) {
        self.core.on_invalidate(set, way);
    }

    fn name(&self) -> &'static str {
        "srrip"
    }
}

/// Bimodal RRIP: insert distant (max) except with probability 1/32 long.
#[derive(Debug)]
pub struct Brrip {
    core: RripCore,
    rng: DetRng,
}

/// Probability of a "long" insertion in BRRIP.
pub const BRRIP_EPSILON: f64 = 1.0 / 32.0;

impl Brrip {
    /// Creates BRRIP state for `geom`.
    pub fn new(geom: &CacheGeometry, seed: u64) -> Self {
        Brrip { core: RripCore::new(geom), rng: DetRng::substream(seed, 0xbb1b) }
    }

    fn insertion_rrpv(&mut self) -> u8 {
        if self.rng.chance(BRRIP_EPSILON) {
            RRPV_MAX - 1
        } else {
            RRPV_MAX
        }
    }
}

impl ReplacementPolicy for Brrip {
    fn on_hit(&mut self, set: usize, way: usize) {
        self.core.on_hit(set, way);
    }

    fn on_fill(&mut self, set: usize, way: usize, _ctx: &FillCtx) {
        let r = self.insertion_rrpv();
        self.core.insert(set, way, r);
    }

    fn victim(&mut self, set: usize) -> usize {
        self.core.victim(set)
    }

    fn on_invalidate(&mut self, set: usize, way: usize) {
        self.core.on_invalidate(set, way);
    }

    fn name(&self) -> &'static str {
        "brrip"
    }
}

/// Dynamic RRIP: set-duels SRRIP (A) against BRRIP (B).
#[derive(Debug)]
pub struct Drrip {
    core: RripCore,
    selector: DuelingSelector,
    rng: DetRng,
}

impl Drrip {
    /// Creates DRRIP state for `geom`.
    pub fn new(geom: &CacheGeometry, seed: u64) -> Self {
        let leaders = (geom.num_sets() / 16).clamp(1, 32);
        Drrip {
            core: RripCore::new(geom),
            selector: DuelingSelector::new(geom.num_sets(), leaders, 10),
            rng: DetRng::substream(seed, 0xdd1b),
        }
    }

    /// Whether SRRIP is currently winning the duel.
    pub fn srrip_winning(&self) -> bool {
        self.selector.a_wins()
    }
}

impl ReplacementPolicy for Drrip {
    fn on_hit(&mut self, set: usize, way: usize) {
        self.core.on_hit(set, way);
    }

    fn on_fill(&mut self, set: usize, way: usize, _ctx: &FillCtx) {
        // Short-circuit keeps the RNG stream identical: the epsilon draw
        // only happens for BRRIP-following sets, as before.
        let rrpv = if self.selector.use_a(set) || self.rng.chance(BRRIP_EPSILON) {
            RRPV_MAX - 1
        } else {
            RRPV_MAX
        };
        self.core.insert(set, way, rrpv);
    }

    fn on_miss(&mut self, set: usize, _ctx: &FillCtx) {
        self.selector.record_miss(set);
    }

    fn victim(&mut self, set: usize) -> usize {
        self.core.victim(set)
    }

    fn on_invalidate(&mut self, set: usize, way: usize) {
        self.core.on_invalidate(set, way);
    }

    fn name(&self) -> &'static str {
        "drrip"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::basic::BasicCache;
    use crate::policy::testutil::{one_set, touch};
    use crate::CacheGeometry;
    use nucache_common::{AccessKind, CoreId, LineAddr, Pc};

    #[test]
    fn srrip_scan_resistance() {
        // Working set of 2 reused lines interleaved with short scans:
        // SRRIP keeps the reused lines (promoted to RRPV 0) while scan
        // lines enter near-distant and evict each other. LRU loses the
        // reused lines to every scan burst; SRRIP retains them after the
        // first round.
        let g = one_set(4);
        let mut c = BasicCache::new(g, Srrip::new(&g));
        let mut reuse_hits = 0;
        for round in 0..10u64 {
            for line in [0, 0, 1, 1] {
                if touch(&mut c, line) {
                    reuse_hits += 1;
                }
            }
            for scan in 0..2 {
                touch(&mut c, 100 + round * 2 + scan);
            }
        }
        // Round 0: only the second touch of each line hits (2 hits);
        // afterwards the RRPV-0 lines outlive every scan burst: 4/round.
        assert_eq!(reuse_hits, 38, "reused lines must survive every scan after round 0");
    }

    #[test]
    fn srrip_victim_ages_until_found() {
        let g = one_set(2);
        let mut p = Srrip::new(&g);
        let ctx = FillCtx::new(CoreId::new(0), Pc::new(0));
        p.on_fill(0, 0, &ctx);
        p.on_fill(0, 1, &ctx);
        p.on_hit(0, 0);
        p.on_hit(0, 1);
        // Both at RRPV 0: aging loop must terminate and return some way.
        assert!(p.victim(0) < 2);
    }

    #[test]
    fn brrip_mostly_inserts_distant() {
        let g = one_set(4);
        let mut p = Brrip::new(&g, 1);
        let mut distant = 0;
        for _ in 0..1000 {
            if p.insertion_rrpv() == RRPV_MAX {
                distant += 1;
            }
        }
        assert!(distant > 900, "expected ~31/32 distant inserts, got {distant}/1000");
    }

    #[test]
    fn brrip_resists_thrash() {
        let g = one_set(4);
        let mut c = BasicCache::new(g, Brrip::new(&g, 9));
        let mut hits = 0;
        for _ in 0..100 {
            for n in 0..6 {
                if touch(&mut c, n) {
                    hits += 1;
                }
            }
        }
        assert!(hits > 50, "BRRIP should beat LRU's zero hits on thrash, got {hits}");
    }

    #[test]
    fn drrip_adapts_to_thrash() {
        let g = CacheGeometry::new(64 * 4 * 64, 4, 64);
        let mut c = BasicCache::new(g, Drrip::new(&g, 5));
        for _ in 0..60 {
            for k in 0..6u64 {
                for s in 0..64u64 {
                    c.access(
                        LineAddr::new(s + 64 * k),
                        AccessKind::Read,
                        CoreId::new(0),
                        Pc::new(1),
                    );
                }
            }
        }
        assert!(!c.policy().srrip_winning(), "thrash should favour BRRIP");
        assert!(c.stats().hit_rate() > 0.1);
    }

    #[test]
    fn invalidate_makes_way_preferred_victim() {
        let g = one_set(4);
        let mut p = Srrip::new(&g);
        let ctx = FillCtx::new(CoreId::new(0), Pc::new(0));
        for w in 0..4 {
            p.on_fill(0, w, &ctx);
            p.on_hit(0, w);
        }
        p.on_invalidate(0, 2);
        assert_eq!(p.victim(0), 2);
    }
}
