//! First-in-first-out replacement.

use crate::config::CacheGeometry;
use crate::policy::{FillCtx, ReplacementPolicy};

/// FIFO replacement: the victim is the oldest *fill*, regardless of hits.
///
/// NUcache manages its DeliWays region FIFO; this standalone policy also
/// serves as a baseline and lets tests compare FIFO- vs LRU-managed
/// retention directly.
#[derive(Debug, Clone)]
pub struct Fifo {
    assoc: usize,
    stamp: u64,
    fill_stamp: Vec<u64>,
}

impl Fifo {
    /// Creates FIFO state for `geom`.
    pub fn new(geom: &CacheGeometry) -> Self {
        Fifo { assoc: geom.associativity(), stamp: 0, fill_stamp: vec![0; geom.num_lines()] }
    }
}

impl ReplacementPolicy for Fifo {
    fn on_hit(&mut self, _set: usize, _way: usize) {
        // Hits do not affect FIFO order.
    }

    fn on_fill(&mut self, set: usize, way: usize, _ctx: &FillCtx) {
        self.stamp += 1;
        self.fill_stamp[set * self.assoc + way] = self.stamp;
    }

    fn victim(&mut self, set: usize) -> usize {
        let base = set * self.assoc;
        (0..self.assoc).min_by_key(|&w| self.fill_stamp[base + w]).expect("non-zero associativity")
    }

    fn on_invalidate(&mut self, set: usize, way: usize) {
        self.fill_stamp[set * self.assoc + way] = 0;
    }

    fn name(&self) -> &'static str {
        "fifo"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::basic::BasicCache;
    use crate::policy::testutil::{one_set, touch};

    #[test]
    fn hits_do_not_save_oldest_line() {
        let g = one_set(2);
        let mut c = BasicCache::new(g, Fifo::new(&g));
        touch(&mut c, 0);
        touch(&mut c, 1);
        assert!(touch(&mut c, 0)); // hit, but FIFO ignores it
        touch(&mut c, 2); // evicts 0 (oldest fill) despite the recent hit
        assert!(touch(&mut c, 1));
        assert!(touch(&mut c, 2));
        assert!(!touch(&mut c, 0));
    }

    #[test]
    fn evicts_in_fill_order() {
        let g = one_set(3);
        let mut c = BasicCache::new(g, Fifo::new(&g));
        for n in 0..3 {
            touch(&mut c, n);
        }
        touch(&mut c, 3); // evicts 0
        touch(&mut c, 4); // evicts 1
        assert!(touch(&mut c, 2));
        assert!(touch(&mut c, 3));
        assert!(touch(&mut c, 4));
    }
}
