//! A policy-driven set-associative cache.

use crate::array::SetArray;
use crate::config::CacheGeometry;
use crate::meta::{AccessOutcome, LineMeta};
use crate::policy::{FillCtx, ReplacementPolicy};
use nucache_common::{AccessKind, CacheStats, CoreId, LineAddr, Pc};

/// A set-associative cache whose replacement behaviour is supplied by a
/// [`ReplacementPolicy`].
///
/// Used directly for the private L1/L2 levels and, wrapped in
/// [`ClassicLlc`](crate::ClassicLlc), for every policy-only shared-LLC
/// baseline (LRU, DIP, DRRIP, TADIP, …).
///
/// Fills prefer invalid ways; the policy is consulted for a victim only
/// when the set is full. Misses allocate unconditionally (write-allocate),
/// and writes mark the line dirty.
///
/// # Examples
///
/// ```
/// use nucache_cache::{BasicCache, CacheGeometry, policy::Lru};
/// use nucache_common::{AccessKind, CoreId, LineAddr, Pc};
///
/// let geom = CacheGeometry::new(256 * 1024, 8, 64);
/// let mut l2 = BasicCache::new(geom, Lru::new(&geom));
/// let out = l2.access(LineAddr::new(5), AccessKind::Write, CoreId::new(0), Pc::new(0));
/// assert!(out.is_miss());
/// assert_eq!(l2.stats().misses, 1);
/// ```
#[derive(Debug)]
pub struct BasicCache<P> {
    array: SetArray,
    policy: P,
    stats: CacheStats,
}

impl<P: ReplacementPolicy> BasicCache<P> {
    /// Creates an empty cache with the given geometry and policy.
    pub fn new(geom: CacheGeometry, policy: P) -> Self {
        BasicCache { array: SetArray::new(geom), policy, stats: CacheStats::default() }
    }

    /// The cache geometry.
    pub fn geometry(&self) -> &CacheGeometry {
        self.array.geometry()
    }

    /// Aggregate hit/miss counters.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Resets the counters (the contents stay).
    pub fn clear_stats(&mut self) {
        self.stats.clear();
    }

    /// The replacement policy (for policy-specific introspection).
    pub fn policy(&self) -> &P {
        &self.policy
    }

    /// The underlying tag array (read-only).
    pub fn array(&self) -> &SetArray {
        &self.array
    }

    /// Enables or disables the differential audit mirror on the tag array
    /// (see [`crate::audit`]).
    pub fn set_audit(&mut self, enabled: bool) {
        if enabled {
            self.array.enable_audit();
        } else {
            self.array.disable_audit();
        }
    }

    /// Performs one demand access, filling on a miss.
    #[inline]
    pub fn access(
        &mut self,
        line: LineAddr,
        kind: AccessKind,
        core: CoreId,
        pc: Pc,
    ) -> AccessOutcome {
        let geom = *self.array.geometry();
        let set = geom.set_of(line);
        let tag = geom.tag_of(line);
        if let Some(way) = self.array.find(set, tag) {
            self.stats.record_hit();
            self.policy.on_hit(set, way);
            if kind.is_write() {
                self.array.mark_dirty(set, way);
            }
            return AccessOutcome::Hit;
        }
        self.stats.record_miss();
        let ctx = FillCtx::new(core, pc);
        self.policy.on_miss(set, &ctx);
        let way = match self.array.invalid_way(set) {
            Some(w) => w,
            None => self.policy.victim(set),
        };
        let evicted = self.array.fill(set, way, LineMeta::new(tag, core, pc, kind.is_write()));
        if let Some(ev) = evicted {
            self.stats.record_eviction(ev.dirty);
        }
        self.policy.on_fill(set, way, &ctx);
        AccessOutcome::Miss { evicted }
    }

    /// Re-touches a resident line as a write (hit bookkeeping, recency
    /// refresh, dirty mark); does nothing when the line is absent. This
    /// is the write-back absorb path: it behaves exactly like a write
    /// [`BasicCache::access`] that hits, but a missing line is not a
    /// recorded miss (and does not allocate) — the write-back simply
    /// continues downstream.
    pub fn rehit_write(&mut self, line: LineAddr) {
        let geom = *self.array.geometry();
        let set = geom.set_of(line);
        if let Some(way) = self.array.find(set, geom.tag_of(line)) {
            self.stats.record_hit();
            self.policy.on_hit(set, way);
            self.array.mark_dirty(set, way);
        }
    }

    /// Looks a line up without touching replacement state or counters.
    pub fn probe(&self, line: LineAddr) -> bool {
        let geom = self.array.geometry();
        self.array.find(geom.set_of(line), geom.tag_of(line)).is_some()
    }

    /// Removes a line if present, returning whether it was dirty.
    pub fn invalidate_line(&mut self, line: LineAddr) -> Option<bool> {
        let geom = *self.array.geometry();
        let set = geom.set_of(line);
        let way = self.array.find(set, geom.tag_of(line))?;
        let ev = self.array.invalidate(set, way).expect("found way is valid");
        self.policy.on_invalidate(set, way);
        Some(ev.dirty)
    }

    /// Current number of resident lines.
    pub fn occupancy(&self) -> usize {
        self.array.total_occupancy()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::Lru;

    fn cache(sets: u64, assoc: usize) -> BasicCache<Lru> {
        let g = CacheGeometry::new(64 * assoc as u64 * sets, assoc, 64);
        BasicCache::new(g, Lru::new(&g))
    }

    fn read(c: &mut BasicCache<Lru>, n: u64) -> AccessOutcome {
        c.access(LineAddr::new(n), AccessKind::Read, CoreId::new(0), Pc::new(0))
    }

    #[test]
    fn miss_then_hit() {
        let mut c = cache(4, 2);
        assert!(read(&mut c, 1).is_miss());
        assert!(read(&mut c, 1).is_hit());
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn capacity_never_exceeded() {
        let mut c = cache(4, 2);
        for n in 0..100 {
            read(&mut c, n);
        }
        assert!(c.occupancy() <= 8);
        assert_eq!(c.occupancy(), 8);
    }

    #[test]
    fn eviction_reports_dirty_victim() {
        let mut c = cache(1, 1);
        c.access(LineAddr::new(1), AccessKind::Write, CoreId::new(0), Pc::new(0));
        let out = read(&mut c, 2);
        let ev = out.evicted().expect("full set must evict");
        assert!(ev.dirty);
        assert_eq!(ev.line, LineAddr::new(1));
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn write_hit_marks_dirty() {
        let mut c = cache(1, 2);
        read(&mut c, 1);
        c.access(LineAddr::new(1), AccessKind::Write, CoreId::new(0), Pc::new(0));
        read(&mut c, 2);
        // Evict line 1 (LRU after the 2-fill? no: 1 was touched last by the
        // write, so 2 fills the empty way; force eviction of 1 via a third
        // line after touching 2).
        read(&mut c, 2);
        let out = read(&mut c, 3);
        let ev = out.evicted().expect("evicts line 1");
        assert_eq!(ev.line, LineAddr::new(1));
        assert!(ev.dirty, "write hit must have marked the line dirty");
    }

    #[test]
    fn probe_does_not_disturb_state() {
        let mut c = cache(1, 2);
        read(&mut c, 1);
        read(&mut c, 2);
        let (hits, misses) = (c.stats().hits, c.stats().misses);
        assert!(c.probe(LineAddr::new(1)));
        assert!(!c.probe(LineAddr::new(9)));
        assert_eq!(c.stats().hits, hits);
        assert_eq!(c.stats().misses, misses);
        // Probe must not refresh recency: 1 is still LRU.
        let out = read(&mut c, 3);
        assert_eq!(out.evicted().unwrap().line, LineAddr::new(1));
    }

    #[test]
    fn invalidate_returns_dirtiness() {
        let mut c = cache(1, 2);
        c.access(LineAddr::new(1), AccessKind::Write, CoreId::new(0), Pc::new(0));
        read(&mut c, 2);
        assert_eq!(c.invalidate_line(LineAddr::new(1)), Some(true));
        assert_eq!(c.invalidate_line(LineAddr::new(2)), Some(false));
        assert_eq!(c.invalidate_line(LineAddr::new(7)), None);
        assert_eq!(c.occupancy(), 0);
    }

    #[test]
    fn lines_map_to_correct_sets() {
        let mut c = cache(4, 1); // 4 sets, direct-mapped
                                 // Lines 0..4 map to distinct sets: all coexist.
        for n in 0..4 {
            read(&mut c, n);
        }
        for n in 0..4 {
            assert!(read(&mut c, n).is_hit());
        }
        // Line 4 conflicts with line 0 only.
        read(&mut c, 4);
        assert!(read(&mut c, 1).is_hit());
        assert!(read(&mut c, 0).is_miss());
    }
}
