//! Stack-distance (LRU reuse-distance) profiling.
//!
//! The stack distance of an access is the number of *distinct* lines
//! touched in its set since the previous access to the same line; an
//! access hits in a W-way LRU cache exactly when its stack distance is
//! `< W`. A stack-distance histogram therefore yields LRU hit counts for
//! *every* associativity in a single pass — the analytical backbone for
//! utility curves and for reasoning about which workloads any retention
//! scheme can help.

use crate::config::CacheGeometry;
use nucache_common::{LineAddr, Log2Histogram};

/// One-pass stack-distance profiler over a cache's set structure.
///
/// # Examples
///
/// ```
/// use nucache_cache::stackdist::StackDistanceProfiler;
/// use nucache_cache::CacheGeometry;
/// use nucache_common::LineAddr;
///
/// let geom = CacheGeometry::new(64 * 4, 4, 64); // one set
/// let mut p = StackDistanceProfiler::new(&geom);
/// for i in [0u64, 1, 0, 2, 1] {
///     p.observe(LineAddr::new(i));
/// }
/// // "0" reused at distance 1, "1" at distance 2.
/// assert_eq!(p.lru_hits(2), 1);
/// assert_eq!(p.lru_hits(4), 2);
/// ```
#[derive(Debug)]
pub struct StackDistanceProfiler {
    set_bits: u32,
    /// Per-set LRU stacks of line tags, most recent first. Exact (not
    /// sampled): this is an offline analysis tool.
    stacks: Vec<Vec<u64>>,
    /// Exact distance counts up to `MAX_EXACT`; beyond that, a geometric
    /// histogram.
    exact: Vec<u64>,
    tail: Log2Histogram,
    cold: u64,
    accesses: u64,
}

/// Distances tracked exactly (covers any realistic associativity).
pub const MAX_EXACT: usize = 128;

impl StackDistanceProfiler {
    /// Creates a profiler over the geometry's set structure (the
    /// associativity is irrelevant: all distances are measured).
    pub fn new(geom: &CacheGeometry) -> Self {
        StackDistanceProfiler {
            set_bits: geom.set_bits(),
            stacks: vec![Vec::new(); geom.num_sets()],
            exact: vec![0; MAX_EXACT],
            tail: Log2Histogram::new(40),
            cold: 0,
            accesses: 0,
        }
    }

    /// Feeds one access; returns its stack distance (`None` for a cold
    /// first touch).
    pub fn observe(&mut self, line: LineAddr) -> Option<usize> {
        self.accesses += 1;
        let set = line.set_index(self.set_bits);
        let tag = line.tag(self.set_bits);
        let stack = &mut self.stacks[set];
        match stack.iter().position(|&t| t == tag) {
            Some(depth) => {
                stack.remove(depth);
                stack.insert(0, tag);
                if depth < MAX_EXACT {
                    self.exact[depth] += 1;
                } else {
                    self.tail.record(depth as u64);
                }
                Some(depth)
            }
            None => {
                stack.insert(0, tag);
                self.cold += 1;
                None
            }
        }
    }

    /// Accesses observed.
    pub const fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Cold (first-touch) accesses.
    pub const fn cold_misses(&self) -> u64 {
        self.cold
    }

    /// Hits an LRU cache of this set structure with `ways` ways would
    /// see over the observed stream.
    pub fn lru_hits(&self, ways: usize) -> u64 {
        self.exact.iter().take(ways.min(MAX_EXACT)).sum::<u64>()
            + if ways > MAX_EXACT { self.tail.count_le(ways as u64 - 1) } else { 0 }
    }

    /// Full LRU miss-ratio curve for associativities `0..=max_ways`.
    pub fn miss_ratio_curve(&self, max_ways: usize) -> Vec<f64> {
        (0..=max_ways)
            .map(|w| {
                if self.accesses == 0 {
                    0.0
                } else {
                    1.0 - self.lru_hits(w) as f64 / self.accesses as f64
                }
            })
            .collect()
    }

    /// The exact distance counts (index = stack depth).
    pub fn exact_counts(&self) -> &[u64] {
        &self.exact
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::basic::BasicCache;
    use crate::policy::Lru;
    use nucache_common::{AccessKind, CoreId, Pc};

    fn one_set() -> CacheGeometry {
        CacheGeometry::new(64 * 4, 4, 64)
    }

    #[test]
    fn distances_match_definition() {
        let mut p = StackDistanceProfiler::new(&one_set());
        assert_eq!(p.observe(LineAddr::new(0)), None);
        assert_eq!(p.observe(LineAddr::new(1)), None);
        assert_eq!(p.observe(LineAddr::new(0)), Some(1));
        assert_eq!(p.observe(LineAddr::new(0)), Some(0));
        assert_eq!(p.cold_misses(), 2);
        assert_eq!(p.accesses(), 4);
    }

    #[test]
    fn predicts_lru_hits_exactly() {
        // The profiler's hit prediction must equal actual LRU simulation
        // for every associativity, on a pseudo-random trace.
        let mut x = 99u64;
        let trace: Vec<LineAddr> = (0..4000)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                LineAddr::new((x >> 40) % 96)
            })
            .collect();
        for ways in [1usize, 2, 4, 8, 16] {
            let geom = CacheGeometry::new(64 * ways as u64 * 8, ways, 64); // 8 sets
            let mut profiler = StackDistanceProfiler::new(&geom);
            let mut cache = BasicCache::new(geom, Lru::new(&geom));
            for &l in &trace {
                profiler.observe(l);
                cache.access(l, AccessKind::Read, CoreId::new(0), Pc::new(0));
            }
            assert_eq!(profiler.lru_hits(ways), cache.stats().hits, "mismatch at {ways} ways");
        }
    }

    #[test]
    fn miss_ratio_curve_is_monotone() {
        let geom = CacheGeometry::new(64 * 4 * 4, 4, 64);
        let mut p = StackDistanceProfiler::new(&geom);
        let mut x = 7u64;
        for _ in 0..2000 {
            x = x.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
            p.observe(LineAddr::new((x >> 33) % 64));
        }
        let curve = p.miss_ratio_curve(32);
        assert_eq!(curve.len(), 33);
        assert!((curve[0] - 1.0).abs() < 1e-12, "0 ways miss everything");
        assert!(curve.windows(2).all(|w| w[1] <= w[0] + 1e-12), "more ways, fewer misses");
    }

    #[test]
    fn empty_profiler_is_sane() {
        let p = StackDistanceProfiler::new(&one_set());
        assert_eq!(p.lru_hits(4), 0);
        assert_eq!(p.miss_ratio_curve(4), vec![0.0; 5]);
    }

    #[test]
    fn deep_distances_land_in_tail() {
        let geom = CacheGeometry::new(64 * 256, 256, 64); // 1 set, 256-way space
        let mut p = StackDistanceProfiler::new(&geom);
        for i in 0..200u64 {
            p.observe(LineAddr::new(i));
        }
        // Reuse line 0 at stack depth 199 (> MAX_EXACT).
        assert_eq!(p.observe(LineAddr::new(0)), Some(199));
        assert_eq!(p.lru_hits(MAX_EXACT), 0);
        assert_eq!(p.lru_hits(256), 1);
    }
}
