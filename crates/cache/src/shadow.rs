//! Sampled shadow tag directories and UCP's UMON utility monitor.
//!
//! A shadow (auxiliary) tag directory tracks what a cache *would* contain
//! if one core had it all to itself under LRU. UMON adds per-recency-rank
//! hit counters, which yield the core's utility curve: how many extra hits
//! each additional way would capture. UCP's lookahead partitioning
//! consumes those curves.
//!
//! Keeping a full shadow directory per core is expensive; the standard
//! remedy — implemented here — is *dynamic set sampling*: only every
//! `sample_shift`-th set is tracked, and counts are scaled up by the
//! sampling factor when read.

use crate::config::CacheGeometry;
use nucache_common::LineAddr;

/// A set-sampled, fully-LRU shadow tag directory with per-rank hit
/// counters (UMON-DSS).
///
/// # Examples
///
/// ```
/// use nucache_cache::shadow::UtilityMonitor;
/// use nucache_cache::CacheGeometry;
/// use nucache_common::LineAddr;
///
/// let geom = CacheGeometry::new(64 * 16 * 256, 16, 64);
/// let mut umon = UtilityMonitor::new(&geom, 0); // sample every set
/// umon.observe(LineAddr::new(3));
/// umon.observe(LineAddr::new(3));
/// assert_eq!(umon.hits_at_rank()[0], 1);
/// ```
#[derive(Debug, Clone)]
pub struct UtilityMonitor {
    assoc: usize,
    set_bits: u32,
    sample_shift: u32,
    // tags[sampled_set * assoc + way]; stamp for LRU rank.
    tags: Vec<Option<u64>>,
    stamps: Vec<u64>,
    stamp: u64,
    hits_at_rank: Vec<u64>,
    misses: u64,
    accesses: u64,
}

impl UtilityMonitor {
    /// Creates a monitor for caches shaped like `geom`, sampling one set
    /// in `2^sample_shift`.
    ///
    /// # Panics
    ///
    /// Panics if the sampling leaves no sets.
    pub fn new(geom: &CacheGeometry, sample_shift: u32) -> Self {
        let sampled_sets = geom.num_sets() >> sample_shift;
        assert!(sampled_sets > 0, "sampling eliminates every set");
        let assoc = geom.associativity();
        UtilityMonitor {
            assoc,
            set_bits: geom.set_bits(),
            sample_shift,
            tags: vec![None; sampled_sets * assoc],
            stamps: vec![0; sampled_sets * assoc],
            stamp: 0,
            hits_at_rank: vec![0; assoc],
            misses: 0,
            accesses: 0,
        }
    }

    /// The sampling factor (counts scale by this when read).
    pub fn scale(&self) -> u64 {
        1 << self.sample_shift
    }

    fn sampled_index(&self, line: LineAddr) -> Option<usize> {
        let set = line.set_index(self.set_bits);
        if set & ((1usize << self.sample_shift) - 1) != 0 {
            return None;
        }
        Some(set >> self.sample_shift)
    }

    /// Feeds one access from the owning core.
    ///
    /// Returns the LRU rank the access hit at (`None` on a shadow miss).
    pub fn observe(&mut self, line: LineAddr) -> Option<usize> {
        let sset = self.sampled_index(line)?;
        self.accesses += 1;
        let tag = line.tag(self.set_bits);
        let base = sset * self.assoc;
        let frames = base..base + self.assoc;
        self.stamp += 1;
        if let Some(way) = frames.clone().position_in(&self.tags, tag) {
            // Rank before promotion: how many ways are younger.
            let mine = self.stamps[base + way];
            let rank = (0..self.assoc)
                .filter(|&w| {
                    w != way && self.stamps[base + w] > mine && self.tags[base + w].is_some()
                })
                .count();
            self.hits_at_rank[rank] += 1;
            self.stamps[base + way] = self.stamp;
            return Some(rank);
        }
        self.misses += 1;
        // Fill: pick an invalid frame, else the LRU one.
        let way = (0..self.assoc).find(|&w| self.tags[base + w].is_none()).unwrap_or_else(|| {
            (0..self.assoc).min_by_key(|&w| self.stamps[base + w]).expect("assoc > 0")
        });
        self.tags[base + way] = Some(tag);
        self.stamps[base + way] = self.stamp;
        None
    }

    /// Hits observed at each LRU rank (rank 0 = MRU), unscaled.
    pub fn hits_at_rank(&self) -> &[u64] {
        &self.hits_at_rank
    }

    /// Shadow misses observed, unscaled.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Accesses observed in sampled sets, unscaled.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Utility curve: `curve[w]` estimates total hits (scaled) this core
    /// would get with `w` ways. `curve[0] = 0`; the curve is
    /// non-decreasing.
    pub fn utility_curve(&self) -> Vec<u64> {
        let mut curve = Vec::with_capacity(self.assoc + 1);
        curve.push(0);
        let mut acc = 0u64;
        for &h in &self.hits_at_rank {
            acc += h * self.scale();
            curve.push(acc);
        }
        curve
    }

    /// Halves all counters (epoch decay).
    pub fn decay(&mut self) {
        self.hits_at_rank.iter_mut().for_each(|h| *h /= 2);
        self.misses /= 2;
        self.accesses /= 2;
    }

    /// Clears counters (contents retained).
    pub fn reset_counters(&mut self) {
        self.hits_at_rank.iter_mut().for_each(|h| *h = 0);
        self.misses = 0;
        self.accesses = 0;
    }
}

/// Extension used by [`UtilityMonitor::observe`] to keep the tag-scan
/// readable.
trait PositionIn {
    fn position_in(self, tags: &[Option<u64>], tag: u64) -> Option<usize>;
}

impl PositionIn for std::ops::Range<usize> {
    fn position_in(self, tags: &[Option<u64>], tag: u64) -> Option<usize> {
        let start = self.start;
        self.clone().find(|&i| tags[i] == Some(tag)).map(|i| i - start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geom(sets: u64, assoc: usize) -> CacheGeometry {
        CacheGeometry::new(64 * assoc as u64 * sets, assoc, 64)
    }

    #[test]
    fn rank_zero_for_immediate_reuse() {
        let g = geom(4, 4);
        let mut m = UtilityMonitor::new(&g, 0);
        assert_eq!(m.observe(LineAddr::new(0)), None);
        assert_eq!(m.observe(LineAddr::new(0)), Some(0));
    }

    #[test]
    fn ranks_reflect_stack_depth() {
        let g = geom(1, 4);
        let mut m = UtilityMonitor::new(&g, 0);
        for n in 0..4 {
            m.observe(LineAddr::new(n));
        }
        // Line 0 is now at rank 3.
        assert_eq!(m.observe(LineAddr::new(0)), Some(3));
        // Line 1 slipped to rank 3 after 0's promotion? No: ranks after
        // promotion of 0: [0,3,2,1] -> line 1 sits at rank 3.
        assert_eq!(m.observe(LineAddr::new(1)), Some(3));
    }

    #[test]
    fn utility_curve_monotone_and_scaled() {
        let g = geom(4, 2);
        let mut m = UtilityMonitor::new(&g, 1); // sample half the sets
        for _ in 0..10 {
            m.observe(LineAddr::new(0)); // set 0: sampled
            m.observe(LineAddr::new(1)); // set 1: not sampled
        }
        let curve = m.utility_curve();
        assert_eq!(curve.len(), 3);
        assert_eq!(curve[0], 0);
        assert!(curve.windows(2).all(|w| w[0] <= w[1]));
        // 9 rank-0 hits, scaled by 2.
        assert_eq!(curve[1], 18);
    }

    #[test]
    fn unsampled_sets_ignored() {
        let g = geom(4, 2);
        let mut m = UtilityMonitor::new(&g, 2); // only set 0 sampled
        assert_eq!(m.observe(LineAddr::new(1)), None);
        assert_eq!(m.observe(LineAddr::new(1)), None);
        assert_eq!(m.accesses(), 0, "set 1 accesses must not be recorded");
        m.observe(LineAddr::new(0));
        assert_eq!(m.accesses(), 1);
    }

    #[test]
    fn shadow_thrash_yields_no_hits() {
        let g = geom(1, 2);
        let mut m = UtilityMonitor::new(&g, 0);
        for _ in 0..10 {
            for n in 0..3 {
                m.observe(LineAddr::new(n));
            }
        }
        assert_eq!(m.utility_curve()[2], 0, "loop of 3 over 2 ways: zero shadow hits");
        assert!(m.misses() >= 29);
    }

    #[test]
    fn decay_and_reset() {
        let g = geom(1, 2);
        let mut m = UtilityMonitor::new(&g, 0);
        m.observe(LineAddr::new(0));
        m.observe(LineAddr::new(0));
        m.decay();
        assert_eq!(m.accesses(), 1);
        m.reset_counters();
        assert_eq!(m.hits_at_rank().iter().sum::<u64>(), 0);
    }
}
