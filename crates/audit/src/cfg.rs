//! Per-function intraprocedural control-flow graphs over the token
//! stream.
//!
//! Two layers live here:
//!
//! * [`fn_spans`] finds every `fn` declaration in a file's token stream
//!   with its name, enclosing `impl`/`trait` parent, visibility and body
//!   token range — the unit the effect inference works per-function on;
//! * [`build_cfg`] turns one function body into a statement-level CFG by
//!   structured recursive descent: control keywords (`if`, `match`,
//!   `while`, `loop`, `for`) are recognized only at *statement start*, so
//!   expression-position control flow (`let x = if …`, closures, struct
//!   literals) is swallowed into the enclosing statement by delimiter
//!   depth tracking. That keeps the builder total on anything the lexer
//!   accepts.
//!
//! The graph deliberately over-approximates reachability: a diverging
//! statement (`return`/`break`/`continue`) gets both its real edge and a
//! fall-through edge, and a `loop` head gets an edge to the loop's after
//! block even when no `break` exists. Every block therefore stays
//! reachable from the entry, and the downstream lints (which only ever
//! ask "may statement B execute while X from statement A is live?")
//! remain conservative. `?` adds an exit edge from the statement's
//! block.

use crate::symbols::{TokKind, Token};
use std::ops::Range;

/// One `fn` declaration found in a token stream.
#[derive(Debug, Clone)]
pub struct FnSpan {
    /// The function's name.
    pub name: String,
    /// Enclosing `impl`/`trait` self-type name, if any.
    pub parent: Option<String>,
    /// 1-indexed line of the `fn` keyword.
    pub line: usize,
    /// Whether the fn is plain `pub` (not `pub(crate)`/private).
    pub vis_pub: bool,
    /// Token index range of the body, excluding the outer braces.
    /// Empty for bodiless trait/extern signatures.
    pub body: Range<usize>,
}

impl FnSpan {
    /// `Parent::name`, or the bare name for free functions.
    pub fn qualified(&self) -> String {
        match &self.parent {
            Some(p) => format!("{p}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// Finds every `fn` in `tokens` with parent and body extent.
///
/// Parent tracking is lexical: an `impl`/`trait` header pushes its
/// self-type name when its brace opens, and the innermost such scope
/// names the parent. Nested fns inherit the enclosing impl's parent —
/// an acceptable over-approximation for this workspace's style.
pub fn fn_spans(tokens: &[Token]) -> Vec<FnSpan> {
    let mut out = Vec::new();
    // Parent name per open brace; None for non-impl scopes.
    let mut scopes: Vec<Option<String>> = Vec::new();
    // Self-type name waiting for its `{`.
    let mut pending: Option<String> = None;
    let mut i = 0usize;
    while i < tokens.len() {
        let t = &tokens[i];
        if t.is_punct("{") {
            scopes.push(pending.take());
            i += 1;
            continue;
        }
        if t.is_punct("}") {
            scopes.pop();
            i += 1;
            continue;
        }
        if t.is_ident("impl") || t.is_ident("trait") {
            pending = impl_self_type(tokens, i);
            i += 1;
            continue;
        }
        if t.is_ident("fn") {
            let Some(name_tok) = tokens.get(i + 1) else { break };
            if name_tok.kind != TokKind::Ident {
                i += 1;
                continue;
            }
            let vis_pub = decl_is_pub(tokens, i);
            let parent = scopes.iter().rev().flatten().next().cloned();
            // Scan forward for the body `{` or a bodiless `;` at
            // delimiter depth 0 (params and return types balance).
            let mut j = i + 2;
            let mut depth = 0i32;
            let mut body = 0..0;
            while let Some(tk) = tokens.get(j) {
                if tk.kind == TokKind::Punct {
                    match tk.text.as_str() {
                        "(" | "[" => depth += 1,
                        ")" | "]" => depth -= 1,
                        "{" if depth == 0 => {
                            let close = matching_brace(tokens, j);
                            body = j + 1..close;
                            break;
                        }
                        ";" if depth == 0 => break,
                        _ => {}
                    }
                }
                j += 1;
            }
            out.push(FnSpan { name: name_tok.text.clone(), parent, line: t.line, vis_pub, body });
            // Keep scanning *inside* the body too (nested fns), so do
            // not skip ahead; the scope stack absorbs the braces.
            i += 2;
            continue;
        }
        i += 1;
    }
    out
}

/// The self-type name of an `impl`/`trait` header starting at `i`
/// (`impl<T> Foo<T>`, `impl Trait for Bar` → `Bar`, `trait Baz` → `Baz`).
fn impl_self_type(tokens: &[Token], i: usize) -> Option<String> {
    let mut j = i + 1;
    let mut angle = 0i32;
    let mut last_ident: Option<String> = None;
    while let Some(t) = tokens.get(j) {
        match t.kind {
            TokKind::Punct => match t.text.as_str() {
                "<" => angle += 1,
                "<<" => angle += 2,
                ">" => angle -= 1,
                ">>" => angle -= 2,
                "{" | ";" if angle <= 0 => return last_ident,
                _ => {}
            },
            TokKind::Ident if angle == 0 => {
                if t.text == "for" {
                    // `impl Trait for Type`: restart, the self type follows.
                    last_ident = None;
                } else if t.text != "where" && t.text != "dyn" && t.text != "mut" {
                    last_ident = Some(t.text.clone());
                } else if t.text == "where" {
                    return last_ident;
                }
            }
            _ => {}
        }
        j += 1;
    }
    last_ident
}

/// Whether the `fn` keyword at `i` is preceded by a plain `pub` within
/// its modifier run (`pub const unsafe fn …`). `pub(crate)` and
/// narrower do not count.
fn decl_is_pub(tokens: &[Token], i: usize) -> bool {
    let mut j = i;
    while j > 0 {
        j -= 1;
        let t = &tokens[j];
        match t.text.as_str() {
            "const" | "unsafe" | "async" | "extern" | ")" => continue,
            "(" | "crate" | "super" | "in" | "self" => continue,
            "pub" => return tokens.get(j + 1).is_none_or(|n| !n.is_punct("(")),
            _ => return false,
        }
    }
    false
}

/// Token index of the `}` matching the `{` at `open`.
fn matching_brace(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0i32;
    for (j, t) in tokens.iter().enumerate().skip(open) {
        if t.is_punct("{") {
            depth += 1;
        } else if t.is_punct("}") {
            depth -= 1;
            if depth == 0 {
                return j;
            }
        }
    }
    tokens.len()
}

/// One statement: a token range and the line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Stmt {
    /// Token index range (into the file's token stream).
    pub tokens: Range<usize>,
    /// 1-indexed line of the first token.
    pub line: usize,
}

/// One basic block: statements in order, successor block indices.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Block {
    /// Statements executed in order.
    pub stmts: Vec<Stmt>,
    /// Successor block indices (deduplicated).
    pub succs: Vec<usize>,
}

/// A function's control-flow graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cfg {
    /// All blocks; indices are stable across identical inputs.
    pub blocks: Vec<Block>,
    /// Index of the entry block.
    pub entry: usize,
    /// Index of the single synthetic exit block (never has successors
    /// or statements).
    pub exit: usize,
}

impl Cfg {
    /// Blocks reachable from `from`, as a bool-per-block vector.
    pub fn reachable_from(&self, from: usize) -> Vec<bool> {
        let mut seen = vec![false; self.blocks.len()];
        let mut stack = vec![from];
        while let Some(b) = stack.pop() {
            if seen[b] {
                continue;
            }
            seen[b] = true;
            stack.extend(self.blocks[b].succs.iter().copied());
        }
        seen
    }

    /// Whether every block is reachable from the entry — the builder's
    /// structural invariant (over-approximate edges guarantee it).
    pub fn all_reachable(&self) -> bool {
        self.reachable_from(self.entry).iter().all(|&r| r)
    }
}

/// An open loop during parsing: where `continue`/`break` go.
struct LoopCtx {
    head: usize,
    after: usize,
    label: Option<String>,
}

struct Builder<'t> {
    toks: &'t [Token],
    blocks: Vec<Block>,
    exit: usize,
    loops: Vec<LoopCtx>,
}

/// Builds the CFG of one function body (`body` excludes the outer
/// braces, as produced by [`fn_spans`]).
pub fn build_cfg(tokens: &[Token], body: Range<usize>) -> Cfg {
    let mut b = Builder { toks: tokens, blocks: Vec::new(), exit: 0, loops: Vec::new() };
    let entry = b.new_block();
    let exit = b.new_block();
    b.exit = exit;
    let last = b.parse_seq(body.start, body.end, entry);
    b.edge(last, exit);
    for blk in &mut b.blocks {
        blk.succs.sort_unstable();
        blk.succs.dedup();
    }
    Cfg { blocks: b.blocks, entry, exit }
}

impl<'t> Builder<'t> {
    fn new_block(&mut self) -> usize {
        self.blocks.push(Block::default());
        self.blocks.len() - 1
    }

    fn edge(&mut self, from: usize, to: usize) {
        self.blocks[from].succs.push(to);
    }

    fn push_stmt(&mut self, block: usize, range: Range<usize>) {
        if range.is_empty() {
            return;
        }
        let line = self.toks[range.start].line;
        self.blocks[block].stmts.push(Stmt { tokens: range, line });
    }

    /// Parses the statement sequence `[i, end)` starting in `cur`;
    /// returns the block control falls out of.
    fn parse_seq(&mut self, mut i: usize, end: usize, mut cur: usize) -> usize {
        let mut label: Option<String> = None;
        while i < end {
            let t = &self.toks[i];
            // `'outer: loop { … }` — remember the label for the loop.
            if t.kind == TokKind::Lifetime
                && self.toks.get(i + 1).is_some_and(|n| n.is_punct(":"))
                && self
                    .toks
                    .get(i + 2)
                    .is_some_and(|n| n.is_ident("loop") || n.is_ident("while") || n.is_ident("for"))
            {
                label = Some(t.text.clone());
                i += 2;
                continue;
            }
            if t.is_ident("if") {
                let (ni, join) = self.parse_if(i, end, cur);
                i = ni;
                cur = join;
            } else if t.is_ident("while") || t.is_ident("for") || t.is_ident("loop") {
                let (ni, after) = self.parse_loop(i, end, cur, label.take());
                i = ni;
                cur = after;
            } else if t.is_ident("match") {
                let (ni, join) = self.parse_match(i, end, cur);
                i = ni;
                cur = join;
            } else if t.is_ident("return") || t.is_ident("break") || t.is_ident("continue") {
                let (ni, _) = self.scan_stmt(i, end);
                self.push_stmt(cur, i..ni);
                let target = self.diverge_target(i);
                self.edge(cur, target);
                // Over-approximate fall-through keeps later statements
                // entry-reachable (see module docs).
                let next = self.new_block();
                self.edge(cur, next);
                cur = next;
                i = ni;
            } else if t.is_punct("{") {
                let close = matching_brace(self.toks, i).min(end);
                cur = self.parse_seq(i + 1, close, cur);
                i = close + 1;
            } else if t.is_punct(";") || t.is_punct("}") {
                i += 1;
            } else {
                let (ni, has_question) = self.scan_stmt(i, end);
                self.push_stmt(cur, i..ni);
                if has_question {
                    self.edge(cur, self.exit);
                }
                i = ni;
            }
        }
        cur
    }

    /// Where a `return`/`break`/`continue` at `i` transfers to.
    fn diverge_target(&self, i: usize) -> usize {
        let t = &self.toks[i];
        if t.is_ident("return") {
            return self.exit;
        }
        let wanted =
            self.toks.get(i + 1).filter(|n| n.kind == TokKind::Lifetime).map(|n| n.text.clone());
        let ctx = match &wanted {
            Some(l) => self.loops.iter().rev().find(|c| c.label.as_deref() == Some(l)),
            None => self.loops.last(),
        };
        match ctx {
            Some(c) if t.is_ident("continue") => c.head,
            Some(c) => c.after,
            // `break` outside a loop (malformed or a swallowed closure):
            // conservatively an exit.
            None => self.exit,
        }
    }

    /// Scans one flat statement from `i`: to the `;` at delimiter depth
    /// 0 (inclusive) or to `end`. Returns `(next_index, saw_question)`.
    fn scan_stmt(&self, mut i: usize, end: usize) -> (usize, bool) {
        let mut depth = 0i32;
        let mut question = false;
        while i < end {
            let t = &self.toks[i];
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" => depth -= 1,
                    "}" => {
                        if depth == 0 {
                            // Tail expression of the enclosing block.
                            return (i, question);
                        }
                        depth -= 1;
                    }
                    "?" => question = true,
                    ";" if depth == 0 => return (i + 1, question),
                    _ => {}
                }
            }
            i += 1;
        }
        (end, question)
    }

    /// Scans from `i` to the first `{` at paren/bracket depth 0 — the
    /// head (condition / iterator / scrutinee) of a control statement.
    fn scan_head(&self, mut i: usize, end: usize) -> usize {
        let mut depth = 0i32;
        while i < end {
            let t = &self.toks[i];
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "(" | "[" => depth += 1,
                    ")" | "]" => depth -= 1,
                    "{" if depth == 0 => return i,
                    _ => {}
                }
            }
            i += 1;
        }
        end
    }

    /// `if cond { … } [else if … | else { … }]` from `i` in `cur`.
    /// Returns `(next_index, join_block)`.
    fn parse_if(&mut self, i: usize, end: usize, cur: usize) -> (usize, usize) {
        let brace = self.scan_head(i + 1, end);
        self.push_stmt(cur, i..brace);
        if brace >= end {
            return (end, cur);
        }
        let close = matching_brace(self.toks, brace).min(end);
        let then = self.new_block();
        self.edge(cur, then);
        let then_end = self.parse_seq(brace + 1, close, then);
        let join;
        let mut ni = close + 1;
        if self.toks.get(ni).filter(|t| t.is_ident("else")).is_some() && ni < end {
            let else_blk = self.new_block();
            self.edge(cur, else_blk);
            let else_end;
            if self.toks.get(ni + 1).is_some_and(|t| t.is_ident("if")) {
                let (n2, j2) = self.parse_if(ni + 1, end, else_blk);
                ni = n2;
                else_end = j2;
            } else if self.toks.get(ni + 1).is_some_and(|t| t.is_punct("{")) {
                let eclose = matching_brace(self.toks, ni + 1).min(end);
                else_end = self.parse_seq(ni + 2, eclose, else_blk);
                ni = eclose + 1;
            } else {
                else_end = else_blk;
                ni += 1;
            }
            join = self.new_block();
            self.edge(then_end, join);
            self.edge(else_end, join);
        } else {
            join = self.new_block();
            self.edge(then_end, join);
            self.edge(cur, join);
        }
        (ni, join)
    }

    /// `while`/`for`/`loop` from `i` in `cur`. Returns
    /// `(next_index, after_block)`.
    fn parse_loop(
        &mut self,
        i: usize,
        end: usize,
        cur: usize,
        label: Option<String>,
    ) -> (usize, usize) {
        let brace = self.scan_head(i + 1, end);
        let head = self.new_block();
        self.edge(cur, head);
        // Condition / iterator evaluation happens in the head.
        self.push_stmt(head, i..brace);
        if brace >= end {
            return (end, head);
        }
        let close = matching_brace(self.toks, brace).min(end);
        let body = self.new_block();
        let after = self.new_block();
        self.edge(head, body);
        // Even a bare `loop` gets head → after so `after` stays
        // entry-reachable (over-approximation, see module docs).
        self.edge(head, after);
        self.loops.push(LoopCtx { head, after, label });
        let body_end = self.parse_seq(brace + 1, close, body);
        self.loops.pop();
        self.edge(body_end, head);
        (close + 1, after)
    }

    /// `match scrutinee { arms… }` from `i` in `cur`. Returns
    /// `(next_index, join_block)`.
    fn parse_match(&mut self, i: usize, end: usize, cur: usize) -> (usize, usize) {
        let brace = self.scan_head(i + 1, end);
        self.push_stmt(cur, i..brace);
        if brace >= end {
            return (end, cur);
        }
        let close = matching_brace(self.toks, brace).min(end);
        let join = self.new_block();
        let mut j = brace + 1;
        let mut any_arm = false;
        while j < close {
            // Pattern (+ optional guard) up to `=>` at depth 0.
            let arrow = self.scan_arrow(j, close);
            if arrow >= close {
                break;
            }
            any_arm = true;
            let arm = self.new_block();
            self.edge(cur, arm);
            // Guard expressions can call things: keep the pattern+guard
            // tokens as a statement of the arm block.
            self.push_stmt(arm, j..arrow);
            let body_start = arrow + 1;
            let arm_end;
            if self.toks.get(body_start).is_some_and(|t| t.is_punct("{")) {
                let bclose = matching_brace(self.toks, body_start).min(close);
                arm_end = self.parse_seq(body_start + 1, bclose, arm);
                j = bclose + 1;
            } else {
                // Expression arm: one statement to the `,` at depth 0.
                let stop = self.scan_arm_expr(body_start, close);
                let first = self.toks.get(body_start);
                let mut cur_arm = arm;
                if first.is_some_and(|t| {
                    t.is_ident("return") || t.is_ident("break") || t.is_ident("continue")
                }) {
                    self.push_stmt(cur_arm, body_start..stop);
                    let target = self.diverge_target(body_start);
                    self.edge(cur_arm, target);
                } else {
                    cur_arm = self.parse_seq(body_start, stop, cur_arm);
                }
                arm_end = cur_arm;
                j = stop + 1;
            }
            self.edge(arm_end, join);
            if self.toks.get(j).is_some_and(|t| t.is_punct(",")) {
                j += 1;
            }
        }
        if !any_arm {
            self.edge(cur, join);
        }
        (close + 1, join)
    }

    /// Index of the `=>` at delimiter depth 0 starting from `i`.
    fn scan_arrow(&self, mut i: usize, end: usize) -> usize {
        let mut depth = 0i32;
        while i < end {
            let t = &self.toks[i];
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" => depth -= 1,
                    "=>" if depth == 0 => return i,
                    _ => {}
                }
            }
            i += 1;
        }
        end
    }

    /// End of an expression match arm: the `,` at depth 0, or `end`.
    fn scan_arm_expr(&self, mut i: usize, end: usize) -> usize {
        let mut depth = 0i32;
        while i < end {
            let t = &self.toks[i];
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" => depth -= 1,
                    "," if depth == 0 => return i,
                    _ => {}
                }
            }
            i += 1;
        }
        end
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::scan;
    use crate::symbols::tokenize;

    fn spans_of(src: &str) -> (Vec<Token>, Vec<FnSpan>) {
        let tokens = tokenize(&scan(src).blanked);
        let spans = fn_spans(&tokens);
        (tokens, spans)
    }

    fn cfg_of(src: &str) -> Cfg {
        let (tokens, spans) = spans_of(src);
        assert_eq!(spans.len(), 1, "{spans:?}");
        build_cfg(&tokens, spans[0].body.clone())
    }

    #[test]
    fn fn_spans_find_parents_and_visibility() {
        let (_, spans) = spans_of(
            "impl<T> Foo<T> { pub fn a(&self) {} fn b() {} }\n\
             impl Debug for Bar { fn fmt(&self) {} }\n\
             pub(crate) fn free() {}\n\
             trait Tr { fn sig(&self); fn dflt(&self) { self.sig() } }\n",
        );
        let q: Vec<(String, bool)> = spans.iter().map(|s| (s.qualified(), s.vis_pub)).collect();
        assert_eq!(
            q,
            [
                ("Foo::a".to_string(), true),
                ("Foo::b".to_string(), false),
                ("Bar::fmt".to_string(), false),
                ("free".to_string(), false),
                ("Tr::sig".to_string(), false),
                ("Tr::dflt".to_string(), false),
            ]
        );
        assert!(spans[4].body.is_empty(), "bodiless trait signature");
        assert!(!spans[5].body.is_empty(), "default method has a body");
    }

    #[test]
    fn straight_line_is_one_block() {
        let cfg = cfg_of("fn f() { let a = 1; let b = a + 2; b }");
        assert_eq!(cfg.blocks[cfg.entry].stmts.len(), 3);
        assert_eq!(cfg.blocks[cfg.entry].succs, vec![cfg.exit]);
        assert!(cfg.all_reachable());
    }

    #[test]
    fn if_else_diamond() {
        let cfg = cfg_of("fn f(x: u64) -> u64 { if x > 1 { a() } else { b() } }");
        // entry (cond) → then, else; both → join → exit.
        assert_eq!(cfg.blocks[cfg.entry].succs.len(), 2);
        assert!(cfg.all_reachable());
        assert!(cfg.blocks[cfg.exit].succs.is_empty());
    }

    #[test]
    fn expression_position_if_is_swallowed() {
        let cfg = cfg_of("fn f(c: bool) { let x = if c { 1 } else { 2 }; use_it(x); }");
        // No branching: both statements sit in the entry block.
        assert_eq!(cfg.blocks[cfg.entry].stmts.len(), 2);
        assert_eq!(cfg.blocks[cfg.entry].succs, vec![cfg.exit]);
    }

    #[test]
    fn loops_have_back_edges_and_labeled_break() {
        let cfg =
            cfg_of("fn f() { 'outer: loop { while cond() { if x { break 'outer; } } } done(); }");
        assert!(cfg.all_reachable());
        // Some block must point back to a lower-numbered block (the back edge).
        let has_back = cfg
            .blocks
            .iter()
            .enumerate()
            .any(|(i, b)| b.succs.iter().any(|&s| s <= i && s != cfg.exit));
        assert!(has_back, "{cfg:?}");
    }

    #[test]
    fn question_mark_adds_exit_edge() {
        let cfg = cfg_of("fn f() -> Option<u64> { let v = g()?; Some(v + 1) }");
        assert!(cfg.blocks[cfg.entry].succs.contains(&cfg.exit));
        assert_eq!(cfg.blocks[cfg.entry].stmts.len(), 2);
    }

    #[test]
    fn match_arms_fan_out_and_rejoin() {
        let cfg = cfg_of(
            "fn f(x: Option<u64>) -> u64 { match x { Some(v) if v > 2 => v, Some(v) => { h(v); v } None => 0, } }",
        );
        // Scrutinee block fans out to three arms.
        assert_eq!(cfg.blocks[cfg.entry].succs.len(), 3, "{cfg:?}");
        assert!(cfg.all_reachable());
    }

    #[test]
    fn return_reaches_exit_and_builder_stays_total() {
        let cfg = cfg_of("fn f(x: bool) -> u64 { if x { return 3; } compute() }");
        assert!(cfg.all_reachable());
        // The then-branch block carries an edge to exit.
        let to_exit = cfg.blocks.iter().filter(|b| b.succs.contains(&cfg.exit)).count();
        assert!(to_exit >= 2, "return and fn tail both exit: {cfg:?}");
    }

    #[test]
    fn closures_and_nested_braces_are_swallowed() {
        let cfg = cfg_of(
            "fn f(v: &mut Vec<u64>) { v.retain(|x| { *x /= 2; *x > 0 }); let s = S { a: 1 }; }",
        );
        assert_eq!(cfg.blocks[cfg.entry].stmts.len(), 2);
    }
}
