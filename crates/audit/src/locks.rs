//! Lock-discipline lints over the effect model.
//!
//! Every `Mutex`/`RwLock` acquisition in the workspace is resolved to a
//! *lock identity* — a stable name for the lock object itself, not the
//! guard variable:
//!
//! | identity | resolved from |
//! |----------|---------------|
//! | `field:Type.name` | `self.name.lock()` where `Type` declares a lock-typed field `name` (symbol index) |
//! | `static:NAME` | `NAME.lock()` where `NAME` is a lock-typed `static` |
//! | `fn:name` | `name().lock()` — a guard-getter / slot-accessor call receiver |
//! | `local:Fn.name` | anything else (locals, parameters, per-element locks) |
//!
//! On top of the per-function CFG and the workspace call graph, three
//! hard-gated lints enforce the acquisition discipline:
//!
//! | lint | rule |
//! |------|------|
//! | `lock-order-cycle` | the workspace lock-acquisition-order graph (edge `A→B` when `B` is acquired — directly or via any callee — while a guard of `A` is live) must be acyclic |
//! | `double-lock` | no CFG path re-acquires a lock identity while a guard of the same identity is still live |
//! | `guard-escapes-hot-path` | an `// audit:hot-path` fn must not return or store a lock guard |
//!
//! Findings are tolerated only through the shared concurrency ledger
//! `crates/audit/concurrency.txt` (same format and stale-entry contract
//! as `hotpath.txt`; see [`crate::hotpath::Justifications`]).

use crate::cfg::build_cfg;
use crate::diag::{Diagnostic, Severity};
use crate::effects::{EffectModel, EffectSet, FnInfo};
use crate::hotpath::{Justification, Justifications, STUB_REASON};
use crate::resolve::Workspace;
use crate::symbols::{SymbolKind, TokKind, Token};
use std::collections::{BTreeMap, BTreeSet};

/// The lock-lint names and one-line rules, for `--help`-style listings.
pub const LOCK_LINTS: &[(&str, &str)] = &[
    (
        "lock-order-cycle",
        "the workspace lock-acquisition-order graph must be acyclic across all call paths",
    ),
    (
        "double-lock",
        "no CFG path re-acquires a lock identity while a guard of the same identity is live",
    ),
    ("guard-escapes-hot-path", "an audit:hot-path fn must not return or store a lock guard"),
];

/// Relative path of the shared concurrency ledger (lock + atomic lints).
pub const CONCURRENCY_LEDGER: &str = "crates/audit/concurrency.txt";

/// Header written above regenerated concurrency ledgers.
pub const CONCURRENCY_HEADER: &str =
    "# Concurrency ledger: every entry tolerates one lock-discipline or\n\
     # atomic-ordering finding.\n\
     # Format: <lint> <crate> <Qualified::fn> <source> [tag] -- reason\n\
     # Maintained by `nucache-audit locks --update-justify`; reasons are hand-written.\n";

/// Lock-acquiring method names that are unambiguous by name alone.
const LOCK_OPS: &[&str] = &["lock", "try_lock"];

/// `RwLock` methods, accepted only when the receiver resolves to a
/// known `RwLock`-typed field or static (they collide with I/O and
/// slice methods too often to trust by name).
const RW_OPS: &[&str] = &["read", "write", "try_read", "try_write"];

/// The lock/atomic receiver universe: which names are lock-typed fields
/// or statics, extracted from the symbol index's declared types.
#[derive(Debug, Default)]
pub(crate) struct LockUniverse {
    /// Field name → parent types declaring a lock- or atomic-typed
    /// field of that name.
    field_parents: BTreeMap<String, BTreeSet<String>>,
    /// Lock- or atomic-typed `static` names.
    statics: BTreeSet<String>,
    /// Subset of `field_parents` keys / `statics` whose type is `RwLock`.
    rw_names: BTreeSet<String>,
}

/// Whether a declared type (whitespace-free text) is a lock or atomic
/// wrapper the concurrency lints should track.
fn is_tracked_type(ty: &str) -> bool {
    ty.contains("Mutex<") || ty.contains("RwLock<") || ty.contains("Atomic")
}

impl LockUniverse {
    /// Builds the universe from every field/static declared type.
    pub(crate) fn build(ws: &Workspace) -> LockUniverse {
        let mut uni = LockUniverse::default();
        for s in &ws.index.symbols {
            let Some(ty) = &s.field_type else { continue };
            if !is_tracked_type(ty) {
                continue;
            }
            match s.kind {
                SymbolKind::Field => {
                    if let Some(parent) = &s.parent {
                        uni.field_parents.entry(s.name.clone()).or_default().insert(parent.clone());
                    }
                }
                SymbolKind::Static => {
                    uni.statics.insert(s.name.clone());
                }
                _ => continue,
            }
            if ty.contains("RwLock<") {
                uni.rw_names.insert(s.name.clone());
            }
        }
        uni
    }

    /// Whether `name` may be an `RwLock` field or static.
    fn is_rw(&self, name: &str) -> bool {
        self.rw_names.contains(name)
    }
}

/// One segment of a receiver chain, rightmost (nearest the lock op)
/// first: `self.cells.lock()` → `[cells, self]`.
#[derive(Debug)]
pub(crate) struct Seg {
    name: String,
    call: bool,
}

/// Walks left from token `before` (the index just before the `.` of the
/// lock/atomic op) collecting the `.`-joined receiver chain. Indexing
/// (`slots[i]`) is skipped over; call parens mark the segment as a call.
pub(crate) fn receiver_segments(toks: &[Token], before: usize, start: usize) -> Vec<Seg> {
    let mut segs = Vec::new();
    let mut j = before as isize;
    let lo = start as isize;
    while j >= lo {
        let mut call = false;
        // Skip trailing index/call groups back to their opener.
        while j >= lo && (toks[j as usize].is_punct(")") || toks[j as usize].is_punct("]")) {
            let close = &toks[j as usize].text;
            let open = if close == ")" { "(" } else { "[" };
            if close == ")" {
                call = true;
            }
            let mut depth = 0i32;
            while j >= lo {
                let t = &toks[j as usize].text;
                if t == close.as_str() {
                    depth += 1;
                } else if t == open {
                    depth -= 1;
                    if depth == 0 {
                        j -= 1;
                        break;
                    }
                }
                j -= 1;
            }
        }
        if j < lo || toks[j as usize].kind != TokKind::Ident {
            break;
        }
        segs.push(Seg { name: toks[j as usize].text.clone(), call });
        j -= 1;
        if j < lo || !toks[j as usize].is_punct(".") {
            break;
        }
        j -= 1;
    }
    segs
}

/// Resolves a receiver chain to a lock identity for function `f`.
pub(crate) fn resolve_identity(segs: &[Seg], f: &FnInfo, uni: &LockUniverse) -> String {
    let Some(first) = segs.first() else {
        return format!("local:{}.opaque", f.qualified());
    };
    // `slot_getter().lock()` — the accessor call names the lock.
    if first.call {
        return format!("fn:{}", first.name);
    }
    // `self.field.lock()` (possibly `self.a.b.lock()`): a field of the
    // enclosing impl type.
    if segs.len() >= 2 && segs.last().is_some_and(|s| s.name == "self" && !s.call) {
        let path: Vec<&str> =
            segs[..segs.len() - 1].iter().rev().map(|s| s.name.as_str()).collect();
        let field = segs[0].name.as_str();
        let parent = f
            .span
            .parent
            .as_deref()
            .filter(|p| uni.field_parents.get(field).is_some_and(|ps| ps.contains(*p)))
            .map(str::to_string)
            .or_else(|| unique_parent(uni, field))
            .or_else(|| f.span.parent.clone())
            .unwrap_or_else(|| "?".to_string());
        return format!("field:{parent}.{}", path.join("."));
    }
    // Bare name: a static, a unique workspace lock field, or a local.
    if segs.len() == 1 {
        let name = first.name.as_str();
        if uni.statics.contains(name) {
            return format!("static:{name}");
        }
        if let Some(parent) = unique_parent(uni, name) {
            return format!("field:{parent}.{name}");
        }
        return format!("local:{}.{name}", f.qualified());
    }
    // Dotted non-self path (`runner.cache.cells`): keep it local but
    // stable on the full path.
    let path: Vec<&str> = segs.iter().rev().map(|s| s.name.as_str()).collect();
    format!("local:{}.{}", f.qualified(), path.join("."))
}

/// The single parent type declaring a tracked field `name`, if unique.
fn unique_parent(uni: &LockUniverse, name: &str) -> Option<String> {
    let parents = uni.field_parents.get(name)?;
    (parents.len() == 1).then(|| parents.iter().next().cloned())?
}

/// One lock acquisition site inside a function body.
#[derive(Debug, Clone)]
struct Acq {
    /// Resolved lock identity.
    ident: String,
    /// 1-indexed source line.
    line: usize,
    /// Token index of the op name (or getter-call name).
    tok: usize,
}

/// Finds every direct lock acquisition in `f`'s body.
fn direct_acqs(toks: &[Token], f: &FnInfo, uni: &LockUniverse) -> Vec<Acq> {
    let mut out = Vec::new();
    let body = f.span.body.clone();
    for i in body.clone() {
        if i + 2 >= body.end || !toks[i].is_punct(".") || !toks[i + 2].is_punct("(") {
            continue;
        }
        let op = toks[i + 1].text.as_str();
        let is_lock = LOCK_OPS.contains(&op);
        let is_rw = RW_OPS.contains(&op);
        if !is_lock && !is_rw {
            continue;
        }
        if i == body.start {
            continue;
        }
        let segs = receiver_segments(toks, i - 1, body.start);
        // read/write/try_read/try_write only count when the receiver is
        // a known RwLock; lock/try_lock always count.
        if is_rw && !segs.first().is_some_and(|s| !s.call && uni.is_rw(&s.name)) {
            continue;
        }
        let ident = resolve_identity(&segs, f, uni);
        out.push(Acq { ident, line: toks[i + 1].line, tok: i + 1 });
    }
    out
}

/// Runs the three lock-discipline lints, returning diagnostics and the
/// full set of required ledger entries for `--update-justify`.
pub fn run_lock_lints(
    ws: &Workspace,
    model: &EffectModel,
    just: &Justifications,
) -> (Vec<Diagnostic>, Vec<Justification>) {
    let uni = LockUniverse::build(ws);
    let mut cx = LockCx {
        ws,
        model,
        just,
        diags: Vec::new(),
        required: Vec::new(),
        used: BTreeSet::new(),
        edges: BTreeMap::new(),
    };

    // Per-fn direct acquisitions + guard-getter identities.
    let mut acqs: Vec<Vec<Acq>> = Vec::with_capacity(model.fns.len());
    for f in &model.fns {
        if f.span.body.is_empty() {
            acqs.push(Vec::new());
            continue;
        }
        acqs.push(direct_acqs(&ws.files[f.file].tokens, f, &uni));
    }
    let getter_ident: Vec<Option<String>> = model
        .fns
        .iter()
        .enumerate()
        .map(|(i, f)| {
            is_guard_getter(ws, f).then(|| acqs[i].first().map(|a| a.ident.clone())).flatten()
        })
        .collect();

    // Transitive acquisition sets: everything a call to `f` may lock.
    let mut acquired: Vec<BTreeSet<String>> =
        acqs.iter().map(|list| list.iter().map(|a| a.ident.clone()).collect()).collect();
    loop {
        let mut changed = false;
        for i in 0..model.fns.len() {
            let mut grown = acquired[i].clone();
            for call in &model.fns[i].calls {
                for &j in &call.targets {
                    grown.extend(acquired[j].iter().cloned());
                }
            }
            if grown.len() != acquired[i].len() {
                acquired[i] = grown;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    for (fi, fn_acqs) in acqs.iter().enumerate() {
        let f = model.fns[fi].clone();
        if f.span.body.is_empty() {
            continue;
        }
        cx.scan_fn(fi, &f, fn_acqs, &acquired, &getter_ident);
    }
    cx.lock_order_cycles();
    cx.stale_entries();
    let LockCx { diags, required, .. } = cx;
    (diags, required)
}

/// Hotpath-style guard-getter detection: a tiny fn whose root statement
/// is the lock chain itself (returned, not `let`-bound).
fn is_guard_getter(ws: &Workspace, f: &FnInfo) -> bool {
    if !f.direct.contains(EffectSet::LOCK) || f.span.body.is_empty() {
        return false;
    }
    let toks = &ws.files[f.file].tokens;
    let cfg = build_cfg(toks, f.span.body.clone());
    let all: Vec<_> = cfg.blocks.iter().flat_map(|b| &b.stmts).collect();
    all.len() <= 2
        && all
            .iter()
            .any(|s| lock_chain_at_root(toks, &s.tokens) && !toks[s.tokens.start].is_ident("let"))
}

/// Whether the root expression of `stmt` (past `let NAME =` if present)
/// contains a `.lock(`-family chain at nesting depth 0.
fn lock_chain_at_root(toks: &[Token], stmt: &std::ops::Range<usize>) -> bool {
    let start = after_eq(toks, stmt).unwrap_or(stmt.start);
    root_positions(toks, start, stmt.end).into_iter().any(|i| {
        i + 2 < stmt.end
            && toks[i].is_punct(".")
            && LOCK_OPS.contains(&toks[i + 1].text.as_str())
            && toks[i + 2].is_punct("(")
    })
}

/// Token positions in `[start, end)` at nesting depth 0.
fn root_positions(toks: &[Token], start: usize, end: usize) -> Vec<usize> {
    let mut out = Vec::new();
    let mut depth = 0i32;
    for (i, tok) in toks.iter().enumerate().take(end).skip(start) {
        match tok.text.as_str() {
            "(" | "[" | "{" => {
                if depth == 0 {
                    out.push(i);
                }
                depth += 1;
            }
            ")" | "]" | "}" => depth -= 1,
            _ => {
                if depth == 0 {
                    out.push(i);
                }
            }
        }
    }
    out
}

/// Position just past the first top-level `=` of `stmt`, if any.
fn after_eq(toks: &[Token], stmt: &std::ops::Range<usize>) -> Option<usize> {
    let mut depth = 0i32;
    for i in stmt.clone() {
        match toks[i].text.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => depth -= 1,
            "=" if depth == 0 => return Some(i + 1),
            _ => {}
        }
    }
    None
}

/// If `stmt` is `let [mut] name = …`, returns `name`. Uppercase-initial
/// "names" are pattern destructures (`let Some(t0) = *slot.lock()…`):
/// the guard is a statement-scoped temporary there, so they don't bind.
fn binding_name(toks: &[Token], stmt: &std::ops::Range<usize>) -> Option<String> {
    let mut it = stmt.clone();
    let first = it.next()?;
    if !toks[first].is_ident("let") {
        return None;
    }
    let mut name = None;
    for i in it {
        if toks[i].is_ident("mut") {
            continue;
        }
        if toks[i].kind == TokKind::Ident {
            name = Some(toks[i].text.clone());
        }
        break;
    }
    let name = name?;
    if name == "_" || name.starts_with(|c: char| c.is_ascii_uppercase()) {
        return None;
    }
    Some(name)
}

/// Finds `drop(NAME)` in `[from, to)`, returning its token position.
fn find_drop(toks: &[Token], from: usize, to: usize, name: &str) -> Option<usize> {
    (from..to.saturating_sub(2)).find(|&i| {
        toks[i].is_ident("drop") && toks[i + 1].is_punct("(") && toks[i + 2].is_ident(name)
    })
}

/// Shared lint-pass state for the lock lints.
struct LockCx<'a> {
    ws: &'a Workspace,
    model: &'a EffectModel,
    just: &'a Justifications,
    diags: Vec<Diagnostic>,
    required: Vec<Justification>,
    used: BTreeSet<usize>,
    /// Acquisition-order edges `A→B` with first-seen provenance
    /// `(fn index, line)`.
    edges: BTreeMap<(String, String), (usize, usize)>,
}

impl LockCx<'_> {
    fn file_rel(&self, f: &FnInfo) -> String {
        self.ws.files[f.file].rel.clone()
    }

    /// Records a required ledger entry (deduplicated), returning whether
    /// the current ledger already covers it. A covering entry whose
    /// reason is still the [`STUB_REASON`] placeholder is flagged as a
    /// hard finding: a stub is scaffolding, not a justification.
    fn require(&mut self, lint: &str, f: &FnInfo, source: &str) -> bool {
        let func = f.qualified();
        let covered = self.just.covers(lint, &f.crate_name, &func, source);
        if let Some(i) = covered {
            self.used.insert(i);
            if self.just.entries[i].reason == STUB_REASON {
                let line = f.span.line;
                self.diag(
                    "stub-justification",
                    f,
                    line,
                    format!(
                        "ledger entry `{lint} {} {func} {source}` still carries the \
                         `--update-justify` stub reason; write a real justification",
                        f.crate_name
                    ),
                );
            }
        }
        let entry = match covered {
            Some(i) => self.just.entries[i].clone(),
            None => Justification {
                lint: lint.to_string(),
                krate: f.crate_name.clone(),
                func,
                source: source.to_string(),
                tag: None,
                reason: STUB_REASON.to_string(),
            },
        };
        if !self.required.contains(&entry) {
            self.required.push(entry);
        }
        covered.is_some()
    }

    fn diag(&mut self, lint: &'static str, f: &FnInfo, line: usize, message: String) {
        self.diags.push(Diagnostic {
            file: self.file_rel(f),
            line,
            lint,
            message,
            severity: Severity::Error,
        });
    }

    /// Relates a live guard of `held` to a later acquisition of `other`:
    /// same identity is a double-lock, different identities an order edge.
    fn relate(&mut self, f: &FnInfo, held: &str, other: &str, line: usize, fi: usize, via: &str) {
        if held == other {
            if !self.require("double-lock", f, held) {
                self.diag(
                    "double-lock",
                    f,
                    line,
                    format!(
                        "`{}` re-acquires `{held}` {via} while a guard of it is still live",
                        f.qualified()
                    ),
                );
            }
        } else {
            self.edges.entry((held.to_string(), other.to_string())).or_insert((fi, line));
        }
    }

    /// Scans one function: same-statement acquisition pairs, and — for
    /// `let`-bound guards — every acquisition or lock-acquiring call in
    /// the guard's CFG-live region (cut at `drop(guard)`).
    fn scan_fn(
        &mut self,
        fi: usize,
        f: &FnInfo,
        acqs: &[Acq],
        acquired: &[BTreeSet<String>],
        getter_ident: &[Option<String>],
    ) {
        let toks = self.ws.files[f.file].tokens.clone();
        let toks = &toks[..];
        let cfg = build_cfg(toks, f.span.body.clone());

        // Acquisitions including getter calls (the call acquires the
        // getter's lock and hands the guard to this fn).
        let mut all_acqs: Vec<Acq> = acqs.to_vec();
        for call in &f.calls {
            if let Some(ident) = call.targets.iter().find_map(|&j| getter_ident[j].clone()) {
                all_acqs.push(Acq { ident, line: call.line, tok: call.tok });
            }
        }
        all_acqs.sort_by_key(|a| a.tok);
        if all_acqs.is_empty() {
            // No acquisition in this fn means no guard is ever held here,
            // so no ordering edges can originate from it.
            self.guard_escape(f, toks, &cfg, &[]);
            return;
        }

        // Same-statement ordering: a guard temporary lives to the end of
        // its statement, so every later acquisition / lock-acquiring
        // call in the *same* statement happens under it — unless a `;`
        // separates the two sites. The CFG swallows closure and block
        // bodies into the enclosing flat statement, and a `;` between
        // two sites means the first one's sub-statement (and with it the
        // temporary) has already ended. The cost is that `let`-bound
        // guards *inside* swallowed closures get no cross-statement
        // liveness tracking; the interleaving explorer covers those
        // seams dynamically.
        let stmts: Vec<std::ops::Range<usize>> =
            cfg.blocks.iter().flat_map(|b| b.stmts.iter().map(|s| s.tokens.clone())).collect();
        let semi_between =
            |a: usize, b: usize| -> bool { toks[a..b].iter().any(|t| t.is_punct(";")) };
        for (k, a) in all_acqs.iter().enumerate() {
            let Some(stmt) = stmts.iter().find(|r| r.contains(&a.tok)) else { continue };
            for b in &all_acqs[k + 1..] {
                if !stmt.contains(&b.tok) || semi_between(a.tok, b.tok) {
                    continue;
                }
                let (h, o, line) = (a.ident.clone(), b.ident.clone(), b.line);
                self.relate(f, &h, &o, line, fi, "in the same statement");
            }
            for call in &f.calls {
                if !stmt.contains(&call.tok) || call.tok <= a.tok || semi_between(a.tok, call.tok) {
                    continue;
                }
                if call.targets.iter().any(|&j| getter_ident[j].is_some()) {
                    continue; // already counted as an acquisition
                }
                let held = a.ident.clone();
                let others: Vec<String> =
                    call.targets.iter().flat_map(|&j| acquired[j].iter().cloned()).collect();
                let (name, line) = (call.name.clone(), call.line);
                for o in others {
                    self.relate(f, &held, &o, line, fi, &format!("via call to `{name}`"));
                }
            }
        }

        for (bi, block) in cfg.blocks.iter().enumerate() {
            for (si, stmt) in block.stmts.iter().enumerate() {
                // `let`-bound guards: CFG liveness across statements.
                let Some(guard) = binding_name(toks, &stmt.tokens) else { continue };
                let bound: Vec<&Acq> = all_acqs
                    .iter()
                    .filter(|a| {
                        if !stmt.tokens.contains(&a.tok) {
                            return false;
                        }
                        let start = after_eq(toks, &stmt.tokens).unwrap_or(stmt.tokens.start);
                        // The op ident sits at depth 0 of the root chain;
                        // getter-call acquisitions likewise.
                        root_positions(toks, start, stmt.tokens.end).contains(&a.tok)
                    })
                    .collect();
                let Some(acq) = bound.first() else { continue };
                let held = acq.ident.clone();
                let drop_pos = find_drop(toks, stmt.tokens.end, f.span.body.end, &guard);
                let mut live: Vec<(usize, std::ops::Range<usize>)> = Vec::new();
                for s in &block.stmts[si + 1..] {
                    live.push((s.line, s.tokens.clone()));
                }
                let mut marked = vec![false; cfg.blocks.len()];
                for &succ in &block.succs {
                    for (j, r) in cfg.reachable_from(succ).iter().enumerate() {
                        marked[j] |= r;
                    }
                }
                for (j, b) in cfg.blocks.iter().enumerate() {
                    if marked[j] && j != bi {
                        for s in &b.stmts {
                            live.push((s.line, s.tokens.clone()));
                        }
                    }
                }
                for (line, range) in live {
                    if range.start <= stmt.tokens.start {
                        continue; // loop back-edges into earlier statements
                    }
                    if drop_pos.is_some_and(|d| range.start >= d) {
                        continue;
                    }
                    for a in &all_acqs {
                        if range.contains(&a.tok) {
                            let (o, l) = (a.ident.clone(), a.line);
                            self.relate(f, &held, &o, l, fi, "on a live-guard path");
                        }
                    }
                    for call in &f.calls {
                        if !range.contains(&call.tok) {
                            continue;
                        }
                        if call.targets.iter().any(|&j| getter_ident[j].is_some()) {
                            continue;
                        }
                        let others: Vec<String> = call
                            .targets
                            .iter()
                            .flat_map(|&j| acquired[j].iter().cloned())
                            .collect();
                        let (name, cline) = (call.name.clone(), call.line);
                        for o in others {
                            self.relate(f, &held, &o, cline, fi, &format!("via call to `{name}`"));
                        }
                    }
                    let _ = line;
                }
            }
        }
        self.guard_escape(f, toks, &cfg, &all_acqs);
    }

    /// `guard-escapes-hot-path`: a hot-path fn whose tail expression or
    /// `return` statement is a lock chain / bound guard, or that assigns
    /// a lock chain into a pre-existing place.
    fn guard_escape(&mut self, f: &FnInfo, toks: &[Token], cfg: &crate::cfg::Cfg, acqs: &[Acq]) {
        if !f.hot_path {
            return;
        }
        let mut guards: BTreeSet<String> = BTreeSet::new();
        let mut stmts: Vec<(usize, std::ops::Range<usize>)> = Vec::new();
        for block in &cfg.blocks {
            for stmt in &block.stmts {
                stmts.push((stmt.line, stmt.tokens.clone()));
                if binding_name(toks, &stmt.tokens).is_some()
                    && lock_chain_at_root(toks, &stmt.tokens)
                {
                    if let Some(name) = binding_name(toks, &stmt.tokens) {
                        guards.insert(name);
                    }
                }
            }
        }
        let last_end = stmts.iter().map(|(_, r)| r.end).max().unwrap_or(0);
        for (line, range) in &stmts {
            let is_return = toks[range.start].is_ident("return");
            let is_tail = range.end >= last_end
                && range.end >= f.span.body.end.saturating_sub(1)
                && !toks[range.end.saturating_sub(1)].is_punct(";");
            let is_let = toks[range.start].is_ident("let");
            // A chain escapes via `return`, a tail expression, or a
            // non-`let` assignment (`*out = x.lock()…`).
            let escapes_chain = !is_let
                && (is_return || is_tail || after_eq(toks, range).is_some())
                && lock_chain_at_root(toks, range);
            let escapes_guard = (is_return || is_tail)
                && !is_let
                && root_positions(toks, range.start, range.end)
                    .iter()
                    .any(|&i| guards.contains(&toks[i].text));
            if !escapes_chain && !escapes_guard {
                continue;
            }
            let source = if escapes_chain {
                acqs.iter()
                    .find(|a| range.contains(&a.tok))
                    .map_or_else(|| "return".to_string(), |a| a.ident.clone())
            } else {
                root_positions(toks, range.start, range.end)
                    .iter()
                    .find(|&&i| guards.contains(&toks[i].text))
                    .map_or_else(|| "return".to_string(), |&i| toks[i].text.clone())
            };
            if !self.require("guard-escapes-hot-path", f, &source) {
                self.diag(
                    "guard-escapes-hot-path",
                    f,
                    *line,
                    format!(
                        "`{}` is an audit:hot-path fn but lets a lock guard escape (`{source}`)",
                        f.qualified()
                    ),
                );
            }
        }
    }

    /// `lock-order-cycle`: every edge that sits on a cycle in the
    /// acquisition-order graph is a finding.
    fn lock_order_cycles(&mut self) {
        let mut adj: BTreeMap<&String, BTreeSet<&String>> = BTreeMap::new();
        for (a, b) in self.edges.keys() {
            adj.entry(a).or_default().insert(b);
        }
        let cyclic: Vec<(String, String, usize, usize)> = self
            .edges
            .iter()
            .filter(|((a, b), _)| reaches(&adj, b, a))
            .map(|((a, b), &(fi, line))| (a.clone(), b.clone(), fi, line))
            .collect();
        for (a, b, fi, line) in cyclic {
            let f = self.model.fns[fi].clone();
            let source = format!("{a}->{b}");
            if !self.require("lock-order-cycle", &f, &source) {
                self.diag(
                    "lock-order-cycle",
                    &f,
                    line,
                    format!(
                        "acquisition order `{a}` then `{b}` completes a cycle — another call path takes them in the opposite order (potential deadlock)"
                    ),
                );
            }
        }
    }

    /// Ledger entries for lock lints that no finding required are stale.
    fn stale_entries(&mut self) {
        for (i, e) in self.just.entries.iter().enumerate() {
            if !LOCK_LINTS.iter().any(|(l, _)| *l == e.lint) {
                continue; // other family (atomics) — not ours to judge
            }
            if !self.used.contains(&i) {
                self.diags.push(Diagnostic {
                    file: CONCURRENCY_LEDGER.to_string(),
                    line: 0,
                    lint: "double-lock",
                    message: format!(
                        "stale ledger entry `{}` — no current finding requires it",
                        e.render()
                    ),
                    severity: Severity::Error,
                });
            }
        }
    }
}

/// BFS reachability from `from` to `to` over the order graph.
fn reaches(adj: &BTreeMap<&String, BTreeSet<&String>>, from: &String, to: &String) -> bool {
    let mut seen: BTreeSet<&String> = BTreeSet::new();
    let mut queue: Vec<&String> = vec![from];
    while let Some(n) = queue.pop() {
        if n == to {
            return true;
        }
        if !seen.insert(n) {
            continue;
        }
        if let Some(next) = adj.get(n) {
            queue.extend(next.iter().copied());
        }
    }
    false
}
