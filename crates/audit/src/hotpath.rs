//! Hot-path contract lints over the effect model.
//!
//! Three lints turn the kernel's documented contracts into hard gates:
//!
//! | lint | contract |
//! |------|----------|
//! | `alloc-in-hot-path` | no allocation reachable from an `// audit:hot-path` root except sites/functions carrying `// audit:allow-alloc(reason)` |
//! | `panic-in-hot-path` | every panic source (and unresolved callee) reachable from the kernel public API is justified |
//! | `lock-held-across-call` | no lock guard live across a call or site that may allocate, lock or do I/O |
//!
//! Every tolerated finding needs *two* marks: a machine-checkable source
//! annotation where the contract demands one, and an entry in the
//! justification file `crates/audit/hotpath.txt` (the reviewable ledger,
//! same shape as `pub_baseline.txt`). Entries are
//!
//! ```text
//! <lint> <crate> <Qualified::fn> <source> [tag] -- reason
//! ```
//!
//! where `<source>` names the effect site (`push`, `index`, `expect`,
//! `unknown:<callee>`, or `fn` for a whole-function allocation
//! boundary), and the optional `[tag]` ties an allocation exception to
//! the enumerated contract in the kernel's `# Allocation behaviour`
//! doc section — a `doc-constant-drift` check keeps the two lists equal.

use crate::cfg::build_cfg;
use crate::diag::{Diagnostic, Severity};
use crate::effects::{EffectModel, EffectSet, FnInfo};
use crate::resolve::Workspace;
use crate::symbols::Token;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// The effect-lint names and one-line rules, for `--help`-style listings.
pub const EFFECT_LINTS: &[(&str, &str)] = &[
    (
        "alloc-in-hot-path",
        "no allocation reachable from audit:hot-path roots without audit:allow-alloc + ledger entry",
    ),
    (
        "panic-in-hot-path",
        "every panic source / unknown callee reachable from the kernel public API is justified",
    ),
    (
        "lock-held-across-call",
        "no lock guard live across a site or call that may allocate, lock or do I/O",
    ),
];

/// Effects that must not happen while a lock guard is live.
const GUARD_MASK: EffectSet = EffectSet(EffectSet::ALLOC.0 | EffectSet::LOCK.0 | EffectSet::IO.0);

/// The placeholder reason `--update-justify` writes for new findings.
///
/// A ledger entry still carrying this literal is a hard
/// `stub-justification` finding in every gate that consults the ledger:
/// the scaffolding flow is *stub, then hand-write the reason*, and an
/// unedited stub would otherwise silently pass as a justification.
pub const STUB_REASON: &str = "TODO: justify";

/// One justification-file entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Justification {
    /// Lint name.
    pub lint: String,
    /// Crate of the justified function.
    pub krate: String,
    /// `Parent::name`-qualified function.
    pub func: String,
    /// Effect source (`push`, `index`, `expect`, `unknown:foo`, `fn`).
    pub source: String,
    /// Optional doc-contract tag (`[epoch-selection-scratch]`).
    pub tag: Option<String>,
    /// Why this finding is acceptable.
    pub reason: String,
}

impl Justification {
    /// Renders one ledger line.
    pub fn render(&self) -> String {
        let tag = self.tag.as_ref().map(|t| format!(" [{t}]")).unwrap_or_default();
        format!(
            "{} {} {} {}{} -- {}",
            self.lint, self.krate, self.func, self.source, tag, self.reason
        )
    }
}

/// The parsed justification ledger.
#[derive(Debug, Default, Clone)]
pub struct Justifications {
    /// Entries in file order.
    pub entries: Vec<Justification>,
}

impl Justifications {
    /// Parses ledger text. Lines are `lint crate fn source [tag] -- reason`;
    /// `#` comments and blank lines are skipped. Malformed lines are
    /// reported as `(line, text)` errors.
    pub fn parse(text: &str) -> (Justifications, Vec<(usize, String)>) {
        let mut entries = Vec::new();
        let mut errors = Vec::new();
        for (i, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let Some((head, reason)) = line.split_once(" -- ") else {
                errors.push((i + 1, raw.to_string()));
                continue;
            };
            let fields: Vec<&str> = head.split_whitespace().collect();
            let (fields, tag) = match fields.as_slice() {
                [rest @ .., last] if last.starts_with('[') && last.ends_with(']') => {
                    (rest.to_vec(), Some(last[1..last.len() - 1].to_string()))
                }
                _ => (fields, None),
            };
            let [lint, krate, func, source] = fields.as_slice() else {
                errors.push((i + 1, raw.to_string()));
                continue;
            };
            entries.push(Justification {
                lint: (*lint).to_string(),
                krate: (*krate).to_string(),
                func: (*func).to_string(),
                source: (*source).to_string(),
                tag,
                reason: reason.trim().to_string(),
            });
        }
        (Justifications { entries }, errors)
    }

    /// Loads the ledger from `path`; a missing file is an empty ledger.
    pub fn load(path: &std::path::Path) -> (Justifications, Vec<(usize, String)>) {
        match std::fs::read_to_string(path) {
            Ok(text) => Justifications::parse(&text),
            Err(_) => (Justifications::default(), Vec::new()),
        }
    }

    /// Finds the entry covering `(lint, krate, func, source)`.
    pub fn covers(&self, lint: &str, krate: &str, func: &str, source: &str) -> Option<usize> {
        self.entries.iter().position(|e| {
            e.lint == lint && e.krate == krate && e.func == func && e.source == source
        })
    }

    /// Renders the full ledger, grouped by lint, with a format header.
    pub fn render(&self) -> String {
        self.render_with(
            "# Hot-path contract ledger: every entry tolerates one effect finding.\n\
             # Format: <lint> <crate> <Qualified::fn> <source> [tag] -- reason\n\
             # Maintained by `nucache-audit effects --update-justify`; reasons are hand-written.\n",
            EFFECT_LINTS,
        )
    }

    /// Renders the ledger under an arbitrary header, grouping entries by
    /// the given lint order (the concurrency ledger shares this format).
    pub fn render_with(&self, header: &str, lints: &[(&str, &str)]) -> String {
        let mut out = String::from(header);
        for (lint, _) in lints {
            let group: Vec<&Justification> =
                self.entries.iter().filter(|e| e.lint == *lint).collect();
            if group.is_empty() {
                continue;
            }
            out.push('\n');
            for e in group {
                out.push_str(&e.render());
                out.push('\n');
            }
        }
        out
    }
}

/// Runs the three effect lints plus the doc-contract tie, returning the
/// diagnostics and the full set of *required* ledger entries (existing
/// reasons preserved, new ones stubbed) for `--update-justify`.
pub fn run_effect_lints(
    ws: &Workspace,
    model: &EffectModel,
    just: &Justifications,
) -> (Vec<Diagnostic>, Vec<Justification>) {
    let mut cx =
        Cx { ws, model, just, diags: Vec::new(), required: Vec::new(), used: BTreeSet::new() };
    cx.alloc_in_hot_path();
    cx.panic_in_hot_path();
    cx.lock_held_across_call();
    cx.doc_contract_tie();
    cx.stale_entries();
    let Cx { diags, required, .. } = cx;
    (diags, required)
}

/// Shared lint-pass state.
struct Cx<'a> {
    ws: &'a Workspace,
    model: &'a EffectModel,
    just: &'a Justifications,
    diags: Vec<Diagnostic>,
    required: Vec<Justification>,
    used: BTreeSet<usize>,
}

impl Cx<'_> {
    fn file_rel(&self, f: &FnInfo) -> String {
        self.ws.files[f.file].rel.clone()
    }

    /// Records a required ledger entry (deduplicated), returning whether
    /// the current ledger already covers it. A covering entry whose
    /// reason is still the [`STUB_REASON`] placeholder is flagged as a
    /// hard finding: a stub is scaffolding, not a justification.
    fn require(&mut self, lint: &str, f: &FnInfo, source: &str) -> bool {
        let func = f.qualified();
        let covered = self.just.covers(lint, &f.crate_name, &func, source);
        if let Some(i) = covered {
            self.used.insert(i);
            if self.just.entries[i].reason == STUB_REASON {
                let line = f.span.line;
                self.diag(
                    "stub-justification",
                    f,
                    line,
                    format!(
                        "ledger entry `{lint} {} {func} {source}` still carries the \
                         `--update-justify` stub reason; write a real justification",
                        f.crate_name
                    ),
                );
            }
        }
        let entry = match covered {
            Some(i) => self.just.entries[i].clone(),
            None => Justification {
                lint: lint.to_string(),
                krate: f.crate_name.clone(),
                func,
                source: source.to_string(),
                tag: None,
                reason: STUB_REASON.to_string(),
            },
        };
        if !self.required.contains(&entry) {
            self.required.push(entry);
        }
        covered.is_some()
    }

    fn diag(&mut self, lint: &'static str, f: &FnInfo, line: usize, message: String) {
        self.diags.push(Diagnostic {
            file: self.file_rel(f),
            line,
            lint,
            message,
            severity: Severity::Error,
        });
    }

    /// BFS over call targets from `roots`; `enter` decides whether a
    /// function's body (and out-edges) are traversed.
    fn reach(&self, roots: &[usize], enter: impl Fn(&FnInfo) -> bool) -> Vec<usize> {
        let mut seen = vec![false; self.model.fns.len()];
        let mut queue: VecDeque<usize> = roots.iter().copied().collect();
        let mut order = Vec::new();
        while let Some(i) = queue.pop_front() {
            if std::mem::replace(&mut seen[i], true) {
                continue;
            }
            let f = &self.model.fns[i];
            if !enter(f) {
                continue;
            }
            order.push(i);
            for call in &f.calls {
                for &j in &call.targets {
                    if !seen[j] {
                        queue.push_back(j);
                    }
                }
            }
        }
        order
    }

    /// `alloc-in-hot-path`: every allocation reachable from a hot-path
    /// root needs both an `audit:allow-alloc` annotation and a ledger
    /// entry; function-level boundaries stop traversal but must be in
    /// the ledger themselves.
    fn alloc_in_hot_path(&mut self) {
        let lint = "alloc-in-hot-path";
        let roots: Vec<usize> =
            (0..self.model.fns.len()).filter(|&i| self.model.fns[i].hot_path).collect();
        let kernel_fns = self.model.crate_fns("nucache-kernel");
        if roots.is_empty() && !kernel_fns.is_empty() {
            let f = self.model.fns[kernel_fns[0]].clone();
            self.diag(
                "alloc-in-hot-path",
                &f,
                0,
                "nucache-kernel declares no `// audit:hot-path` roots — the allocation contract is unenforced".into(),
            );
            return;
        }
        // Boundary functions: justified as a whole, not traversed into.
        let reached = self.reach(&roots, |f| f.alloc_boundary.is_none());
        let boundary_hits: Vec<usize> = {
            let mut seen = BTreeSet::new();
            let mut out = Vec::new();
            for &i in &reached {
                for call in &self.model.fns[i].calls {
                    for &j in &call.targets {
                        if self.model.fns[j].alloc_boundary.is_some() && seen.insert(j) {
                            out.push(j);
                        }
                    }
                }
            }
            out
        };
        for i in boundary_hits {
            let f = self.model.fns[i].clone();
            if !self.require(lint, &f, "fn") {
                self.diag(
                    "alloc-in-hot-path",
                    &f,
                    f.span.line,
                    format!(
                        "`{}` is an audit:allow-alloc boundary on the hot path but has no ledger entry ({} fn)",
                        f.qualified(),
                        f.crate_name
                    ),
                );
            }
        }
        for &i in &reached {
            let f = self.model.fns[i].clone();
            for site in &f.sites {
                if !site.effect.contains(EffectSet::ALLOC) {
                    continue;
                }
                let covered = self.require(lint, &f, &site.source);
                if site.allowed.is_none() {
                    self.diag(
                        "alloc-in-hot-path",
                        &f,
                        site.line,
                        format!(
                            "`{}` allocates (`{}`) on the hot path without `// audit:allow-alloc(reason)`",
                            f.qualified(),
                            site.source
                        ),
                    );
                } else if !covered {
                    self.diag(
                        "alloc-in-hot-path",
                        &f,
                        site.line,
                        format!(
                            "allocation `{}` in `{}` is annotated but missing from the hotpath ledger",
                            site.source,
                            f.qualified()
                        ),
                    );
                }
            }
        }
    }

    /// `panic-in-hot-path`: panic sources and unknown callees reachable
    /// from the kernel public API (or any hot-path root) need entries.
    fn panic_in_hot_path(&mut self) {
        let lint = "panic-in-hot-path";
        let roots: Vec<usize> = (0..self.model.fns.len())
            .filter(|&i| {
                let f = &self.model.fns[i];
                f.hot_path || (f.crate_name == "nucache-kernel" && f.span.vis_pub)
            })
            .collect();
        let reached = self.reach(&roots, |_| true);
        for &i in &reached {
            let f = self.model.fns[i].clone();
            for site in &f.sites {
                if !site.effect.contains(EffectSet::PANIC) {
                    continue;
                }
                if !self.require(lint, &f, &site.source) {
                    self.diag(
                        "panic-in-hot-path",
                        &f,
                        site.line,
                        format!(
                            "`{}` may panic (`{}`) on a kernel-reachable path without a ledger entry",
                            f.qualified(),
                            site.source
                        ),
                    );
                }
            }
            for call in &f.calls {
                if !call.unknown {
                    continue;
                }
                let source = format!("unknown:{}", call.name);
                if !self.require(lint, &f, &source) {
                    self.diag(
                        "panic-in-hot-path",
                        &f,
                        call.line,
                        format!(
                            "`{}` calls `{}`, which the effect analysis cannot resolve — justify or extend the intrinsic table",
                            f.qualified(),
                            call.name
                        ),
                    );
                }
            }
        }
    }

    /// `lock-held-across-call`: a `let`-bound lock guard must not be
    /// live across a statement whose sites/calls may allocate, lock or
    /// do I/O. Liveness is CFG-based: every statement reachable from the
    /// acquisition, cut at an explicit `drop(guard)`.
    fn lock_held_across_call(&mut self) {
        let lint = "lock-held-across-call";
        // Guard getters: one-or-two-statement workspace fns that
        // directly lock (e.g. a `fn cells(&self) -> MutexGuard<..>`
        // accessor) — calling one acquires a guard too.
        let mut getter = vec![false; self.model.fns.len()];
        for (i, f) in self.model.fns.iter().enumerate() {
            if f.direct.contains(EffectSet::LOCK) && !f.span.body.is_empty() {
                let toks = &self.ws.files[f.file].tokens;
                let cfg = build_cfg(toks, f.span.body.clone());
                let all: Vec<_> = cfg.blocks.iter().flat_map(|b| &b.stmts).collect();
                // A guard getter *returns* the guard: a tiny body whose
                // root expression is the lock chain itself — a tail
                // expression, not a `let` binding. Functions that lock,
                // use and drop the guard internally (two-statement
                // bodies starting with `let guard = …`) are not getters.
                getter[i] = all.len() <= 2
                    && all.iter().any(|s| {
                        lock_at_root(toks, &s.tokens) && !toks[s.tokens.start].is_ident("let")
                    });
            }
        }
        for fi in 0..self.model.fns.len() {
            let f = self.model.fns[fi].clone();
            if f.span.body.is_empty() || getter[fi] {
                continue;
            }
            let has_lock = f.direct.contains(EffectSet::LOCK)
                || f.calls.iter().any(|c| c.targets.iter().any(|&j| getter[j]));
            if !has_lock {
                continue;
            }
            let toks = self.ws.files[f.file].tokens.clone();
            let toks = &toks[..];
            let cfg = build_cfg(toks, f.span.body.clone());
            for (bi, block) in cfg.blocks.iter().enumerate() {
                for (si, stmt) in block.stmts.iter().enumerate() {
                    let Some(guard) = guard_binding(toks, stmt.tokens.clone(), &f, &getter) else {
                        continue;
                    };
                    // Liveness: rest of this block, plus everything
                    // reachable from its successors; cut at drop(guard).
                    let drop_pos = find_drop(toks, stmt.tokens.end, f.span.body.end, &guard);
                    let mut live: Vec<(usize, std::ops::Range<usize>)> = Vec::new();
                    for s in &block.stmts[si + 1..] {
                        live.push((s.line, s.tokens.clone()));
                    }
                    let mut marked = vec![false; cfg.blocks.len()];
                    for &succ in &block.succs {
                        for (j, r) in cfg.reachable_from(succ).iter().enumerate() {
                            marked[j] |= r;
                        }
                    }
                    for (j, b) in cfg.blocks.iter().enumerate() {
                        if marked[j] && j != bi {
                            for s in &b.stmts {
                                live.push((s.line, s.tokens.clone()));
                            }
                        }
                    }
                    let mut flagged: BTreeSet<String> = BTreeSet::new();
                    for (line, range) in live {
                        if range.start <= stmt.tokens.start {
                            continue; // loop back-edges into earlier statements
                        }
                        if drop_pos.is_some_and(|d| range.start >= d) {
                            continue;
                        }
                        for site in &f.sites {
                            if range.contains(&site.tok)
                                && site.effect.0 & GUARD_MASK.0 != 0
                                && flagged.insert(site.source.clone())
                                && !self.require(lint, &f, &site.source)
                            {
                                self.diag(
                                    "lock-held-across-call",
                                    &f,
                                    line,
                                    format!(
                                        "`{}` holds guard `{guard}` across `{}` ({})",
                                        f.qualified(),
                                        site.source,
                                        site.effect
                                    ),
                                );
                            }
                        }
                        for call in &f.calls {
                            if !range.contains(&call.tok) {
                                continue;
                            }
                            let eff = call
                                .targets
                                .iter()
                                .fold(EffectSet::PURE, |e, &j| e.union(self.model.fns[j].effects));
                            if eff.0 & GUARD_MASK.0 != 0
                                && flagged.insert(call.name.clone())
                                && !self.require(lint, &f, &call.name)
                            {
                                self.diag(
                                    "lock-held-across-call",
                                    &f,
                                    line,
                                    format!(
                                        "`{}` holds guard `{guard}` across call to `{}` ({})",
                                        f.qualified(),
                                        call.name,
                                        eff
                                    ),
                                );
                            }
                        }
                    }
                }
            }
        }
    }

    /// `doc-constant-drift` tie: the backticked tags enumerated in the
    /// kernel's `# Allocation behaviour` doc section and the `[tag]`s on
    /// `alloc-in-hot-path` ledger entries must be the same set.
    fn doc_contract_tie(&mut self) {
        let mut doc_tags: BTreeMap<String, (String, usize)> = BTreeMap::new();
        for fm in &self.ws.files {
            if fm.class.is_vendor {
                continue;
            }
            for (tag, line) in allocation_doc_tags(&fm.raw) {
                doc_tags.entry(tag).or_insert((fm.rel.clone(), line));
            }
        }
        let entry_tags: BTreeSet<String> = self
            .just
            .entries
            .iter()
            .filter(|e| e.lint == "alloc-in-hot-path")
            .filter_map(|e| e.tag.clone())
            .collect();
        for (tag, (file, line)) in &doc_tags {
            if !entry_tags.contains(tag) {
                self.diags.push(Diagnostic {
                    file: file.clone(),
                    line: *line,
                    lint: "doc-constant-drift",
                    message: format!(
                        "allocation exception `{tag}` is documented but no [{tag}] entry exists in the hotpath ledger"
                    ),
                    severity: Severity::Error,
                });
            }
        }
        if !doc_tags.is_empty() {
            for tag in &entry_tags {
                if !doc_tags.contains_key(tag) {
                    self.diags.push(Diagnostic {
                        file: "crates/audit/hotpath.txt".to_string(),
                        line: 0,
                        lint: "doc-constant-drift",
                        message: format!(
                            "hotpath ledger tag [{tag}] is not documented in the kernel `# Allocation behaviour` contract"
                        ),
                        severity: Severity::Error,
                    });
                }
            }
        }
    }

    /// Ledger entries no finding required are stale and must be pruned —
    /// otherwise the ledger silently outlives the code it excused.
    fn stale_entries(&mut self) {
        for (i, e) in self.just.entries.iter().enumerate() {
            if !self.used.contains(&i) {
                self.diags.push(Diagnostic {
                    file: "crates/audit/hotpath.txt".to_string(),
                    line: 0,
                    lint: "alloc-in-hot-path",
                    message: format!(
                        "stale ledger entry `{}` — no current finding requires it",
                        e.render()
                    ),
                    severity: Severity::Error,
                });
            }
        }
    }
}

/// Token positions in `[start, end)` that sit at nesting depth 0 —
/// i.e. on the root expression chain, not inside call arguments, block
/// expressions or struct literals. `start` should point just past a
/// top-level `=` (or at the expression start).
fn root_depth_zero(toks: &[Token], start: usize, end: usize) -> Vec<usize> {
    let mut out = Vec::new();
    let mut depth = 0i32;
    for (i, tok) in toks.iter().enumerate().take(end).skip(start) {
        match tok.text.as_str() {
            "(" | "[" | "{" => {
                if depth == 0 {
                    out.push(i);
                }
                depth += 1;
            }
            ")" | "]" | "}" => depth -= 1,
            _ => {
                if depth == 0 {
                    out.push(i);
                }
            }
        }
    }
    out
}

/// Position just past the first top-level `=` of `stmt`, if any.
fn after_eq(toks: &[Token], stmt: &std::ops::Range<usize>) -> Option<usize> {
    let mut depth = 0i32;
    for i in stmt.clone() {
        match toks[i].text.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => depth -= 1,
            "=" if depth == 0 => return Some(i + 1),
            _ => {}
        }
    }
    None
}

/// Whether the root expression of `stmt` (past any `let NAME =`) is a
/// lock-acquisition chain: `.lock(`/`.try_lock(` at nesting depth 0, so
/// `mem::take(&mut *slot().lock()…)` — a guard temporary consumed inside
/// the statement — does not count.
fn lock_at_root(toks: &[Token], stmt: &std::ops::Range<usize>) -> bool {
    let start = after_eq(toks, stmt).unwrap_or(stmt.start);
    root_depth_zero(toks, start, stmt.end).into_iter().any(|i| {
        i + 2 < stmt.end
            && toks[i].is_punct(".")
            && (toks[i + 1].is_ident("lock") || toks[i + 1].is_ident("try_lock"))
            && toks[i + 2].is_punct("(")
    })
}

/// If `stmt` is `let [mut] NAME = …` whose root expression acquires a
/// lock (directly or via a guard-getter call), returns `NAME`.
fn guard_binding(
    toks: &[Token],
    stmt: std::ops::Range<usize>,
    f: &FnInfo,
    getter: &[bool],
) -> Option<String> {
    let mut it = stmt.clone();
    let first = it.next()?;
    if !toks[first].is_ident("let") {
        return None;
    }
    let mut name = None;
    for i in it {
        if toks[i].is_ident("mut") {
            continue;
        }
        if toks[i].kind == crate::symbols::TokKind::Ident {
            name = Some(toks[i].text.clone());
        }
        break;
    }
    let name = name?;
    if name == "_" {
        return None;
    }
    let start = after_eq(toks, &stmt)?;
    let root = root_depth_zero(toks, start, stmt.end);
    let direct = lock_at_root(toks, &stmt);
    let via_getter =
        f.calls.iter().any(|c| root.contains(&c.tok) && c.targets.iter().any(|&j| getter[j]));
    (direct || via_getter).then_some(name)
}

/// Finds `drop(NAME)` in `[from, to)`, returning its token position.
fn find_drop(toks: &[Token], from: usize, to: usize, name: &str) -> Option<usize> {
    (from..to.saturating_sub(2)).find(|&i| {
        toks[i].is_ident("drop") && toks[i + 1].is_punct("(") && toks[i + 2].is_ident(name)
    })
}

/// Extracts backticked kebab-case tags from `# Allocation behaviour`
/// doc-comment sections of `raw` source, with the line each appears on.
fn allocation_doc_tags(raw: &str) -> Vec<(String, usize)> {
    let mut out = Vec::new();
    let mut in_section = false;
    for (i, line) in raw.lines().enumerate() {
        let t = line.trim_start();
        let doc = t.strip_prefix("///").or_else(|| t.strip_prefix("//!")).map(str::trim_start);
        let Some(body) = doc else {
            in_section = false;
            continue;
        };
        if body.starts_with("# ") {
            in_section = body == "# Allocation behaviour";
            continue;
        }
        if !in_section {
            continue;
        }
        let mut rest = body;
        while let Some(start) = rest.find('`') {
            let tail = &rest[start + 1..];
            let Some(end) = tail.find('`') else { break };
            let candidate = &tail[..end];
            if candidate.contains('-')
                && !candidate.is_empty()
                && candidate
                    .chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-')
            {
                out.push((candidate.to_string(), i + 1));
            }
            rest = &tail[end + 1..];
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ledger_roundtrip() {
        let text = "# comment\n\
                    alloc-in-hot-path nucache-kernel Kernel::run fn [epoch-scratch] -- bounded per epoch\n\
                    panic-in-hot-path nucache-kernel Kernel::get index -- set index is masked\n";
        let (j, errs) = Justifications::parse(text);
        assert!(errs.is_empty(), "{errs:?}");
        assert_eq!(j.entries.len(), 2);
        assert_eq!(j.entries[0].tag.as_deref(), Some("epoch-scratch"));
        assert_eq!(j.entries[1].tag, None);
        assert!(j.covers("panic-in-hot-path", "nucache-kernel", "Kernel::get", "index").is_some());
        assert!(j.covers("panic-in-hot-path", "nucache-kernel", "Kernel::get", "push").is_none());
        let rendered = j.render();
        let (j2, errs2) = Justifications::parse(&rendered);
        assert!(errs2.is_empty());
        assert_eq!(j2.entries, j.entries, "render/parse roundtrip");
    }

    #[test]
    fn malformed_ledger_lines_are_reported() {
        let (_, errs) = Justifications::parse("no separator here\nalloc a b -- too few fields\n");
        assert_eq!(errs.len(), 2);
    }

    #[test]
    fn doc_tags_extracted_from_allocation_section() {
        let raw = "\
/// Long prose.\n\
///\n\
/// # Allocation behaviour\n\
///\n\
/// * `epoch-selection-scratch` — selection clones histograms.\n\
/// * `monitor-histogram-growth` — lazy per-class histograms.\n\
/// * not-a-`Tag` and `has spaces` are ignored.\n\
///\n\
/// # Panics\n\
///\n\
/// `some-other-thing` outside the section is ignored.\n\
fn f() {}\n";
        let tags: Vec<String> = allocation_doc_tags(raw).into_iter().map(|(t, _)| t).collect();
        assert_eq!(tags, vec!["epoch-selection-scratch", "monitor-histogram-growth"]);
    }
}
