//! Minimal workspace-manifest model for feature-aware lints.
//!
//! The cfg-gate lint needs two facts Cargo owns: which features a crate
//! enables *by default*, and whether a dependent turns those defaults
//! off. Pulling in a TOML parser for that would be the tail wagging the
//! dog — the workspace manifests are plain `key = value` tables — so
//! this module reads exactly the three shapes the lint consumes:
//!
//! * `[features]` arrays, to compute the closure of `default`;
//! * inline dependency tables carrying `default-features = false`;
//! * `[dependencies.<pkg>]` sub-tables carrying the same key.
//!
//! Everything else in a manifest is ignored. Crates are keyed by the
//! same names [`classify`](crate::walk::classify) assigns to source
//! files (`nucache-<dir>` for `crates/<dir>`, `root` for the workspace
//! root package), so lints can join manifest facts against
//! [`FileClass::crate_name`](crate::walk::FileClass) directly.

use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;

/// The feature facts of one crate's `Cargo.toml`.
#[derive(Debug, Default, Clone)]
pub struct CrateManifest {
    /// Features enabled by a default build: the transitive closure of
    /// the `default` feature over the `[features]` graph (dependency
    /// features like `other-crate/std` are kept verbatim and simply
    /// never match a plain feature name).
    pub default_features: BTreeSet<String>,
    /// Package names this crate depends on with
    /// `default-features = false`.
    pub no_default_deps: BTreeSet<String>,
    /// Every package name this crate depends on (normal, dev and build
    /// dependencies alike) — the effect call graph only follows edges a
    /// crate could actually compile against.
    pub deps: BTreeSet<String>,
    /// Whether the manifest opts into the workspace lint table with
    /// `[lints] workspace = true` (how `unsafe_code = "forbid"` reaches
    /// every crate).
    pub lints_workspace: bool,
    /// Whether a `[workspace.lints.rust]` (or crate-local `[lints.rust]`)
    /// table pins `unsafe_code = "forbid"`.
    pub forbids_unsafe: bool,
}

/// Feature facts for every workspace crate, keyed by lint crate name.
#[derive(Debug, Default)]
pub struct Manifests {
    /// `crate_name` → parsed manifest facts.
    pub by_crate: BTreeMap<String, CrateManifest>,
}

impl Manifests {
    /// Reads the root manifest and every `crates/<dir>/Cargo.toml`.
    /// Unreadable or absent manifests (fixture mini-workspaces) simply
    /// yield no entry — lints treat a missing manifest conservatively.
    pub fn load(root: &Path) -> Manifests {
        let mut by_crate = BTreeMap::new();
        if let Ok(text) = std::fs::read_to_string(root.join("Cargo.toml")) {
            by_crate.insert("root".to_string(), parse_manifest(&text));
        }
        if let Ok(entries) = std::fs::read_dir(root.join("crates")) {
            let mut dirs: Vec<_> = entries.filter_map(Result::ok).map(|e| e.path()).collect();
            dirs.sort();
            for dir in dirs {
                let Some(name) = dir.file_name().and_then(|n| n.to_str()) else { continue };
                if let Ok(text) = std::fs::read_to_string(dir.join("Cargo.toml")) {
                    by_crate.insert(format!("nucache-{name}"), parse_manifest(&text));
                }
            }
        }
        Manifests { by_crate }
    }

    /// Whether feature `feature` of crate `of` is on in a default build.
    pub fn enabled_by_default(&self, of: &str, feature: &str) -> bool {
        self.by_crate.get(of).is_some_and(|m| m.default_features.contains(feature))
    }

    /// Whether crate `user` declares its dependency on `dep` with
    /// `default-features = false`.
    pub fn disables_defaults(&self, user: &str, dep: &str) -> bool {
        self.by_crate.get(user).is_some_and(|m| m.no_default_deps.contains(dep))
    }
}

/// Strips a trailing `# comment` (the workspace manifests never put `#`
/// inside strings on lines this parser consumes).
fn strip_comment(line: &str) -> &str {
    line.split('#').next().unwrap_or("")
}

/// Parses one manifest's text into the facts the lints use.
fn parse_manifest(text: &str) -> CrateManifest {
    let mut features: BTreeMap<String, Vec<String>> = BTreeMap::new();
    let mut no_default_deps = BTreeSet::new();
    let mut deps = BTreeSet::new();
    let mut lints_workspace = false;
    let mut forbids_unsafe = false;
    let mut section = String::new();
    // Accumulates a (possibly multi-line) `name = [ ... ]` array in the
    // `[features]` section until its closing bracket.
    let mut open_array: Option<(String, String)> = None;

    for raw in text.lines() {
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if let Some((name, body)) = &mut open_array {
            body.push_str(line);
            if line.contains(']') {
                features.insert(name.clone(), parse_array(body));
                open_array = None;
            }
            continue;
        }
        if line.starts_with('[') {
            section = line.trim_matches(|c| c == '[' || c == ']').to_string();
            continue;
        }
        if section == "features" {
            if let Some((key, value)) = line.split_once('=') {
                let (key, value) = (key.trim().to_string(), value.trim());
                if value.contains(']') {
                    features.insert(key, parse_array(value));
                } else if value.starts_with('[') {
                    open_array = Some((key, value.to_string()));
                }
            }
        } else if let Some(pkg) = section
            .strip_prefix("dependencies.")
            .or_else(|| section.strip_prefix("dev-dependencies."))
            .or_else(|| section.strip_prefix("build-dependencies."))
        {
            // Sub-table: `[dependencies.pkg]` … `default-features = false`.
            deps.insert(pkg.trim_matches('"').to_string());
            if line.replace(' ', "").starts_with("default-features=false") {
                no_default_deps.insert(pkg.trim_matches('"').to_string());
            }
        } else if section.contains("dependencies") {
            // Inline table (`pkg = { path = "…", default-features = false }`)
            // or dotted key (`pkg.workspace = true`).
            if let Some((key, value)) = line.split_once('=') {
                let key = key.trim().trim_matches('"');
                let pkg = key.split('.').next().unwrap_or(key).to_string();
                deps.insert(pkg.clone());
                if value.contains("default-features") && value.contains("false") {
                    no_default_deps.insert(pkg);
                }
            }
        } else if section == "lints" && line.replace(' ', "").starts_with("workspace=true") {
            lints_workspace = true;
        } else if (section == "workspace.lints.rust" || section == "lints.rust")
            && line.replace(' ', "").starts_with("unsafe_code=")
            && line.contains("forbid")
        {
            forbids_unsafe = true;
        }
    }

    // Close the `default` feature over the feature graph: an entry that
    // names another feature pulls that feature's entries in too.
    let mut default_features = BTreeSet::new();
    let mut queue: Vec<String> = features.get("default").cloned().unwrap_or_default();
    while let Some(f) = queue.pop() {
        if default_features.insert(f.clone()) {
            if let Some(more) = features.get(&f) {
                queue.extend(more.iter().cloned());
            }
        }
    }

    CrateManifest { default_features, no_default_deps, deps, lints_workspace, forbids_unsafe }
}

/// Parses `["a", "b/c"]` into its string entries.
fn parse_array(text: &str) -> Vec<String> {
    let inner = text
        .trim()
        .trim_start_matches('[')
        .trim_end_matches(|c: char| c == ']' || c.is_whitespace());
    inner
        .split(',')
        .map(|e| e.trim().trim_matches('"').to_string())
        .filter(|e| !e.is_empty())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_defaults_dependency_flags_and_closure() {
        let m = parse_manifest(
            r#"
[package]
name = "demo"

[features]
default = ["std", "extras"] # trailing comment
extras = ["rayon-like"]
rayon-like = []
std = ["other/std"]

[dependencies]
other = { path = "../other", default-features = false }
plain = { path = "../plain" }
dotted.workspace = true

[dev-dependencies.devdep]
path = "../devdep"
default-features = false
"#,
        );
        for f in ["std", "extras", "rayon-like"] {
            assert!(m.default_features.contains(f), "missing {f}");
        }
        assert!(m.default_features.contains("other/std"), "dep features kept verbatim");
        assert!(m.no_default_deps.contains("other"));
        assert!(m.no_default_deps.contains("devdep"));
        assert!(!m.no_default_deps.contains("plain"));
        for d in ["other", "plain", "devdep", "dotted"] {
            assert!(m.deps.contains(d), "missing dep {d}");
        }
        assert!(!m.deps.contains("dotted.workspace"), "dotted keys are normalized");
        assert!(!m.lints_workspace, "no [lints] table in this manifest");
    }

    #[test]
    fn lints_workspace_table_is_detected() {
        let m = parse_manifest("[package]\nname = \"x\"\n\n[lints]\nworkspace = true\n");
        assert!(m.lints_workspace);
        let m = parse_manifest("[package]\nname = \"x\"\n\n[lints]\nworkspace = false\n");
        assert!(!m.lints_workspace);
    }

    #[test]
    fn unsafe_forbid_pin_is_detected() {
        let m = parse_manifest("[workspace.lints.rust]\nunsafe_code = \"forbid\"\n");
        assert!(m.forbids_unsafe);
        let m = parse_manifest("[lints.rust]\nunsafe_code = \"forbid\"\n");
        assert!(m.forbids_unsafe);
        let m = parse_manifest("[workspace.lints.rust]\nunsafe_code = \"deny\"\n");
        assert!(!m.forbids_unsafe);
    }

    #[test]
    fn multiline_arrays_and_missing_sections() {
        let m = parse_manifest("[features]\ndefault = [\n  \"a\",\n  \"b\",\n]\na = []\nb = []\n");
        assert_eq!(m.default_features.len(), 2);
        assert!(parse_manifest("[package]\nname = \"x\"\n").default_features.is_empty());
    }
}
