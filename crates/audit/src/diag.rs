//! Diagnostic types and rendering (rustc-style text and JSON).

use std::fmt;

/// How severe a finding is. Currently every lint reports `Error`; the
/// enum exists so future advisory lints can downgrade without changing
/// the output format.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Fails the audit (non-zero exit).
    Error,
    /// Reported but does not fail the audit.
    Warning,
}

impl Severity {
    /// Lower-case label used in both text and JSON output.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
        }
    }
}

/// One lint finding, anchored to a file and line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path with forward slashes.
    pub file: String,
    /// 1-indexed line number (0 for whole-file findings).
    pub line: usize,
    /// Lint name, e.g. `nondeterministic-iteration`.
    pub lint: &'static str,
    /// Human-readable description of the violation.
    pub message: String,
    /// Finding severity.
    pub severity: Severity,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "{}: {}[{}]: {}", self.file, self.severity.label(), self.lint, self.message)
        } else {
            write!(
                f,
                "{}:{}: {}[{}]: {}",
                self.file,
                self.line,
                self.severity.label(),
                self.lint,
                self.message
            )
        }
    }
}

/// Escapes a string for embedding in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders diagnostics as a JSON document for CI consumption:
/// `{"violations": N, "diagnostics": [{file, line, lint, severity, message}...]}`.
///
/// Hand-rolled because the crate is deliberately dependency-free.
pub fn to_json(diags: &[Diagnostic]) -> String {
    let mut out = String::from("{\n");
    let errors = diags.iter().filter(|d| d.severity == Severity::Error).count();
    out.push_str(&format!("  \"violations\": {errors},\n"));
    out.push_str("  \"diagnostics\": [\n");
    for (i, d) in diags.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"file\": \"{}\", \"line\": {}, \"lint\": \"{}\", \"severity\": \"{}\", \"message\": \"{}\"}}{}\n",
            json_escape(&d.file),
            d.line,
            d.lint,
            d.severity.label(),
            json_escape(&d.message),
            if i + 1 == diags.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Diagnostic {
        Diagnostic {
            file: "crates/core/src/llc.rs".into(),
            line: 42,
            lint: "nondeterministic-iteration",
            message: "bare HashMap in simulator crate".into(),
            severity: Severity::Error,
        }
    }

    #[test]
    fn text_rendering_is_rustc_style() {
        assert_eq!(
            sample().to_string(),
            "crates/core/src/llc.rs:42: error[nondeterministic-iteration]: bare HashMap in simulator crate"
        );
    }

    #[test]
    fn whole_file_findings_omit_line() {
        let d = Diagnostic { line: 0, ..sample() };
        assert!(d.to_string().starts_with("crates/core/src/llc.rs: error["));
    }

    #[test]
    fn json_is_well_formed() {
        let j = to_json(&[sample()]);
        assert!(j.contains("\"violations\": 1"));
        assert!(j.contains("\"line\": 42"));
        assert!(j.contains("\"lint\": \"nondeterministic-iteration\""));
        let quoted = Diagnostic { message: "say \"hi\"\n".into(), ..sample() };
        let j = to_json(&[quoted]);
        assert!(j.contains("say \\\"hi\\\"\\n"));
    }
}
