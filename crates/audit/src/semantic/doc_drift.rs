//! The `doc-constant-drift` lint.
//!
//! DESIGN.md and EXPERIMENTS.md state the reproduced configuration as
//! markdown tables ("epoch length 100 000 accesses", "16-way LLC", …).
//! Those numbers drift: someone retunes a default in `config.rs` and the
//! doc keeps describing the old experiment. This lint makes the binding
//! explicit — any table row that names a constant in backticks
//! (`` `DEFAULT_EPOCH_LEN` `` style, UPPER_SNAKE) and carries a numeric
//! cell is checked against the `const` of that name in the symbol index.
//!
//! Two failure modes, both errors:
//!
//! * the named constant does not exist in the code (stale name, typo);
//! * the numeric cell disagrees with the constant's evaluated value.
//!
//! Rows whose constant initializer the mini-evaluator cannot fold (e.g.
//! computed from another crate's const) are reported as errors too —
//! the table contract is that bound constants stay checkable.

use crate::diag::{Diagnostic, Severity};
use crate::resolve::Workspace;
use crate::symbols::{parse_int, SymbolKind};

const LINT: &str = "doc-constant-drift";

/// A `CONST_NAME` ↔ number binding extracted from a markdown table row.
#[derive(Debug)]
struct Binding {
    doc: String,
    line: usize,
    name: String,
    value: i128,
}

/// Whether `text` looks like a constant name: UPPER_SNAKE, at least one
/// underscore or ≥4 chars, no lowercase.
fn is_const_name(text: &str) -> bool {
    !text.is_empty()
        && text.chars().all(|c| c.is_ascii_uppercase() || c.is_ascii_digit() || c == '_')
        && text.chars().next().is_some_and(|c| c.is_ascii_uppercase())
        && (text.contains('_') || text.len() >= 4)
}

/// Extracts the backticked constant name from a table cell, if any.
fn backticked_const(cell: &str) -> Option<String> {
    let mut rest = cell;
    while let Some(start) = rest.find('`') {
        let after = &rest[start + 1..];
        let end = after.find('`')?;
        let candidate = &after[..end];
        if is_const_name(candidate) {
            return Some(candidate.to_string());
        }
        rest = &after[end + 1..];
    }
    None
}

/// Extracts the first integer from a cell: `100_000`, `0x5eed_2011`,
/// `1048576`, or `=32` style. Ignores decorations around it.
fn cell_value(cell: &str) -> Option<i128> {
    for word in cell.split(|c: char| c.is_ascii_whitespace() || c == '`' || c == '=' || c == ',') {
        let trimmed = word.trim_matches(|c: char| !c.is_ascii_alphanumeric() && c != '_');
        if trimmed.is_empty() || !trimmed.chars().next().is_some_and(|c| c.is_ascii_digit()) {
            continue;
        }
        if let Some(v) = parse_int(trimmed) {
            return Some(v);
        }
    }
    None
}

/// Parses all bindings out of one markdown document.
fn bindings(doc: &str, text: &str) -> Vec<Binding> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let trimmed = line.trim_start();
        // Table rows only: `| … | … |`. Separator rows have no digits or
        // backticks, so they fall out naturally.
        if !trimmed.starts_with('|') {
            continue;
        }
        let cells: Vec<&str> = trimmed.trim_matches('|').split('|').collect();
        let Some(name) = cells.iter().find_map(|c| backticked_const(c)) else { continue };
        // Value: first numeric cell that is not the one holding the name.
        let value =
            cells.iter().filter(|c| !c.contains(&format!("`{name}`"))).find_map(|c| cell_value(c));
        if let Some(value) = value {
            out.push(Binding { doc: doc.to_string(), line: i + 1, name, value });
        }
    }
    out
}

/// Runs the lint, appending findings to `out`.
pub fn lint(ws: &Workspace, out: &mut Vec<Diagnostic>) {
    for (doc, text) in &ws.docs {
        for b in bindings(doc, text) {
            // Every non-vendor const of that name must agree; typically
            // there is exactly one.
            let mut found = false;
            let mut mismatch: Option<String> = None;
            let mut unevaluated: Option<String> = None;
            for (id, sym) in ws.index.named(&b.name) {
                if sym.kind != SymbolKind::Const && sym.kind != SymbolKind::Static {
                    continue;
                }
                if ws.index.crates[id].starts_with("vendor/") {
                    continue;
                }
                found = true;
                match sym.const_value {
                    Some(v) if v == b.value => {}
                    Some(v) => {
                        mismatch = Some(format!(
                            "`{}` is {} in {}:{} but {} documents {}",
                            b.name, v, sym.file, sym.line, b.doc, b.value
                        ));
                    }
                    None => {
                        unevaluated = Some(format!(
                            "`{}` in {}:{} has an initializer the audit cannot evaluate; \
                             inline a literal value or drop the doc binding",
                            b.name, sym.file, sym.line
                        ));
                    }
                }
            }
            let message = if !found {
                Some(format!(
                    "{} documents `{}` = {} but no such const exists in the workspace",
                    b.doc, b.name, b.value
                ))
            } else {
                mismatch.or(unevaluated)
            };
            if let Some(message) = message {
                out.push(Diagnostic {
                    file: b.doc.clone(),
                    line: b.line,
                    lint: LINT,
                    message,
                    severity: Severity::Error,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binding_extraction() {
        let text = "intro\n\
                    | parameter | constant | value |\n\
                    |---|---|---|\n\
                    | epoch length | `DEFAULT_EPOCH_LEN` | 100_000 |\n\
                    | ways | `DEFAULT_DELI_WAYS` | 8 |\n\
                    | not bound | plain text | 42 |\n";
        let b = bindings("DESIGN.md", text);
        assert_eq!(b.len(), 2);
        assert_eq!(b[0].name, "DEFAULT_EPOCH_LEN");
        assert_eq!(b[0].value, 100_000);
        assert_eq!(b[0].line, 4);
        assert_eq!(b[1].name, "DEFAULT_DELI_WAYS");
        assert_eq!(b[1].value, 8);
    }

    #[test]
    fn const_name_shape() {
        assert!(is_const_name("DEFAULT_EPOCH_LEN"));
        assert!(is_const_name("SEED"));
        assert!(!is_const_name("DeliWays"));
        assert!(!is_const_name("fn"));
        assert!(!is_const_name(""));
    }

    #[test]
    fn numeric_cells() {
        assert_eq!(cell_value(" 100_000 "), Some(100_000));
        assert_eq!(cell_value("0x5eed_2011"), Some(0x5eed_2011));
        assert_eq!(cell_value("= 64 bytes"), Some(64));
        assert_eq!(cell_value("none here"), None);
    }
}
