//! The `dead-cross-crate-pub` lint and its checked-in baseline.
//!
//! A `pub` item in a lib crate that nothing outside the crate ever
//! references is API surface without a consumer: it can't be refactored
//! safely (who knows who uses it?) yet nobody does. The lint flags every
//! such item — unless it is recorded in the baseline file
//! `crates/audit/pub_baseline.txt`, where each entry is a deliberate,
//! commented decision to keep the surface (e.g. "library API for
//! downstream experiments, not yet consumed in-tree").
//!
//! Scope and exclusions:
//!
//! * Only items declared in *lib* compilation units count — `pub` in a
//!   binary or test target is not importable anyway.
//! * Fields and re-exports are skipped (reached through instances /
//!   counted at their definition).
//! * The `nucache-audit` crate itself is skipped: its library exists for
//!   its own binary and unit tests by design.
//! * Items gated `#[cfg(test)]` are skipped.
//! * A reference from the crate's own `tests/`, `benches/` or `bin`
//!   targets counts as external — cargo compiles those as separate
//!   crates, so the `pub` is genuinely load-bearing.
//!
//! Baseline file format, one entry per line:
//!
//! ```text
//! # comment
//! <crate> <kind> <Qualified::name>
//! ```
//!
//! keyed on stable identity, not line numbers, so entries survive
//! unrelated edits. `--update-baseline` rewrites the file from the
//! current findings.

use crate::diag::{Diagnostic, Severity};
use crate::resolve::Workspace;
use crate::symbols::{SymbolKind, Visibility};
use std::collections::BTreeSet;
use std::path::Path;

const LINT: &str = "dead-cross-crate-pub";

/// Crates whose pub surface is intentionally self-contained.
const EXEMPT_CRATES: &[&str] = &["nucache-audit"];

/// The checked-in set of accepted dead-pub entries.
#[derive(Debug, Default)]
pub struct Baseline {
    /// `"<crate> <kind> <qualified>"` entry strings.
    pub entries: BTreeSet<String>,
}

impl Baseline {
    /// Parses baseline text: one entry per line, `#` comments and blank
    /// lines ignored.
    pub fn parse(text: &str) -> Baseline {
        let entries = text
            .lines()
            .map(str::trim)
            .filter(|l| !l.is_empty() && !l.starts_with('#'))
            .map(str::to_string)
            .collect();
        Baseline { entries }
    }

    /// Loads the baseline from `path`; a missing file is an empty
    /// baseline (first run / fixture workspaces).
    ///
    /// # Errors
    ///
    /// Propagates read errors other than `NotFound`.
    pub fn load(path: &Path) -> std::io::Result<Baseline> {
        match std::fs::read_to_string(path) {
            Ok(text) => Ok(Baseline::parse(&text)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Baseline::default()),
            Err(e) => Err(e),
        }
    }

    /// Renders entry strings as a fresh baseline file body.
    pub fn render(entries: &BTreeSet<String>) -> String {
        let mut out = String::from(
            "# nucache-audit dead-cross-crate-pub baseline.\n\
             # Each line accepts one pub item with no external reference yet:\n\
             #   <crate> <kind> <Qualified::name>\n\
             # Regenerate with `nucache-audit lint --update-baseline`, then\n\
             # re-add the justifying comments for anything that stays.\n",
        );
        for e in entries {
            out.push_str(e);
            out.push('\n');
        }
        out
    }
}

/// The stable baseline key of one symbol.
fn entry_key(krate: &str, kind_label: &str, qualified: &str) -> String {
    format!("{krate} {kind_label} {qualified}")
}

/// Computes the current dead-pub entry set (used by both the lint and
/// `--update-baseline`).
pub fn current_entries(ws: &Workspace) -> BTreeSet<(String, String, usize)> {
    // (entry-key, file, line)
    let mut out = BTreeSet::new();
    for (id, sym) in ws.index.symbols.iter().enumerate() {
        let krate = ws.index.crates[id].as_str();
        if krate.starts_with("vendor/") || EXEMPT_CRATES.contains(&krate) {
            continue;
        }
        if sym.vis != Visibility::Pub
            || sym.kind == SymbolKind::Field
            || sym.kind == SymbolKind::Reexport
        {
            continue;
        }
        if sym.gates.iter().any(|g| g == "test") {
            continue;
        }
        let Some(file_idx) = super::file_index(ws, &sym.file) else { continue };
        let file = &ws.files[file_idx];
        // Only lib units export importable API.
        if file.unit != file.class.crate_name || file.scanned.is_test_code(sym.line) {
            continue;
        }
        let externally_referenced = ws
            .occurrences_of(&sym.name)
            .iter()
            .any(|occ| ws.files[occ.file].unit != krate && !ws.is_declaration(&sym.name, occ));
        if externally_referenced {
            continue;
        }
        if super::suppressed(ws, LINT, file_idx, sym.line) {
            continue;
        }
        out.insert((
            entry_key(krate, sym.kind.label(), &sym.qualified()),
            sym.file.clone(),
            sym.line,
        ));
    }
    out
}

/// Runs the lint, appending findings (entries not in `baseline`) to
/// `out`.
pub fn lint(ws: &Workspace, baseline: &Baseline, out: &mut Vec<Diagnostic>) {
    for (key, file, line) in current_entries(ws) {
        if baseline.entries.contains(&key) {
            continue;
        }
        out.push(Diagnostic {
            file,
            line,
            lint: LINT,
            message: format!(
                "pub item with no reference outside its crate: {key} — remove the pub, \
                 reference it, or add it to crates/audit/pub_baseline.txt with a comment"
            ),
            severity: Severity::Error,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_roundtrip() {
        let text =
            "# header\n\nnucache-core fn NuCache::epoch_len\n  nucache-sim struct SimConfig  \n";
        let b = Baseline::parse(text);
        assert_eq!(b.entries.len(), 2);
        assert!(b.entries.contains("nucache-core fn NuCache::epoch_len"));
        let rendered = Baseline::render(&b.entries);
        let reparsed = Baseline::parse(&rendered);
        assert_eq!(b.entries, reparsed.entries);
    }

    #[test]
    fn missing_file_is_empty() {
        let b = Baseline::load(Path::new("/nonexistent/pub_baseline.txt")).expect("ok");
        assert!(b.entries.is_empty());
    }
}
