//! Workspace-level semantic lints over the symbol index and use graph.
//!
//! Unlike the per-file passes in [`crate::lints`], these four lints need
//! the whole workspace at once:
//!
//! | lint | rule |
//! |------|------|
//! | `counter-dataflow` | every stats/telemetry counter field must be both written (incremented/assigned) and read outside tests, and its struct must have a reset/re-initialization path |
//! | `doc-constant-drift` | backticked `CONST_NAME` cells in DESIGN.md / EXPERIMENTS.md tables must match the `const` values in the code |
//! | `cfg-gate-consistency` | a feature-gated item must only be referenced from code under the same gate |
//! | `dead-cross-crate-pub` | `pub` items never referenced outside their defining crate must be in the checked-in baseline (`crates/audit/pub_baseline.txt`) |
//!
//! Suppressions work exactly like the per-file lints: a
//! `// nucache-audit: allow(<lint>) -- reason` comment on or above the
//! declaration line covers the finding.

pub mod cfg_gates;
pub mod counter_flow;
pub mod dead_pub;
pub mod doc_drift;

use crate::diag::Diagnostic;
use crate::resolve::Workspace;
use dead_pub::Baseline;

/// Names and one-line rules of the semantic lints, in run order.
pub const SEMANTIC_LINTS: &[(&str, &str)] = &[
    (
        "counter-dataflow",
        "counter fields must be incremented AND read outside tests, with a reset path",
    ),
    (
        "doc-constant-drift",
        "constants named in DESIGN.md/EXPERIMENTS.md tables must match the code",
    ),
    (
        "cfg-gate-consistency",
        "feature-gated items must not be referenced from differently-gated code",
    ),
    ("dead-cross-crate-pub", "pub items never referenced outside their crate must be baselined"),
];

/// Runs all four semantic lints. Findings are sorted by
/// (file, line, lint, message) — deterministic for CI diffing.
pub fn run_semantic_lints(ws: &Workspace, baseline: &Baseline) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    counter_flow::lint(ws, &mut out);
    doc_drift::lint(ws, &mut out);
    cfg_gates::lint(ws, &mut out);
    dead_pub::lint(ws, baseline, &mut out);
    out.sort_by(|a, b| {
        (&a.file, a.line, a.lint, &a.message).cmp(&(&b.file, b.line, b.lint, &b.message))
    });
    out
}

/// Whether a finding anchored at `(file_idx, line)` is suppressed by a
/// site comment.
pub(crate) fn suppressed(ws: &Workspace, lint: &str, file_idx: usize, line: usize) -> bool {
    ws.files[file_idx].scanned.is_suppressed(lint, line)
}

/// Index of `rel` in `ws.files`, when present.
pub(crate) fn file_index(ws: &Workspace, rel: &str) -> Option<usize> {
    ws.files.iter().position(|f| f.rel == rel)
}
