//! The `counter-dataflow` lint.
//!
//! The reproduced figures are computed entirely from counters: epoch
//! snapshots, monitor tallies, LLC hit/miss bundles. A counter that is
//! incremented but never read is dead weight that *looks* like
//! instrumentation; one that is read but never written reports a
//! perpetual zero and silently poisons every derived number. Both are
//! the instrumentation/model-disagreement failure mode the reuse-distance
//! literature warns about, so both are errors here.
//!
//! Scope: integer scalar fields (`u64`/`u32`/`usize`) of structs declared
//! in the statistics-bearing crates (`nucache-common`, `nucache-trace`,
//! `nucache-core`) in counter-bearing files (stem contains `stat`,
//! `telemetry`, `monitor`, `counter`) or counter-named structs
//! (`*Stats`, `*Counter*`, `*Summary`, `*Snapshot`, `*Audit`, `*Sink`).
//!
//! Occurrences are matched by field name across the whole workspace
//! (vendor code and test code excluded), so a same-named local that
//! shadows the field counts toward it — conservative in the right
//! direction: collisions can only hide a finding, never invent one.
//!
//! Additionally, a counter struct with at least one incremented field
//! must have a *reset path*: `#[derive(Default)]`, an `impl Default`, a
//! `clear`/`reset`/`decay` method, or fresh struct-literal construction.
//! Otherwise its counters can never be re-initialized per epoch.

use crate::diag::{Diagnostic, Severity};
use crate::resolve::{Occurrence, UseKind, Workspace};
use crate::symbols::{Symbol, SymbolKind};
use std::collections::BTreeSet;

const LINT: &str = "counter-dataflow";

/// Crates whose counter declarations are audited.
const COUNTER_CRATES: &[&str] = &["nucache-common", "nucache-trace", "nucache-core"];

/// File-stem markers for counter-bearing modules.
const COUNTER_FILES: &[&str] = &["stat", "telemetry", "monitor", "counter"];

/// Struct-name markers for counter bundles declared elsewhere.
const COUNTER_STRUCTS: &[&str] = &["Stats", "Counter", "Summary", "Snapshot", "Audit", "Sink"];

/// Integer scalar types treated as counters.
const COUNTER_TYPES: &[&str] = &["u64", "u32", "usize", "u128"];

/// Whether `sym` (a field) is in scope for the lint.
fn is_counter_field(ws: &Workspace, id: usize, sym: &Symbol) -> bool {
    if sym.kind != SymbolKind::Field {
        return false;
    }
    if !COUNTER_CRATES.contains(&ws.index.crates[id].as_str()) {
        return false;
    }
    let ty_ok = sym.field_type.as_deref().is_some_and(|t| COUNTER_TYPES.contains(&t));
    if !ty_ok {
        return false;
    }
    let stem = sym.file.rsplit('/').next().unwrap_or(&sym.file);
    let file_marked = COUNTER_FILES.iter().any(|m| stem.contains(m));
    let struct_marked =
        sym.parent.as_deref().is_some_and(|p| COUNTER_STRUCTS.iter().any(|m| p.contains(m)));
    file_marked || struct_marked
}

/// Whether the occurrence should count at all: lib/bin/example/bench
/// code outside tests and vendor.
fn in_scope(ws: &Workspace, occ: &Occurrence) -> bool {
    let f = &ws.files[occ.file];
    !f.class.is_vendor && !ws.is_test_occurrence(occ)
}

/// Classified totals for one field name.
#[derive(Debug, Default)]
struct Flow {
    increments: u64,
    assigns: u64,
    inits: u64,
    reads: u64,
}

fn classify_flow(ws: &Workspace, name: &str) -> Flow {
    let mut flow = Flow::default();
    for occ in ws.occurrences_of(name) {
        if !in_scope(ws, occ) || ws.is_declaration(name, occ) {
            continue;
        }
        match occ.kind {
            UseKind::Increment => flow.increments += 1,
            UseKind::Assign => flow.assigns += 1,
            // `name(…)` is a call of a same-named method, not an init.
            UseKind::Init if !occ.call => flow.inits += 1,
            _ => flow.reads += 1,
        }
    }
    flow
}

/// Whether struct `name` has a reset/re-initialization path.
fn has_reset_path(ws: &Workspace, strukt: &Symbol) -> bool {
    let file = ws.files.iter().find(|f| f.rel == strukt.file);
    // #[derive(Default)] on the struct.
    if file.is_some_and(|f| f.symbols.derives_default.iter().any(|d| d == &strukt.name)) {
        return true;
    }
    // An impl Default for it, or a clear/reset/decay method on it.
    for sym in &ws.index.symbols {
        if sym.kind == SymbolKind::Fn
            && sym.parent.as_deref() == Some(strukt.name.as_str())
            && matches!(sym.name.as_str(), "default" | "clear" | "reset" | "decay")
        {
            return true;
        }
    }
    // Fresh struct-literal construction anywhere outside tests:
    // `Name {` not preceded by a keyword that makes it a definition or
    // an impl header (`impl Name {`, `for Name {`).
    for occ in ws.occurrences_of(&strukt.name) {
        if !in_scope(ws, occ) || ws.is_declaration(&strukt.name, occ) {
            continue;
        }
        let f = &ws.files[occ.file];
        let Some(ti) = f.tokens.iter().position(|t| t.pos == occ.pos) else { continue };
        if !f.tokens.get(ti + 1).is_some_and(|t| t.is_punct("{")) {
            continue;
        }
        let header = ti.checked_sub(1).and_then(|p| f.tokens.get(p)).is_some_and(|t| {
            matches!(
                t.text.as_str(),
                "impl" | "for" | "struct" | "enum" | "trait" | "union" | "mod"
            )
        });
        if !header {
            return true;
        }
    }
    false
}

/// Runs the lint, appending findings to `out`.
pub fn lint(ws: &Workspace, out: &mut Vec<Diagnostic>) {
    let mut structs_with_increments: BTreeSet<String> = BTreeSet::new();
    let mut seen_fields: BTreeSet<(String, String)> = BTreeSet::new();

    for (id, sym) in ws.index.symbols.iter().enumerate() {
        if !is_counter_field(ws, id, sym) {
            continue;
        }
        // A field name is analyzed once even if several audited structs
        // share it (the flows are name-global anyway).
        let parent = sym.parent.clone().unwrap_or_default();
        if !seen_fields.insert((parent.clone(), sym.name.clone())) {
            continue;
        }
        let Some(file_idx) = super::file_index(ws, &sym.file) else { continue };
        if super::suppressed(ws, LINT, file_idx, sym.line) {
            continue;
        }
        let flow = classify_flow(ws, &sym.name);
        let written = flow.increments + flow.assigns + flow.inits;
        if flow.increments > 0 || flow.assigns > 0 {
            structs_with_increments.insert(parent.clone());
        }
        if written > 0 && flow.reads == 0 {
            out.push(Diagnostic {
                file: sym.file.clone(),
                line: sym.line,
                lint: LINT,
                message: format!(
                    "write-only counter `{}::{}`: written {written} time(s) but never \
                     read outside tests — wire it into a report/snapshot or remove it",
                    parent, sym.name
                ),
                severity: Severity::Error,
            });
        } else if written == 0 && flow.reads > 0 {
            out.push(Diagnostic {
                file: sym.file.clone(),
                line: sym.line,
                lint: LINT,
                message: format!(
                    "read-only counter `{}::{}`: read {} time(s) but never incremented or \
                     assigned — it always reports its initial value",
                    parent, sym.name, flow.reads
                ),
                severity: Severity::Error,
            });
        } else if written == 0 && flow.reads == 0 {
            out.push(Diagnostic {
                file: sym.file.clone(),
                line: sym.line,
                lint: LINT,
                message: format!(
                    "unused counter `{}::{}`: never written or read outside tests",
                    parent, sym.name
                ),
                severity: Severity::Error,
            });
        }
    }

    // Reset-path check per accumulating struct.
    for (id, sym) in ws.index.symbols.iter().enumerate() {
        if sym.kind != SymbolKind::Struct || !structs_with_increments.contains(&sym.name) {
            continue;
        }
        if !COUNTER_CRATES.contains(&ws.index.crates[id].as_str()) {
            continue;
        }
        let Some(file_idx) = super::file_index(ws, &sym.file) else { continue };
        if super::suppressed(ws, LINT, file_idx, sym.line) {
            continue;
        }
        if !has_reset_path(ws, sym) {
            out.push(Diagnostic {
                file: sym.file.clone(),
                line: sym.line,
                lint: LINT,
                message: format!(
                    "counter struct `{}` accumulates but has no reset path (no \
                     derive(Default), Default impl, clear/reset/decay method, or fresh \
                     construction) — its counters can never re-initialize per epoch",
                    sym.name
                ),
                severity: Severity::Error,
            });
        }
    }
}
