//! The `cfg-gate-consistency` lint.
//!
//! Feature-gated items compile out when the feature is off, and an
//! ungated reference to one breaks exactly one build configuration —
//! the one CI isn't currently running — which is how feature rot ships.
//! The rule:
//!
//! > every reference to a feature-gated item must itself sit under (at
//! > least) the same feature gates, unless Cargo guarantees the gate is
//! > on in every build of the referencing crate.
//!
//! Two sources of gates are recognized at a reference site: `#[cfg]`
//! regions inside the file itself, and gates *inherited* from the `mod`
//! declarations that pull the file into its crate (a file whose `mod`
//! line is gated is gated in its entirety — `gates_at` alone cannot see
//! that).
//!
//! The Cargo escape hatch covers the `std` pattern: a feature that is in
//! the **default set** of the declaring crate is on for every dependent
//! that doesn't say `default-features = false`, so a cross-crate
//! reference from such a dependent cannot break any configuration that
//! exists. Feature facts come from the workspace manifests
//! ([`crate::manifest::Manifests`]); a crate with no parsed manifest is
//! treated conservatively (no exemption). Same-crate references are
//! always enforced — `-p <crate> --no-default-features` is a real build
//! of the declaring crate itself. The `debug_invariants` pattern stays
//! fully enforced cross-crate too: it is nobody's default feature.
//!
//! Only `feature = "…"` gates participate. `cfg(test)` and
//! `cfg(debug_assertions)` don't create link-time holes the same way,
//! and `opaque:` gates (any/all/not combinators) are skipped rather than
//! guessed at. A name declared several times with *different* gate sets
//! is also skipped: name-based resolution can't tell which definition a
//! reference binds to, and guessing would produce false positives.

use crate::diag::{Diagnostic, Severity};
use crate::resolve::Workspace;
use crate::symbols::SymbolKind;
use std::collections::{BTreeMap, BTreeSet};

const LINT: &str = "cfg-gate-consistency";

/// Feature gates of one symbol's declaration, or `None` when the gate
/// set is unusable (opaque combinators present).
fn feature_gates(gates: &[String]) -> Option<BTreeSet<String>> {
    let mut out = BTreeSet::new();
    for g in gates {
        if let Some(name) = g.strip_prefix("feature:") {
            out.insert(name.to_string());
        } else if g.starts_with("opaque:") {
            return None;
        }
        // `test` / `debug_assertions`: intentionally ignored.
    }
    Some(out)
}

/// The agreed declaration facts of one name: its feature-gate set and
/// every non-vendor crate declaring it.
struct Declared<'a> {
    gates: BTreeSet<String>,
    crates: BTreeSet<&'a str>,
}

/// The `mod` chain above a source file: for `…/src/a/b.rs`, the
/// declaration site of `b` (in `a.rs` or `a/mod.rs`), then of `a`, up
/// to the crate root. Returns the parent candidates and the module name
/// for one step, or `None` at a crate/target root.
fn parent_step(rel: &str) -> Option<(Vec<String>, String)> {
    let (dir, file) = rel.rsplit_once('/')?;
    let stem = file.strip_suffix(".rs")?;
    if stem == "lib" || stem == "main" {
        return None;
    }
    // `tests/`, `benches/`, `examples/`, `src/bin/`: every file is its
    // own target root, nothing declares it as a module.
    let segments: Vec<&str> = dir.split('/').collect();
    match segments.last() {
        Some(&"tests") | Some(&"benches") | Some(&"examples") | Some(&"bin") => return None,
        _ => {}
    }
    let (base, name) = if stem == "mod" {
        let (grand, dirname) = dir.rsplit_once('/')?;
        (grand.to_string(), dirname.to_string())
    } else {
        (dir.to_string(), stem.to_string())
    };
    let candidates = if base.ends_with("/src") || base == "src" {
        vec![format!("{base}/lib.rs"), format!("{base}/main.rs")]
    } else {
        vec![format!("{base}.rs"), format!("{base}/mod.rs")]
    };
    Some((candidates, name))
}

/// Feature gates a file inherits from the `mod` declarations pulling it
/// into its crate. `None` when an ancestor `mod` sits under an opaque
/// gate (give the whole file the benefit of the doubt).
fn inherited_gates(
    ws: &Workspace,
    by_rel: &BTreeMap<&str, usize>,
    rel: &str,
) -> Option<BTreeSet<String>> {
    let mut out = BTreeSet::new();
    let mut cur = rel.to_string();
    // Bounded walk: a pathological self-referential layout must not spin.
    for _ in 0..32 {
        let Some((candidates, name)) = parent_step(&cur) else { break };
        let Some((&parent_idx, parent_rel)) =
            candidates.iter().find_map(|c| by_rel.get_key_value(c.as_str()).map(|(k, v)| (v, *k)))
        else {
            break;
        };
        for sym in &ws.files[parent_idx].symbols.symbols {
            if sym.kind == SymbolKind::Mod && sym.name == name {
                out.extend(feature_gates(&sym.gates)?);
            }
        }
        cur = parent_rel.to_string();
    }
    Some(out)
}

/// Runs the lint, appending findings to `out`.
pub fn lint(ws: &Workspace, out: &mut Vec<Diagnostic>) {
    // Name -> the one agreed gate set of all its non-vendor declarations
    // plus the declaring crates, or None when declarations disagree /
    // are opaque.
    let mut required: BTreeMap<&str, Option<Declared<'_>>> = BTreeMap::new();
    for (id, sym) in ws.index.symbols.iter().enumerate() {
        let crate_name = ws.index.crates[id].as_str();
        if crate_name.starts_with("vendor/") || sym.kind == SymbolKind::Field {
            continue;
        }
        let gates = feature_gates(&sym.gates);
        match required.get_mut(sym.name.as_str()) {
            None => {
                required.insert(
                    &sym.name,
                    gates.map(|gates| Declared { gates, crates: BTreeSet::from([crate_name]) }),
                );
            }
            Some(existing) => match (existing.as_mut(), gates) {
                (Some(decl), Some(gates)) if decl.gates == gates => {
                    decl.crates.insert(crate_name);
                }
                _ => *existing = None,
            },
        }
    }

    let by_rel: BTreeMap<&str, usize> =
        ws.files.iter().enumerate().map(|(i, f)| (f.rel.as_str(), i)).collect();
    // Per-file cache of inherited `mod`-declaration gates.
    let mut inherited: BTreeMap<usize, Option<BTreeSet<String>>> = BTreeMap::new();

    for (name, decl) in &required {
        let Some(decl) = decl else { continue };
        if decl.gates.is_empty() {
            continue;
        }
        for occ in ws.occurrences_of(name) {
            let f = &ws.files[occ.file];
            if f.class.is_vendor || ws.is_declaration(name, occ) {
                continue;
            }
            let Some(mut site) = feature_gates(&f.symbols.gates_at(occ.pos)) else {
                // Reference under an opaque gate: give it the benefit of
                // the doubt rather than flag unprovable code.
                continue;
            };
            let from_mods =
                inherited.entry(occ.file).or_insert_with(|| inherited_gates(ws, &by_rel, &f.rel));
            let Some(from_mods) = from_mods else { continue };
            site.extend(from_mods.iter().cloned());
            let missing: Vec<&String> = decl.gates.difference(&site).collect();
            if missing.is_empty() {
                continue;
            }
            let referencing = f.class.crate_name.as_str();
            if !decl.crates.contains(referencing) {
                // Cross-crate: Cargo, not cfg, decides whether the gate
                // is on. Exempt when every missing feature is a default
                // of every declaring crate and this crate keeps the
                // defaults — then no existing configuration can break.
                let guaranteed = missing.iter().all(|feat| {
                    decl.crates.iter().all(|d| {
                        ws.manifests.enabled_by_default(d, feat)
                            && !ws.manifests.disables_defaults(referencing, d)
                    })
                });
                if guaranteed {
                    continue;
                }
            }
            if super::suppressed(ws, LINT, occ.file, occ.line) {
                continue;
            }
            out.push(Diagnostic {
                file: f.rel.clone(),
                line: occ.line,
                lint: LINT,
                message: format!(
                    "`{name}` is declared under #[cfg(feature = \"{}\")] but referenced \
                     here without that gate — this breaks builds with the feature disabled",
                    missing.iter().map(|s| s.as_str()).collect::<Vec<_>>().join("\", \"")
                ),
                severity: Severity::Error,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_normalization() {
        let gates = vec!["feature:debug_invariants".to_string(), "test".to_string()];
        let set = feature_gates(&gates).expect("usable");
        assert_eq!(set.len(), 1);
        assert!(set.contains("debug_invariants"));
        assert!(feature_gates(&["opaque:any(feature = \"a\")".to_string()]).is_none());
    }

    #[test]
    fn parent_steps() {
        let step = |rel: &str| parent_step(rel);
        assert!(step("crates/x/src/lib.rs").is_none());
        assert!(step("crates/x/src/bin/tool.rs").is_none());
        assert!(step("crates/x/tests/t.rs").is_none());
        assert!(step("examples/e.rs").is_none());
        let (cands, name) = step("crates/x/src/telemetry.rs").expect("has parent");
        assert_eq!(name, "telemetry");
        assert_eq!(cands, vec!["crates/x/src/lib.rs", "crates/x/src/main.rs"]);
        let (cands, name) = step("crates/x/src/policy/lru.rs").expect("has parent");
        assert_eq!(name, "lru");
        assert_eq!(cands, vec!["crates/x/src/policy.rs", "crates/x/src/policy/mod.rs"]);
        let (cands, name) = step("crates/x/src/policy/mod.rs").expect("has parent");
        assert_eq!(name, "policy");
        assert_eq!(cands, vec!["crates/x/src/lib.rs", "crates/x/src/main.rs"]);
    }
}
