//! The `cfg-gate-consistency` lint.
//!
//! The `debug_invariants` feature gates the differential oracle: when it
//! is off, the oracle types and hooks must compile out entirely. An
//! ungated reference to a gated item breaks exactly one build
//! configuration — the one CI isn't currently running — which is how
//! feature rot ships. The rule:
//!
//! > every reference to a feature-gated item must itself sit under (at
//! > least) the same feature gates.
//!
//! Only `feature = "…"` gates participate. `cfg(test)` and
//! `cfg(debug_assertions)` don't create link-time holes the same way,
//! and `opaque:` gates (any/all/not combinators) are skipped rather than
//! guessed at. A name declared several times with *different* gate sets
//! is also skipped: name-based resolution can't tell which definition a
//! reference binds to, and guessing would produce false positives.

use crate::diag::{Diagnostic, Severity};
use crate::resolve::Workspace;
use crate::symbols::SymbolKind;
use std::collections::{BTreeMap, BTreeSet};

const LINT: &str = "cfg-gate-consistency";

/// Feature gates of one symbol's declaration, or `None` when the gate
/// set is unusable (opaque combinators present).
fn feature_gates(gates: &[String]) -> Option<BTreeSet<String>> {
    let mut out = BTreeSet::new();
    for g in gates {
        if let Some(name) = g.strip_prefix("feature:") {
            out.insert(name.to_string());
        } else if g.starts_with("opaque:") {
            return None;
        }
        // `test` / `debug_assertions`: intentionally ignored.
    }
    Some(out)
}

/// Runs the lint, appending findings to `out`.
pub fn lint(ws: &Workspace, out: &mut Vec<Diagnostic>) {
    // Name -> the one agreed gate set of all its non-vendor declarations,
    // or None when declarations disagree / are opaque.
    let mut required: BTreeMap<&str, Option<BTreeSet<String>>> = BTreeMap::new();
    for (id, sym) in ws.index.symbols.iter().enumerate() {
        if ws.index.crates[id].starts_with("vendor/") || sym.kind == SymbolKind::Field {
            continue;
        }
        let gates = feature_gates(&sym.gates);
        match required.get_mut(sym.name.as_str()) {
            None => {
                required.insert(&sym.name, gates);
            }
            Some(existing) => {
                if *existing != gates {
                    *existing = None;
                }
            }
        }
    }

    for (name, gates) in &required {
        let Some(gates) = gates else { continue };
        if gates.is_empty() {
            continue;
        }
        for occ in ws.occurrences_of(name) {
            let f = &ws.files[occ.file];
            if f.class.is_vendor || ws.is_declaration(name, occ) {
                continue;
            }
            let Some(site) = feature_gates(&f.symbols.gates_at(occ.pos)) else {
                // Reference under an opaque gate: give it the benefit of
                // the doubt rather than flag unprovable code.
                continue;
            };
            let missing: Vec<&String> = gates.difference(&site).collect();
            if missing.is_empty() {
                continue;
            }
            if super::suppressed(ws, LINT, occ.file, occ.line) {
                continue;
            }
            out.push(Diagnostic {
                file: f.rel.clone(),
                line: occ.line,
                lint: LINT,
                message: format!(
                    "`{name}` is declared under #[cfg(feature = \"{}\")] but referenced \
                     here without that gate — this breaks builds with the feature disabled",
                    missing.iter().map(|s| s.as_str()).collect::<Vec<_>>().join("\", \"")
                ),
                severity: Severity::Error,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_normalization() {
        let gates = vec!["feature:debug_invariants".to_string(), "test".to_string()];
        let set = feature_gates(&gates).expect("usable");
        assert_eq!(set.len(), 1);
        assert!(set.contains("debug_invariants"));
        assert!(feature_gates(&["opaque:any(feature = \"a\")".to_string()]).is_none());
    }
}
