//! Effect inference over the workspace call graph.
//!
//! Each function body is scanned for *effect sites* — token patterns a
//! curated intrinsic table maps to one of four effects — and *call
//! sites*, which are resolved against the workspace symbol universe by
//! name (qualified calls additionally match the receiver type against
//! the defining `impl`). A fixpoint then propagates callee effects to
//! callers, so `Kernel::get` inherits `allocates` from anything its
//! transitive callees do.
//!
//! The lattice is a four-bit power set plus an `unknown` bit:
//!
//! | effect  | seeded by |
//! |---------|-----------|
//! | `alloc` | `push`, `insert`, `collect`, `or_insert`, `to_vec`, `vec!`, `format!`, … |
//! | `panic` | `unwrap`, `expect`, indexing `x[i]`, `panic!`, `assert!`, … |
//! | `lock`  | `.lock()`, `.try_lock()` |
//! | `io`    | `println!`, `write_all`, `flush`, … |
//!
//! Unknown callees (names that resolve to no workspace function and no
//! intrinsic) set the `unknown` bit; the hot-path lints decide how to
//! surface that conservatively. Resolution is name-based and therefore
//! over-approximate: a call edge is kept only when the callee's crate is
//! a declared dependency of the caller's crate (or the same crate), which
//! prunes most cross-crate name collisions without pretending to do type
//! inference.

use crate::cfg::{fn_spans, FnSpan};
use crate::lexer::AnnotationKind;
use crate::resolve::Workspace;
use crate::symbols::{TokKind, Token};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A set of inferred effects, as a bitset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EffectSet(pub u8);

impl EffectSet {
    /// Heap allocation (or container growth that may reallocate).
    pub const ALLOC: EffectSet = EffectSet(1);
    /// May panic (unwrap/expect, indexing, assert/panic macros).
    pub const PANIC: EffectSet = EffectSet(2);
    /// Acquires a lock.
    pub const LOCK: EffectSet = EffectSet(4);
    /// Performs I/O.
    pub const IO: EffectSet = EffectSet(8);
    /// Calls something the analysis cannot resolve.
    pub const UNKNOWN: EffectSet = EffectSet(16);
    /// The empty (pure) set.
    pub const PURE: EffectSet = EffectSet(0);

    /// Set union.
    #[must_use]
    pub const fn union(self, other: EffectSet) -> EffectSet {
        EffectSet(self.0 | other.0)
    }

    /// Whether every effect in `other` is present in `self`.
    pub const fn contains(self, other: EffectSet) -> bool {
        self.0 & other.0 == other.0
    }

    /// Whether no effect is present.
    pub const fn is_pure(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for EffectSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_pure() {
            return write!(f, "pure");
        }
        let mut first = true;
        for (bit, name) in [
            (EffectSet::ALLOC, "alloc"),
            (EffectSet::PANIC, "panic"),
            (EffectSet::LOCK, "lock"),
            (EffectSet::IO, "io"),
            (EffectSet::UNKNOWN, "unknown"),
        ] {
            if self.contains(bit) {
                if !first {
                    write!(f, "|")?;
                }
                write!(f, "{name}")?;
                first = false;
            }
        }
        Ok(())
    }
}

/// Methods/functions whose call is itself an allocation (or potential
/// container growth, which may reallocate).
const ALLOC_NAMES: &[&str] = &[
    "push",
    "push_str",
    "push_back",
    "push_front",
    "insert",
    "append",
    "extend",
    "extend_from_slice",
    "reserve",
    "resize",
    "resize_with",
    "with_capacity",
    "to_vec",
    "to_string",
    "to_owned",
    "collect",
    "sort",
    "sort_by",
    "sort_by_key",
    "or_insert",
    "or_insert_with",
    "or_default",
    "split_off",
    "repeat",
    "join",
    "concat",
    "clone",
    "cloned",
    "boxed",
];

/// Macros that allocate.
const ALLOC_MACROS: &[&str] = &["vec", "format"];

/// Methods whose call may panic.
const PANIC_NAMES: &[&str] = &["unwrap", "expect", "unwrap_err", "expect_err"];

/// Macros that may panic. `debug_assert*` is deliberately absent: it
/// compiles out of release builds, which is what the hot-path contract
/// governs.
const PANIC_MACROS: &[&str] =
    &["panic", "assert", "assert_eq", "assert_ne", "unreachable", "todo", "unimplemented"];

/// Lock-acquiring methods.
const LOCK_NAMES: &[&str] = &["lock", "try_lock", "read", "write"];

/// Lock-acquiring methods that are unambiguous even without a receiver
/// type (`read`/`write` collide with I/O and slices too often to seed
/// from name alone).
const LOCK_NAMES_DIRECT: &[&str] = &["lock", "try_lock"];

/// I/O macros and methods.
const IO_MACROS: &[&str] = &["println", "eprintln", "print", "eprint", "write", "writeln"];
const IO_NAMES: &[&str] = &["write_all", "write_fmt", "flush", "read_to_string", "read_line"];

/// Qualified calls with known effects that name-based resolution would
/// otherwise miss (no workspace `impl` defines them).
const QUALIFIED_ALLOC: &[(&str, &str)] =
    &[("Box", "new"), ("String", "from"), ("Vec", "from"), ("Arc", "new"), ("Rc", "new")];

/// Qualified calls that look effectful by name but are not: `Arc::clone`
/// is a refcount bump, not a deep clone.
const QUALIFIED_BENIGN: &[(&str, &str)] = &[("Arc", "clone"), ("Rc", "clone"), ("Instant", "now")];

/// Unqualified/receiver calls known effect-free (or whose effects are
/// bounded to the callee's own stack): the standard-library surface this
/// workspace actually uses. Anything not listed and not resolvable
/// becomes `unknown`, so this table errs small and grows on evidence.
const BENIGN_NAMES: &[&str] = &[
    // Option/Result plumbing.
    "is_some",
    "is_none",
    "is_ok",
    "is_err",
    "as_ref",
    "as_mut",
    "as_deref",
    "ok",
    "err",
    "ok_or",
    "unwrap_or",
    "unwrap_or_default",
    "unwrap_or_else",
    "map_or",
    "map_err",
    "and_then",
    "or_else",
    "take",
    "replace",
    "get_or_insert_with",
    "is_some_and",
    "is_none_or",
    "zip",
    // Iteration (lazy adapters allocate nothing; terminal folds are
    // stack-bounded).
    "iter",
    "iter_mut",
    "into_iter",
    "chars",
    "bytes",
    "lines",
    "split",
    "splitn",
    "split_once",
    "split_whitespace",
    "windows",
    "chunks",
    "enumerate",
    "rev",
    "skip",
    "skip_while",
    "step_by",
    "take_while",
    "chain",
    "flat_map",
    "flatten",
    "filter",
    "filter_map",
    "map",
    "fold",
    "for_each",
    "position",
    "find",
    "find_map",
    "any",
    "all",
    "count",
    "sum",
    "product",
    "max",
    "min",
    "max_by",
    "max_by_key",
    "min_by",
    "min_by_key",
    "last",
    "next",
    "next_back",
    "nth",
    "peekable",
    "peek",
    "by_ref",
    "copied",
    "values",
    "values_mut",
    "keys",
    "range",
    "contains",
    "contains_key",
    "starts_with",
    "ends_with",
    // Container reads / in-place edits that never grow.
    "len",
    "is_empty",
    "get",
    "get_mut",
    "first",
    "first_mut",
    "last_mut",
    "binary_search",
    "binary_search_by",
    "fill",
    "swap",
    "swap_remove",
    "rotate_left",
    "rotate_right",
    "retain",
    "truncate",
    "clear",
    "pop",
    "pop_front",
    "pop_back",
    "remove",
    "drain",
    "dedup",
    "sort_unstable",
    "sort_unstable_by",
    "sort_unstable_by_key",
    "reverse",
    "entry",
    "as_slice",
    "as_str",
    "as_bytes",
    "trim",
    "trim_start",
    "trim_end",
    "trim_matches",
    "trim_start_matches",
    "trim_end_matches",
    "strip_prefix",
    "strip_suffix",
    "eq_ignore_ascii_case",
    "char_indices",
    "parse",
    "floor",
    "ceil",
    "round",
    "sqrt",
    "abs",
    "ln",
    "log2",
    "exp",
    "powi",
    "powf",
    "mul_add",
    "hypot",
    "to_bits",
    "from_bits",
    "is_finite",
    "is_nan",
    "clamp",
    // Arithmetic helpers.
    "saturating_add",
    "saturating_sub",
    "saturating_mul",
    "wrapping_add",
    "wrapping_sub",
    "wrapping_mul",
    "checked_add",
    "checked_sub",
    "checked_mul",
    "checked_div",
    "overflowing_add",
    "leading_zeros",
    "trailing_zeros",
    "count_ones",
    "pow",
    "next_power_of_two",
    "is_power_of_two",
    "ilog2",
    "signum",
    "rem_euclid",
    "div_euclid",
    "min_assign",
    "cmp",
    "partial_cmp",
    "then",
    "then_with",
    "then_some",
    "eq",
    "ne",
    "hash",
    "finish",
    "kind",
    "fract",
    // Conversions (From/Into/TryFrom between scalar types).
    "from",
    "into",
    "try_into",
    "try_from",
    "from_str",
    "as_u64",
    "as_usize",
    "is_char_boundary",
    "is_alphabetic",
    "is_alphanumeric",
    "is_ascii_digit",
    "is_ascii_alphanumeric",
    "is_whitespace",
    "is_uppercase",
    "is_lowercase",
    "to_ascii_lowercase",
    "to_ascii_uppercase",
    "to_digit",
    // Misc std surface.
    "default",
    "new",
    "drop",
    "matches",
    "min_stack",
    "borrow",
    "borrow_mut",
    "deref",
    "as_nanos",
    "as_micros",
    "as_millis",
    "as_secs",
    "as_secs_f64",
    "elapsed",
    "duration_since",
    "subsec_nanos",
    "id",
    "name",
    "field",
    "finish_non_exhaustive",
    "fmt",
    "size_hint",
];

/// Names that are statement keywords, not calls, when followed by `(`.
const CALL_KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "return", "loop", "fn", "as", "in", "move", "ref", "mut",
    "else", "let", "impl", "where", "dyn", "break", "continue", "unsafe", "await", "box", "pub",
    "use", "crate", "super", "self", "Self",
];

/// One intrinsic effect occurrence inside a function body.
#[derive(Debug, Clone)]
pub struct EffectSite {
    /// The effect this site contributes.
    pub effect: EffectSet,
    /// Human-readable source (`Vec::push`, `index`, `panic!`, …).
    pub source: String,
    /// 1-indexed source line.
    pub line: usize,
    /// Token index of the site (for CFG statement lookup).
    pub tok: usize,
    /// `// audit:allow-alloc(reason)` covering this site, if any.
    pub allowed: Option<String>,
}

/// One call to a (possibly) workspace-defined function.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Callee name as written.
    pub name: String,
    /// `Type::` qualifier, if the call was written qualified.
    pub qualifier: Option<String>,
    /// 1-indexed source line.
    pub line: usize,
    /// Token index of the callee name.
    pub tok: usize,
    /// The receiver is literally `self` (`self.method(..)`).
    pub self_recv: bool,
    /// Indices into [`EffectModel::fns`] this call may target.
    pub targets: Vec<usize>,
    /// No workspace target and no intrinsic classification.
    pub unknown: bool,
}

/// Everything the analysis knows about one workspace function.
#[derive(Debug, Clone)]
pub struct FnInfo {
    /// Index into `Workspace::files`.
    pub file: usize,
    /// Declaration span (name, parent type, body token range).
    pub span: FnSpan,
    /// Crate the function lives in.
    pub crate_name: String,
    /// Effects from intrinsic sites in this body alone.
    pub direct: EffectSet,
    /// The intrinsic sites themselves.
    pub sites: Vec<EffectSite>,
    /// Calls out of this body.
    pub calls: Vec<CallSite>,
    /// Fixpoint effects (direct ∪ every reachable callee's effects).
    pub effects: EffectSet,
    /// Declared `// audit:hot-path`.
    pub hot_path: bool,
    /// Declared `// audit:allow-alloc(reason)` at function level: the
    /// hot-path traversal treats the whole body as a justified
    /// allocation boundary.
    pub alloc_boundary: Option<String>,
}

impl FnInfo {
    /// `Parent::name`-qualified display name.
    pub fn qualified(&self) -> String {
        self.span.qualified()
    }
}

/// The workspace-wide effect model: per-function effects plus the call
/// graph they were propagated over.
#[derive(Debug, Default)]
pub struct EffectModel {
    /// Every analyzed function (vendor and test code excluded), in file
    /// order then body order.
    pub fns: Vec<FnInfo>,
    /// Function name → indices into `fns`.
    pub by_name: BTreeMap<String, Vec<usize>>,
}

impl EffectModel {
    /// Builds the model: extract sites and calls per function, resolve
    /// call targets, then run the effect fixpoint.
    pub fn build(ws: &Workspace) -> EffectModel {
        let mut fns = Vec::new();
        for (file_id, fm) in ws.files.iter().enumerate() {
            if fm.class.is_vendor || fm.class.is_test_dir {
                continue;
            }
            for span in fn_spans(&fm.tokens) {
                if fm.scanned.is_test_code(span.line) {
                    continue;
                }
                let hot_path =
                    fm.scanned.annotation_above(AnnotationKind::HotPath, span.line, 3).is_some();
                let alloc_boundary = fm
                    .scanned
                    .annotation_above(AnnotationKind::AllowAlloc, span.line, 3)
                    .map(|a| a.reason.clone());
                let mut info = FnInfo {
                    file: file_id,
                    span,
                    crate_name: fm.class.crate_name.clone(),
                    direct: EffectSet::PURE,
                    sites: Vec::new(),
                    calls: Vec::new(),
                    effects: EffectSet::PURE,
                    hot_path,
                    alloc_boundary,
                };
                extract_body(&fm.tokens, &fm.scanned, &mut info);
                fns.push(info);
            }
        }

        let mut by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for (i, f) in fns.iter().enumerate() {
            by_name.entry(f.span.name.clone()).or_default().push(i);
        }

        // Resolve call targets. A name-match edge is kept when the
        // callee's crate is the caller's own or a declared dependency
        // (missing manifests — fixture mini-workspaces — keep every
        // edge, conservatively).
        for i in 0..fns.len() {
            let caller_crate = fns[i].crate_name.clone();
            let deps = ws.manifests.by_crate.get(&caller_crate).map(|m| m.deps.clone());
            let caller_parent = fns[i].span.parent.clone();
            let mut calls = std::mem::take(&mut fns[i].calls);
            for call in &mut calls {
                // `Self::helper(..)` names the caller's own impl type.
                let qualifier = match call.qualifier.as_deref() {
                    Some("Self") => caller_parent.clone(),
                    q => q.map(str::to_string),
                };
                let candidates = by_name.get(&call.name).cloned().unwrap_or_default();
                for j in candidates {
                    let callee = &fns[j];
                    if let Some(q) = &qualifier {
                        if callee.span.parent.as_deref() != Some(q.as_str()) {
                            continue;
                        }
                    }
                    let dep_ok = callee.crate_name == caller_crate
                        || deps.as_ref().is_none_or(|d| d.contains(&callee.crate_name));
                    if dep_ok {
                        call.targets.push(j);
                    }
                }
                // `self.method(..)` is a call on the caller's own type:
                // when a same-type method matches, drop the cross-type
                // name collisions.
                if call.self_recv {
                    let own: Vec<usize> = call
                        .targets
                        .iter()
                        .copied()
                        .filter(|&j| fns[j].span.parent == caller_parent)
                        .collect();
                    if !own.is_empty() {
                        call.targets = own;
                    }
                }
                if call.targets.is_empty() && !benign_unresolved(call) {
                    call.unknown = true;
                }
            }
            fns[i].calls = calls;
        }

        // Effect fixpoint over the (cyclic) call graph.
        for f in &mut fns {
            f.effects = f.direct;
            if f.calls.iter().any(|c| c.unknown) {
                f.effects = f.effects.union(EffectSet::UNKNOWN);
            }
        }
        loop {
            let mut changed = false;
            for i in 0..fns.len() {
                let mut eff = fns[i].effects;
                for call in &fns[i].calls {
                    for &j in &call.targets {
                        eff = eff.union(fns[j].effects);
                    }
                }
                if eff != fns[i].effects {
                    fns[i].effects = eff;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }

        EffectModel { fns, by_name }
    }

    /// Functions of `crate_name`, as indices.
    pub fn crate_fns(&self, crate_name: &str) -> Vec<usize> {
        (0..self.fns.len()).filter(|&i| self.fns[i].crate_name == crate_name).collect()
    }
}

/// Whether an unresolved call is still known-benign (constructors and
/// curated std surface).
fn benign_unresolved(call: &CallSite) -> bool {
    if let Some(q) = &call.qualifier {
        if QUALIFIED_BENIGN.iter().any(|(t, n)| t == q && *n == call.name) {
            return true;
        }
    }
    if call.name.chars().next().is_some_and(char::is_uppercase) {
        // Constructors: moving values into place, no effect of their own.
        return true;
    }
    BENIGN_NAMES.contains(&call.name.as_str())
}

/// Scans one function body for intrinsic effect sites and call sites.
fn extract_body(toks: &[Token], scanned: &crate::lexer::ScannedFile, info: &mut FnInfo) {
    let body = info.span.body.clone();
    // Let-bound closures (`let f = |..|` / `let f = move |..|`): their
    // bodies are scanned inline like any other body tokens, so a call
    // through the binding adds no effects — resolving it by name would
    // only produce a bogus `unknown` edge.
    let mut local_closures: BTreeSet<String> = BTreeSet::new();
    for w in body.clone() {
        if !toks[w].is_ident("let") {
            continue;
        }
        let mut j = w + 1;
        if j < body.end && toks[j].is_ident("mut") {
            j += 1;
        }
        if j + 1 < body.end && toks[j].kind == TokKind::Ident && toks[j + 1].is_punct("=") {
            let mut k = j + 2;
            if k < body.end && toks[k].is_ident("move") {
                k += 1;
            }
            if k < body.end && toks[k].is_punct("|") {
                local_closures.insert(toks[j].text.clone());
            }
        }
    }
    let mut i = body.start;
    while i < body.end {
        let t = &toks[i];
        // Indexing: `expr[..]` — `[` preceded by an ident, `)` or `]`.
        // Attribute brackets (`#[..]`), slice types (`&[u8]`) and array
        // literals (`= [`) all fail the predecessor test.
        if t.is_punct("[") && i > body.start {
            let p = &toks[i - 1];
            let after_value = (p.kind == TokKind::Ident
                && !CALL_KEYWORDS.contains(&p.text.as_str()))
                || p.is_punct(")")
                || p.is_punct("]");
            if after_value {
                push_site(info, scanned, EffectSet::PANIC, "index", t.line, i);
            }
            i += 1;
            continue;
        }
        if t.kind != TokKind::Ident {
            i += 1;
            continue;
        }
        // Macro invocation: `name!(..)` / `name![..]` / `name!{..}`.
        if i + 1 < body.end && toks[i + 1].is_punct("!") {
            let name = t.text.as_str();
            let (effect, label) = if ALLOC_MACROS.contains(&name) {
                (EffectSet::ALLOC, format!("{name}!"))
            } else if PANIC_MACROS.contains(&name) {
                (EffectSet::PANIC, format!("{name}!"))
            } else if IO_MACROS.contains(&name) {
                (EffectSet::IO, format!("{name}!"))
            } else {
                (EffectSet::PURE, String::new())
            };
            if !effect.is_pure() {
                push_site(info, scanned, effect, &label, t.line, i);
            }
            i += 2;
            continue;
        }
        // Call: `name(..)`.
        if i + 1 < body.end
            && toks[i + 1].is_punct("(")
            && !CALL_KEYWORDS.contains(&t.text.as_str())
        {
            let name = t.text.clone();
            let after_dot = i > body.start && toks[i - 1].is_punct(".");
            if !after_dot && local_closures.contains(name.as_str()) {
                i += 1;
                continue;
            }
            let self_recv = after_dot && i >= 2 && toks[i - 2].is_ident("self");
            let qualifier = (!after_dot)
                .then(|| {
                    (i >= body.start + 2
                        && toks[i - 1].is_punct("::")
                        && toks[i - 2].kind == TokKind::Ident)
                        .then(|| toks[i - 2].text.clone())
                })
                .flatten();
            classify_call(info, scanned, name, qualifier, after_dot, self_recv, t.line, i);
            i += 1;
            continue;
        }
        i += 1;
    }
}

/// Records a call token as either an intrinsic effect site, a benign
/// no-op, or a call site for later resolution.
#[allow(clippy::too_many_arguments)]
fn classify_call(
    info: &mut FnInfo,
    scanned: &crate::lexer::ScannedFile,
    name: String,
    qualifier: Option<String>,
    after_dot: bool,
    self_recv: bool,
    line: usize,
    tok: usize,
) {
    let n = name.as_str();
    // `Some(..)`, `JsonValue::Obj(..)`, `Self::Variant(..)`: constructors
    // move values into place and have no effect of their own.
    if n.chars().next().is_some_and(char::is_uppercase)
        && !QUALIFIED_ALLOC.iter().any(|(t, m)| Some(*t) == qualifier.as_deref() && *m == n)
    {
        return;
    }
    if let Some(q) = &qualifier {
        if QUALIFIED_BENIGN.iter().any(|(t, m)| t == q && *m == n) {
            return;
        }
        if QUALIFIED_ALLOC.iter().any(|(t, m)| t == q && *m == n) {
            push_site(info, scanned, EffectSet::ALLOC, &format!("{q}::{n}"), line, tok);
            return;
        }
    }
    if PANIC_NAMES.contains(&n) {
        push_site(info, scanned, EffectSet::PANIC, n, line, tok);
        return;
    }
    if after_dot && LOCK_NAMES_DIRECT.contains(&n) {
        push_site(info, scanned, EffectSet::LOCK, n, line, tok);
        return;
    }
    if ALLOC_NAMES.contains(&n) {
        push_site(info, scanned, EffectSet::ALLOC, n, line, tok);
        return;
    }
    if IO_NAMES.contains(&n) {
        push_site(info, scanned, EffectSet::IO, n, line, tok);
        return;
    }
    info.calls.push(CallSite {
        name,
        qualifier,
        line,
        tok,
        self_recv,
        targets: Vec::new(),
        unknown: false,
    });
}

/// Appends one effect site, folding it into the direct set and checking
/// for a covering `allow-alloc` annotation.
fn push_site(
    info: &mut FnInfo,
    scanned: &crate::lexer::ScannedFile,
    effect: EffectSet,
    source: &str,
    line: usize,
    tok: usize,
) {
    let allowed = scanned.allow_alloc_at(line).map(|a| a.reason.clone());
    info.direct = info.direct.union(effect);
    info.sites.push(EffectSite { effect, source: source.to_string(), line, tok, allowed });
}

/// Whether `LOCK_NAMES` (the wide net used by the guard detector, not
/// the seeding table) contains `name`.
pub fn is_lock_name(name: &str) -> bool {
    LOCK_NAMES.contains(&name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::scan;
    use crate::symbols::tokenize;

    /// Builds a single-file pseudo-model for extraction tests (no
    /// resolution, no fixpoint).
    fn extract(src: &str) -> Vec<FnInfo> {
        let scanned = scan(src);
        let tokens = tokenize(&scanned.blanked);
        let mut out = Vec::new();
        for span in fn_spans(&tokens) {
            let mut info = FnInfo {
                file: 0,
                span,
                crate_name: "t".into(),
                direct: EffectSet::PURE,
                sites: Vec::new(),
                calls: Vec::new(),
                effects: EffectSet::PURE,
                hot_path: false,
                alloc_boundary: None,
            };
            extract_body(&tokens, &scanned, &mut info);
            out.push(info);
        }
        out
    }

    #[test]
    fn display_formats_effect_sets() {
        assert_eq!(EffectSet::PURE.to_string(), "pure");
        assert_eq!(EffectSet::ALLOC.union(EffectSet::PANIC).to_string(), "alloc|panic");
        assert_eq!(EffectSet::UNKNOWN.to_string(), "unknown");
    }

    #[test]
    fn intrinsic_sites_are_classified() {
        let fns = extract(
            "fn f(v: &mut Vec<u64>, m: &M) {\n\
             \x20   v.push(1);\n\
             \x20   let x = v[0];\n\
             \x20   m.cells.lock().unwrap();\n\
             \x20   println!(\"{x}\");\n\
             }\n",
        );
        let f = &fns[0];
        assert!(f.direct.contains(EffectSet::ALLOC));
        assert!(f.direct.contains(EffectSet::PANIC), "indexing and unwrap");
        assert!(f.direct.contains(EffectSet::LOCK));
        assert!(f.direct.contains(EffectSet::IO));
        let sources: Vec<&str> = f.sites.iter().map(|s| s.source.as_str()).collect();
        assert!(sources.contains(&"push"));
        assert!(sources.contains(&"index"));
        assert!(sources.contains(&"lock"));
    }

    #[test]
    fn attribute_and_slice_brackets_are_not_indexing() {
        let fns = extract(
            "fn f(xs: &[u64]) -> u64 {\n\
             \x20   let ys = [1u64, 2];\n\
             \x20   xs.iter().sum::<u64>() + ys.len() as u64\n\
             }\n",
        );
        assert!(fns[0].direct.is_pure(), "got {:?}", fns[0].sites);
    }

    #[test]
    fn benign_calls_resolve_benign() {
        let fns = extract("fn f(v: &[u64]) -> usize { v.iter().filter(|x| **x > 0).count() }\n");
        assert!(fns[0].direct.is_pure());
        assert!(
            fns[0].calls.iter().all(benign_unresolved),
            "iterator adapters are curated benign: {:?}",
            fns[0].calls
        );
    }

    #[test]
    fn unresolved_constructors_are_benign() {
        let c = CallSite {
            name: "Some".into(),
            qualifier: None,
            line: 1,
            tok: 0,
            self_recv: false,
            targets: Vec::new(),
            unknown: false,
        };
        assert!(benign_unresolved(&c));
        let c = CallSite { name: "mystery_fn".into(), ..c };
        assert!(!benign_unresolved(&c));
    }

    #[test]
    fn allow_alloc_annotation_covers_site() {
        let fns = extract(
            "fn f(v: &mut Vec<u64>) {\n\
             \x20   // audit:allow-alloc(bounded scratch)\n\
             \x20   v.push(1);\n\
             \x20   v.push(2);\n\
             }\n",
        );
        let sites = &fns[0].sites;
        assert_eq!(sites[0].allowed.as_deref(), Some("bounded scratch"));
        assert_eq!(sites[1].allowed, None, "annotation covers one site only");
    }

    #[test]
    fn qualified_calls_carry_their_qualifier() {
        let fns = extract("fn f() { Monitor::advance(3); helper(); }\n");
        let calls = &fns[0].calls;
        assert_eq!(calls.len(), 2);
        assert_eq!(calls[0].qualifier.as_deref(), Some("Monitor"));
        assert_eq!(calls[1].qualifier, None);
    }

    #[test]
    fn debug_assert_is_not_a_panic_source() {
        let fns = extract("fn f(x: u64) { debug_assert!(x > 0); }\n");
        assert!(fns[0].direct.is_pure());
    }
}
