//! Workspace symbol index: tokens, items, fields, `const` values and
//! `#[cfg]` gate regions.
//!
//! Built on top of [`crate::lexer`]: the blanked source (comments and
//! literals spaced out, char-for-char aligned with the original) is
//! tokenized, then a single forward pass extracts item declarations with
//! their visibility, enclosing module/impl, attached attributes and
//! `#[cfg]` gates. Because blanking preserves char offsets exactly, the
//! scanner can reach back into the *raw* source wherever literal text
//! matters (`feature = "…"` inside a cfg attribute).
//!
//! The index is deliberately lexical — no type checking, no macro
//! expansion. It is precise enough for the workspace's curated style
//! (items at module scope, test modules trailing) and the semantic lints
//! treat name collisions conservatively.

use crate::lexer::ScannedFile;
use std::collections::BTreeMap;
use std::fmt;

/// Token classes the symbol scanner distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident,
    /// Numeric literal (blanked string/char literals never produce one).
    Num,
    /// Operator or delimiter, possibly multi-char (`::`, `+=`, …).
    Punct,
    /// Lifetime (`'a`), kept distinct so it never looks like an ident.
    Lifetime,
}

/// One token of a blanked source file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Token class.
    pub kind: TokKind,
    /// Token text (for `Punct`, the full multi-char operator).
    pub text: String,
    /// 1-indexed source line.
    pub line: usize,
    /// Char offset of the token start in the (blanked or raw) source.
    pub pos: usize,
}

impl Token {
    /// Whether this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// Whether this token is the punctuation `s`.
    pub fn is_punct(&self, s: &str) -> bool {
        self.kind == TokKind::Punct && self.text == s
    }
}

/// Multi-char operators emitted as single tokens, longest first so the
/// tokenizer is greedy.
const MULTI_PUNCT: &[&str] = &[
    "<<=", ">>=", "..=", "...", "::", "->", "=>", "==", "!=", "<=", ">=", "+=", "-=", "*=", "/=",
    "%=", "|=", "&=", "^=", "<<", ">>", "&&", "||", "..",
];

/// Tokenizes a blanked source file.
pub fn tokenize(blanked: &str) -> Vec<Token> {
    let chars: Vec<char> = blanked.chars().collect();
    let mut out = Vec::new();
    let mut line = 1usize;
    let mut i = 0usize;
    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        if c == '\'' {
            // Only lifetimes survive blanking ('x' literals are spaces).
            let start = i;
            i += 1;
            while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                i += 1;
            }
            out.push(Token {
                kind: TokKind::Lifetime,
                text: chars[start..i].iter().collect(),
                line,
                pos: start,
            });
            continue;
        }
        if c.is_alphabetic() || c == '_' {
            let start = i;
            while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                i += 1;
            }
            out.push(Token {
                kind: TokKind::Ident,
                text: chars[start..i].iter().collect(),
                line,
                pos: start,
            });
            continue;
        }
        if c.is_ascii_digit() {
            let start = i;
            while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                i += 1;
            }
            out.push(Token {
                kind: TokKind::Num,
                text: chars[start..i].iter().collect(),
                line,
                pos: start,
            });
            continue;
        }
        let mut matched = None;
        for op in MULTI_PUNCT {
            let op_chars: Vec<char> = op.chars().collect();
            if chars[i..].starts_with(&op_chars) {
                matched = Some(op.len());
                break;
            }
        }
        let len = matched.unwrap_or(1);
        out.push(Token {
            kind: TokKind::Punct,
            text: chars[i..i + len].iter().collect(),
            line,
            pos: i,
        });
        i += len;
    }
    out
}

/// What kind of item a symbol is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SymbolKind {
    /// Free function or method.
    Fn,
    /// Struct definition.
    Struct,
    /// Enum definition.
    Enum,
    /// Trait definition.
    Trait,
    /// Type alias.
    TypeAlias,
    /// Module (inline or file).
    Mod,
    /// `const` item (free or associated).
    Const,
    /// `static` item.
    Static,
    /// Named struct field.
    Field,
    /// `macro_rules!` definition.
    Macro,
    /// `pub use` re-export (name is the re-exported binding).
    Reexport,
}

impl SymbolKind {
    /// Stable lowercase label used in reports and the dead-pub baseline.
    pub const fn label(self) -> &'static str {
        match self {
            SymbolKind::Fn => "fn",
            SymbolKind::Struct => "struct",
            SymbolKind::Enum => "enum",
            SymbolKind::Trait => "trait",
            SymbolKind::TypeAlias => "type",
            SymbolKind::Mod => "mod",
            SymbolKind::Const => "const",
            SymbolKind::Static => "static",
            SymbolKind::Field => "field",
            SymbolKind::Macro => "macro",
            SymbolKind::Reexport => "use",
        }
    }
}

/// Item visibility, collapsed to what the lints need.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Visibility {
    /// Bare `pub`: visible outside the crate.
    Pub,
    /// `pub(crate)` / `pub(super)` / `pub(in …)`: crate-internal.
    PubCrate,
    /// No `pub`.
    Private,
}

/// One declared symbol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Symbol {
    /// Item name.
    pub name: String,
    /// Item kind.
    pub kind: SymbolKind,
    /// Workspace-relative file with forward slashes.
    pub file: String,
    /// 1-indexed declaration line.
    pub line: usize,
    /// Char offset of the name token (used to skip the declaration when
    /// counting references).
    pub pos: usize,
    /// Visibility.
    pub vis: Visibility,
    /// Enclosing type (for methods, associated consts and fields) or
    /// module name.
    pub parent: Option<String>,
    /// Normalized cfg gates in effect at the declaration (sorted):
    /// `feature:name`, `test`, `debug_assertions`, or `opaque:<text>` for
    /// shapes the scanner does not model (`any(…)`, `not(…)`, …).
    pub gates: Vec<String>,
    /// For `Const`/`Static` with a numeric initializer the scanner could
    /// evaluate: the value.
    pub const_value: Option<i128>,
    /// For `Field`: the declared type text, whitespace-squashed.
    pub field_type: Option<String>,
}

impl Symbol {
    /// `Parent::name` when the symbol has a parent, else `name` — the
    /// stable key used by the dead-pub baseline.
    pub fn qualified(&self) -> String {
        match &self.parent {
            Some(p) => format!("{p}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} ({}:{})", self.kind.label(), self.qualified(), self.file, self.line)
    }
}

/// A contiguous char range governed by a `#[cfg(...)]` attribute.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CfgRegion {
    /// Char offset of the `#` of the attribute.
    pub start: usize,
    /// Char offset one past the governed item/statement.
    pub end: usize,
    /// Normalized gates (see [`Symbol::gates`]).
    pub gates: Vec<String>,
}

/// A `use` declaration's flattened single-name path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UsePath {
    /// Path segments, e.g. `["nucache_common", "telemetry", "Event"]`.
    pub segments: Vec<String>,
    /// 1-indexed line of the `use`.
    pub line: usize,
    /// Whether the re-export is `pub`.
    pub vis: Visibility,
}

/// Everything the symbol scanner extracts from one file.
#[derive(Debug, Clone, Default)]
pub struct FileSymbols {
    /// Declared symbols in declaration order.
    pub symbols: Vec<Symbol>,
    /// Cfg-gated regions (item- and statement-level).
    pub cfg_regions: Vec<CfgRegion>,
    /// Flattened `use` paths.
    pub uses: Vec<UsePath>,
    /// Struct names carrying `#[derive(..)]` with `Default`.
    pub derives_default: Vec<String>,
}

impl FileSymbols {
    /// Normalized gates in effect at char offset `pos` (sorted, deduped):
    /// the union of every covering cfg region.
    pub fn gates_at(&self, pos: usize) -> Vec<String> {
        let mut gates: Vec<String> = self
            .cfg_regions
            .iter()
            .filter(|r| r.start <= pos && pos < r.end)
            .flat_map(|r| r.gates.iter().cloned())
            .collect();
        gates.sort();
        gates.dedup();
        gates
    }
}

/// Parses the interior of `cfg(...)` (raw source text, literals intact)
/// into normalized gates.
fn parse_cfg_gates(inner: &str) -> Vec<String> {
    let squashed: String = inner.chars().filter(|c| !c.is_whitespace()).collect();
    if let Some(feat) = squashed.strip_prefix("feature=\"").and_then(|r| r.strip_suffix('"')) {
        return vec![format!("feature:{feat}")];
    }
    match squashed.as_str() {
        "test" => vec!["test".to_string()],
        "debug_assertions" => vec!["debug_assertions".to_string()],
        _ => vec![format!("opaque:{squashed}")],
    }
}

/// What the scanner is currently inside of.
#[derive(Debug, Clone, PartialEq, Eq)]
enum ScopeKind {
    /// File root or an inline `mod`.
    Module,
    /// `impl` block body; the string is the Self-type name.
    Impl(String),
    /// `trait` body; the string is the trait name.
    Trait(String),
    /// Named-struct body; fields are parsed here.
    StructBody(String),
    /// Anything else (fn body, enum body, match arm, …).
    Opaque,
}

#[derive(Debug)]
struct Scope {
    kind: ScopeKind,
}

/// Attributes accumulated in front of the next item.
#[derive(Debug, Default, Clone)]
struct Pending {
    gates: Vec<String>,
    derive_default: bool,
}

/// Scans one file into its symbol set.
///
/// `rel` is the workspace-relative path; `source` the raw text; `scanned`
/// the lexer output for the same text.
pub fn scan_symbols(rel: &str, source: &str, scanned: &ScannedFile) -> FileSymbols {
    let raw: Vec<char> = source.chars().collect();
    let tokens = tokenize(&scanned.blanked);
    let mut out = FileSymbols::default();
    let mut scopes: Vec<Scope> = vec![Scope { kind: ScopeKind::Module }];
    // Scopes opened per brace, aligned with `{`/`}` nesting. Each `{`
    // pushes exactly one scope; each `}` pops one.
    let mut pending = Pending::default();
    let mut i = 0usize;

    while i < tokens.len() {
        let t = &tokens[i];
        match (&t.kind, t.text.as_str()) {
            (TokKind::Punct, "#") => {
                let (next_i, region, derive_default) = parse_attribute(&tokens, i, &raw);
                if let Some(r) = region {
                    pending.gates.extend(r.gates.iter().cloned());
                    out.cfg_regions.push(r);
                }
                pending.derive_default |= derive_default;
                i = next_i;
                continue;
            }
            (TokKind::Punct, "{") => {
                scopes.push(Scope { kind: ScopeKind::Opaque });
                pending = Pending::default();
                i += 1;
                continue;
            }
            (TokKind::Punct, "}") => {
                if scopes.len() > 1 {
                    scopes.pop();
                }
                pending = Pending::default();
                i += 1;
                continue;
            }
            _ => {}
        }

        let item_scope = matches!(
            scopes.last().map(|s| &s.kind),
            Some(ScopeKind::Module | ScopeKind::Impl(_) | ScopeKind::Trait(_))
        );
        let in_struct_body =
            matches!(scopes.last().map(|s| &s.kind), Some(ScopeKind::StructBody(_)));

        if in_struct_body {
            i = parse_field(&tokens, i, rel, &mut out, &scopes, &pending);
            pending = Pending::default();
            continue;
        }
        if !item_scope || t.kind != TokKind::Ident {
            pending = Pending::default();
            i += 1;
            continue;
        }

        // Visibility prefix.
        let mut j = i;
        let mut vis = Visibility::Private;
        if tokens[j].is_ident("pub") {
            vis = Visibility::Pub;
            j += 1;
            if j < tokens.len() && tokens[j].is_punct("(") {
                vis = Visibility::PubCrate;
                j = skip_balanced(&tokens, j);
            }
        }
        // Leading qualifiers that don't change the item kind.
        while j < tokens.len()
            && (tokens[j].is_ident("unsafe")
                || tokens[j].is_ident("async")
                || tokens[j].is_ident("extern")
                || tokens[j].is_ident("default"))
        {
            j += 1;
        }
        let Some(kw) = tokens.get(j) else { break };
        let gates = effective_gates(&out, kw.pos);
        let parent = scopes.iter().rev().find_map(|s| match &s.kind {
            ScopeKind::Impl(n) | ScopeKind::Trait(n) => Some(n.clone()),
            _ => None,
        });
        match kw.text.as_str() {
            "fn" => {
                if let Some(name) = tokens.get(j + 1) {
                    out.symbols.push(Symbol {
                        name: name.text.clone(),
                        kind: SymbolKind::Fn,
                        file: rel.to_string(),
                        line: name.line,
                        pos: name.pos,
                        vis,
                        parent,
                        gates,
                        const_value: None,
                        field_type: None,
                    });
                }
                i = j + 1;
            }
            "struct" => {
                if let Some(name) = tokens.get(j + 1) {
                    out.symbols.push(Symbol {
                        name: name.text.clone(),
                        kind: SymbolKind::Struct,
                        file: rel.to_string(),
                        line: name.line,
                        pos: name.pos,
                        vis,
                        parent: None,
                        gates,
                        const_value: None,
                        field_type: None,
                    });
                    if pending.derive_default {
                        out.derives_default.push(name.text.clone());
                    }
                    // If a named body follows ( `{` before `;`/`(` ), parse
                    // fields inside it.
                    let mut k = j + 2;
                    while k < tokens.len()
                        && !tokens[k].is_punct("{")
                        && !tokens[k].is_punct(";")
                        && !tokens[k].is_punct("(")
                    {
                        k += 1;
                    }
                    if k < tokens.len() && tokens[k].is_punct("{") {
                        scopes.push(Scope { kind: ScopeKind::StructBody(name.text.clone()) });
                        pending = Pending::default();
                        i = k + 1;
                        continue;
                    }
                }
                i = j + 1;
            }
            "enum" | "trait" | "type" | "mod" | "static" => {
                if let Some(name) = tokens.get(j + 1) {
                    let kind = match kw.text.as_str() {
                        "enum" => SymbolKind::Enum,
                        "trait" => SymbolKind::Trait,
                        "type" => SymbolKind::TypeAlias,
                        "mod" => SymbolKind::Mod,
                        _ => SymbolKind::Static,
                    };
                    // `static NAME: Ty = …;` — record the declared type so
                    // the concurrency lints can recognize lock statics.
                    let field_type = (kind == SymbolKind::Static)
                        .then(|| static_type_text(&tokens, j + 2))
                        .flatten();
                    out.symbols.push(Symbol {
                        name: name.text.clone(),
                        kind,
                        file: rel.to_string(),
                        line: name.line,
                        pos: name.pos,
                        vis,
                        parent: parent.clone(),
                        gates,
                        const_value: None,
                        field_type,
                    });
                    if kind == SymbolKind::Mod {
                        // `mod name {` opens a module scope; `mod name;` is
                        // just a declaration.
                        if tokens.get(j + 2).is_some_and(|t| t.is_punct("{")) {
                            scopes.push(Scope { kind: ScopeKind::Module });
                            pending = Pending::default();
                            i = j + 3;
                            continue;
                        }
                    }
                    if kind == SymbolKind::Trait {
                        // Find the trait body `{` (skipping bounds).
                        let mut k = j + 2;
                        while k < tokens.len()
                            && !tokens[k].is_punct("{")
                            && !tokens[k].is_punct(";")
                        {
                            k += 1;
                        }
                        if k < tokens.len() && tokens[k].is_punct("{") {
                            scopes.push(Scope { kind: ScopeKind::Trait(name.text.clone()) });
                            pending = Pending::default();
                            i = k + 1;
                            continue;
                        }
                    }
                }
                i = j + 1;
            }
            "const" => {
                // `const NAME: Ty = expr;` (skip `const fn`, handled by the
                // qualifier loop only for `fn` after `const`).
                if tokens.get(j + 1).is_some_and(|t| t.is_ident("fn")) {
                    if let Some(name) = tokens.get(j + 2) {
                        out.symbols.push(Symbol {
                            name: name.text.clone(),
                            kind: SymbolKind::Fn,
                            file: rel.to_string(),
                            line: name.line,
                            pos: name.pos,
                            vis,
                            parent,
                            gates,
                            const_value: None,
                            field_type: None,
                        });
                    }
                    i = j + 2;
                } else if let Some(name) = tokens.get(j + 1) {
                    let value = const_initializer_value(&tokens, j + 2);
                    out.symbols.push(Symbol {
                        name: name.text.clone(),
                        kind: SymbolKind::Const,
                        file: rel.to_string(),
                        line: name.line,
                        pos: name.pos,
                        vis,
                        parent,
                        gates,
                        const_value: value,
                        field_type: None,
                    });
                    i = j + 1;
                } else {
                    i = j + 1;
                }
            }
            "impl" => {
                // `impl [<…>] Type {` or `impl [<…>] Trait for Type {` —
                // the Self type is the last path segment before the body
                // (after `for` when present).
                let mut k = j + 1;
                if k < tokens.len() && tokens[k].is_punct("<") {
                    k = skip_generics(&tokens, k);
                }
                let mut self_ty = String::new();
                let mut depth = 0i32;
                let mut in_where = false;
                while k < tokens.len() {
                    let tk = &tokens[k];
                    if depth == 0 && (tk.is_punct("{") || tk.is_punct(";")) {
                        break;
                    }
                    match tk.text.as_str() {
                        "<" | "(" | "[" => depth += 1,
                        ">" | ")" | "]" => depth -= 1,
                        ">>" => depth -= 2,
                        "for" if depth == 0 && tk.kind == TokKind::Ident => self_ty.clear(),
                        "where" if depth == 0 && tk.kind == TokKind::Ident => in_where = true,
                        _ if depth == 0 && !in_where && tk.kind == TokKind::Ident => {
                            self_ty = tk.text.clone();
                        }
                        _ => {}
                    }
                    k += 1;
                }
                if k < tokens.len() && tokens[k].is_punct("{") {
                    scopes.push(Scope { kind: ScopeKind::Impl(self_ty) });
                    pending = Pending::default();
                    i = k + 1;
                    continue;
                }
                i = k;
            }
            "use" => {
                let (next_i, mut paths) = parse_use(&tokens, j + 1, vis);
                for p in &mut paths {
                    p.line = kw.line;
                    if vis == Visibility::Pub {
                        if let Some(last) = p.segments.last() {
                            out.symbols.push(Symbol {
                                name: last.clone(),
                                kind: SymbolKind::Reexport,
                                file: rel.to_string(),
                                line: kw.line,
                                pos: kw.pos,
                                vis,
                                parent: None,
                                gates: gates.clone(),
                                const_value: None,
                                field_type: None,
                            });
                        }
                    }
                }
                out.uses.extend(paths);
                i = next_i;
            }
            "macro_rules" => {
                if tokens.get(j + 1).is_some_and(|t| t.is_punct("!")) {
                    if let Some(name) = tokens.get(j + 2) {
                        out.symbols.push(Symbol {
                            name: name.text.clone(),
                            kind: SymbolKind::Macro,
                            file: rel.to_string(),
                            line: name.line,
                            pos: name.pos,
                            vis,
                            parent: None,
                            gates,
                            const_value: None,
                            field_type: None,
                        });
                    }
                }
                i = j + 1;
            }
            _ => {
                i = j + 1;
            }
        }
        pending = Pending::default();
    }
    out
}

/// Gates in effect at `pos` per the regions recorded so far.
fn effective_gates(out: &FileSymbols, pos: usize) -> Vec<String> {
    out.gates_at(pos)
}

/// Parses one `#[…]` attribute starting at token `i` (the `#`). Returns
/// the index after the attribute, a cfg region when the attribute is a
/// `cfg(...)`, and whether it is a `derive(...)` containing `Default`.
fn parse_attribute(tokens: &[Token], i: usize, raw: &[char]) -> (usize, Option<CfgRegion>, bool) {
    let start_pos = tokens[i].pos;
    let mut j = i + 1;
    // Inner attribute `#![…]`.
    if j < tokens.len() && tokens[j].is_punct("!") {
        j += 1;
    }
    if j >= tokens.len() || !tokens[j].is_punct("[") {
        return (i + 1, None, false);
    }
    let close = skip_balanced(tokens, j);
    let name = tokens.get(j + 1).map(|t| t.text.clone()).unwrap_or_default();
    let mut region = None;
    let mut derive_default = false;
    if name == "cfg" && tokens.get(j + 2).is_some_and(|t| t.is_punct("(")) {
        // Gate text comes from the RAW source: the blanked copy has the
        // feature-name string spaced out.
        let open = tokens[j + 2].pos;
        let close_paren =
            tokens[close - 2..close].iter().rev().find(|t| t.is_punct(")")).map_or(open, |t| t.pos);
        let inner: String = raw[open + 1..close_paren.max(open + 1)].iter().collect();
        let gates = parse_cfg_gates(&inner);
        let end = governed_extent(tokens, close, raw.len());
        region = Some(CfgRegion { start: start_pos, end, gates });
    }
    if name == "derive" {
        derive_default =
            tokens[j..close].iter().any(|t| t.kind == TokKind::Ident && t.text == "Default");
    }
    (close, region, derive_default)
}

/// Extent of the item/statement governed by an attribute ending at token
/// index `after` (one past the `]`): through the matching `}` when a
/// brace opens first, else through the terminating `;` or `,`.
fn governed_extent(tokens: &[Token], after: usize, raw_len: usize) -> usize {
    let mut k = after;
    // Skip stacked attributes.
    while k < tokens.len() && tokens[k].is_punct("#") {
        let mut j = k + 1;
        if j < tokens.len() && tokens[j].is_punct("!") {
            j += 1;
        }
        if j < tokens.len() && tokens[j].is_punct("[") {
            k = skip_balanced(tokens, j);
        } else {
            break;
        }
    }
    let mut depth = 0i32;
    while k < tokens.len() {
        let t = &tokens[k];
        match t.text.as_str() {
            "{" | "(" | "[" => {
                if t.is_punct("{") && depth == 0 {
                    // Governed block: through its matching close.
                    let end = skip_balanced(tokens, k);
                    return tokens.get(end - 1).map_or(raw_len, |t| t.pos + t.text.chars().count());
                }
                depth += 1;
            }
            "}" | ")" | "]" => {
                if depth == 0 {
                    // Field at end of struct body without trailing comma.
                    return t.pos;
                }
                depth -= 1;
            }
            ";" | "," if depth == 0 => {
                return t.pos + 1;
            }
            _ => {}
        }
        k += 1;
    }
    raw_len
}

/// Given token index `i` at an opening bracket (`(`/`[`/`{`), returns the
/// index one past its matching close. Returns `tokens.len()` when
/// unbalanced.
fn skip_balanced(tokens: &[Token], i: usize) -> usize {
    let mut depth = 0i32;
    let mut k = i;
    while k < tokens.len() {
        match tokens[k].text.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => {
                depth -= 1;
                if depth == 0 {
                    return k + 1;
                }
            }
            _ => {}
        }
        k += 1;
    }
    tokens.len()
}

/// Skips a `<…>` generics list starting at `<`.
fn skip_generics(tokens: &[Token], i: usize) -> usize {
    let mut depth = 0i32;
    let mut k = i;
    while k < tokens.len() {
        match tokens[k].text.as_str() {
            "<" => depth += 1,
            ">" => {
                depth -= 1;
                if depth == 0 {
                    return k + 1;
                }
            }
            ">>" => {
                depth -= 2;
                if depth <= 0 {
                    return k + 1;
                }
            }
            _ => {}
        }
        k += 1;
    }
    tokens.len()
}

/// Parses one named-struct field at token `i`; records it and returns the
/// index after the field's trailing comma (or closing position).
fn parse_field(
    tokens: &[Token],
    i: usize,
    rel: &str,
    out: &mut FileSymbols,
    scopes: &[Scope],
    pending: &Pending,
) -> usize {
    let parent = scopes.iter().rev().find_map(|s| match &s.kind {
        ScopeKind::StructBody(n) => Some(n.clone()),
        _ => None,
    });
    let mut j = i;
    let mut vis = Visibility::Private;
    if tokens[j].is_ident("pub") {
        vis = Visibility::Pub;
        j += 1;
        if j < tokens.len() && tokens[j].is_punct("(") {
            vis = Visibility::PubCrate;
            j = skip_balanced(tokens, j);
        }
    }
    let Some(name) = tokens.get(j) else { return tokens.len() };
    if name.kind != TokKind::Ident || !tokens.get(j + 1).is_some_and(|t| t.is_punct(":")) {
        // Not a field start (stray token); advance one to make progress.
        return i + 1;
    }
    // Type text: through the comma (or `}`) at depth 0.
    let mut k = j + 2;
    let mut depth = 0i32;
    let mut ty = String::new();
    while k < tokens.len() {
        let t = &tokens[k];
        match t.text.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" => depth -= 1,
            "<" => depth += 1,
            ">" => depth -= 1,
            ">>" => depth -= 2,
            "," if depth <= 0 => break,
            "}" => {
                if depth == 0 {
                    break;
                }
                depth -= 1;
            }
            _ => {}
        }
        ty.push_str(&t.text);
        k += 1;
    }
    let gates = {
        let mut g = out.gates_at(name.pos);
        g.extend(pending.gates.iter().cloned());
        g.sort();
        g.dedup();
        g
    };
    out.symbols.push(Symbol {
        name: name.text.clone(),
        kind: SymbolKind::Field,
        file: rel.to_string(),
        line: name.line,
        pos: name.pos,
        vis,
        parent,
        gates,
        const_value: None,
        field_type: Some(ty),
    });
    // Land on the comma's successor; a `}` is left for the main loop.
    if k < tokens.len() && tokens[k].is_punct(",") {
        k + 1
    } else {
        k
    }
}

/// Collects the declared type of a `static NAME: Ty = expr;` item as
/// whitespace-free text, starting at the expected `:` (token index `i`).
fn static_type_text(tokens: &[Token], i: usize) -> Option<String> {
    if !tokens.get(i).is_some_and(|t| t.is_punct(":")) {
        return None;
    }
    let mut k = i + 1;
    let mut depth = 0i32;
    let mut ty = String::new();
    while k < tokens.len() {
        let t = &tokens[k];
        match t.text.as_str() {
            "(" | "[" | "{" | "<" => depth += 1,
            ")" | "]" | "}" | ">" => depth -= 1,
            ">>" => depth -= 2,
            "=" | ";" if depth == 0 => break,
            _ => {}
        }
        ty.push_str(&t.text);
        k += 1;
    }
    (!ty.is_empty()).then_some(ty)
}

/// Evaluates a `: Ty = expr;` tail starting at the `:` (token index `i`),
/// returning the numeric value when the initializer is a simple constant
/// expression (`123`, `0x5eed`, `32 * 1024`, `1 << 20`, parens).
fn const_initializer_value(tokens: &[Token], i: usize) -> Option<i128> {
    // Find the `=` at depth 0, then collect until `;`.
    let mut k = i;
    let mut depth = 0i32;
    while k < tokens.len() {
        match tokens[k].text.as_str() {
            "(" | "[" | "{" | "<" => depth += 1,
            ")" | "]" | "}" | ">" => depth -= 1,
            ">>" => depth -= 2,
            "=" if depth == 0 => break,
            ";" if depth == 0 => return None,
            _ => {}
        }
        k += 1;
    }
    let mut expr = Vec::new();
    let mut j = k + 1;
    let mut d2 = 0i32;
    while j < tokens.len() {
        let t = &tokens[j];
        if t.is_punct(";") && d2 == 0 {
            break;
        }
        match t.text.as_str() {
            "(" => d2 += 1,
            ")" => d2 -= 1,
            _ => {}
        }
        expr.push(t);
        j += 1;
    }
    eval_const_expr(&expr)
}

/// Evaluates a flat constant expression over `+ - * << ( )` and integer
/// literals. Returns `None` for anything else (idents, casts, floats).
fn eval_const_expr(tokens: &[&Token]) -> Option<i128> {
    // Shunting-yard-free: recursive descent over a token slice.
    fn parse_expr(t: &[&Token], i: &mut usize) -> Option<i128> {
        let mut v = parse_term(t, i)?;
        while *i < t.len() {
            match t[*i].text.as_str() {
                "+" => {
                    *i += 1;
                    v += parse_term(t, i)?;
                }
                "-" => {
                    *i += 1;
                    v -= parse_term(t, i)?;
                }
                "<<" => {
                    *i += 1;
                    let s = parse_term(t, i)?;
                    v = v.checked_shl(u32::try_from(s).ok()?)?;
                }
                _ => break,
            }
        }
        Some(v)
    }
    fn parse_term(t: &[&Token], i: &mut usize) -> Option<i128> {
        let mut v = parse_atom(t, i)?;
        while *i < t.len() && t[*i].text == "*" {
            *i += 1;
            v *= parse_atom(t, i)?;
        }
        Some(v)
    }
    fn parse_atom(t: &[&Token], i: &mut usize) -> Option<i128> {
        let tok = t.get(*i)?;
        if tok.is_punct("(") {
            *i += 1;
            let v = parse_expr(t, i)?;
            if !t.get(*i)?.is_punct(")") {
                return None;
            }
            *i += 1;
            return Some(v);
        }
        if tok.is_punct("-") {
            *i += 1;
            return Some(-parse_atom(t, i)?);
        }
        if tok.kind == TokKind::Num {
            *i += 1;
            return parse_int(&tok.text);
        }
        None
    }
    let mut i = 0usize;
    let v = parse_expr(tokens, &mut i)?;
    (i == tokens.len()).then_some(v)
}

/// Parses an integer literal with `_` separators, `0x`/`0b`/`0o`
/// prefixes and an optional type suffix (`100_000u64`).
pub fn parse_int(text: &str) -> Option<i128> {
    let t = text.replace('_', "");
    let (digits, radix) = if let Some(h) = t.strip_prefix("0x") {
        (h.to_string(), 16)
    } else if let Some(b) = t.strip_prefix("0b") {
        (b.to_string(), 2)
    } else if let Some(o) = t.strip_prefix("0o") {
        (o.to_string(), 8)
    } else {
        (t, 10)
    };
    // Strip a trailing type suffix (u8/i64/usize/…).
    let digits = digits
        .trim_end_matches(|c: char| {
            c.is_ascii_alphabetic() && !(radix == 16 && c.is_ascii_hexdigit())
        })
        .to_string();
    if digits.is_empty() {
        return None;
    }
    i128::from_str_radix(&digits, radix).ok()
}

/// Parses a `use` path starting after the `use` keyword. Handles simple
/// paths, `as` renames and one level of `{…}` groups (what this
/// workspace uses).
fn parse_use(tokens: &[Token], i: usize, vis: Visibility) -> (usize, Vec<UsePath>) {
    let mut prefix: Vec<String> = Vec::new();
    let mut paths = Vec::new();
    let mut k = i;
    while k < tokens.len() && !tokens[k].is_punct(";") {
        let t = &tokens[k];
        if t.kind == TokKind::Ident && t.text != "as" {
            prefix.push(t.text.clone());
            k += 1;
        } else if t.is_punct("::") {
            k += 1;
        } else if t.is_punct("{") {
            // Group: each comma-separated leaf extends the prefix.
            let close = skip_balanced(tokens, k);
            let mut leaf: Vec<String> = Vec::new();
            for t in &tokens[k + 1..close.saturating_sub(1)] {
                if t.kind == TokKind::Ident && t.text != "as" {
                    leaf.push(t.text.clone());
                } else if t.is_punct(",") {
                    if !leaf.is_empty() {
                        let mut segs = prefix.clone();
                        segs.append(&mut leaf);
                        paths.push(UsePath { segments: segs, line: 0, vis });
                    }
                } else if t.is_punct("*") {
                    leaf.push("*".to_string());
                }
            }
            if !leaf.is_empty() {
                let mut segs = prefix.clone();
                segs.extend(leaf);
                paths.push(UsePath { segments: segs, line: 0, vis });
            }
            prefix.clear();
            k = close;
        } else if t.is_punct("*") {
            prefix.push("*".to_string());
            k += 1;
        } else if t.is_ident("as") {
            // Skip the rename ident.
            k += 2;
        } else {
            k += 1;
        }
    }
    if !prefix.is_empty() {
        paths.push(UsePath { segments: prefix, line: 0, vis });
    }
    (k + 1, paths)
}

/// The whole-workspace symbol index.
#[derive(Debug, Default)]
pub struct SymbolIndex {
    /// Every symbol, in (file, declaration) order. Indexed by `SymbolId`.
    pub symbols: Vec<Symbol>,
    /// Defining lib-crate name per symbol (parallel to `symbols`).
    pub crates: Vec<String>,
    /// Name → symbol ids, for reference resolution.
    pub by_name: BTreeMap<String, Vec<usize>>,
}

impl SymbolIndex {
    /// Adds one file's symbols under `crate_name`.
    pub fn add_file(&mut self, crate_name: &str, file_symbols: &FileSymbols) {
        for s in &file_symbols.symbols {
            let id = self.symbols.len();
            self.by_name.entry(s.name.clone()).or_default().push(id);
            self.symbols.push(s.clone());
            self.crates.push(crate_name.to_string());
        }
    }

    /// Symbols named `name`.
    pub fn named(&self, name: &str) -> impl Iterator<Item = (usize, &Symbol)> {
        self.by_name.get(name).into_iter().flatten().map(|&id| (id, &self.symbols[id]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::scan;

    fn syms(src: &str) -> FileSymbols {
        scan_symbols("crates/x/src/lib.rs", src, &scan(src))
    }

    #[test]
    fn items_and_visibility() {
        let s = syms(
            "pub struct Foo { pub a: u64, b: usize }\n\
             pub(crate) fn helper() {}\n\
             pub const LIMIT: usize = 32 * 1024;\n\
             pub enum E { A, B }\n\
             mod inner { pub fn hidden() {} }\n",
        );
        let find = |n: &str| s.symbols.iter().find(|s| s.name == n).expect(n);
        assert_eq!(find("Foo").kind, SymbolKind::Struct);
        assert_eq!(find("Foo").vis, Visibility::Pub);
        assert_eq!(find("a").kind, SymbolKind::Field);
        assert_eq!(find("a").parent.as_deref(), Some("Foo"));
        assert_eq!(find("a").field_type.as_deref(), Some("u64"));
        assert_eq!(find("b").vis, Visibility::Private);
        assert_eq!(find("helper").vis, Visibility::PubCrate);
        assert_eq!(find("LIMIT").const_value, Some(32 * 1024));
        assert_eq!(find("E").kind, SymbolKind::Enum);
        assert_eq!(find("hidden").vis, Visibility::Pub);
    }

    #[test]
    fn impl_methods_get_parent() {
        let s = syms(
            "struct C;\nimpl C { pub fn get(&self) -> u64 { 0 } }\n\
             impl Display for C { fn fmt(&self) {} }\n",
        );
        let get = s.symbols.iter().find(|s| s.name == "get").expect("get");
        assert_eq!(get.parent.as_deref(), Some("C"));
        assert_eq!(get.qualified(), "C::get");
        let fmt = s.symbols.iter().find(|s| s.name == "fmt").expect("fmt");
        assert_eq!(fmt.parent.as_deref(), Some("C"), "impl Trait for C: parent is C");
    }

    #[test]
    fn const_values_evaluate() {
        let s = syms(
            "pub const A: u64 = 100_000;\npub const B: u64 = 0x5eed_2011;\n\
             pub const C: u64 = 4 * 1024 * 1024;\npub const D: u64 = 1 << 20;\n\
             pub const E: u64 = (2 + 3) * 4;\npub const F: u64 = other();\n",
        );
        let v = |n: &str| s.symbols.iter().find(|s| s.name == n).unwrap().const_value;
        assert_eq!(v("A"), Some(100_000));
        assert_eq!(v("B"), Some(0x5eed_2011));
        assert_eq!(v("C"), Some(4 * 1024 * 1024));
        assert_eq!(v("D"), Some(1 << 20));
        assert_eq!(v("E"), Some(20));
        assert_eq!(v("F"), None, "non-literal initializers have no value");
    }

    #[test]
    fn cfg_gates_cover_items_and_statements() {
        let src = "\
#[cfg(feature = \"debug_invariants\")]\npub fn gated() {}\n\
pub fn open() {}\n\
fn body() {\n    #[cfg(feature = \"debug_invariants\")]\n    audit.enable();\n    run();\n}\n\
#[cfg(test)]\nmod tests { fn t() {} }\n";
        let s = syms(src);
        let gated = s.symbols.iter().find(|s| s.name == "gated").expect("gated");
        assert_eq!(gated.gates, vec!["feature:debug_invariants".to_string()]);
        let open = s.symbols.iter().find(|s| s.name == "open").expect("open");
        assert!(open.gates.is_empty());
        // Statement-level gate: the `audit.enable()` call is covered, the
        // following `run()` is not.
        let enable_pos = src.find("audit.enable").expect("site");
        assert_eq!(s.gates_at(enable_pos), vec!["feature:debug_invariants".to_string()]);
        let run_pos = src.find("run()").expect("site");
        assert!(s.gates_at(run_pos).is_empty());
        let t = s.symbols.iter().find(|s| s.name == "t").expect("t");
        assert_eq!(t.gates, vec!["test".to_string()]);
    }

    #[test]
    fn derive_default_recorded() {
        let s = syms("#[derive(Debug, Clone, Default)]\npub struct S { pub n: u64 }\nstruct T;\n");
        assert_eq!(s.derives_default, vec!["S".to_string()]);
    }

    #[test]
    fn use_paths_flatten() {
        let s = syms(
            "use nucache_common::{CacheStats, telemetry::Event};\n\
             use std::collections::BTreeMap;\n\
             pub use crate::config::NuCacheConfig;\n",
        );
        let segs: Vec<String> = s.uses.iter().map(|u| u.segments.join("::")).collect();
        assert!(segs.contains(&"nucache_common::CacheStats".to_string()));
        assert!(segs.contains(&"nucache_common::telemetry::Event".to_string()));
        assert!(segs.contains(&"std::collections::BTreeMap".to_string()));
        // The pub use is also recorded as a re-export symbol.
        assert!(s
            .symbols
            .iter()
            .any(|s| s.kind == SymbolKind::Reexport && s.name == "NuCacheConfig"));
    }

    #[test]
    fn tokenizer_compound_ops() {
        let toks = tokenize("a += 1; b <<= 2; c != d; e..=f; x::y");
        let texts: Vec<&str> = toks.iter().map(|t| t.text.as_str()).collect();
        assert!(texts.contains(&"+="));
        assert!(texts.contains(&"<<="));
        assert!(texts.contains(&"!="));
        assert!(texts.contains(&"..="));
        assert!(texts.contains(&"::"));
    }
}
