//! A minimal Rust source scanner.
//!
//! Produces, for each file, a *blanked* copy of the source in which
//! comments, string literals and char literals are replaced by spaces
//! (newlines preserved), so the lint passes can do plain substring
//! matching without tripping over `"HashMap"` in a doc string. Comment
//! text is not discarded entirely: `nucache-audit: allow(...)`
//! suppression directives are parsed out of it.

/// A suppression directive parsed from a comment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Suppression {
    /// 1-indexed line the directive appears on.
    pub line: usize,
    /// Lint name inside `allow(...)` / `allow-file(...)`.
    pub lint: String,
    /// Whether the directive covers the whole file (`allow-file`).
    pub file_wide: bool,
}

/// The kind of a hot-path contract annotation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AnnotationKind {
    /// `// audit:hot-path` — the next `fn` is a hot-path root: no
    /// allocation may be reachable from it without a justification.
    HotPath,
    /// `// audit:allow-alloc(reason)` — on a `fn`, the function is an
    /// allocation boundary (e.g. the epoch selection pass); on a site,
    /// the single allocation on this or the next line is permitted.
    AllowAlloc,
}

/// A machine-checkable contract annotation parsed from a comment.
///
/// Unlike [`Suppression`]s these are not escape hatches: the effects
/// pass *requires* them on hot-path roots and allocation sites, and
/// cross-checks every `allow-alloc` against the justification file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Annotation {
    /// 1-indexed line the annotation appears on.
    pub line: usize,
    /// What the annotation declares.
    pub kind: AnnotationKind,
    /// The parenthesized reason (`allow-alloc` only; empty for
    /// `hot-path`).
    pub reason: String,
}

/// The scanner's output for one file.
#[derive(Debug, Clone)]
pub struct ScannedFile {
    /// Source with comments and string/char literals blanked to spaces.
    /// Line structure is identical to the input.
    pub blanked: String,
    /// Suppression directives found in comments.
    pub suppressions: Vec<Suppression>,
    /// Hot-path contract annotations found in comments.
    pub annotations: Vec<Annotation>,
    /// 1-indexed line of the first `#[cfg(test)]` attribute, if any.
    /// Workspace convention keeps test modules at the end of the file, so
    /// everything from this line on is treated as test code.
    pub first_test_line: Option<usize>,
}

impl ScannedFile {
    /// Lines of the blanked source, 1-indexed via `enumerate() + 1`.
    pub fn lines(&self) -> impl Iterator<Item = (usize, &str)> {
        self.blanked.lines().enumerate().map(|(i, l)| (i + 1, l))
    }

    /// Whether `line` is inside the trailing test region.
    pub fn is_test_code(&self, line: usize) -> bool {
        self.first_test_line.is_some_and(|t| line >= t)
    }

    /// Whether `lint` is suppressed at `line` (same line, the line above,
    /// or file-wide).
    pub fn is_suppressed(&self, lint: &str, line: usize) -> bool {
        self.suppressions
            .iter()
            .any(|s| s.lint == lint && (s.file_wide || s.line == line || s.line + 1 == line))
    }

    /// The `allow-alloc` annotation covering a site at `line` (the same
    /// line or the line above), if any.
    pub fn allow_alloc_at(&self, line: usize) -> Option<&Annotation> {
        self.annotations.iter().find(|a| {
            a.kind == AnnotationKind::AllowAlloc && (a.line == line || a.line + 1 == line)
        })
    }

    /// Annotations of `kind` whose line falls in `[line - reach, line]`
    /// — used to attach fn-level annotations to a declaration that may
    /// have attributes between the comment and the `fn` keyword.
    pub fn annotation_above(
        &self,
        kind: AnnotationKind,
        line: usize,
        reach: usize,
    ) -> Option<&Annotation> {
        self.annotations.iter().find(|a| a.kind == kind && a.line <= line && a.line + reach >= line)
    }
}

/// Parses suppression directives out of one comment's text.
fn parse_directives(comment: &str, line: usize, out: &mut Vec<Suppression>) {
    let mut rest = comment;
    while let Some(pos) = rest.find("nucache-audit:") {
        rest = &rest[pos + "nucache-audit:".len()..];
        let body = rest.trim_start();
        for (prefix, file_wide) in [("allow-file(", true), ("allow(", false)] {
            if let Some(inner) = body.strip_prefix(prefix) {
                if let Some(end) = inner.find(')') {
                    out.push(Suppression {
                        line,
                        lint: inner[..end].trim().to_string(),
                        file_wide,
                    });
                }
                break;
            }
        }
    }
}

/// Parses hot-path contract annotations out of one comment's text.
fn parse_annotations(comment: &str, line: usize, out: &mut Vec<Annotation>) {
    let mut rest = comment;
    while let Some(pos) = rest.find("audit:") {
        rest = &rest[pos + "audit:".len()..];
        if rest.starts_with("hot-path") {
            out.push(Annotation { line, kind: AnnotationKind::HotPath, reason: String::new() });
        } else if let Some(inner) = rest.strip_prefix("allow-alloc(") {
            if let Some(end) = inner.find(')') {
                out.push(Annotation {
                    line,
                    kind: AnnotationKind::AllowAlloc,
                    reason: inner[..end].trim().to_string(),
                });
            }
        }
    }
}

/// Scans `source`, blanking comments and literals and collecting
/// suppression directives.
///
/// The lexer understands line and (nested) block comments, plain and raw
/// strings (`r"…"`, `r#"…"#`, byte variants), char literals, and
/// distinguishes lifetimes (`'a`) from char literals.
pub fn scan(source: &str) -> ScannedFile {
    let bytes: Vec<char> = source.chars().collect();
    let mut blanked = String::with_capacity(source.len());
    let mut suppressions = Vec::new();
    let mut annotations = Vec::new();
    let mut first_test_line = None;
    let mut line = 1usize;
    let mut i = 0usize;

    // Appends `c` to the blanked output, tracking line numbers.
    macro_rules! keep {
        ($c:expr) => {{
            let c = $c;
            if c == '\n' {
                line += 1;
            }
            blanked.push(c);
        }};
    }
    // Blanks `c`: newlines survive, everything else becomes a space.
    macro_rules! blank {
        ($c:expr) => {{
            let c = $c;
            if c == '\n' {
                line += 1;
                blanked.push('\n');
            } else {
                blanked.push(' ');
            }
        }};
    }

    while i < bytes.len() {
        let c = bytes[i];
        let next = bytes.get(i + 1).copied();
        if c == '/' && next == Some('/') {
            // Line comment: blank it, but harvest directives.
            let start = i;
            while i < bytes.len() && bytes[i] != '\n' {
                i += 1;
            }
            let text: String = bytes[start..i].iter().collect();
            parse_directives(&text, line, &mut suppressions);
            parse_annotations(&text, line, &mut annotations);
            for _ in start..i {
                blanked.push(' ');
            }
            continue;
        }
        if c == '/' && next == Some('*') {
            // Block comment, possibly nested.
            let start = i;
            let start_line = line;
            let mut depth = 1usize;
            i += 2;
            while i < bytes.len() && depth > 0 {
                if bytes[i] == '/' && bytes.get(i + 1) == Some(&'*') {
                    depth += 1;
                    i += 2;
                } else if bytes[i] == '*' && bytes.get(i + 1) == Some(&'/') {
                    depth -= 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
            let text: String = bytes[start..i].iter().collect();
            parse_directives(&text, start_line, &mut suppressions);
            parse_annotations(&text, start_line, &mut annotations);
            for c in text.chars() {
                blank!(c);
            }
            continue;
        }
        if c == '"' {
            blank!(c);
            i += 1;
            while i < bytes.len() {
                if bytes[i] == '\\' && i + 1 < bytes.len() {
                    blank!(bytes[i]);
                    blank!(bytes[i + 1]);
                    i += 2;
                } else if bytes[i] == '"' {
                    blank!(bytes[i]);
                    i += 1;
                    break;
                } else {
                    blank!(bytes[i]);
                    i += 1;
                }
            }
            continue;
        }
        // Raw strings: r"…" / r#"…"# / br#"…"# — count the hashes.
        if (c == 'r' || c == 'b') && !prev_is_ident(&bytes, i) {
            if let Some((body_start, hashes)) = raw_string_start(&bytes, i) {
                for &p in &bytes[i..body_start] {
                    blank!(p);
                }
                i = body_start;
                // Find the closing `"###…` by char position — a byte-offset
                // search would derail on multibyte chars inside the body.
                let end = raw_string_end(&bytes, body_start, hashes);
                while i < end && i < bytes.len() {
                    blank!(bytes[i]);
                    i += 1;
                }
                continue;
            }
        }
        if c == '\'' {
            // Lifetime or char literal. A lifetime is `'ident` not
            // followed by a closing quote.
            let is_lifetime = next.is_some_and(|n| n.is_alphanumeric() || n == '_')
                && bytes.get(i + 2) != Some(&'\'');
            if is_lifetime {
                keep!(c);
                i += 1;
                continue;
            }
            blank!(c);
            i += 1;
            while i < bytes.len() {
                if bytes[i] == '\\' && i + 1 < bytes.len() {
                    blank!(bytes[i]);
                    blank!(bytes[i + 1]);
                    i += 2;
                } else if bytes[i] == '\'' {
                    blank!(bytes[i]);
                    i += 1;
                    break;
                } else {
                    blank!(bytes[i]);
                    i += 1;
                }
            }
            continue;
        }
        if first_test_line.is_none() && c == '#' && source_has_cfg_test(&bytes, i) {
            first_test_line = Some(line);
        }
        keep!(c);
        i += 1;
    }

    ScannedFile { blanked, suppressions, annotations, first_test_line }
}

/// Whether the char before `i` can extend an identifier (so `r` in `for`
/// is not a raw-string prefix).
fn prev_is_ident(bytes: &[char], i: usize) -> bool {
    i > 0 && (bytes[i - 1].is_alphanumeric() || bytes[i - 1] == '_')
}

/// If a raw string starts at `i`, returns `(index after the opening
/// quote, hash count)`.
fn raw_string_start(bytes: &[char], i: usize) -> Option<(usize, usize)> {
    let mut j = i;
    if bytes.get(j) == Some(&'b') {
        j += 1;
    }
    if bytes.get(j) != Some(&'r') {
        return None;
    }
    j += 1;
    let mut hashes = 0usize;
    while bytes.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    (bytes.get(j) == Some(&'"')).then_some((j + 1, hashes))
}

/// Char index one past the closing `"##…` of a raw string whose body
/// starts at `body_start` with `hashes` hashes; the end of input if the
/// string is unterminated.
fn raw_string_end(bytes: &[char], body_start: usize, hashes: usize) -> usize {
    let mut i = body_start;
    while i < bytes.len() {
        if bytes[i] == '"'
            && bytes[i + 1..].iter().take(hashes).filter(|&&c| c == '#').count() == hashes
        {
            return i + 1 + hashes;
        }
        i += 1;
    }
    bytes.len()
}

/// Whether `#[cfg(test)]` (whitespace-tolerant) starts at byte `i`.
fn source_has_cfg_test(bytes: &[char], i: usize) -> bool {
    let window: String = bytes[i..bytes.len().min(i + 24)].iter().collect();
    let squashed: String = window.chars().filter(|c| !c.is_whitespace()).collect();
    squashed.starts_with("#[cfg(test)]")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_are_blanked() {
        let s = scan("let x = \"HashMap\"; // HashMap in comment\nlet y = HashMap::new();\n");
        assert!(!s.blanked.lines().next().unwrap().contains("HashMap"));
        assert!(s.blanked.lines().nth(1).unwrap().contains("HashMap"));
    }

    #[test]
    fn line_structure_is_preserved() {
        let src = "a\n/* multi\nline */\nb\n";
        let s = scan(src);
        assert_eq!(s.blanked.lines().count(), src.lines().count());
        assert_eq!(s.blanked.lines().nth(3).unwrap(), "b");
    }

    #[test]
    fn raw_strings_are_blanked() {
        let s = scan("let x = r#\"Instant\"#; let t = Instant::now();\n");
        let line = s.blanked.lines().next().unwrap();
        assert_eq!(line.matches("Instant").count(), 1, "only the real token survives");
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let s = scan("fn f<'a>(x: &'a str) -> &'a str { x } let c = 'x'; let q = HashMap;\n");
        assert!(s.blanked.contains("HashMap"), "scanning must not derail after lifetimes");
        assert!(!s.blanked.contains("'x'"));
    }

    #[test]
    fn suppressions_are_parsed() {
        let s = scan(
            "// nucache-audit: allow(unwrap-in-lib) -- startup only\nfoo();\n\
             // nucache-audit: allow-file(wall-clock-in-sim)\n",
        );
        assert!(s.is_suppressed("unwrap-in-lib", 1));
        assert!(s.is_suppressed("unwrap-in-lib", 2), "next line is covered");
        assert!(!s.is_suppressed("unwrap-in-lib", 3));
        assert!(s.is_suppressed("wall-clock-in-sim", 999), "file-wide covers everything");
    }

    #[test]
    fn raw_strings_with_multibyte_chars_do_not_derail() {
        // The closer search must be char-indexed: a multibyte char inside
        // the raw-string body once pushed the scan past the real closer.
        let s = scan("let x = r#\"héllo — ünïcode\"#; let t = Instant::now();\n");
        assert_eq!(s.blanked.lines().next().unwrap().matches("Instant").count(), 1);
        // Multibyte *before* the raw string too.
        let s = scan("let é = 1; let x = r\"ß\"; let t = Instant::now();\n");
        assert_eq!(s.blanked.lines().next().unwrap().matches("Instant").count(), 1);
    }

    #[test]
    fn raw_string_hash_counting() {
        // A `"#` inside an `r##"…"##` body must not close the string.
        let s = scan("let x = r##\"inner \"# quote HashMap\"##; let m = HashMap::new();\n");
        assert_eq!(s.blanked.lines().next().unwrap().matches("HashMap").count(), 1);
        // Unterminated raw string swallows the rest of the input.
        let s = scan("let x = r#\"never closed\nHashMap\n");
        assert!(!s.blanked.contains("HashMap"));
        assert_eq!(s.blanked.lines().count(), 2);
    }

    #[test]
    fn byte_literals_are_blanked() {
        let s = scan("let c = b'x'; let s = b\"HashMap\"; let r = br#\"HashMap\"#; HashMap\n");
        assert_eq!(s.blanked.lines().next().unwrap().matches("HashMap").count(), 1);
        assert!(!s.blanked.contains("b'x'"));
    }

    #[test]
    fn nested_block_comments_deeply() {
        let src = "a /* 1 /* 2 /* 3 */ 2 */ still comment */ b\n/* unterminated /* */\nc\n";
        let s = scan(src);
        let first = s.blanked.lines().next().unwrap();
        assert!(first.contains('a') && first.contains('b'));
        assert!(!first.contains("still"));
        // The unterminated nested comment swallows the rest.
        assert!(!s.blanked.contains('c'));
        assert_eq!(s.blanked.lines().count(), src.lines().count());
    }

    #[test]
    fn lifetime_char_literal_disambiguation() {
        // 'a> (generic close), 'static, loop labels: lifetimes, kept.
        let s = scan("impl<'a> Foo<'a> { fn f(&'a self) -> &'static str { 'outer: loop {} } }\n");
        assert!(s.blanked.contains("'a>"));
        assert!(s.blanked.contains("'static"));
        assert!(s.blanked.contains("'outer"));
        // Escaped quote and backslash char literals terminate correctly.
        let s = scan(r"let q = '\''; let b = '\\'; let n = '\n'; HashMap");
        assert_eq!(s.blanked.matches("HashMap").count(), 1);
        assert!(!s.blanked.contains(r"'\''"));
    }

    #[test]
    fn test_region_detected() {
        let s = scan("fn lib() {}\n#[cfg(test)]\nmod tests {}\n");
        assert_eq!(s.first_test_line, Some(2));
        assert!(!s.is_test_code(1));
        assert!(s.is_test_code(3));
    }
}
