//! Workspace file discovery and path classification.

use std::path::{Path, PathBuf};

/// Directory names never descended into.
const SKIP_DIRS: &[&str] = &["target", ".git", ".github", "runs", "results", "fixtures"];

/// Collects every `.rs` file under `root`, sorted by path so the walk
/// (and therefore diagnostic order and the allowlist) is deterministic.
pub fn collect_rs_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let mut entries: Vec<_> = std::fs::read_dir(&dir)?
            .collect::<std::io::Result<Vec<_>>>()?
            .into_iter()
            .map(|e| e.path())
            .collect();
        entries.sort();
        for path in entries {
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if path.is_dir() {
                if !SKIP_DIRS.contains(&name) && !name.starts_with('.') {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Where a source file sits in the workspace — drives which lints apply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileClass {
    /// Crate the file belongs to (`nucache-core`, `root`, `vendor/rand`, …).
    pub crate_name: String,
    /// Vendored third-party code (`vendor/*`): only `forbid-unsafe-missing`
    /// is checked there, and only at crate roots.
    pub is_vendor: bool,
    /// Integration-test file (`tests/` directory).
    pub is_test_dir: bool,
    /// Benchmark file (`benches/` directory).
    pub is_bench: bool,
    /// Binary target (`src/bin/` or `src/main.rs`).
    pub is_bin: bool,
    /// Example program (`examples/` directory).
    pub is_example: bool,
    /// Crate root (`src/lib.rs` or `src/main.rs`): must carry
    /// `#![forbid(unsafe_code)]`.
    pub is_crate_root: bool,
    /// Build script (`build.rs`): exempt from library-code lints.
    pub is_build_script: bool,
}

impl FileClass {
    /// Whether this file is simulator library code — the scope for the
    /// determinism, wall-clock, cast and unwrap lints. Experiment
    /// binaries, benches, tests, vendor code and the audit tool itself
    /// are out of scope.
    pub fn is_sim_lib(&self) -> bool {
        !self.is_vendor
            && !self.is_test_dir
            && !self.is_bench
            && !self.is_bin
            && !self.is_example
            && !self.is_build_script
            && self.crate_name != "nucache-audit"
            && self.crate_name != "nucache-bench"
            && self.crate_name != "nucache-experiments"
    }
}

/// Classifies a workspace-relative path (forward slashes).
pub fn classify(rel: &str) -> FileClass {
    let parts: Vec<&str> = rel.split('/').collect();
    let (crate_name, is_vendor) = match parts.as_slice() {
        ["crates", name, ..] => (format!("nucache-{name}"), false),
        ["vendor", name, ..] => (format!("vendor/{name}"), true),
        _ => ("root".to_string(), false),
    };
    let is_test_dir = parts.contains(&"tests");
    let is_bench = parts.contains(&"benches");
    let is_example = parts.contains(&"examples");
    let file = parts.last().copied().unwrap_or("");
    let in_bin_dir = parts.windows(2).any(|w| w == ["src", "bin"]);
    let is_bin = in_bin_dir || (file == "main.rs" && parts.contains(&"src"));
    let is_crate_root =
        (file == "lib.rs" || file == "main.rs") && parts.iter().rev().nth(1) == Some(&"src");
    let is_build_script = rel.ends_with("build.rs") && !parts.contains(&"src");
    FileClass {
        crate_name,
        is_vendor,
        is_test_dir,
        is_bench,
        is_bin,
        is_example,
        is_crate_root,
        is_build_script,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_core_lib() {
        let c = classify("crates/core/src/llc.rs");
        assert_eq!(c.crate_name, "nucache-core");
        assert!(c.is_sim_lib());
        assert!(!c.is_crate_root);
    }

    #[test]
    fn classify_crate_roots() {
        assert!(classify("crates/core/src/lib.rs").is_crate_root);
        assert!(classify("src/lib.rs").is_crate_root);
        assert!(classify("vendor/rand/src/lib.rs").is_crate_root);
        assert!(!classify("crates/core/src/llc.rs").is_crate_root);
        let bin = classify("crates/experiments/src/bin/simulate.rs");
        assert!(bin.is_bin && !bin.is_crate_root);
    }

    #[test]
    fn out_of_scope_files() {
        assert!(!classify("crates/cache/tests/policy_properties.rs").is_sim_lib());
        assert!(!classify("crates/bench/benches/nucache.rs").is_sim_lib());
        assert!(!classify("crates/experiments/src/lib.rs").is_sim_lib());
        assert!(!classify("vendor/proptest/src/lib.rs").is_sim_lib());
        assert!(!classify("crates/audit/src/lints.rs").is_sim_lib());
        assert!(!classify("examples/policy_comparison.rs").is_sim_lib());
        assert!(classify("crates/sim/src/driver.rs").is_sim_lib());
        assert!(classify("src/lib.rs").is_sim_lib());
    }
}
