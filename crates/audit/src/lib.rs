//! Source-level lint pass for the NUcache workspace.
//!
//! `nucache-audit` walks every `.rs` file in the workspace and enforces a
//! small set of project-specific invariants that `rustc`/`clippy` cannot
//! express (or that clippy expresses only per-expression, where this
//! project wants a curated, suppressible policy):
//!
//! | lint | rule |
//! |------|------|
//! | `nondeterministic-iteration` | no bare `HashMap`/`HashSet` in simulator crates — iteration order leaks hasher state into results; use `BTreeMap`/`BTreeSet` or justify with a suppression |
//! | `wall-clock-in-sim` | no `Instant`/`SystemTime` outside experiment binaries, benches and telemetry manifests — simulation results must never depend on wall time |
//! | `forbid-unsafe-missing` | every crate root carries `#![forbid(unsafe_code)]` |
//! | `lossy-cast-in-counters` | no truncating `as` casts to narrow integers in counter/stat/monitor arithmetic |
//! | `unwrap-in-lib` | no new `.unwrap()`/`.expect()` in library code beyond the checked-in per-file allowlist |
//!
//! A finding can be suppressed at the site with a justification comment:
//!
//! ```text
//! // nucache-audit: allow(wall-clock-in-sim) -- throughput banner only
//! let t0 = std::time::Instant::now();
//! ```
//!
//! (on the same line or the line above), or for a whole file with
//! `allow-file(lint-name)`. The scanner is a self-contained lexer — no
//! external dependencies — so the audit builds and runs offline even when
//! the simulator crates themselves are broken.
//!
//! On top of the per-file pass sits a workspace-level layer: a lexical
//! [symbol index](symbols), name-based [reference resolution](resolve),
//! a cross-crate [use graph](graph) and four [semantic lints](semantic)
//! (`counter-dataflow`, `doc-constant-drift`, `cfg-gate-consistency`,
//! `dead-cross-crate-pub`). See `DESIGN.md` §10 for the analysis model.
//!
//! The flow-aware layer ([mod@cfg], [effects], [hotpath]) builds per-function
//! control-flow graphs, infers an `alloc`/`panic`/`lock`/`io` effect set
//! per function through the workspace call graph, and gates the kernel's
//! hot-path contracts (`alloc-in-hot-path`, `panic-in-hot-path`,
//! `lock-held-across-call`) against a per-site justification file. See
//! `DESIGN.md` §14.
//!
//! The concurrency-soundness layer ([locks], [atomics]) resolves every
//! `Mutex`/`RwLock` guard and atomic op to a concrete lock identity,
//! builds the workspace lock-acquisition-order graph, and gates
//! `lock-order-cycle`, `double-lock`, `guard-escapes-hot-path` and
//! `atomic-ordering` against the shared `crates/audit/concurrency.txt`
//! ledger. See `DESIGN.md` §15.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod atomics;
pub mod cfg;
pub mod diag;
pub mod effects;
pub mod graph;
pub mod hotpath;
pub mod lexer;
pub mod lints;
pub mod locks;
pub mod manifest;
pub mod resolve;
pub mod semantic;
pub mod symbols;
pub mod walk;

pub use atomics::{run_atomic_lints, ATOMIC_LINTS};
pub use cfg::{build_cfg, fn_spans, Cfg, FnSpan};
pub use diag::{Diagnostic, Severity};
pub use effects::{EffectModel, EffectSet, FnInfo};
pub use graph::UseGraph;
pub use hotpath::{run_effect_lints, Justifications, EFFECT_LINTS, STUB_REASON};
pub use lexer::ScannedFile;
pub use lints::{run_lints, Allowlist, LINTS};
pub use locks::{run_lock_lints, CONCURRENCY_LEDGER, LOCK_LINTS};
pub use resolve::Workspace;
pub use semantic::{dead_pub::Baseline, run_semantic_lints, SEMANTIC_LINTS};
pub use symbols::{SymbolIndex, SymbolKind, Visibility};
pub use walk::{classify, collect_rs_files, FileClass};
