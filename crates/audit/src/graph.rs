//! Cross-crate call/use graph over the symbol index.
//!
//! An edge `A -> B` means compilation unit `A` references (by name) a
//! symbol declared in lib crate `B`. Edges aggregate per referenced
//! symbol with occurrence counts, and every container is a `BTreeMap`,
//! so two runs over the same tree render byte-identical output — the
//! property the determinism test pins down.

use crate::resolve::Workspace;
use crate::symbols::{SymbolKind, Visibility};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;

/// Reference counts for one `referencing unit -> defining crate` pair.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Edge {
    /// Referenced symbol name → occurrence count.
    pub symbols: BTreeMap<String, u64>,
}

impl Edge {
    /// Total occurrences across all symbols on this edge.
    pub fn total_refs(&self) -> u64 {
        self.symbols.values().sum()
    }
}

/// The workspace use graph.
#[derive(Debug, Default)]
pub struct UseGraph {
    /// `(referencing unit, defining lib crate) -> edge`. Only cross-unit
    /// pairs are stored; a crate's references to itself are not edges.
    pub edges: BTreeMap<(String, String), Edge>,
    /// Declared-symbol counts per lib crate (context for reports).
    pub symbols_per_crate: BTreeMap<String, u64>,
}

impl UseGraph {
    /// Builds the graph from a loaded workspace.
    ///
    /// Only symbols that are meaningful import targets contribute: items
    /// visible outside their file (`pub` / `pub(crate)`), excluding
    /// fields (reached through instances, not paths) and re-exports
    /// (already counted at their definition).
    pub fn build(ws: &Workspace) -> UseGraph {
        let mut graph = UseGraph::default();
        for def_crate in &ws.index.crates {
            if def_crate.starts_with("vendor/") {
                continue;
            }
            graph.symbols_per_crate.entry(def_crate.clone()).and_modify(|c| *c += 1).or_insert(1);
        }
        // Name -> set of defining lib crates (deduped so one occurrence
        // counts once per defining crate, however many same-name symbols
        // that crate declares).
        let mut defs: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
        for (id, sym) in ws.index.symbols.iter().enumerate() {
            if sym.vis == Visibility::Private
                || sym.kind == SymbolKind::Field
                || sym.kind == SymbolKind::Reexport
            {
                continue;
            }
            let def_crate = ws.index.crates[id].as_str();
            if def_crate.starts_with("vendor/") {
                continue;
            }
            defs.entry(sym.name.as_str()).or_default().insert(def_crate);
        }
        for (name, def_crates) in &defs {
            for occ in ws.occurrences_of(name) {
                let unit = &ws.files[occ.file].unit;
                if ws.is_declaration(name, occ) {
                    continue;
                }
                for def_crate in def_crates {
                    // A unit's references to its own lib crate are not
                    // cross-crate edges ("nucache-sim/tests" still refers
                    // to lib "nucache-sim" externally, by design).
                    if unit == def_crate {
                        continue;
                    }
                    *graph
                        .edges
                        .entry((unit.clone(), (*def_crate).to_string()))
                        .or_default()
                        .symbols
                        .entry((*name).to_string())
                        .or_insert(0) += 1;
                }
            }
        }
        graph
    }

    /// Renders the graph as stable, human-readable text.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "workspace use graph: {} edges", self.edges.len());
        for ((from, to), edge) in &self.edges {
            let _ = writeln!(
                out,
                "{from} -> {to}: {} symbols, {} refs",
                edge.symbols.len(),
                edge.total_refs()
            );
            // Top referenced symbols, by count then name.
            let mut top: Vec<(&String, &u64)> = edge.symbols.iter().collect();
            top.sort_by(|a, b| b.1.cmp(a.1).then(a.0.cmp(b.0)));
            for (name, count) in top.iter().take(5) {
                let _ = writeln!(out, "    {name} ({count})");
            }
        }
        out
    }

    /// Renders the graph as a stable JSON document.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n  \"edges\": [\n");
        let n = self.edges.len();
        for (i, ((from, to), edge)) in self.edges.iter().enumerate() {
            let mut syms = String::new();
            let total = edge.symbols.len();
            for (j, (name, count)) in edge.symbols.iter().enumerate() {
                let _ = write!(
                    syms,
                    "{{\"name\": \"{name}\", \"refs\": {count}}}{}",
                    if j + 1 == total { "" } else { ", " }
                );
            }
            let _ = writeln!(
                out,
                "    {{\"from\": \"{from}\", \"to\": \"{to}\", \"refs\": {}, \"symbols\": [{syms}]}}{}",
                edge.total_refs(),
                if i + 1 == n { "" } else { "," }
            );
        }
        out.push_str("  ],\n  \"symbols_per_crate\": {\n");
        let n = self.symbols_per_crate.len();
        for (i, (krate, count)) in self.symbols_per_crate.iter().enumerate() {
            let _ = writeln!(out, "    \"{krate}\": {count}{}", if i + 1 == n { "" } else { "," });
        }
        out.push_str("  }\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resolve::Workspace;

    fn mini_workspace(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("nucache-audit-graph-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mk = |rel: &str, text: &str| {
            let p = dir.join(rel);
            std::fs::create_dir_all(p.parent().expect("parent")).expect("mkdir");
            std::fs::write(p, text).expect("write");
        };
        mk(
            "crates/common/src/lib.rs",
            "pub struct CacheStats { pub hits: u64 }\npub fn ratio() {}\n",
        );
        mk(
            "crates/core/src/lib.rs",
            "use nucache_common::CacheStats;\nfn f() { let s = CacheStats { hits: 0 }; ratio(); }\n",
        );
        dir
    }

    #[test]
    fn cross_crate_edges_resolve() {
        let dir = mini_workspace("edges");
        let ws = Workspace::load(&dir).expect("load");
        let g = UseGraph::build(&ws);
        let edge = g
            .edges
            .get(&("nucache-core".to_string(), "nucache-common".to_string()))
            .expect("core -> common edge");
        assert!(edge.symbols.contains_key("CacheStats"));
        assert!(edge.symbols.contains_key("ratio"));
        // No self-edge.
        assert!(!g.edges.keys().any(|(f, t)| f == t));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rendering_is_deterministic() {
        let dir = mini_workspace("render");
        let ws1 = Workspace::load(&dir).expect("load");
        let ws2 = Workspace::load(&dir).expect("load");
        let (g1, g2) = (UseGraph::build(&ws1), UseGraph::build(&ws2));
        assert_eq!(g1.render_text(), g2.render_text());
        assert_eq!(g1.render_json(), g2.render_json());
        assert!(g1.render_json().contains("\"from\": \"nucache-core\""));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
