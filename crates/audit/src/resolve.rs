//! Workspace loading, reference extraction and name resolution.
//!
//! [`Workspace::load`] walks the repository once, scanning every `.rs`
//! file through the lexer and symbol scanner and building:
//!
//! * a [`SymbolIndex`] of every declaration;
//! * an [`OccurrenceIndex`]: identifier name → every place it appears,
//!   with enough token context to classify the occurrence (increment,
//!   assignment, struct-literal init, read, declaration);
//! * per-file *compilation units*: `src/bin/*`, `tests/`, `benches/` and
//!   `examples/` files are separate crates to cargo, and the resolver
//!   models them the same way (`nucache-sim/tests`, …) so a lib item used
//!   only by its own integration tests still counts as referenced from
//!   outside the lib.
//!
//! Resolution is name-based: an identifier occurrence refers to every
//! symbol of the same name. That conservatism is deliberate — a common
//! name like `new` resolves everywhere and therefore never produces a
//! false "dead" or "write-only" finding; distinctive names (the ones
//! worth auditing) resolve essentially uniquely.

use crate::lexer::{scan, ScannedFile};
use crate::manifest::Manifests;
use crate::symbols::{scan_symbols, tokenize, FileSymbols, SymbolIndex, TokKind, Token};
use crate::walk::{classify, collect_rs_files, FileClass};
use std::collections::BTreeMap;
use std::path::Path;

/// One scanned source file with everything the lints need.
#[derive(Debug)]
pub struct FileModel {
    /// Workspace-relative path, forward slashes.
    pub rel: String,
    /// Raw source text (doc-comment checks need the unblanked text).
    pub raw: String,
    /// Path classification.
    pub class: FileClass,
    /// Lexer output (blanked text, suppressions, test region).
    pub scanned: ScannedFile,
    /// Token stream of the blanked text.
    pub tokens: Vec<Token>,
    /// Symbols, cfg regions and use paths.
    pub symbols: FileSymbols,
    /// Compilation unit (see [`unit_of`]).
    pub unit: String,
}

/// The compilation unit a file belongs to: the crate name, refined with
/// `/bin`, `/tests`, `/benches`, `/examples` or `/build` for targets that
/// cargo compiles as separate crates.
pub fn unit_of(class: &FileClass) -> String {
    let suffix = if class.is_bin {
        "/bin"
    } else if class.is_test_dir {
        "/tests"
    } else if class.is_bench {
        "/benches"
    } else if class.is_example {
        "/examples"
    } else if class.is_build_script {
        "/build"
    } else {
        ""
    };
    format!("{}{suffix}", class.crate_name)
}

/// How an identifier occurrence is used, judged from the surrounding
/// tokens.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UseKind {
    /// `name += …` / `name -= …` (also via `.name`).
    Increment,
    /// `name = …` plain assignment.
    Assign,
    /// `name: …` in a struct literal (or a field declaration — the
    /// consumer skips known declaration sites by position).
    Init,
    /// Anything else: the value is read.
    Read,
}

/// One identifier occurrence.
#[derive(Debug, Clone)]
pub struct Occurrence {
    /// Index into [`Workspace::files`].
    pub file: usize,
    /// 1-indexed line.
    pub line: usize,
    /// Char offset of the identifier.
    pub pos: usize,
    /// Usage classification.
    pub kind: UseKind,
    /// Whether the token directly follows a `.` (field/method access).
    pub after_dot: bool,
    /// Whether the token is directly followed by `(` (call).
    pub call: bool,
}

/// Identifier name → occurrences, workspace-wide.
#[derive(Debug, Default)]
pub struct OccurrenceIndex {
    /// Map from identifier text to all its occurrences, in file order.
    pub by_name: BTreeMap<String, Vec<Occurrence>>,
}

/// Rust keywords and primitive type names — never indexed as references.
const NON_REFERENCE: &[&str] = &[
    "as", "async", "await", "break", "const", "continue", "crate", "dyn", "else", "enum", "extern",
    "false", "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub",
    "ref", "return", "self", "Self", "static", "struct", "super", "trait", "true", "type",
    "unsafe", "use", "where", "while", "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16",
    "i32", "i64", "i128", "isize", "f32", "f64", "bool", "char", "str",
];

/// Classifies and indexes every identifier of `tokens`.
fn index_file(file: usize, tokens: &[Token], out: &mut OccurrenceIndex) {
    for (ti, t) in tokens.iter().enumerate() {
        if t.kind != TokKind::Ident || NON_REFERENCE.contains(&t.text.as_str()) {
            continue;
        }
        let next = tokens.get(ti + 1);
        let prev = ti.checked_sub(1).and_then(|p| tokens.get(p));
        let after_dot = prev.is_some_and(|p| p.is_punct("."));
        let call = next.is_some_and(|n| n.is_punct("("));
        let kind = match next.map(|n| n.text.as_str()) {
            Some("+=") | Some("-=") | Some("*=") | Some("|=") | Some("&=") | Some("^=")
            | Some("<<=") | Some(">>=") => UseKind::Increment,
            Some("=") => UseKind::Assign,
            Some(":") => UseKind::Init,
            _ => UseKind::Read,
        };
        out.by_name.entry(t.text.clone()).or_default().push(Occurrence {
            file,
            line: t.line,
            pos: t.pos,
            kind,
            after_dot,
            call,
        });
    }
}

/// The loaded workspace: every file model, the symbol index, the
/// occurrence index and the markdown docs the drift lint reads.
#[derive(Debug)]
pub struct Workspace {
    /// Scanned `.rs` files in path order.
    pub files: Vec<FileModel>,
    /// All declared symbols.
    pub index: SymbolIndex,
    /// All identifier occurrences.
    pub occurrences: OccurrenceIndex,
    /// `(rel-path, text)` of the audited markdown documents.
    pub docs: Vec<(String, String)>,
    /// Feature facts from the workspace `Cargo.toml`s.
    pub manifests: Manifests,
}

/// Markdown documents whose tables bind numeric claims to code constants.
pub const AUDITED_DOCS: &[&str] = &["DESIGN.md", "EXPERIMENTS.md"];

impl Workspace {
    /// Loads and scans every source file under `root`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the directory walk or file reads.
    pub fn load(root: &Path) -> std::io::Result<Workspace> {
        let mut files = Vec::new();
        let mut index = SymbolIndex::default();
        let mut occurrences = OccurrenceIndex::default();
        for path in collect_rs_files(root)? {
            let rel = rel_path(root, &path);
            let source = std::fs::read_to_string(&path)?;
            let class = classify(&rel);
            let scanned = scan(&source);
            let tokens = tokenize(&scanned.blanked);
            let symbols = scan_symbols(&rel, &source, &scanned);
            index.add_file(&class.crate_name, &symbols);
            let unit = unit_of(&class);
            let file_id = files.len();
            index_file(file_id, &tokens, &mut occurrences);
            files.push(FileModel { rel, raw: source, class, scanned, tokens, symbols, unit });
        }
        let mut docs = Vec::new();
        for name in AUDITED_DOCS {
            if let Ok(text) = std::fs::read_to_string(root.join(name)) {
                docs.push((name.to_string(), text));
            }
        }
        let manifests = Manifests::load(root);
        Ok(Workspace { files, index, occurrences, docs, manifests })
    }

    /// Whether `occ` sits at the declaration of any indexed symbol (same
    /// file and char position as a declared name token).
    pub fn is_declaration(&self, name: &str, occ: &Occurrence) -> bool {
        self.index.named(name).any(|(_, s)| s.file == self.files[occ.file].rel && s.pos == occ.pos)
    }

    /// Whether the occurrence lies in test code: a `tests/` file or the
    /// trailing `#[cfg(test)]` region of a lib file.
    pub fn is_test_occurrence(&self, occ: &Occurrence) -> bool {
        let f = &self.files[occ.file];
        f.class.is_test_dir || f.scanned.is_test_code(occ.line)
    }

    /// Occurrences of `name`, if any.
    pub fn occurrences_of(&self, name: &str) -> &[Occurrence] {
        self.occurrences.by_name.get(name).map_or(&[], Vec::as_slice)
    }
}

/// Workspace-relative path with forward slashes.
pub fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_refinement() {
        assert_eq!(unit_of(&classify("crates/sim/src/runner.rs")), "nucache-sim");
        assert_eq!(unit_of(&classify("crates/sim/tests/t.rs")), "nucache-sim/tests");
        assert_eq!(
            unit_of(&classify("crates/experiments/src/bin/simulate.rs")),
            "nucache-experiments/bin"
        );
        assert_eq!(unit_of(&classify("crates/bench/benches/b.rs")), "nucache-bench/benches");
        assert_eq!(unit_of(&classify("examples/e.rs")), "root/examples");
        assert_eq!(unit_of(&classify("tests/t.rs")), "root/tests");
    }

    #[test]
    fn occurrence_classification() {
        let tokens =
            tokenize("self.hits += 1; let x = total; count = 0; S { fills: 3 }; m.record(); decl");
        let mut idx = OccurrenceIndex::default();
        index_file(0, &tokens, &mut idx);
        let one = |name: &str| {
            let occs = idx.by_name.get(name).expect(name);
            assert_eq!(occs.len(), 1, "{name}");
            occs[0].clone()
        };
        assert_eq!(one("hits").kind, UseKind::Increment);
        assert!(one("hits").after_dot);
        assert_eq!(one("total").kind, UseKind::Read);
        assert_eq!(one("count").kind, UseKind::Assign);
        assert_eq!(one("fills").kind, UseKind::Init);
        assert!(one("record").call);
        assert_eq!(one("decl").kind, UseKind::Read);
        assert!(!idx.by_name.contains_key("let"), "keywords are not references");
    }
}
