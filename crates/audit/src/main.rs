//! CLI for the workspace audit.
//!
//! ```text
//! cargo run -p nucache-audit -- lint                   # all 9 lints, text output
//! cargo run -p nucache-audit -- lint --format json     # machine-readable, for CI
//! cargo run -p nucache-audit -- lint --lint counter-dataflow
//! cargo run -p nucache-audit -- lint --update-baseline # rewrite pub_baseline.txt
//! cargo run -p nucache-audit -- graph --format json    # cross-crate use graph
//! cargo run -p nucache-audit -- effects                # hot-path contract gates
//! cargo run -p nucache-audit -- effects --list         # per-function effect sets
//! cargo run -p nucache-audit -- effects --update-justify # rewrite hotpath.txt stubs
//! cargo run -p nucache-audit -- locks                  # lock-discipline gates
//! cargo run -p nucache-audit -- atomics                # atomic-ordering gate
//! cargo run -p nucache-audit -- locks --update-justify # rewrite concurrency.txt stubs
//! ```
//!
//! Exit codes: 0 clean, 1 violations found, 2 usage or I/O error.

#![forbid(unsafe_code)]

use nucache_audit::atomics::{run_atomic_lints, ATOMIC_LINTS};
use nucache_audit::hotpath::{run_effect_lints, Justifications, EFFECT_LINTS};
use nucache_audit::lints::{current_unwrap_counts, run_lints, Allowlist, LINTS};
use nucache_audit::locks::{run_lock_lints, CONCURRENCY_HEADER, LOCK_LINTS};
use nucache_audit::semantic::dead_pub::{self, Baseline};
use nucache_audit::semantic::{run_semantic_lints, SEMANTIC_LINTS};
use nucache_audit::{EffectModel, UseGraph, Workspace};
use std::path::PathBuf;
use std::process::ExitCode;

/// Relative location of the unwrap allowlist inside the workspace.
const ALLOWLIST_REL: &str = "crates/audit/allowlist.txt";

/// Relative location of the dead-pub baseline inside the workspace.
const BASELINE_REL: &str = "crates/audit/pub_baseline.txt";

/// Relative location of the hot-path justification ledger.
const HOTPATH_REL: &str = "crates/audit/hotpath.txt";

/// Relative location of the concurrency (locks + atomics) ledger.
const CONCURRENCY_REL: &str = nucache_audit::CONCURRENCY_LEDGER;

fn usage() {
    eprintln!(
        "usage: nucache-audit [lint|graph|effects|locks|atomics] [options]\n\
         \n\
         subcommands:\n\
         \x20 lint     run every per-file and workspace lint (the default)\n\
         \x20 graph    print the cross-crate use graph\n\
         \x20 effects  run the flow-aware hot-path contract gates\n\
         \x20 locks    run the lock-discipline gates (order cycles, double-lock, guard escapes)\n\
         \x20 atomics  run the atomic-ordering gate\n\
         \n\
         options:\n\
         \x20 --format text|json   output format (default text)\n\
         \x20 --root PATH          workspace root (default: this checkout)\n\
         \x20 --lint NAME          run only the named lint(s); repeatable\n\
         \x20 --update-allowlist   rewrite {ALLOWLIST_REL} from current unwrap counts\n\
         \x20 --update-baseline    rewrite {BASELINE_REL} from current dead-pub findings\n\
         \x20 --update-justify     rewrite {HOTPATH_REL} (effects) or {CONCURRENCY_REL}\n\
         \x20                      (locks/atomics, both families) from current findings\n\
         \x20 --list               (effects) print per-function inferred effect sets\n\
         \n\
         exit codes: 0 = clean, 1 = violations found, 2 = usage or I/O error\n\
         \n\
         per-file lints:"
    );
    for (name, rule) in LINTS {
        eprintln!("  {name:<28} {rule}");
    }
    eprintln!("\nworkspace lints:");
    for (name, rule) in SEMANTIC_LINTS {
        eprintln!("  {name:<28} {rule}");
    }
    eprintln!("\neffect lints (effects subcommand):");
    for (name, rule) in EFFECT_LINTS {
        eprintln!("  {name:<28} {rule}");
    }
    eprintln!("\nconcurrency lints (locks / atomics subcommands):");
    for (name, rule) in LOCK_LINTS.iter().chain(ATOMIC_LINTS.iter()) {
        eprintln!("  {name:<28} {rule}");
    }
    eprintln!(
        "\nsuppress a finding with `// nucache-audit: allow(lint-name) -- reason` on the\n\
         same line or the line above, or `allow-file(lint-name)` anywhere in the file."
    );
}

/// Parsed command line.
struct Cli {
    command: String,
    format: String,
    root: PathBuf,
    only: Vec<String>,
    update_allowlist: bool,
    update_baseline: bool,
    update_justify: bool,
    list_effects: bool,
}

fn parse_args() -> Result<Option<Cli>, String> {
    let mut cli = Cli {
        command: String::from("lint"),
        format: String::from("text"),
        root: PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("..").join(".."),
        only: Vec::new(),
        update_allowlist: false,
        update_baseline: false,
        update_justify: false,
        list_effects: false,
    };
    let mut args = std::env::args().skip(1).peekable();
    if let Some(first) = args.peek() {
        if ["lint", "graph", "effects", "locks", "atomics"].iter().any(|c| c == first) {
            cli.command = args.next().unwrap_or_default();
        }
    }
    let known: Vec<&str> = LINTS
        .iter()
        .chain(SEMANTIC_LINTS.iter())
        .chain(EFFECT_LINTS.iter())
        .chain(LOCK_LINTS.iter())
        .chain(ATOMIC_LINTS.iter())
        .map(|(name, _)| *name)
        .collect();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--format" => match args.next() {
                Some(f) if f == "text" || f == "json" => cli.format = f,
                _ => return Err("--format takes `text` or `json`".into()),
            },
            "--root" => match args.next() {
                Some(p) => cli.root = PathBuf::from(p),
                None => return Err("--root takes a path".into()),
            },
            "--lint" => match args.next() {
                Some(name) if known.contains(&name.as_str()) => cli.only.push(name),
                Some(name) => return Err(format!("unknown lint {name:?} (see --help)")),
                None => return Err("--lint takes a lint name".into()),
            },
            "--update-allowlist" => cli.update_allowlist = true,
            "--update-baseline" => cli.update_baseline = true,
            "--update-justify" => cli.update_justify = true,
            "--list" => cli.list_effects = true,
            "--help" | "-h" => {
                usage();
                return Ok(None);
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(Some(cli))
}

/// `lint` subcommand body.
fn run_lint(cli: &Cli) -> Result<ExitCode, String> {
    if cli.update_allowlist {
        let list = current_unwrap_counts(&cli.root).map_err(|e| format!("scanning: {e}"))?;
        let path = cli.root.join(ALLOWLIST_REL);
        std::fs::write(&path, list.render()).map_err(|e| format!("writing {path:?}: {e}"))?;
        eprintln!("wrote {} entries to {}", list.entries.len(), path.display());
        return Ok(ExitCode::SUCCESS);
    }

    let ws = Workspace::load(&cli.root).map_err(|e| format!("scanning workspace: {e}"))?;

    if cli.update_baseline {
        let entries = dead_pub::current_entries(&ws).into_iter().map(|(k, _, _)| k).collect();
        let path = cli.root.join(BASELINE_REL);
        let body = Baseline::render(&entries);
        std::fs::write(&path, body).map_err(|e| format!("writing {path:?}: {e}"))?;
        eprintln!("wrote {} entries to {}", entries.len(), path.display());
        return Ok(ExitCode::SUCCESS);
    }

    let allowlist = match std::fs::read_to_string(cli.root.join(ALLOWLIST_REL)) {
        Ok(text) => Allowlist::parse(&text).map_err(|e| e.to_string())?,
        // Missing allowlist means an empty budget, not an error.
        Err(_) => Allowlist::default(),
    };
    let baseline =
        Baseline::load(&cli.root.join(BASELINE_REL)).map_err(|e| format!("baseline: {e}"))?;

    let mut diags = run_lints(&cli.root, &allowlist).map_err(|e| format!("scanning: {e}"))?;
    diags.extend(run_semantic_lints(&ws, &baseline));
    diags.sort_by(|a, b| {
        (&a.file, a.line, a.lint, &a.message).cmp(&(&b.file, b.line, b.lint, &b.message))
    });
    if !cli.only.is_empty() {
        diags.retain(|d| cli.only.iter().any(|n| n == d.lint));
    }

    if cli.format == "json" {
        print!("{}", nucache_audit::diag::to_json(&diags));
    } else {
        for d in &diags {
            println!("{d}");
        }
        if diags.is_empty() {
            let total = LINTS.len() + SEMANTIC_LINTS.len();
            let scope = if cli.only.is_empty() {
                format!("{total} lints")
            } else {
                format!("{} of {total} lints", cli.only.len())
            };
            eprintln!("nucache-audit: workspace clean ({scope})");
        } else {
            eprintln!("nucache-audit: {} violation(s)", diags.len());
        }
    }
    Ok(if diags.is_empty() { ExitCode::SUCCESS } else { ExitCode::FAILURE })
}

/// `effects` subcommand body: build the effect model, run the hot-path
/// contract gates against the justification ledger.
fn run_effects(cli: &Cli) -> Result<ExitCode, String> {
    let ws = Workspace::load(&cli.root).map_err(|e| format!("scanning workspace: {e}"))?;
    let model = EffectModel::build(&ws);

    if cli.list_effects {
        for f in &model.fns {
            println!("{:<18} {:<40} {}", f.crate_name, f.qualified(), f.effects);
        }
        return Ok(ExitCode::SUCCESS);
    }

    let path = cli.root.join(HOTPATH_REL);
    let (just, errors) = Justifications::load(&path);
    if let Some((line, text)) = errors.first() {
        return Err(format!("{HOTPATH_REL}:{line}: malformed ledger line: {text:?}"));
    }
    let (mut diags, required) = run_effect_lints(&ws, &model, &just);

    if cli.update_justify {
        let mut ledger = Justifications { entries: required };
        ledger.entries.sort_by(|a, b| {
            (&a.lint, &a.krate, &a.func, &a.source).cmp(&(&b.lint, &b.krate, &b.func, &b.source))
        });
        let count = ledger.entries.len();
        std::fs::write(&path, ledger.render()).map_err(|e| format!("writing {path:?}: {e}"))?;
        eprintln!("wrote {count} entries to {}", path.display());
        return Ok(ExitCode::SUCCESS);
    }

    diags.sort_by(|a, b| {
        (&a.file, a.line, a.lint, &a.message).cmp(&(&b.file, b.line, b.lint, &b.message))
    });
    if !cli.only.is_empty() {
        diags.retain(|d| cli.only.iter().any(|n| n == d.lint));
    }
    if cli.format == "json" {
        print!("{}", nucache_audit::diag::to_json(&diags));
    } else {
        for d in &diags {
            println!("{d}");
        }
        if diags.is_empty() {
            eprintln!(
                "nucache-audit: hot-path contracts hold ({} effect lints, {} ledger entries)",
                EFFECT_LINTS.len(),
                just.entries.len()
            );
        } else {
            eprintln!("nucache-audit: {} violation(s)", diags.len());
        }
    }
    Ok(if diags.is_empty() { ExitCode::SUCCESS } else { ExitCode::FAILURE })
}

/// `locks` / `atomics` subcommand body: both families run against the
/// shared concurrency ledger; `--update-justify` rewrites it from the
/// union of required entries, the gate reports one family's findings.
fn run_concurrency(cli: &Cli) -> Result<ExitCode, String> {
    let ws = Workspace::load(&cli.root).map_err(|e| format!("scanning workspace: {e}"))?;
    let model = EffectModel::build(&ws);

    let path = cli.root.join(CONCURRENCY_REL);
    let (just, errors) = Justifications::load(&path);
    if let Some((line, text)) = errors.first() {
        return Err(format!("{CONCURRENCY_REL}:{line}: malformed ledger line: {text:?}"));
    }
    let (lock_diags, lock_required) = run_lock_lints(&ws, &model, &just);
    let (atomic_diags, atomic_required) = run_atomic_lints(&ws, &model, &just);

    if cli.update_justify {
        let mut entries = lock_required;
        entries.extend(atomic_required);
        let mut ledger = Justifications { entries };
        ledger.entries.sort_by(|a, b| {
            (&a.lint, &a.krate, &a.func, &a.source).cmp(&(&b.lint, &b.krate, &b.func, &b.source))
        });
        ledger.entries.dedup();
        let count = ledger.entries.len();
        let lints: Vec<(&str, &str)> =
            LOCK_LINTS.iter().chain(ATOMIC_LINTS.iter()).copied().collect();
        std::fs::write(&path, ledger.render_with(CONCURRENCY_HEADER, &lints))
            .map_err(|e| format!("writing {path:?}: {e}"))?;
        eprintln!("wrote {count} entries to {}", path.display());
        return Ok(ExitCode::SUCCESS);
    }

    let mut diags = if cli.command == "locks" { lock_diags } else { atomic_diags };
    diags.sort_by(|a, b| {
        (&a.file, a.line, a.lint, &a.message).cmp(&(&b.file, b.line, b.lint, &b.message))
    });
    if !cli.only.is_empty() {
        diags.retain(|d| cli.only.iter().any(|n| n == d.lint));
    }
    if cli.format == "json" {
        print!("{}", nucache_audit::diag::to_json(&diags));
    } else {
        for d in &diags {
            println!("{d}");
        }
        if diags.is_empty() {
            let family = if cli.command == "locks" {
                format!("{} lock lints", LOCK_LINTS.len())
            } else {
                format!("{} atomic lint", ATOMIC_LINTS.len())
            };
            eprintln!(
                "nucache-audit: concurrency contracts hold ({family}, {} ledger entries)",
                just.entries.len()
            );
        } else {
            eprintln!("nucache-audit: {} violation(s)", diags.len());
        }
    }
    Ok(if diags.is_empty() { ExitCode::SUCCESS } else { ExitCode::FAILURE })
}

/// `graph` subcommand body.
fn run_graph(cli: &Cli) -> Result<ExitCode, String> {
    let ws = Workspace::load(&cli.root).map_err(|e| format!("scanning workspace: {e}"))?;
    let graph = UseGraph::build(&ws);
    if cli.format == "json" {
        print!("{}", graph.render_json());
    } else {
        print!("{}", graph.render_text());
    }
    Ok(ExitCode::SUCCESS)
}

fn main() -> ExitCode {
    let cli = match parse_args() {
        Ok(Some(cli)) => cli,
        Ok(None) => return ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            usage();
            return ExitCode::from(2);
        }
    };
    let result = match cli.command.as_str() {
        "graph" => run_graph(&cli),
        "effects" => run_effects(&cli),
        "locks" | "atomics" => run_concurrency(&cli),
        _ => run_lint(&cli),
    };
    match result {
        Ok(code) => code,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}
