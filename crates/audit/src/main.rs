//! CLI for the workspace lint pass.
//!
//! ```text
//! cargo run -p nucache-audit                      # text diagnostics, exit 1 on violations
//! cargo run -p nucache-audit -- --format json     # machine-readable, for CI
//! cargo run -p nucache-audit -- --update-allowlist # rewrite crates/audit/allowlist.txt
//! ```
//!
//! Exit codes: 0 clean, 1 violations found, 2 usage or I/O error.

#![forbid(unsafe_code)]

use nucache_audit::lints::{current_unwrap_counts, run_lints, Allowlist, LINTS};
use std::path::PathBuf;
use std::process::ExitCode;

/// Relative location of the unwrap allowlist inside the workspace.
const ALLOWLIST_REL: &str = "crates/audit/allowlist.txt";

fn usage() {
    eprintln!(
        "usage: nucache-audit [--format text|json] [--root PATH] [--update-allowlist]\n\nlints:"
    );
    for (name, rule) in LINTS {
        eprintln!("  {name:<28} {rule}");
    }
    eprintln!(
        "\nsuppress a finding with `// nucache-audit: allow(lint-name) -- reason` on the\n\
         same line or the line above, or `allow-file(lint-name)` anywhere in the file."
    );
}

fn main() -> ExitCode {
    let mut format = String::from("text");
    let mut root: Option<PathBuf> = None;
    let mut update_allowlist = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--format" => match args.next() {
                Some(f) if f == "text" || f == "json" => format = f,
                _ => {
                    eprintln!("error: --format takes `text` or `json`");
                    return ExitCode::from(2);
                }
            },
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("error: --root takes a path");
                    return ExitCode::from(2);
                }
            },
            "--update-allowlist" => update_allowlist = true,
            "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("error: unknown argument {other:?}");
                usage();
                return ExitCode::from(2);
            }
        }
    }

    // Default to the workspace root: this crate lives at crates/audit/.
    let root =
        root.unwrap_or_else(|| PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("..").join(".."));

    if update_allowlist {
        return match current_unwrap_counts(&root) {
            Ok(list) => {
                let path = root.join(ALLOWLIST_REL);
                match std::fs::write(&path, list.render()) {
                    Ok(()) => {
                        eprintln!("wrote {} entries to {}", list.entries.len(), path.display());
                        ExitCode::SUCCESS
                    }
                    Err(e) => {
                        eprintln!("error: writing {}: {e}", path.display());
                        ExitCode::from(2)
                    }
                }
            }
            Err(e) => {
                eprintln!("error: scanning workspace: {e}");
                ExitCode::from(2)
            }
        };
    }

    let allowlist = match std::fs::read_to_string(root.join(ALLOWLIST_REL)) {
        Ok(text) => match Allowlist::parse(&text) {
            Ok(list) => list,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::from(2);
            }
        },
        // Missing allowlist means an empty budget, not an error.
        Err(_) => Allowlist::default(),
    };

    let diags = match run_lints(&root, &allowlist) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("error: scanning workspace: {e}");
            return ExitCode::from(2);
        }
    };

    if format == "json" {
        print!("{}", nucache_audit::diag::to_json(&diags));
    } else {
        for d in &diags {
            println!("{d}");
        }
        if diags.is_empty() {
            eprintln!("nucache-audit: workspace clean ({} lints)", LINTS.len());
        } else {
            eprintln!("nucache-audit: {} violation(s)", diags.len());
        }
    }

    if diags.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
