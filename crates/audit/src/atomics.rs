//! Atomic-ordering lint over the effect model.
//!
//! Every atomic operation in the workspace (a `.load(…)`-family call
//! whose arguments carry a memory-ordering path) is resolved to the
//! same lock/atomic identities the [lock lints](crate::locks) use, and
//! one hard-gated lint enforces the ordering discipline:
//!
//! | lint | rule |
//! |------|------|
//! | `atomic-ordering` | every non-`SeqCst` atomic op carries a ledger justification, and mixed orderings on one atomic identity need an acquire/release pairing on that same identity |
//!
//! The rationale: `SeqCst` is the only ordering that needs no argument,
//! so every weaker choice is a claim about the surrounding protocol —
//! the ledger entry (`<identity>:<op>:<Ordering>` in
//! `crates/audit/concurrency.txt`) records that claim where review can
//! see it. Mixing orderings on one field is additionally suspect unless
//! the field itself carries the acquire/release pair that makes the mix
//! a protocol rather than an accident.

use crate::diag::{Diagnostic, Severity};
use crate::effects::{EffectModel, FnInfo};
use crate::hotpath::{Justification, Justifications, STUB_REASON};
use crate::locks::{receiver_segments, resolve_identity, LockUniverse, CONCURRENCY_LEDGER};
use crate::resolve::Workspace;
use crate::symbols::{TokKind, Token};
use std::collections::{BTreeMap, BTreeSet};

/// The atomic-lint names and one-line rules, for `--help`-style listings.
pub const ATOMIC_LINTS: &[(&str, &str)] = &[(
    "atomic-ordering",
    "non-SeqCst atomic ops need ledger justification; mixed orderings on one atomic need an acquire/release pair",
)];

/// Method names that, combined with an ordering argument, identify an
/// atomic operation.
const ATOMIC_OPS: &[&str] = &[
    "load",
    "store",
    "swap",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_max",
    "fetch_min",
    "fetch_nand",
    "fetch_update",
    "compare_exchange",
    "compare_exchange_weak",
    "compare_and_swap",
];

/// The five memory orderings.
const ORDERINGS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// Ops that read (can be the acquire side of a pairing). Everything
/// except `store` reads; everything except `load` writes.
fn reads(op: &str) -> bool {
    op != "store"
}

fn writes(op: &str) -> bool {
    op != "load"
}

/// One atomic operation site.
#[derive(Debug, Clone)]
struct AtomicOp {
    /// Resolved identity (shared with the lock lints).
    ident: String,
    /// Method name (`load`, `fetch_add`, …).
    op: String,
    /// Orderings named in the argument list (two for compare-exchange).
    orderings: Vec<String>,
    /// Owning function (index into `EffectModel::fns`).
    fn_idx: usize,
    /// 1-indexed source line.
    line: usize,
}

/// Extracts every atomic op from `f`'s body: an `ATOMIC_OPS` method
/// call whose argument list names at least one memory ordering.
fn atomic_ops(toks: &[Token], fi: usize, f: &FnInfo, uni: &LockUniverse) -> Vec<AtomicOp> {
    let mut out = Vec::new();
    let body = f.span.body.clone();
    for i in body.clone() {
        if i + 2 >= body.end
            || i == body.start
            || !toks[i].is_punct(".")
            || !toks[i + 2].is_punct("(")
        {
            continue;
        }
        let op = toks[i + 1].text.as_str();
        if !ATOMIC_OPS.contains(&op) {
            continue;
        }
        // Scan the balanced argument list for ordering idents.
        let mut depth = 0i32;
        let mut k = i + 2;
        let mut orderings = Vec::new();
        while k < body.end {
            match toks[k].text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                text if toks[k].kind == TokKind::Ident && ORDERINGS.contains(&text) => {
                    orderings.push(text.to_string());
                }
                _ => {}
            }
            k += 1;
        }
        if orderings.is_empty() {
            continue; // `Vec::swap(a, b)` and friends — not atomic.
        }
        let segs = receiver_segments(toks, i - 1, body.start);
        let ident = resolve_identity(&segs, f, uni);
        out.push(AtomicOp {
            ident,
            op: op.to_string(),
            orderings,
            fn_idx: fi,
            line: toks[i + 1].line,
        });
    }
    out
}

/// Runs the atomic-ordering lint, returning diagnostics and the full
/// set of required ledger entries for `--update-justify`.
pub fn run_atomic_lints(
    ws: &Workspace,
    model: &EffectModel,
    just: &Justifications,
) -> (Vec<Diagnostic>, Vec<Justification>) {
    let uni = LockUniverse::build(ws);
    let mut diags = Vec::new();
    let mut required: Vec<Justification> = Vec::new();
    let mut used: BTreeSet<usize> = BTreeSet::new();

    let mut ops: Vec<AtomicOp> = Vec::new();
    for (fi, f) in model.fns.iter().enumerate() {
        if f.span.body.is_empty() {
            continue;
        }
        ops.extend(atomic_ops(&ws.files[f.file].tokens, fi, f, &uni));
    }

    // A covering entry whose reason is still the `--update-justify`
    // stub is a hard finding: a stub is scaffolding, not a
    // justification. (Collected separately because `diags` is also
    // pushed to between `require` calls.)
    let mut stub_diags: Vec<Diagnostic> = Vec::new();
    let mut require = |f: &FnInfo, source: &str| -> bool {
        let covered = just.covers("atomic-ordering", &f.crate_name, &f.qualified(), source);
        if let Some(i) = covered {
            used.insert(i);
            if just.entries[i].reason == STUB_REASON {
                stub_diags.push(Diagnostic {
                    file: ws.files[f.file].rel.clone(),
                    line: f.span.line,
                    lint: "stub-justification",
                    message: format!(
                        "ledger entry `atomic-ordering {} {} {source}` still carries the \
                         `--update-justify` stub reason; write a real justification",
                        f.crate_name,
                        f.qualified()
                    ),
                    severity: Severity::Error,
                });
            }
        }
        let entry = match covered {
            Some(i) => just.entries[i].clone(),
            None => Justification {
                lint: "atomic-ordering".to_string(),
                krate: f.crate_name.clone(),
                func: f.qualified(),
                source: source.to_string(),
                tag: None,
                reason: STUB_REASON.to_string(),
            },
        };
        if !required.contains(&entry) {
            required.push(entry);
        }
        covered.is_some()
    };

    // Rule 1: every non-SeqCst ordering is a per-site claim.
    for op in &ops {
        let f = &model.fns[op.fn_idx];
        for ord in &op.orderings {
            if ord == "SeqCst" {
                continue;
            }
            let source = format!("{}:{}:{ord}", op.ident, op.op);
            if !require(f, &source) {
                diags.push(Diagnostic {
                    file: ws.files[f.file].rel.clone(),
                    line: op.line,
                    lint: "atomic-ordering",
                    message: format!(
                        "`{}` uses `{}({ord})` on `{}` without a concurrency-ledger justification",
                        f.qualified(),
                        op.op,
                        op.ident
                    ),
                    severity: Severity::Error,
                });
            }
        }
    }

    // Rule 2: mixed orderings on one identity need an acquire/release
    // pairing on that same identity.
    let mut by_ident: BTreeMap<&str, Vec<&AtomicOp>> = BTreeMap::new();
    for op in &ops {
        by_ident.entry(&op.ident).or_default().push(op);
    }
    for (ident, group) in by_ident {
        let distinct: BTreeSet<&str> =
            group.iter().flat_map(|o| o.orderings.iter().map(String::as_str)).collect();
        if distinct.len() <= 1 {
            continue;
        }
        let acquire_side = group.iter().any(|o| {
            reads(&o.op)
                && o.orderings.iter().any(|r| r == "Acquire" || r == "AcqRel" || r == "SeqCst")
        });
        let release_side = group.iter().any(|o| {
            writes(&o.op)
                && o.orderings.iter().any(|r| r == "Release" || r == "AcqRel" || r == "SeqCst")
        });
        if acquire_side && release_side {
            continue;
        }
        let first = group[0];
        let f = &model.fns[first.fn_idx];
        let source = format!("{ident}:mixed");
        if !require(f, &source) {
            diags.push(Diagnostic {
                file: ws.files[f.file].rel.clone(),
                line: first.line,
                lint: "atomic-ordering",
                message: format!(
                    "`{ident}` mixes orderings {{{}}} without an acquire/release pairing on the same atomic",
                    distinct.into_iter().collect::<Vec<_>>().join(", ")
                ),
                severity: Severity::Error,
            });
        }
    }

    diags.extend(stub_diags);

    // Stale entries among the atomic lints are findings, same contract
    // as the hotpath ledger.
    for (i, e) in just.entries.iter().enumerate() {
        if !ATOMIC_LINTS.iter().any(|(l, _)| *l == e.lint) {
            continue; // lock-lint entries are judged by `locks`
        }
        if !used.contains(&i) {
            diags.push(Diagnostic {
                file: CONCURRENCY_LEDGER.to_string(),
                line: 0,
                lint: "atomic-ordering",
                message: format!(
                    "stale ledger entry `{}` — no current finding requires it",
                    e.render()
                ),
                severity: Severity::Error,
            });
        }
    }

    (diags, required)
}
