//! The five lint passes and the unwrap allowlist.

use crate::diag::{Diagnostic, Severity};
use crate::lexer::{scan, ScannedFile};
use crate::walk::{classify, collect_rs_files, FileClass};
use std::collections::BTreeMap;
use std::path::Path;

/// Names of every lint the tool knows, with one-line rules. Order is the
/// order passes run in and the order `--help` lists them.
pub const LINTS: &[(&str, &str)] = &[
    (
        "nondeterministic-iteration",
        "no bare HashMap/HashSet in simulator library code (iteration order leaks hasher state)",
    ),
    (
        "wall-clock-in-sim",
        "no Instant/SystemTime in simulator library code (results must not depend on wall time)",
    ),
    ("forbid-unsafe-missing", "every crate root must carry #![forbid(unsafe_code)]"),
    (
        "lossy-cast-in-counters",
        "no truncating `as` casts to narrow integers in counter/stat/monitor files",
    ),
    ("unwrap-in-lib", "no .unwrap()/.expect() in library code beyond the checked-in allowlist"),
];

/// Per-file budget of pre-existing `.unwrap()`/`.expect()` calls in
/// library code. New code must not raise any file's count; shrinking a
/// count is recorded with `--update-allowlist`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Allowlist {
    /// `path -> permitted call count`, sorted for stable serialization.
    pub entries: BTreeMap<String, usize>,
}

impl Allowlist {
    /// Parses the `count path` line format. Lines starting with `#` and
    /// blank lines are ignored. Malformed lines are reported as errors.
    pub fn parse(text: &str) -> Result<Allowlist, String> {
        let mut entries = BTreeMap::new();
        for (i, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (count, path) = line
                .split_once(' ')
                .ok_or_else(|| format!("allowlist line {}: expected `count path`", i + 1))?;
            let count: usize = count
                .parse()
                .map_err(|_| format!("allowlist line {}: bad count {count:?}", i + 1))?;
            entries.insert(path.trim().to_string(), count);
        }
        Ok(Allowlist { entries })
    }

    /// Serializes back to the `count path` format with a header comment.
    pub fn render(&self) -> String {
        let mut out = String::from(
            "# unwrap-in-lib allowlist: pre-existing .unwrap()/.expect() calls per\n\
             # library file. Regenerate with `cargo run -p nucache-audit -- --update-allowlist`.\n\
             # New library code must use proper error handling instead of growing these.\n",
        );
        for (path, count) in &self.entries {
            out.push_str(&format!("{count} {path}\n"));
        }
        out
    }

    /// Permitted count for `path` (0 when absent).
    pub fn permitted(&self, path: &str) -> usize {
        self.entries.get(path).copied().unwrap_or(0)
    }
}

/// Returns character offsets in `line` where `token` occurs as a whole
/// identifier (not embedded in a longer identifier).
fn token_hits(line: &str, token: &str) -> usize {
    let chars: Vec<char> = line.chars().collect();
    let tok: Vec<char> = token.chars().collect();
    let mut hits = 0;
    let mut i = 0;
    while i + tok.len() <= chars.len() {
        if chars[i..i + tok.len()] == tok[..] {
            let before_ok = i == 0 || (!chars[i - 1].is_alphanumeric() && chars[i - 1] != '_');
            let after = chars.get(i + tok.len());
            let after_ok = after.is_none_or(|c| !c.is_alphanumeric() && *c != '_');
            if before_ok && after_ok {
                hits += 1;
                i += tok.len();
                continue;
            }
        }
        i += 1;
    }
    hits
}

/// Counts `.unwrap(` / `.expect(` call sites on a blanked line.
fn unwrap_hits(line: &str) -> usize {
    line.matches(".unwrap(").count() + line.matches(".expect(").count()
}

/// Whether the wall-clock lint applies to this file: simulator library
/// code plus non-bin experiment library code (timing belongs in binaries
/// and benches, and in the telemetry manifest writer which stamps runs).
fn wall_clock_in_scope(class: &FileClass, rel: &str) -> bool {
    if class.is_vendor
        || class.is_test_dir
        || class.is_bench
        || class.is_bin
        || class.is_example
        || class.is_build_script
        || class.crate_name == "nucache-audit"
        || class.crate_name == "nucache-bench"
    {
        return false;
    }
    !rel.ends_with("telemetry.rs")
}

/// Whether the lossy-cast lint applies: simulator library files whose
/// name marks them as counter/stat arithmetic.
fn cast_in_scope(class: &FileClass, rel: &str) -> bool {
    let stem = rel.rsplit('/').next().unwrap_or(rel);
    class.is_sim_lib()
        && ["stat", "monitor", "telemetry", "counter"].iter().any(|k| stem.contains(k))
}

/// Narrow integer types a lossy `as` cast is flagged for.
const NARROW: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32"];

/// Counts ` as <narrow>` casts on a blanked line.
fn lossy_cast_hits(line: &str) -> bool {
    let mut rest = line;
    while let Some(pos) = rest.find(" as ") {
        let after = rest[pos + 4..].trim_start();
        if NARROW.iter().any(|t| {
            after.starts_with(t)
                && after[t.len()..].chars().next().is_none_or(|c| !c.is_alphanumeric() && c != '_')
        }) {
            return true;
        }
        rest = &rest[pos + 4..];
    }
    false
}

/// Lints one file. `rel` is the workspace-relative path with forward
/// slashes. Returns all findings; allowlist handling for `unwrap-in-lib`
/// happens here too.
pub fn lint_file(rel: &str, source: &str, allowlist: &Allowlist) -> Vec<Diagnostic> {
    let class = classify(rel);
    let scanned = scan(source);
    let mut out = Vec::new();

    lint_iteration(rel, &class, &scanned, &mut out);
    lint_wall_clock(rel, &class, &scanned, &mut out);
    lint_forbid_unsafe(rel, &class, &scanned, &mut out);
    lint_lossy_cast(rel, &class, &scanned, &mut out);
    lint_unwrap(rel, &class, &scanned, allowlist, &mut out);
    out
}

fn lint_iteration(rel: &str, class: &FileClass, s: &ScannedFile, out: &mut Vec<Diagnostic>) {
    const LINT: &str = "nondeterministic-iteration";
    if !class.is_sim_lib() {
        return;
    }
    for (line_no, line) in s.lines() {
        if s.is_test_code(line_no) || s.is_suppressed(LINT, line_no) {
            continue;
        }
        for ty in ["HashMap", "HashSet"] {
            if token_hits(line, ty) > 0 {
                out.push(Diagnostic {
                    file: rel.to_string(),
                    line: line_no,
                    lint: LINT,
                    message: format!(
                        "bare `{ty}` in simulator library code; use BTreeMap/BTreeSet \
                         or justify with `// nucache-audit: allow({LINT}) -- reason`"
                    ),
                    severity: Severity::Error,
                });
            }
        }
    }
}

fn lint_wall_clock(rel: &str, class: &FileClass, s: &ScannedFile, out: &mut Vec<Diagnostic>) {
    const LINT: &str = "wall-clock-in-sim";
    if !wall_clock_in_scope(class, rel) {
        return;
    }
    for (line_no, line) in s.lines() {
        if s.is_test_code(line_no) || s.is_suppressed(LINT, line_no) {
            continue;
        }
        for ty in ["Instant", "SystemTime"] {
            if token_hits(line, ty) > 0 {
                out.push(Diagnostic {
                    file: rel.to_string(),
                    line: line_no,
                    lint: LINT,
                    message: format!(
                        "`{ty}` in simulator library code; wall time must not \
                         influence results — move timing to a binary or bench"
                    ),
                    severity: Severity::Error,
                });
            }
        }
    }
}

fn lint_forbid_unsafe(rel: &str, class: &FileClass, s: &ScannedFile, out: &mut Vec<Diagnostic>) {
    const LINT: &str = "forbid-unsafe-missing";
    // An `allow(unsafe_code)` anywhere (inner or outer attribute) carves
    // a hole in the workspace-wide forbid; ban it in every file.
    for (line_no, line) in s.lines() {
        if s.is_suppressed(LINT, line_no) {
            continue;
        }
        if line.replace(' ', "").contains("allow(unsafe_code)") {
            out.push(Diagnostic {
                file: rel.to_string(),
                line: line_no,
                lint: LINT,
                message: "`allow(unsafe_code)` weakens the workspace-wide forbid".to_string(),
                severity: Severity::Error,
            });
        }
    }
    if !class.is_crate_root || s.is_suppressed(LINT, 0) || s.is_suppressed(LINT, 1) {
        return;
    }
    let squashed: String = s.blanked.chars().filter(|c| !c.is_whitespace()).collect();
    if !squashed.contains("#![forbid(unsafe_code)]") {
        out.push(Diagnostic {
            file: rel.to_string(),
            line: 0,
            lint: LINT,
            message: "crate root is missing `#![forbid(unsafe_code)]`".to_string(),
            severity: Severity::Error,
        });
    }
}

/// Manifest half of `forbid-unsafe-missing`: the inline attribute only
/// covers the crate root's module tree, so every workspace crate must
/// also opt into the workspace lint table (which reaches bins, examples
/// and build scripts), and the root manifest must actually pin
/// `unsafe_code = "forbid"` there.
fn lint_unsafe_manifest_gaps(root: &Path) -> Vec<Diagnostic> {
    const LINT: &str = "forbid-unsafe-missing";
    let mut out = Vec::new();
    for (name, m) in &crate::manifest::Manifests::load(root).by_crate {
        if name == "root" {
            if !m.forbids_unsafe {
                out.push(Diagnostic {
                    file: "Cargo.toml".to_string(),
                    line: 0,
                    lint: LINT,
                    message: "workspace lint table must pin `unsafe_code = \"forbid\"`".to_string(),
                    severity: Severity::Error,
                });
            }
        } else if !m.lints_workspace {
            let dir = name.strip_prefix("nucache-").unwrap_or(name);
            out.push(Diagnostic {
                file: format!("crates/{dir}/Cargo.toml"),
                line: 0,
                lint: LINT,
                message: "crate must opt into the workspace lint table with \
                          `[lints] workspace = true` so `unsafe_code = \"forbid\"` \
                          reaches its bins and build scripts"
                    .to_string(),
                severity: Severity::Error,
            });
        }
    }
    out
}

fn lint_lossy_cast(rel: &str, class: &FileClass, s: &ScannedFile, out: &mut Vec<Diagnostic>) {
    const LINT: &str = "lossy-cast-in-counters";
    if !cast_in_scope(class, rel) {
        return;
    }
    for (line_no, line) in s.lines() {
        if s.is_test_code(line_no) || s.is_suppressed(LINT, line_no) {
            continue;
        }
        if lossy_cast_hits(line) {
            out.push(Diagnostic {
                file: rel.to_string(),
                line: line_no,
                lint: LINT,
                message: "truncating `as` cast in counter arithmetic; use `u64` \
                          or `try_into` with explicit handling"
                    .to_string(),
                severity: Severity::Error,
            });
        }
    }
}

fn lint_unwrap(
    rel: &str,
    class: &FileClass,
    s: &ScannedFile,
    allowlist: &Allowlist,
    out: &mut Vec<Diagnostic>,
) {
    const LINT: &str = "unwrap-in-lib";
    if !unwrap_in_scope(class) {
        return;
    }
    let count = unwrap_count(s);
    let permitted = allowlist.permitted(rel);
    if count > permitted {
        out.push(Diagnostic {
            file: rel.to_string(),
            line: 0,
            lint: LINT,
            message: format!(
                "{count} .unwrap()/.expect() call(s) in library code, allowlist \
                 permits {permitted}; handle the error or suppress at the site"
            ),
            severity: Severity::Error,
        });
    }
}

/// Whether a file's unwraps are policed: any non-vendor library code,
/// including the audit tool itself.
fn unwrap_in_scope(class: &FileClass) -> bool {
    !class.is_vendor
        && !class.is_test_dir
        && !class.is_bench
        && !class.is_bin
        && !class.is_example
        && !class.is_build_script
}

/// Counts unsuppressed `.unwrap()`/`.expect()` calls outside the test
/// region of an in-scope file.
fn unwrap_count(s: &ScannedFile) -> usize {
    s.lines()
        .filter(|(n, _)| !s.is_test_code(*n) && !s.is_suppressed("unwrap-in-lib", *n))
        .map(|(_, l)| unwrap_hits(l))
        .sum()
}

/// Runs every lint over every `.rs` file under `root`. Returns findings
/// sorted by (file, line, lint) — deterministic for CI diffing.
pub fn run_lints(root: &Path, allowlist: &Allowlist) -> std::io::Result<Vec<Diagnostic>> {
    let mut out = Vec::new();
    for path in collect_rs_files(root)? {
        let rel = rel_path(root, &path);
        let source = std::fs::read_to_string(&path)?;
        out.extend(lint_file(&rel, &source, allowlist));
    }
    out.extend(lint_unsafe_manifest_gaps(root));
    out.sort_by(|a, b| (&a.file, a.line, a.lint).cmp(&(&b.file, b.line, b.lint)));
    Ok(out)
}

/// Computes the current unwrap counts for every in-scope file — the
/// content `--update-allowlist` writes out.
pub fn current_unwrap_counts(root: &Path) -> std::io::Result<Allowlist> {
    let mut entries = BTreeMap::new();
    for path in collect_rs_files(root)? {
        let rel = rel_path(root, &path);
        let class = classify(&rel);
        if !unwrap_in_scope(&class) {
            continue;
        }
        let source = std::fs::read_to_string(&path)?;
        let count = unwrap_count(&scan(&source));
        if count > 0 {
            entries.insert(rel, count);
        }
    }
    Ok(Allowlist { entries })
}

/// Workspace-relative path with forward slashes.
fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(rel: &str, src: &str) -> Vec<Diagnostic> {
        lint_file(rel, src, &Allowlist::default())
    }

    fn names(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.lint).collect()
    }

    // --- nondeterministic-iteration ---

    #[test]
    fn iteration_fires_in_sim_lib() {
        let d = lint("crates/core/src/foo.rs", "use std::collections::HashMap;\n");
        assert_eq!(names(&d), ["nondeterministic-iteration"]);
        assert_eq!(d[0].line, 1);
    }

    #[test]
    fn iteration_clean_on_btree_and_out_of_scope() {
        assert!(lint("crates/core/src/foo.rs", "use std::collections::BTreeMap;\n").is_empty());
        // experiments crate and tests dirs are out of scope
        assert!(
            lint("crates/experiments/src/foo.rs", "use std::collections::HashMap;\n").is_empty()
        );
        assert!(lint("crates/core/tests/t.rs", "use std::collections::HashMap;\n").is_empty());
        // identifiers merely containing the token don't fire
        assert!(lint("crates/core/src/foo.rs", "struct MyHashMapLike;\n").is_empty());
    }

    #[test]
    fn iteration_suppressed_with_comment() {
        let src = "// nucache-audit: allow(nondeterministic-iteration) -- lookup only\n\
                   use std::collections::HashMap;\n";
        assert!(lint("crates/core/src/foo.rs", src).is_empty());
    }

    // --- wall-clock-in-sim ---

    #[test]
    fn wall_clock_fires_in_lib() {
        let d = lint("crates/sim/src/foo.rs", "let t = std::time::Instant::now();\n");
        assert_eq!(names(&d), ["wall-clock-in-sim"]);
    }

    #[test]
    fn wall_clock_clean_in_bins_and_telemetry() {
        let src = "let t = std::time::Instant::now();\n";
        assert!(lint("crates/experiments/src/bin/simulate.rs", src).is_empty());
        assert!(lint("crates/experiments/src/telemetry.rs", src).is_empty());
        assert!(lint("crates/bench/benches/nucache.rs", src).is_empty());
    }

    #[test]
    fn wall_clock_suppressed_with_comment() {
        let src = "// nucache-audit: allow(wall-clock-in-sim) -- banner only\n\
                   let t = std::time::Instant::now();\n";
        assert!(lint("crates/sim/src/foo.rs", src).is_empty());
    }

    // --- forbid-unsafe-missing ---

    #[test]
    fn forbid_unsafe_fires_on_bare_root() {
        let d = lint("crates/core/src/lib.rs", "pub mod llc;\n");
        assert_eq!(names(&d), ["forbid-unsafe-missing"]);
        assert_eq!(d[0].line, 0);
    }

    #[test]
    fn forbid_unsafe_clean_with_attribute_and_non_roots() {
        assert!(
            lint("crates/core/src/lib.rs", "#![forbid(unsafe_code)]\npub mod llc;\n").is_empty()
        );
        assert!(lint("crates/core/src/llc.rs", "pub struct NuCache;\n").is_empty());
    }

    #[test]
    fn forbid_unsafe_suppressed_file_wide() {
        let src = "// nucache-audit: allow-file(forbid-unsafe-missing)\npub mod llc;\n";
        assert!(lint("crates/core/src/lib.rs", src).is_empty());
    }

    #[test]
    fn forbid_unsafe_flags_allow_unsafe_code_anywhere() {
        let d = lint("crates/core/src/llc.rs", "#[allow(unsafe_code)]\nfn f() {}\n");
        assert_eq!(names(&d), ["forbid-unsafe-missing"]);
        assert_eq!(d[0].line, 1);
        // Inner attribute form and mentions inside comments.
        let d = lint("crates/core/src/llc.rs", "#![allow( unsafe_code )]\n");
        assert_eq!(names(&d), ["forbid-unsafe-missing"]);
        assert!(lint("crates/core/src/llc.rs", "// allow(unsafe_code) in prose\n").is_empty());
    }

    // --- lossy-cast-in-counters ---

    #[test]
    fn lossy_cast_fires_in_stat_files() {
        let d = lint("crates/common/src/stats.rs", "let x = self.hits as u32;\n");
        assert_eq!(names(&d), ["lossy-cast-in-counters"]);
    }

    #[test]
    fn lossy_cast_clean_on_widening_and_other_files() {
        assert!(lint("crates/common/src/stats.rs", "let x = self.hits as u64;\n").is_empty());
        assert!(lint("crates/common/src/stats.rs", "let x = self.hits as usize;\n").is_empty());
        // non-counter files are out of scope for this lint
        assert!(lint("crates/core/src/llc.rs", "let x = y as u32;\n").is_empty());
    }

    #[test]
    fn lossy_cast_suppressed_with_comment() {
        let src = "// nucache-audit: allow(lossy-cast-in-counters) -- bounded by geometry\n\
                   let x = self.hits as u32;\n";
        assert!(lint("crates/common/src/stats.rs", src).is_empty());
    }

    // --- unwrap-in-lib ---

    #[test]
    fn unwrap_fires_beyond_allowlist() {
        let d = lint("crates/core/src/foo.rs", "let x = maybe().unwrap();\n");
        assert_eq!(names(&d), ["unwrap-in-lib"]);
        assert!(d[0].message.contains("1 .unwrap()"));
    }

    #[test]
    fn unwrap_clean_within_allowlist_and_in_tests() {
        let mut allow = Allowlist::default();
        allow.entries.insert("crates/core/src/foo.rs".into(), 2);
        let src = "let x = a().unwrap();\nlet y = b().expect(\"b\");\n";
        assert!(lint_file("crates/core/src/foo.rs", src, &allow).is_empty());
        // one over budget fires
        let src3 = format!("{src}let z = c().unwrap();\n");
        assert_eq!(names(&lint_file("crates/core/src/foo.rs", &src3, &allow)), ["unwrap-in-lib"]);
        // test region never counts
        assert!(lint(
            "crates/core/src/foo.rs",
            "#[cfg(test)]\nmod t { fn f() { a().unwrap(); } }\n"
        )
        .is_empty());
    }

    #[test]
    fn unwrap_suppressed_at_site() {
        let src = "// nucache-audit: allow(unwrap-in-lib) -- poisoned lock is fatal anyway\n\
                   let g = lock.lock().unwrap();\n";
        assert!(lint("crates/core/src/foo.rs", src).is_empty());
    }

    // --- allowlist round-trip ---

    #[test]
    fn allowlist_parses_and_renders() {
        let a = Allowlist::parse("# header\n3 crates/core/src/llc.rs\n1 src/lib.rs\n")
            .expect("well-formed");
        assert_eq!(a.permitted("crates/core/src/llc.rs"), 3);
        assert_eq!(a.permitted("unknown.rs"), 0);
        let round = Allowlist::parse(&a.render()).expect("render must re-parse");
        assert_eq!(a, round);
        assert!(Allowlist::parse("not-a-count foo.rs\n").is_err());
    }
}
