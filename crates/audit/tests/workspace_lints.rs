//! Integration tests for the workspace-level semantic lints, driven by
//! the fixture mini-workspaces under `tests/fixtures/`.
//!
//! Each fixture is a tiny `crates/<name>/src/...` tree with known-good
//! and known-bad patterns for one lint; the walker skips `fixtures`
//! directories, so these files never leak into the real audit run.

use nucache_audit::diag::to_json;
use nucache_audit::semantic::run_semantic_lints;
use nucache_audit::{Baseline, Diagnostic, UseGraph, Workspace};
use std::path::PathBuf;

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests").join("fixtures").join(name)
}

fn lint_fixture(name: &str, baseline: &Baseline) -> Vec<Diagnostic> {
    let ws = Workspace::load(&fixture(name)).expect("load fixture");
    run_semantic_lints(&ws, baseline)
}

fn of_lint<'d>(diags: &'d [Diagnostic], lint: &str) -> Vec<&'d Diagnostic> {
    diags.iter().filter(|d| d.lint == lint).collect()
}

#[test]
fn clean_fixture_is_clean() {
    let baseline = Baseline::parse("nucache-app fn run\n");
    let diags = lint_fixture("clean", &baseline);
    assert!(diags.is_empty(), "expected clean, got: {diags:?}");
}

#[test]
fn counter_flow_fixture_flags_each_failure_mode() {
    let diags = lint_fixture("counter_flow", &Baseline::default());
    let findings = of_lint(&diags, "counter-dataflow");
    let messages: Vec<&str> = findings.iter().map(|d| d.message.as_str()).collect();
    assert!(
        messages.iter().any(|m| m.contains("write-only counter `EpochStats::misses`")),
        "missing write-only finding: {messages:?}"
    );
    assert!(
        messages.iter().any(|m| m.contains("read-only counter `EpochStats::stalls`")),
        "missing read-only finding: {messages:?}"
    );
    assert!(
        messages.iter().any(|m| m.contains("`LeakyStats` accumulates but has no reset path")),
        "missing reset-path finding: {messages:?}"
    );
    // `hits` flows correctly and `probes` is suppressed at the site.
    assert!(!messages.iter().any(|m| m.contains("hits") || m.contains("probes")));
    assert_eq!(findings.len(), 3, "exactly the three seeded defects: {messages:?}");
}

#[test]
fn doc_drift_fixture_flags_mismatch_missing_and_unfoldable() {
    let diags = lint_fixture("doc_drift", &Baseline::default());
    let messages: Vec<&str> =
        of_lint(&diags, "doc-constant-drift").iter().map(|d| d.message.as_str()).collect();
    assert_eq!(messages.len(), 3, "{messages:?}");
    assert!(messages.iter().any(|m| m.contains("`BAD_CONST` is 8") && m.contains("documents 9")));
    assert!(messages.iter().any(|m| m.contains("`MISSING_CONST`") && m.contains("no such const")));
    assert!(messages.iter().any(|m| m.contains("`OPAQUE_CONST`") && m.contains("cannot evaluate")));
    // The matching row is silent.
    assert!(!messages.iter().any(|m| m.contains("GOOD_CONST")));
}

#[test]
fn cfg_gates_fixture_flags_only_ungated_references() {
    let diags = lint_fixture("cfg_gates", &Baseline::default());
    let findings = of_lint(&diags, "cfg-gate-consistency");
    assert_eq!(findings.len(), 3, "{findings:?}");
    let invariant_findings: Vec<_> =
        findings.iter().filter(|d| d.message.contains("debug_invariants")).collect();
    assert_eq!(invariant_findings.len(), 2, "{findings:?}");
    for d in &invariant_findings {
        // Both bad references sit inside the ungated `run`.
        assert!(d.file.ends_with("core/src/lib.rs"), "{d:?}");
        assert!(d.line >= 25, "finding above the ungated fn: {d:?}");
    }
    // `std` is a default feature of the declaring crate: the ungated
    // cross-crate reference is flagged only where the referencing crate
    // turns the defaults off. The same reference in `app` (defaults
    // kept) and in `core/src/hosted.rs` (gate inherited from the `mod`
    // declaration) must stay silent.
    let std_findings: Vec<_> =
        findings.iter().filter(|d| d.message.contains("hosted_helper")).collect();
    assert_eq!(std_findings.len(), 1, "{findings:?}");
    assert!(std_findings[0].file.ends_with("nostd/src/lib.rs"), "{findings:?}");
}

#[test]
fn dead_pub_fixture_respects_baseline() {
    // Without a baseline: both `unused` and the fixture's entry point.
    let diags = lint_fixture("dead_pub", &Baseline::default());
    let all: Vec<String> =
        of_lint(&diags, "dead-cross-crate-pub").iter().map(|d| d.message.clone()).collect();
    assert!(all.iter().any(|m| m.contains("nucache-a fn unused")), "{all:?}");
    assert!(all.iter().any(|m| m.contains("nucache-b fn caller")), "{all:?}");
    assert!(!all.iter().any(|m| m.contains("fn used")), "{all:?}");

    // Baselining `caller` leaves exactly the genuine corpse.
    let baseline = Baseline::parse("# fixture entry point\nnucache-b fn caller\n");
    let diags = lint_fixture("dead_pub", &baseline);
    let left = of_lint(&diags, "dead-cross-crate-pub");
    assert_eq!(left.len(), 1, "{left:?}");
    assert!(left[0].message.contains("nucache-a fn unused"));
}

#[test]
fn json_output_is_byte_identical_across_runs() {
    let run = || {
        let ws = Workspace::load(&fixture("doc_drift")).expect("load");
        let diags = run_semantic_lints(&ws, &Baseline::default());
        (to_json(&diags), UseGraph::build(&ws).render_json())
    };
    let (lint1, graph1) = run();
    let (lint2, graph2) = run();
    assert_eq!(lint1, lint2, "lint JSON must be deterministic");
    assert_eq!(graph1, graph2, "graph JSON must be deterministic");
    // 3 doc-drift findings plus the fixture's 3 unreferenced pub consts.
    assert!(lint1.contains("\"violations\": 6"), "{lint1}");
}

#[test]
fn real_workspace_loads_and_renders_deterministically() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("..").join("..");
    let ws1 = Workspace::load(&root).expect("load workspace");
    let ws2 = Workspace::load(&root).expect("load workspace");
    let g1 = UseGraph::build(&ws1).render_json();
    let g2 = UseGraph::build(&ws2).render_json();
    assert_eq!(g1, g2);
    // The simulator genuinely crosses crates; spot-check a known edge.
    assert!(
        g1.contains("\"from\": \"nucache-sim\", \"to\": \"nucache-core\""),
        "expected a sim -> core edge in:\n{g1}"
    );
}
