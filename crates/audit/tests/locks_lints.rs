//! Integration tests for the concurrency lints, driven by the
//! `tests/fixtures/locks` mini-workspace: an AB/BA ordering cycle, a
//! direct and an interprocedural double-lock, a guard escaping an
//! annotated hot path, and an unpaired Relaxed/Acquire atomic mix —
//! plus one drop-disciplined control function that must stay clean.

use nucache_audit::{
    run_atomic_lints, run_lock_lints, Diagnostic, EffectModel, Justifications, Workspace,
};
use std::path::PathBuf;

fn fixture_ws() -> Workspace {
    let root =
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests").join("fixtures").join("locks");
    Workspace::load(&root).expect("load locks fixture")
}

fn run_locks(just: &Justifications) -> Vec<Diagnostic> {
    let ws = fixture_ws();
    let model = EffectModel::build(&ws);
    run_lock_lints(&ws, &model, just).0
}

fn run_atomics(just: &Justifications) -> Vec<Diagnostic> {
    let ws = fixture_ws();
    let model = EffectModel::build(&ws);
    run_atomic_lints(&ws, &model, just).0
}

fn of_lint<'d>(diags: &'d [Diagnostic], lint: &str) -> Vec<&'d Diagnostic> {
    diags.iter().filter(|d| d.lint == lint).collect()
}

/// A ledger that excuses every seeded finding in the fixture.
fn full_ledger() -> Justifications {
    let text = "\
        double-lock nucache-locky Pair::twice field:Pair.a -- fixture tolerates it\n\
        double-lock nucache-locky Pair::reenter field:Pair.a -- fixture tolerates it\n\
        lock-order-cycle nucache-locky Pair::ab field:Pair.a->field:Pair.b -- fixture tolerates it\n\
        lock-order-cycle nucache-locky Pair::ba field:Pair.b->field:Pair.a -- fixture tolerates it\n\
        guard-escapes-hot-path nucache-locky Pair::peek field:Pair.a -- fixture tolerates it\n\
        atomic-ordering nucache-locky Pair::publish field:Pair.c:store:Relaxed -- fixture tolerates it\n\
        atomic-ordering nucache-locky Pair::consume field:Pair.c:load:Acquire -- fixture tolerates it\n\
        atomic-ordering nucache-locky Pair::publish field:Pair.c:mixed -- fixture tolerates it\n";
    let (just, errs) = Justifications::parse(text);
    assert!(errs.is_empty(), "{errs:?}");
    just
}

#[test]
fn unjustified_fixture_reports_every_seeded_breach() {
    let diags = run_locks(&Justifications::default());
    let msgs: Vec<&str> = diags.iter().map(|d| d.message.as_str()).collect();

    let doubles = of_lint(&diags, "double-lock");
    assert!(
        doubles.iter().any(|d| d.message.contains("`Pair::twice` re-acquires `field:Pair.a`")),
        "direct double-lock must be flagged: {msgs:?}"
    );
    assert!(
        doubles.iter().any(|d| d.message.contains("`Pair::reenter` re-acquires `field:Pair.a`")),
        "interprocedural double-lock through take_a must be flagged: {msgs:?}"
    );

    let cycles = of_lint(&diags, "lock-order-cycle");
    assert!(
        cycles.iter().any(|d| d.message.contains("`field:Pair.a` then `field:Pair.b`")),
        "A->B half of the cycle must be flagged: {msgs:?}"
    );
    assert!(
        cycles.iter().any(|d| d.message.contains("`field:Pair.b` then `field:Pair.a`")),
        "B->A half of the cycle must be flagged: {msgs:?}"
    );

    let escapes = of_lint(&diags, "guard-escapes-hot-path");
    assert!(
        escapes.iter().any(|d| d.message.contains("Pair::peek")),
        "hot-path guard escape must be flagged: {msgs:?}"
    );

    assert!(
        !msgs.iter().any(|m| m.contains("good")),
        "the drop-disciplined control must stay clean: {msgs:?}"
    );
}

#[test]
fn unjustified_atomics_report_every_seeded_ordering() {
    let diags = run_atomics(&Justifications::default());
    let msgs: Vec<&str> = diags.iter().map(|d| d.message.as_str()).collect();
    assert!(
        msgs.iter().any(|m| m.contains("`store(Relaxed)` on `field:Pair.c`")),
        "Relaxed store must be flagged: {msgs:?}"
    );
    assert!(
        msgs.iter().any(|m| m.contains("`load(Acquire)` on `field:Pair.c`")),
        "Acquire load must be flagged: {msgs:?}"
    );
    assert!(
        msgs.iter()
            .any(|m| m.contains("mixes orderings")
                && m.contains("without an acquire/release pairing")),
        "unpaired ordering mix must be flagged: {msgs:?}"
    );
}

#[test]
fn full_ledger_suppresses_everything() {
    let just = full_ledger();
    let lock_diags = run_locks(&just);
    let atomic_diags = run_atomics(&just);
    assert!(lock_diags.is_empty(), "{lock_diags:?}");
    assert!(atomic_diags.is_empty(), "{atomic_diags:?}");
}

#[test]
fn stale_entry_is_flagged_while_real_findings_persist() {
    let mut just = Justifications::default();
    just.entries.extend(
        Justifications::parse(
            "double-lock nucache-locky Pair::good field:Pair.b -- nothing requires this\n",
        )
        .0
        .entries,
    );
    let diags = run_locks(&just);
    assert!(
        diags
            .iter()
            .any(|d| d.message.contains("stale ledger entry") && d.message.contains("Pair::good")),
        "the unused entry must be reported stale: {diags:?}"
    );
    assert!(
        diags.iter().any(|d| d.message.contains("`Pair::twice` re-acquires")),
        "a stale entry must not mask real findings: {diags:?}"
    );
}

#[test]
fn ledgering_one_finding_leaves_the_others() {
    let mut just = Justifications::default();
    just.entries.extend(
        Justifications::parse(
            "double-lock nucache-locky Pair::twice field:Pair.a -- fixture tolerates it\n",
        )
        .0
        .entries,
    );
    let diags = run_locks(&just);
    assert!(
        !diags.iter().any(|d| d.message.contains("`Pair::twice` re-acquires")),
        "the ledgered double-lock must be suppressed: {diags:?}"
    );
    assert!(
        !diags.iter().any(|d| d.message.contains("stale ledger entry")),
        "a used entry is not stale: {diags:?}"
    );
    assert!(
        of_lint(&diags, "lock-order-cycle").len() == 2,
        "both cycle edges must survive: {diags:?}"
    );
}

#[test]
fn unedited_update_justify_stubs_are_hard_findings() {
    // Degrade one lock entry and one atomic entry back to the scaffold
    // reason `--update-justify` writes. Both still cover their findings
    // (the original lints stay suppressed), but each must surface as a
    // `stub-justification` error so the gate cannot pass on placeholders.
    let mut just = full_ledger();
    for e in &mut just.entries {
        if e.func == "Pair::twice" || (e.lint == "atomic-ordering" && e.func == "Pair::consume") {
            e.reason = nucache_audit::STUB_REASON.to_string();
        }
    }

    let lock_diags = run_locks(&just);
    let lock_stubs = of_lint(&lock_diags, "stub-justification");
    assert!(
        lock_stubs.iter().any(|d| d.message.contains("Pair::twice")
            && d.message.contains("write a real justification")),
        "{lock_diags:?}"
    );
    assert!(
        !lock_diags.iter().any(|d| d.message.contains("`Pair::twice` re-acquires")),
        "a stubbed entry still covers — the original lint stays suppressed: {lock_diags:?}"
    );

    let atomic_diags = run_atomics(&just);
    let atomic_stubs = of_lint(&atomic_diags, "stub-justification");
    assert!(
        atomic_stubs.iter().any(|d| d.message.contains("Pair::consume")
            && d.message.contains("field:Pair.c:load:Acquire")),
        "{atomic_diags:?}"
    );
    assert!(
        !atomic_diags.iter().any(|d| d.message.contains("`load(Acquire)` on `field:Pair.c`")),
        "{atomic_diags:?}"
    );
}

#[test]
fn findings_are_deterministic() {
    let first = run_locks(&Justifications::default());
    let second = run_locks(&Justifications::default());
    assert_eq!(first, second);
    let a1 = run_atomics(&Justifications::default());
    let a2 = run_atomics(&Justifications::default());
    assert_eq!(a1, a2);
}
