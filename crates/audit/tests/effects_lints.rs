//! Integration tests for the flow-aware effect lints, driven by the
//! `tests/fixtures/hotpath` mini-workspace: one `audit:hot-path` root
//! with a deliberately seeded `Vec::push`, a justified indexing panic,
//! a whole-function allocation boundary, and a lock-discipline pair.

use nucache_audit::{run_effect_lints, Diagnostic, EffectModel, Justifications, Workspace};
use std::path::PathBuf;

fn fixture_ws() -> Workspace {
    let root =
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests").join("fixtures").join("hotpath");
    Workspace::load(&root).expect("load hotpath fixture")
}

fn run(just: &Justifications) -> Vec<Diagnostic> {
    let ws = fixture_ws();
    let model = EffectModel::build(&ws);
    run_effect_lints(&ws, &model, just).0
}

fn of_lint<'d>(diags: &'d [Diagnostic], lint: &str) -> Vec<&'d Diagnostic> {
    diags.iter().filter(|d| d.lint == lint).collect()
}

/// The ledger that excuses everything excusable in the fixture. The
/// seeded `record` push is deliberately *not* excusable: an allocation
/// without a site annotation is flagged even when a ledger line exists.
fn full_ledger() -> Justifications {
    let text = "\
        alloc-in-hot-path nucache-engine Engine::epoch fn -- epoch scratch, amortized\n\
        panic-in-hot-path nucache-engine Engine::locate index -- addr is reduced mod 7, slots holds 7 entries\n\
        lock-held-across-call nucache-engine Shared::absorb push -- fixture tolerates the bad pattern\n";
    let (just, errs) = Justifications::parse(text);
    assert!(errs.is_empty(), "{errs:?}");
    just
}

#[test]
fn seeded_push_is_caught_even_with_a_ledger_entry() {
    let mut just = full_ledger();
    just.entries.push(
        Justifications::parse(
            "alloc-in-hot-path nucache-engine Engine::record push -- trying to excuse it\n",
        )
        .0
        .entries
        .remove(0),
    );
    let diags = run(&just);
    let alloc = of_lint(&diags, "alloc-in-hot-path");
    assert!(
        alloc.iter().any(|d| d.message.contains("`Engine::record` allocates (`push`)")),
        "seeded Vec::push must be flagged: {alloc:?}"
    );
}

#[test]
fn unjustified_fixture_reports_every_contract_breach() {
    let diags = run(&Justifications::default());
    let msgs: Vec<&str> = diags.iter().map(|d| d.message.as_str()).collect();
    // Seeded alloc on the hot path.
    assert!(msgs.iter().any(|m| m.contains("`Engine::record` allocates (`push`)")), "{msgs:?}");
    // Boundary fn must be in the ledger.
    assert!(
        msgs.iter().any(|m| m.contains("`Engine::epoch` is an audit:allow-alloc boundary")),
        "{msgs:?}"
    );
    // Panic source reachable from the root.
    assert!(msgs.iter().any(|m| m.contains("`Engine::locate` may panic (`index`)")), "{msgs:?}");
    // Guard live across an allocating call; the drop-disciplined twin is clean.
    assert!(
        msgs.iter().any(|m| m.contains("`Shared::absorb` holds guard `cells` across `push`")),
        "{msgs:?}"
    );
    assert!(!msgs.iter().any(|m| m.contains("read_one")), "read_one is clean: {msgs:?}");
}

#[test]
fn fully_justified_fixture_reports_only_the_seeded_push() {
    let diags = run(&full_ledger());
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].lint, "alloc-in-hot-path");
    assert!(diags[0].message.contains("`Engine::record` allocates (`push`)"), "{diags:?}");
}

#[test]
fn stale_ledger_entries_are_flagged() {
    let mut just = full_ledger();
    just.entries.push(
        Justifications::parse(
            "panic-in-hot-path nucache-engine Engine::gone index -- excuses nothing\n",
        )
        .0
        .entries
        .remove(0),
    );
    let diags = run(&just);
    assert!(
        diags.iter().any(|d| d.message.contains("stale ledger entry")
            && d.message.contains("Engine::gone")),
        "{diags:?}"
    );
}

#[test]
fn unedited_update_justify_stub_is_a_hard_finding() {
    let mut just = full_ledger();
    // Degrade a real justification back to the scaffold `--update-justify`
    // writes: the entry still *covers* the finding, so without the stub
    // lint the gate would silently pass on placeholder text.
    let locate = just
        .entries
        .iter_mut()
        .find(|e| e.func == "Engine::locate")
        .expect("fixture ledger has the locate entry");
    locate.reason = nucache_audit::STUB_REASON.to_string();
    let diags = run(&just);
    let stubs = of_lint(&diags, "stub-justification");
    assert!(
        stubs.iter().any(|d| d.message.contains("Engine::locate")
            && d.message.contains("write a real justification")),
        "{diags:?}"
    );
    // The stubbed entry must not ALSO count as missing: the original
    // lint stays suppressed (only the seeded push and the stub remain).
    assert!(!of_lint(&diags, "panic-in-hot-path")
        .iter()
        .any(|d| d.message.contains("Engine::locate")));
}

#[test]
fn findings_are_deterministic() {
    let a = run(&Justifications::default());
    let b = run(&Justifications::default());
    let key = |d: &Diagnostic| (d.file.clone(), d.line, d.lint, d.message.clone());
    assert_eq!(a.iter().map(key).collect::<Vec<_>>(), b.iter().map(key).collect::<Vec<_>>());
}
