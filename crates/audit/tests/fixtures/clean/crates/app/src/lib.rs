//! Consumes everything `common` exports, so nothing is dead.

use nucache_common::stats::{CoreStats, EPOCH_LEN};

/// Runs one epoch and reads the counters back.
pub fn run() -> u64 {
    let mut s = CoreStats::default();
    s.record();
    s.hits + EPOCH_LEN
}
