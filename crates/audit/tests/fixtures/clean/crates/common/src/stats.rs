//! Known-good counter wiring: incremented, read, resettable, documented.

/// Epoch length bound by the fixture's DESIGN.md table.
pub const EPOCH_LEN: u64 = 100;

/// Counters with a derive(Default) reset path.
#[derive(Default)]
pub struct CoreStats {
    /// Hits: incremented in `record`, read in `app::run`.
    pub hits: u64,
}

impl CoreStats {
    /// Increments the hit counter.
    pub fn record(&mut self) {
        self.hits += 1;
    }
}
