//! Consumes part of crate `a`; its own entry point is baselined.

/// Baselined in the test: nothing in the fixture calls it.
pub fn caller() -> u64 {
    nucache_a::used()
}
