//! One referenced pub, one dead pub.

/// Referenced from crate `b`.
pub fn used() -> u64 {
    7
}

/// Never referenced outside this crate.
pub fn unused() -> u64 {
    8
}
