//! Known-bad counter dataflow, one failure mode per field.

/// Counters with a reset path but broken flows.
#[derive(Default)]
pub struct EpochStats {
    /// Good: incremented in `tick`, read in `report`.
    pub hits: u64,
    /// Bad: incremented but never read anywhere.
    pub misses: u64,
    /// Bad: read in `report` but never written.
    pub stalls: u64,
    /// Write-only like `misses`, but suppressed at the site.
    // nucache-audit: allow(counter-dataflow) -- exported via debugger only
    pub probes: u64,
}

impl EpochStats {
    /// Advances the counters.
    pub fn tick(&mut self) {
        self.hits += 1;
        self.misses += 1;
        self.probes += 1;
    }

    /// Reads some counters back.
    pub fn report(&self) -> u64 {
        self.hits + self.stalls
    }
}

/// Bad: accumulates but has no Default/clear/reset path and is never
/// freshly constructed.
pub struct LeakyStats {
    /// Incremented and read, so the field itself is fine.
    pub fills: u64,
}

impl LeakyStats {
    /// Increments.
    pub fn bump(&mut self) {
        self.fills += 1;
    }

    /// Reads.
    pub fn total(&self) -> u64 {
        self.fills
    }
}
