//! Constants for the doc-drift fixture.

/// Matches the DESIGN.md table.
pub const GOOD_CONST: u64 = 8;

/// DESIGN.md documents 9 for this one.
pub const BAD_CONST: u64 = 8;

/// Initializer the mini-evaluator cannot fold.
pub const OPAQUE_CONST: u64 = GOOD_CONST / 2;
