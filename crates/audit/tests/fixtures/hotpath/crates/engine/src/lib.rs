//! Hot-path effect-lint fixture: one annotated root (`serve`) with a
//! deliberately seeded allocation (`record`'s bare `Vec::push`), a
//! justified panic source (`locate`'s indexing), an allocation boundary
//! (`epoch`), and a lock-discipline pair (`absorb` bad, `read_one` good).
#![forbid(unsafe_code)]

use std::sync::Mutex;

/// A toy cache engine whose `serve` path mirrors the kernel contract.
pub struct Engine {
    slots: Vec<u64>,
    log: Vec<u64>,
}

impl Engine {
    // audit:hot-path
    /// The hot path: look up a slot, record the hit, occasionally run
    /// the epoch boundary.
    pub fn serve(&mut self, addr: u64) -> u64 {
        let v = self.locate(addr);
        self.record(v);
        if v == 0 {
            self.epoch();
        }
        v
    }

    /// Indexing panic source, reachable from the hot-path root.
    fn locate(&self, addr: u64) -> u64 {
        self.slots[(addr % 7) as usize]
    }

    /// SEEDED VIOLATION: an un-annotated allocation on the hot path.
    fn record(&mut self, v: u64) {
        self.log.push(v);
    }

    // audit:allow-alloc(epoch scratch, amortized over the window)
    /// Whole-function allocation boundary: not traversed into, but must
    /// itself be in the ledger.
    fn epoch(&mut self) -> Vec<u64> {
        self.log.clone()
    }
}

/// Lock-discipline half of the fixture.
pub struct Shared {
    cells: Mutex<Vec<u64>>,
}

impl Shared {
    /// BAD: the guard is live across an allocating call.
    pub fn absorb(&self, v: u64) {
        let mut cells = self.cells.lock().unwrap();
        cells.push(v);
    }

    /// GOOD: the guard is read, explicitly dropped, then the allocation
    /// happens lock-free.
    pub fn read_one(&self) -> Vec<u64> {
        let cells = self.cells.lock().unwrap();
        let v = cells[0];
        drop(cells);
        vec![v]
    }
}
