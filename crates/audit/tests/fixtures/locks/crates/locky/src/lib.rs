//! Lock-discipline fixture: two mutexes and an atomic exercised in
//! every forbidden pattern — an AB/BA ordering cycle (`ab`/`ba`), a
//! self-deadlock (`twice`), an interprocedural re-acquisition
//! (`reenter` through `take_a`), an interprocedural ordering edge
//! (`outer` through `take_b`), a guard escaping an annotated hot path
//! (`peek`), and an unpaired Relaxed/Acquire mix on the atomic
//! (`publish`/`consume`). `good` is the drop-disciplined control: it
//! must stay invisible to every lint.
#![forbid(unsafe_code)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard};

/// Two locks and an atomic, shared by every seeded pattern.
pub struct Pair {
    a: Mutex<u64>,
    b: Mutex<u64>,
    c: AtomicUsize,
}

impl Pair {
    /// A then B: one half of the seeded ordering cycle.
    pub fn ab(&self) -> u64 {
        let ga = self.a.lock().unwrap();
        let gb = self.b.lock().unwrap();
        *ga + *gb
    }

    /// B then A: the other half of the cycle.
    pub fn ba(&self) -> u64 {
        let gb = self.b.lock().unwrap();
        let ga = self.a.lock().unwrap();
        *ga + *gb
    }

    /// Seeded self-deadlock: re-locks `a` while the first guard lives.
    pub fn twice(&self) -> u64 {
        let g = self.a.lock().unwrap();
        let h = self.a.lock().unwrap();
        *g + *h
    }

    /// Interprocedural self-deadlock: the re-acquisition hides in a
    /// callee.
    pub fn reenter(&self) -> u64 {
        let g = self.a.lock().unwrap();
        *g + self.take_a()
    }

    fn take_a(&self) -> u64 {
        *self.a.lock().unwrap()
    }

    /// Interprocedural ordering edge: holds `a`, takes `b` in a callee.
    pub fn outer(&self) -> u64 {
        let g = self.a.lock().unwrap();
        *g + self.take_b()
    }

    fn take_b(&self) -> u64 {
        *self.b.lock().unwrap()
    }

    // audit:hot-path
    /// Guard-getter on the annotated hot path: the guard escapes.
    pub fn peek(&self) -> MutexGuard<'_, u64> {
        self.a.lock().unwrap()
    }

    /// Drop-disciplined control: releases `a` before touching `b`.
    pub fn good(&self) -> u64 {
        let g = self.a.lock().unwrap();
        let v = *g;
        drop(g);
        let h = self.b.lock().unwrap();
        v + *h
    }

    /// Relaxed publish read by an Acquire load and never released:
    /// the unpaired half of the seeded ordering mix.
    pub fn publish(&self, v: usize) {
        self.c.store(v, Ordering::Relaxed);
    }

    /// The consuming side of the unpaired mix.
    pub fn consume(&self) -> usize {
        self.c.load(Ordering::Acquire)
    }
}
