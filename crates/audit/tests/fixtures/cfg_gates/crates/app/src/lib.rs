//! Downstream crate keeping core's default features.

/// Cross-crate ungated reference, fine: `std` is a default feature of
/// the declaring crate and this crate keeps the defaults, so Cargo
/// enables the gate in every build of this crate.
pub fn call() -> u64 {
    nucache_core::hosted_helper()
}
