//! Whole file sits under `std` via its `mod` declaration in lib.rs.

/// Ungated reference, fine: the `mod hosted;` line carries the gate.
pub fn wrapper() -> u64 {
    crate::hosted_helper()
}
