//! Known-bad feature gating: gated items referenced from ungated code.

/// Gated oracle state.
#[cfg(feature = "debug_invariants")]
pub struct Oracle {
    /// Divergence count.
    pub checks: u64,
}

/// Gated hook, fine to reference from other gated code.
#[cfg(feature = "debug_invariants")]
pub fn verify(o: &Oracle) -> u64 {
    o.checks
}

/// Properly gated call site: no finding.
#[cfg(feature = "debug_invariants")]
pub fn audited_run() -> u64 {
    let o = Oracle { checks: 0 };
    verify(&o)
}

/// Ungated call site: both references are findings.
pub fn run() -> u64 {
    let o = Oracle { checks: 0 };
    verify(&o)
}

/// Hosted helper, on by default via the `std` feature.
#[cfg(feature = "std")]
pub fn hosted_helper() -> u64 {
    1
}

/// Gated module: its file inherits the gate from this declaration.
#[cfg(feature = "std")]
pub mod hosted;
