//! Downstream crate that disables core's defaults: references to
//! `std`-gated items must carry the gate here.

/// Ungated reference with defaults off: finding.
pub fn broken() -> u64 {
    nucache_core::hosted_helper()
}
