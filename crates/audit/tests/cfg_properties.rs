//! Property tests for the CFG builder: random but syntactically
//! well-formed function bodies — nested closures, `match` guards, the
//! `?` operator, loops with `break` values, early returns — must always
//! yield a CFG where every block is reachable from the entry, the
//! synthetic exit is the only block without successors, and statement
//! token ranges stay inside the scanned body.

use nucache_audit::lexer::scan;
use nucache_audit::symbols::tokenize;
use nucache_audit::{build_cfg, fn_spans, Cfg};
use proptest::prelude::*;

/// Renders one statement for opcode `op`, recursing into `rest` for
/// nested bodies. Depth is bounded by the opcode vector length.
fn render_stmt(op: u8, rest: &[u8], depth: usize, out: &mut String) {
    let pad = "    ".repeat(depth + 1);
    match op % 8 {
        0 => out.push_str(&format!("{pad}let a{depth} = x.checked_add({op} as u64)?;\n")),
        1 => {
            out.push_str(&format!("{pad}if x > {op} {{\n"));
            render_body(rest, depth + 1, out);
            out.push_str(&format!("{pad}}} else {{\n{pad}    x += 1;\n{pad}}}\n"));
        }
        2 => {
            out.push_str(&format!(
                "{pad}match x {{\n\
                 {pad}    0 => {{ x += 1; }}\n\
                 {pad}    n if n > {op} => {{\n"
            ));
            render_body(rest, depth + 2, out);
            out.push_str(&format!("{pad}    }}\n{pad}    _ => {{ x -= 1; }}\n{pad}}}\n"));
        }
        3 => {
            out.push_str(&format!(
                "{pad}let b{depth} = loop {{\n\
                 {pad}    if x > {op} {{ break x; }}\n"
            ));
            render_body(rest, depth + 1, out);
            out.push_str(&format!("{pad}    x += 1;\n{pad}}};\n{pad}x += b{depth};\n"));
        }
        4 => {
            out.push_str(&format!("{pad}while x < {op} {{\n"));
            render_body(rest, depth + 1, out);
            out.push_str(&format!("{pad}    x += 1;\n{pad}}}\n"));
        }
        5 => {
            out.push_str(&format!("{pad}let f{depth} = |y: u64| {{\n"));
            render_body(rest, depth + 1, out);
            out.push_str(&format!("{pad}    y + 1\n{pad}}};\n{pad}x = f{depth}(x);\n"));
        }
        6 => out.push_str(&format!("{pad}if x == {op} {{ return Some(x); }}\n")),
        _ => {
            out.push_str(&format!("{pad}for i in 0..{op} {{\n"));
            out.push_str(&format!("{pad}    if i == 2 {{ continue; }}\n"));
            render_body(rest, depth + 1, out);
            out.push_str(&format!("{pad}}}\n"));
        }
    }
}

/// Renders a statement list: the first opcode becomes this level's
/// construct, the tail feeds its nested body (so deep vectors nest).
fn render_body(ops: &[u8], depth: usize, out: &mut String) {
    if depth > 6 {
        return;
    }
    match ops.split_first() {
        Some((&op, rest)) => {
            let (inner, tail) = rest.split_at(rest.len() / 2);
            render_stmt(op, inner, depth, out);
            for &t in tail {
                render_stmt(t.wrapping_add(1), &[], depth, out);
            }
        }
        None => out.push_str(&format!("{}x += 1;\n", "    ".repeat(depth + 1))),
    }
}

/// Wraps the generated statements into a full source file.
fn render_fn(ops: &[u8]) -> String {
    let mut body = String::new();
    render_body(ops, 0, &mut body);
    format!("fn generated(mut x: u64) -> Option<u64> {{\n{body}    Some(x)\n}}\n")
}

/// Builds the CFG of the single function in `src`.
fn cfg_of(src: &str) -> Cfg {
    let scanned = scan(src);
    let tokens = tokenize(&scanned.blanked);
    let spans = fn_spans(&tokens);
    assert_eq!(spans.len(), 1, "exactly one fn in:\n{src}");
    assert!(!spans[0].body.is_empty(), "non-empty body in:\n{src}");
    build_cfg(&tokens, spans[0].body.clone())
}

/// The structural invariants every generated body must satisfy.
fn check_invariants(src: &str) {
    let cfg = cfg_of(src);
    prop_assert_connected(&cfg, src);
    for (i, block) in cfg.blocks.iter().enumerate() {
        for &s in &block.succs {
            assert!(s < cfg.blocks.len(), "succ {s} out of range in:\n{src}");
        }
        if block.succs.is_empty() {
            assert_eq!(i, cfg.exit, "only the exit lacks successors in:\n{src}");
        }
    }
    assert!(cfg.blocks[cfg.exit].stmts.is_empty(), "exit holds no statements");
    assert!(cfg.reachable_from(cfg.entry)[cfg.exit], "exit unreachable in:\n{src}");
}

fn prop_assert_connected(cfg: &Cfg, src: &str) {
    assert!(cfg.all_reachable(), "disconnected CFG for:\n{src}\n{cfg:?}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Random nesting of all eight constructs keeps the CFG connected
    /// with a single exit.
    #[test]
    fn random_bodies_yield_connected_single_exit_cfgs(
        ops in prop::collection::vec(any::<u8>(), 1..12)
    ) {
        check_invariants(&render_fn(&ops));
    }

    /// The builder is deterministic: identical input, identical CFG.
    #[test]
    fn cfg_builder_is_deterministic(ops in prop::collection::vec(any::<u8>(), 1..10)) {
        let src = render_fn(&ops);
        prop_assert_eq!(cfg_of(&src), cfg_of(&src));
    }
}

/// Directed edge cases the fuzz loop may hit rarely: each named lexer
/// hazard from the issue checklist, pinned so regressions name the
/// construct that broke.
#[test]
fn directed_edge_cases() {
    for (label, body) in [
        ("nested closures", "let f = |a: u64| { let g = |b: u64| b + 1; g(a) }; x = f(x);"),
        ("match guard", "match x { n if n > 3 => x += 1, _ => x -= 1, }"),
        ("question mark", "let y = x.checked_mul(2)?; x = y;"),
        ("loop break value", "let v = loop { if x > 1 { break x * 2; } x += 1; }; x = v;"),
        ("labeled break", "'outer: loop { loop { break 'outer; } }"),
        ("early return", "if x == 0 { return None; }"),
        ("nested match in loop", "while x < 9 { match x { 0 => break, _ => x += 1, } }"),
    ] {
        let src =
            format!("fn generated(mut x: u64) -> Option<u64> {{\n    {body}\n    Some(x)\n}}\n");
        let cfg = cfg_of(&src);
        assert!(cfg.all_reachable(), "{label}: disconnected CFG:\n{src}\n{cfg:?}");
        for (i, block) in cfg.blocks.iter().enumerate() {
            assert!(
                !block.succs.is_empty() || i == cfg.exit,
                "{label}: dead-end block {i}:\n{src}\n{cfg:?}"
            );
        }
        assert!(cfg.reachable_from(cfg.entry)[cfg.exit], "{label}: exit unreachable");
    }
}
