//! Bit-for-bit equivalence of the kernel-backed [`NuCache`] against the
//! pre-refactor, `SetArray`-based implementation.
//!
//! The `legacy` module below is the NUcache LLC exactly as it existed
//! before the mechanism was extracted into `nucache-kernel` (telemetry
//! and audit trimmed — those never affect simulation results, which the
//! in-crate `audited_run_checks_epochs_and_matches_unaudited` test
//! pins). It shares the monitor/tracker/selector components with the
//! kernel — those moved verbatim and carry their own unit tests — so
//! what this suite pins is the part that was *rewritten*: the kernel's
//! tag/valid/entry arrays, the MainWays LRU and DeliWays FIFO
//! replacement, hit promotion, epoch ticking and the decay sequencing.
//!
//! Every access must produce the identical outcome (hit/miss and the
//! exact evicted line, dirty bit and all), and every run the identical
//! cumulative stats, epoch count, chosen-PC sets and selection
//! objective, across strategies, epoch boundaries and DeliWays shapes.

use nucache_cache::{CacheGeometry, SharedLlc};
use nucache_common::{AccessKind, CoreId, LineAddr, Pc};
use nucache_core::config::{NuCacheConfig, SelectionStrategy};
use nucache_core::NuCache;
use proptest::prelude::*;

mod legacy {
    //! The pre-refactor NUcache, preserved as the equivalence oracle.

    use nucache_cache::meta::{AccessOutcome, EvictedLine, LineMeta};
    use nucache_cache::{CacheGeometry, SetArray};
    use nucache_common::{AccessKind, CacheStats, CoreId, LineAddr, Pc};
    use nucache_core::config::NuCacheConfig;
    use nucache_core::delinquent::DelinquentTracker;
    use nucache_core::monitor::NextUseMonitor;
    use nucache_core::selector::{build_candidates, select_pcs, Selection};
    use std::collections::{BTreeMap, BTreeSet};

    /// Mask with the low `n` bits set (`n` up to 64).
    #[inline]
    const fn low_mask(n: usize) -> u64 {
        if n >= 64 {
            u64::MAX
        } else {
            (1u64 << n) - 1
        }
    }

    pub struct LegacyNuCache {
        array: SetArray,
        main_ways: usize,
        deli_ways: usize,
        config: NuCacheConfig,
        main_touch: Vec<u64>,
        deli_entry: Vec<u64>,
        stamp: u64,
        monitor: NextUseMonitor,
        tracker: DelinquentTracker,
        deli_fills_by_pc: BTreeMap<Pc, u64>,
        chosen: BTreeSet<Pc>,
        pub last_selection: Selection,
        window_accesses: u64,
        accesses_in_epoch: u64,
        pub epochs: u64,
        pub deli_hits: u64,
        pub deli_fills: u64,
        pub stats: CacheStats,
    }

    impl LegacyNuCache {
        pub fn new(geom: CacheGeometry, config: NuCacheConfig) -> Self {
            config.validate(geom.associativity());
            let main_ways = geom.associativity() - config.deli_ways;
            LegacyNuCache {
                array: SetArray::new(geom),
                main_ways,
                deli_ways: config.deli_ways,
                monitor: NextUseMonitor::new(
                    geom.set_bits(),
                    config.monitor_shift.min(geom.set_bits()),
                    config.monitor_depth,
                    config.histogram_buckets,
                ),
                tracker: DelinquentTracker::new(256.max(config.max_candidates)),
                deli_fills_by_pc: BTreeMap::new(),
                chosen: BTreeSet::new(),
                last_selection: Selection {
                    chosen: Vec::new(),
                    expected_hits: 0,
                    extra_lifetime: 0,
                },
                window_accesses: 0,
                main_touch: vec![0; geom.num_lines()],
                deli_entry: vec![0; geom.num_lines()],
                stamp: 0,
                config,
                accesses_in_epoch: 0,
                epochs: 0,
                deli_hits: 0,
                deli_fills: 0,
                stats: CacheStats::default(),
            }
        }

        pub fn chosen_pcs(&self) -> Vec<Pc> {
            let mut v: Vec<Pc> = self.chosen.iter().copied().collect();
            v.sort_unstable();
            v
        }

        pub fn selection_accesses(&self) -> u64 {
            self.window_accesses
        }

        pub fn deli_occupancy(&self) -> u64 {
            let geom = self.array.geometry();
            (0..geom.num_sets())
                .map(|s| {
                    (self.main_ways..self.main_ways + self.deli_ways)
                        .filter(|&w| self.array.get(s, w).is_some())
                        .count() as u64
                })
                .sum()
        }

        #[inline]
        fn frame(&self, set: usize, way: usize) -> usize {
            set * self.array.geometry().associativity() + way
        }

        #[inline]
        fn free_main_way(&self, set: usize) -> Option<usize> {
            let free = !self.array.valid_mask(set) & low_mask(self.main_ways);
            (free != 0).then(|| free.trailing_zeros() as usize)
        }

        fn touch_main(&mut self, set: usize, way: usize) {
            self.stamp += 1;
            let f = self.frame(set, way);
            self.main_touch[f] = self.stamp;
        }

        fn main_victim(&self, set: usize) -> usize {
            (0..self.main_ways)
                .min_by_key(|&w| self.main_touch[self.frame(set, w)])
                .expect("at least one MainWay")
        }

        fn deli_slot(&self, set: usize) -> usize {
            let free = (!self.array.valid_mask(set) >> self.main_ways) & low_mask(self.deli_ways);
            if free != 0 {
                return self.main_ways + free.trailing_zeros() as usize;
            }
            (self.main_ways..self.main_ways + self.deli_ways)
                .min_by_key(|&w| self.deli_entry[self.frame(set, w)])
                .expect("deli_ways > 0 when called")
        }

        fn retire_from_main(&mut self, set: usize, victim: EvictedLine) -> Option<EvictedLine> {
            self.monitor.on_evict(victim.line.0, victim.pc);
            if self.deli_ways == 0 || !self.chosen.contains(&victim.pc) {
                return Some(victim);
            }
            let slot = self.deli_slot(set);
            let geom = *self.array.geometry();
            let meta =
                LineMeta::new(geom.tag_of(victim.line), victim.core, victim.pc, victim.dirty);
            let dropped = self.array.fill(set, slot, meta);
            self.stamp += 1;
            let f = self.frame(set, slot);
            self.deli_entry[f] = self.stamp;
            self.deli_fills += 1;
            *self.deli_fills_by_pc.entry(victim.pc).or_insert(0) += 1;
            dropped
        }

        fn run_selection(&mut self) {
            self.epochs += 1;
            let pool = match self.config.strategy {
                nucache_core::SelectionStrategy::Exhaustive => self.config.oracle_pool,
                _ => self.config.max_candidates,
            };
            let mut combined: BTreeMap<Pc, u64> = self.deli_fills_by_pc.clone();
            for (pc, misses) in self.tracker.top_k(self.tracker.len()) {
                *combined.entry(pc).or_insert(0) += misses;
            }
            let mut top: Vec<(Pc, u64)> = combined.into_iter().collect();
            top.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
            top.truncate(pool);
            let candidates = build_candidates(&top, self.monitor.histograms());
            let accesses_global = self.window_accesses;
            self.last_selection = select_pcs(
                &candidates,
                self.deli_ways,
                accesses_global.max(1),
                self.config.strategy,
                self.config.seed ^ self.epochs,
            );
            self.chosen = self.last_selection.chosen.iter().copied().collect();
            self.tracker.decay();
            self.monitor.decay();
            self.deli_fills_by_pc.retain(|_, c| {
                *c /= 2;
                *c > 0
            });
            self.window_accesses /= 2;
        }

        fn epoch_tick(&mut self) {
            self.accesses_in_epoch += 1;
            if self.accesses_in_epoch >= self.config.epoch_len {
                self.accesses_in_epoch = 0;
                self.run_selection();
            }
        }

        pub fn access(
            &mut self,
            core: CoreId,
            pc: Pc,
            line: LineAddr,
            kind: AccessKind,
        ) -> AccessOutcome {
            let geom = *self.array.geometry();
            let set = geom.set_of(line);
            let tag = geom.tag_of(line);
            self.monitor.on_set_access(line.0);
            self.window_accesses += 1;
            self.epoch_tick();

            if let Some(way) = self.array.find(set, tag) {
                self.stats.record_hit();
                if kind.is_write() {
                    self.array.mark_dirty(set, way);
                }
                if way < self.main_ways {
                    self.touch_main(set, way);
                } else {
                    self.deli_hits += 1;
                    self.monitor.on_next_use(line.0);
                    if !self.config.promote_on_deli_hit && self.config.deli_hit_refresh {
                        self.stamp += 1;
                        let f = self.frame(set, way);
                        self.deli_entry[f] = self.stamp;
                    }
                    if self.config.promote_on_deli_hit && self.main_ways > 0 {
                        let deli_meta = self.array.get(set, way).expect("hit way valid");
                        self.array.invalidate(set, way);
                        let mv = self.free_main_way(set).unwrap_or_else(|| self.main_victim(set));
                        if let Some(victim) = self.array.invalidate(set, mv) {
                            if let Some(leaving) = self.retire_from_main(set, victim) {
                                self.stats.record_eviction(leaving.dirty);
                            }
                        }
                        self.array.fill(set, mv, deli_meta);
                        self.touch_main(set, mv);
                    }
                }
                return AccessOutcome::Hit;
            }

            self.stats.record_miss();
            self.tracker.record_miss(pc);
            self.monitor.on_next_use(line.0);

            let meta = LineMeta::new(tag, core, pc, kind.is_write());
            let (way, leaving) = match self.free_main_way(set) {
                Some(w) => (w, None),
                None => {
                    let w = self.main_victim(set);
                    let victim =
                        self.array.invalidate(set, w).expect("MainWays full, victim valid");
                    (w, self.retire_from_main(set, victim))
                }
            };
            self.array.fill(set, way, meta);
            self.touch_main(set, way);
            if let Some(ev) = leaving {
                self.stats.record_eviction(ev.dirty);
            }
            AccessOutcome::Miss { evicted: leaving }
        }
    }
}

/// One synthetic access: which PC issues it, which line, read or write.
#[derive(Debug, Clone, Copy)]
struct Step {
    pc: u64,
    line: u64,
    write: bool,
}

fn step_strategy(lines: u64) -> impl Strategy<Value = Step> {
    (0u64..6, 0..lines, any::<bool>()).prop_map(|(pc, line, write)| Step { pc, line, write })
}

fn strategy_choice() -> impl Strategy<Value = SelectionStrategy> {
    (0u64..5).prop_map(|i| match i {
        0 => SelectionStrategy::CostBenefit,
        1 => SelectionStrategy::Exhaustive,
        2 => SelectionStrategy::StaticTopK(2),
        3 => SelectionStrategy::Random(2),
        _ => SelectionStrategy::None,
    })
}

/// Drives both implementations over the same stream and asserts
/// per-access and cumulative equivalence.
fn assert_equivalent(sets: u64, assoc: usize, config: NuCacheConfig, steps: &[Step]) {
    let geom = CacheGeometry::new(64 * assoc as u64 * sets, assoc, 64);
    let mut kernel_backed = NuCache::new(geom, 1, config);
    let mut oracle = legacy::LegacyNuCache::new(geom, config);
    for (i, s) in steps.iter().enumerate() {
        let kind = if s.write { AccessKind::Write } else { AccessKind::Read };
        let got = kernel_backed.access(CoreId::new(0), Pc::new(s.pc), LineAddr::new(s.line), kind);
        let want = oracle.access(CoreId::new(0), Pc::new(s.pc), LineAddr::new(s.line), kind);
        assert_eq!(got, want, "outcome diverged at access {i} ({s:?})");
    }
    assert_eq!(kernel_backed.stats(), &oracle.stats, "cumulative stats diverged");
    assert_eq!(kernel_backed.deli_hits(), oracle.deli_hits);
    assert_eq!(kernel_backed.deli_fills(), oracle.deli_fills);
    assert_eq!(kernel_backed.epochs(), oracle.epochs);
    assert_eq!(kernel_backed.chosen_pcs(), oracle.chosen_pcs());
    assert_eq!(kernel_backed.last_selection(), &oracle.last_selection);
    assert_eq!(kernel_backed.selection_accesses(), oracle.selection_accesses());
    assert_eq!(kernel_backed.deli_occupancy(), oracle.deli_occupancy());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The headline property: arbitrary access streams over several epoch
    /// boundaries, all selection strategies, promotion on (the default).
    #[test]
    fn kernel_matches_legacy(
        steps in prop::collection::vec(step_strategy(96), 1..1500),
        deli in 0usize..4,
        strategy in strategy_choice(),
        epoch_len in 40u64..220,
    ) {
        let mut config = NuCacheConfig::default()
            .with_deli_ways(deli)
            .with_epoch_len(epoch_len)
            .with_strategy(strategy);
        config.monitor_shift = 0;
        assert_equivalent(8, 4, config, &steps);
    }

    /// FIFO aging without promotion, with and without the second-chance
    /// refresh extension.
    #[test]
    fn kernel_matches_legacy_fifo_modes(
        steps in prop::collection::vec(step_strategy(64), 1..800),
        refresh in any::<bool>(),
        epoch_len in 40u64..160,
    ) {
        let mut config = NuCacheConfig::default()
            .with_deli_ways(3)
            .with_epoch_len(epoch_len);
        config.promote_on_deli_hit = false;
        config.deli_hit_refresh = refresh;
        config.monitor_shift = 0;
        assert_equivalent(4, 8, config, &steps);
    }

    /// Sampled monitoring (shift > 0) and a bigger geometry, so the
    /// sampled/unsampled set split and the per-set clocks line up too.
    #[test]
    fn kernel_matches_legacy_sampled_monitor(
        steps in prop::collection::vec(step_strategy(512), 1..1200),
        shift in 1u32..3,
    ) {
        let mut config = NuCacheConfig::default()
            .with_deli_ways(4)
            .with_epoch_len(100);
        config.monitor_shift = shift;
        assert_equivalent(16, 8, config, &steps);
    }
}

/// A deterministic long run crossing many epochs with a workload the
/// selector actually bites on (loop + stream), as a fixed regression
/// anchor alongside the randomized properties.
#[test]
fn kernel_matches_legacy_loop_stream() {
    let mut config = NuCacheConfig::default().with_deli_ways(8).with_epoch_len(2_000);
    config.monitor_shift = 0;
    let geom = CacheGeometry::new(64 * 16 * 64, 16, 64);
    let mut kernel_backed = NuCache::new(geom, 1, config);
    let mut oracle = legacy::LegacyNuCache::new(geom, config);
    let mut stream = 1u64 << 20;
    for round in 0..30_000u64 {
        for (pc, line) in [(1, round % 768), (2, stream)] {
            if pc == 2 && round % 2 != 0 {
                continue;
            }
            let got = kernel_backed.access(
                CoreId::new(0),
                Pc::new(pc),
                LineAddr::new(line),
                AccessKind::Read,
            );
            let want =
                oracle.access(CoreId::new(0), Pc::new(pc), LineAddr::new(line), AccessKind::Read);
            assert_eq!(got, want, "diverged at round {round} pc {pc}");
        }
        if round % 2 == 0 {
            stream += 1;
        }
    }
    assert!(oracle.epochs >= 2, "workload must cross epochs");
    assert!(oracle.deli_hits > 0, "workload must exercise the DeliWays");
    assert_eq!(kernel_backed.chosen_pcs(), oracle.chosen_pcs());
    assert_eq!(kernel_backed.stats(), &oracle.stats);
}
