//! Property-based tests of the PC-selection algorithms.

use nucache_common::{Log2Histogram, Pc};
use nucache_core::selector::{select_pcs, Candidate};
use nucache_core::SelectionStrategy;
use proptest::prelude::*;

/// Strategy producing a plausible candidate pool.
fn candidates_strategy(max: usize) -> impl Strategy<Value = Vec<Candidate>> {
    prop::collection::vec((1u64..50_000, 0u64..20_000, 0u64..5_000, any::<bool>()), 1..max)
        .prop_map(|raw| {
            raw.into_iter()
                .enumerate()
                .map(|(i, (fills, dist, mass, with_hist))| Candidate {
                    class: Pc::new(i as u64 * 8 + 0x400),
                    fills,
                    histogram: with_hist.then(|| {
                        let mut h = Log2Histogram::new(24);
                        if mass > 0 {
                            h.record_n(dist, mass);
                        }
                        h
                    }),
                })
                .collect()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    /// The chosen set is always a subset of the candidates, duplicate-free.
    #[test]
    fn chosen_is_subset(cands in candidates_strategy(16), deli in 1usize..12, acc in 1u64..1_000_000) {
        for strat in [
            SelectionStrategy::CostBenefit,
            SelectionStrategy::Exhaustive,
            SelectionStrategy::StaticTopK(4),
            SelectionStrategy::Random(4),
            SelectionStrategy::None,
        ] {
            let sel = select_pcs(&cands, deli, acc, strat, 7);
            let pool: std::collections::HashSet<Pc> = cands.iter().map(|c| c.class).collect();
            let mut seen = std::collections::HashSet::new();
            for pc in &sel.chosen {
                prop_assert!(pool.contains(pc), "{strat}: chose unknown PC");
                prop_assert!(seen.insert(*pc), "{strat}: duplicate PC");
            }
        }
    }

    /// Expected hits never exceed total recorded histogram mass.
    #[test]
    fn expected_hits_bounded(cands in candidates_strategy(12), deli in 1usize..12) {
        let total_mass: u64 = cands
            .iter()
            .filter_map(|c| c.histogram.as_ref())
            .map(|h| h.total())
            .sum();
        for strat in [SelectionStrategy::CostBenefit, SelectionStrategy::Exhaustive] {
            let sel = select_pcs(&cands, deli, 100_000, strat, 1);
            prop_assert!(
                sel.expected_hits <= total_mass,
                "{strat}: expected {} > recorded mass {total_mass}",
                sel.expected_hits
            );
        }
    }

    /// Exhaustive search is an upper bound on greedy for any instance
    /// with at most 12 candidates.
    #[test]
    fn exhaustive_dominates_greedy(cands in candidates_strategy(12), deli in 1usize..12) {
        let g = select_pcs(&cands, deli, 100_000, SelectionStrategy::CostBenefit, 1);
        let o = select_pcs(&cands, deli, 100_000, SelectionStrategy::Exhaustive, 1);
        prop_assert!(
            o.expected_hits >= g.expected_hits,
            "oracle {} < greedy {}",
            o.expected_hits,
            g.expected_hits
        );
    }

    /// Greedy never selects a PC without any in-reach histogram mass when
    /// selecting it alone would yield zero benefit and there are no other
    /// candidates.
    #[test]
    fn no_pointless_solo_selection(fills in 1u64..100_000, dist in 10_000u64..1_000_000) {
        // A single candidate whose reuses are far beyond any achievable
        // lifetime: D * acc / fills << dist.
        let mut h = Log2Histogram::new(24);
        h.record_n(dist, 1_000);
        let cands = vec![Candidate { class: Pc::new(1), fills, histogram: Some(h) }];
        let acc = fills; // lifetime = deli ways only
        let sel = select_pcs(&cands, 4, acc, SelectionStrategy::CostBenefit, 1);
        if dist > 8 {
            prop_assert!(sel.chosen.is_empty(), "selected a hopeless PC");
        }
    }

    /// Selection is deterministic for all strategies given fixed seeds.
    #[test]
    fn selection_deterministic(cands in candidates_strategy(10), seed in any::<u64>()) {
        for strat in [
            SelectionStrategy::CostBenefit,
            SelectionStrategy::Exhaustive,
            SelectionStrategy::StaticTopK(3),
            SelectionStrategy::Random(3),
        ] {
            let a = select_pcs(&cands, 8, 50_000, strat, seed);
            let b = select_pcs(&cands, 8, 50_000, strat, seed);
            prop_assert_eq!(a, b);
        }
    }

    /// Adding an irrelevant candidate (no histogram) never changes the
    /// greedy outcome's value: streams cannot help, and greedy must not
    /// pick them.
    #[test]
    fn streams_never_improve_greedy(cands in candidates_strategy(8), stream_fills in 1u64..100_000) {
        let base = select_pcs(&cands, 8, 100_000, SelectionStrategy::CostBenefit, 1);
        let mut with_stream = cands.clone();
        with_stream.push(Candidate { class: Pc::new(0xdead), fills: stream_fills, histogram: None });
        let plus = select_pcs(&with_stream, 8, 100_000, SelectionStrategy::CostBenefit, 1);
        prop_assert!(!plus.chosen.contains(&Pc::new(0xdead)), "chose a pure stream");
        prop_assert_eq!(plus.expected_hits, base.expected_hits);
    }
}
