//! The Next-Use monitor — the kernel's generic implementation, keyed by
//! PC.
//!
//! The sampled mechanism (per-set circular eviction buffers, access
//! clocks, per-class log2 histograms) lives in
//! [`nucache_kernel::monitor`]; the simulator instantiates the
//! insertion-class parameter with [`Pc`] and addresses it with raw
//! [`LineAddr`](nucache_common::LineAddr) values (`line.0`), whose
//! set/tag split matches the kernel's key split exactly.

use nucache_common::Pc;

/// Sampled Next-Use monitoring across the cache, per delinquent PC.
pub type NextUseMonitor = nucache_kernel::NextUseMonitor<Pc>;

#[cfg(test)]
mod tests {
    use super::*;
    use nucache_common::LineAddr;

    #[test]
    fn pc_instantiation_measures_distance() {
        // 16 sets, sample every set, 4-deep buffers.
        let mut m = NextUseMonitor::new(4, 0, 4, 16);
        let line = LineAddr::new(0x30);
        m.on_set_access(line.0);
        m.on_evict(line.0, Pc::new(0x400));
        m.on_set_access(line.0);
        m.on_set_access(line.0);
        assert_eq!(m.on_next_use(line.0), Some((Pc::new(0x400), 2)));
    }
}
