//! The Next-Use monitor.
//!
//! The Next-Use distance of a line is the number of accesses to its set
//! between its eviction from the MainWays and the next request for it.
//! This is exactly the quantity DeliWays retention can convert into a
//! hit: a line whose Next-Use distance is within the extra lifetime the
//! DeliWays provide would have hit had its PC been chosen.
//!
//! Measuring Next-Use for every line would be prohibitively expensive in
//! hardware, so the monitor set-samples: in one set out of
//! `2^sample_shift`, MainWays evictions are recorded into a small
//! circular buffer of `(tag, pc, eviction-time)` entries; when a later
//! miss in the same set matches a buffered tag, the elapsed set-access
//! count is recorded into the evicting PC's log2 histogram.

use nucache_common::{LineAddr, Log2Histogram, Pc};
use std::collections::BTreeMap;

/// One buffered eviction awaiting its next use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Pending {
    tag: u64,
    pc: Pc,
    evicted_at: u64,
}

/// Per-sampled-set state: a circular eviction buffer and an access clock.
#[derive(Debug, Clone)]
struct SetMonitor {
    buffer: Vec<Option<Pending>>,
    next_slot: usize,
    clock: u64,
}

impl SetMonitor {
    fn new(depth: usize) -> Self {
        SetMonitor { buffer: vec![None; depth], next_slot: 0, clock: 0 }
    }
}

/// Sampled Next-Use monitoring across the cache.
///
/// # Examples
///
/// ```
/// use nucache_core::NextUseMonitor;
/// use nucache_common::{LineAddr, Pc};
///
/// // 16 sets (set_bits = 4), sample every set, 4-deep buffers.
/// let mut m = NextUseMonitor::new(4, 0, 4, 16);
/// let line = LineAddr::new(0x30);
/// m.on_set_access(line);
/// m.on_evict(line, Pc::new(0x400));
/// m.on_set_access(line);
/// m.on_set_access(line);
/// assert_eq!(m.on_next_use(line), Some((Pc::new(0x400), 2)));
/// ```
#[derive(Debug)]
pub struct NextUseMonitor {
    set_bits: u32,
    sample_shift: u32,
    depth: usize,
    buckets: usize,
    sets: Vec<SetMonitor>,
    /// Per-PC histograms in a `BTreeMap`: consumers iterate these when
    /// building selection candidates, and PC-ordered traversal keeps the
    /// whole selection pipeline independent of hasher state.
    histograms: BTreeMap<Pc, Log2Histogram>,
    /// Total accesses observed in sampled sets (rate denominators).
    sampled_accesses: u64,
    /// Evictions recorded / matched (monitor effectiveness stats).
    recorded: u64,
    matched: u64,
}

impl NextUseMonitor {
    /// Creates a monitor over a cache with `2^set_bits` sets, sampling
    /// one set in `2^sample_shift`, with per-set buffers of `depth`
    /// entries and `buckets`-bucket histograms.
    ///
    /// # Panics
    ///
    /// Panics if the sampling leaves no sets, or `depth` is zero.
    pub fn new(set_bits: u32, sample_shift: u32, depth: usize, buckets: usize) -> Self {
        let num_sets = 1usize << set_bits;
        let sampled = num_sets >> sample_shift;
        assert!(sampled > 0, "sampling eliminates every set");
        assert!(depth > 0, "zero buffer depth");
        NextUseMonitor {
            set_bits,
            sample_shift,
            depth,
            buckets,
            sets: (0..sampled).map(|_| SetMonitor::new(depth)).collect(),
            histograms: BTreeMap::new(),
            sampled_accesses: 0,
            recorded: 0,
            matched: 0,
        }
    }

    fn sampled_index(&self, line: LineAddr) -> Option<usize> {
        let set = line.set_index(self.set_bits);
        if set & ((1usize << self.sample_shift) - 1) != 0 {
            None
        } else {
            Some(set >> self.sample_shift)
        }
    }

    /// Advances the sampled set's access clock (call on *every* access to
    /// the cache; unsampled sets are ignored cheaply).
    pub fn on_set_access(&mut self, line: LineAddr) {
        if let Some(i) = self.sampled_index(line) {
            self.sets[i].clock += 1;
            self.sampled_accesses += 1;
        }
    }

    /// Records a MainWays eviction of `line`, allocated by `pc`.
    pub fn on_evict(&mut self, line: LineAddr, pc: Pc) {
        let Some(i) = self.sampled_index(line) else { return };
        let tag = line.tag(self.set_bits);
        let sm = &mut self.sets[i];
        let entry = Pending { tag, pc, evicted_at: sm.clock };
        sm.buffer[sm.next_slot] = Some(entry);
        sm.next_slot = (sm.next_slot + 1) % self.depth;
        self.recorded += 1;
    }

    /// Reports that `line` was used again after a MainWays eviction — on
    /// a cache miss, *or* on a DeliWays hit (a salvaged next use is still
    /// a next use; without this, a chosen PC's evidence would disappear
    /// the moment choosing it starts working, and selection would
    /// oscillate). If the line's eviction is buffered, its Next-Use
    /// distance is recorded and `(pc, distance)` returned.
    pub fn on_next_use(&mut self, line: LineAddr) -> Option<(Pc, u64)> {
        let i = self.sampled_index(line)?;
        let tag = line.tag(self.set_bits);
        let sm = &mut self.sets[i];
        let slot = sm.buffer.iter().position(|e| matches!(e, Some(p) if p.tag == tag))?;
        let pending = sm.buffer[slot].take().expect("slot just matched");
        let distance = sm.clock - pending.evicted_at;
        self.matched += 1;
        let buckets = self.buckets;
        self.histograms
            .entry(pending.pc)
            .or_insert_with(|| Log2Histogram::new(buckets))
            .record(distance);
        Some((pending.pc, distance))
    }

    /// The Next-Use histogram of `pc`, if any distance has been recorded.
    pub fn histogram(&self, pc: Pc) -> Option<&Log2Histogram> {
        self.histograms.get(&pc)
    }

    /// All per-PC histograms, in PC order.
    pub fn histograms(&self) -> &BTreeMap<Pc, Log2Histogram> {
        &self.histograms
    }

    /// Accesses observed in sampled sets.
    pub const fn sampled_accesses(&self) -> u64 {
        self.sampled_accesses
    }

    /// Evictions recorded into buffers.
    pub const fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Buffered evictions later matched by a miss.
    pub const fn matched(&self) -> u64 {
        self.matched
    }

    /// Number of sets being sampled.
    pub fn sampled_sets(&self) -> usize {
        self.sets.len()
    }

    /// Epoch decay: halves histogram mass and the rate denominators, and
    /// drops empty histograms.
    pub fn decay(&mut self) {
        self.histograms.retain(|_, h| {
            h.decay();
            h.total() > 0
        });
        self.sampled_accesses /= 2;
        self.recorded /= 2;
        self.matched /= 2;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line_in_set(set: u64, tag: u64, set_bits: u32) -> LineAddr {
        LineAddr::new((tag << set_bits) | set)
    }

    #[test]
    fn distance_counts_set_accesses_only() {
        let mut m = NextUseMonitor::new(4, 0, 4, 16);
        let target = line_in_set(2, 7, 4);
        let other_set = line_in_set(3, 1, 4);
        m.on_set_access(target);
        m.on_evict(target, Pc::new(0x10));
        // Accesses to a different set must not advance this set's clock.
        for _ in 0..10 {
            m.on_set_access(other_set);
        }
        m.on_set_access(target);
        m.on_set_access(target);
        m.on_set_access(target);
        assert_eq!(m.on_next_use(target), Some((Pc::new(0x10), 3)));
    }

    #[test]
    fn unmatched_miss_returns_none() {
        let mut m = NextUseMonitor::new(4, 0, 4, 16);
        assert_eq!(m.on_next_use(line_in_set(0, 9, 4)), None);
    }

    #[test]
    fn entry_consumed_after_match() {
        let mut m = NextUseMonitor::new(4, 0, 4, 16);
        let l = line_in_set(0, 9, 4);
        m.on_evict(l, Pc::new(1));
        assert!(m.on_next_use(l).is_some());
        assert!(m.on_next_use(l).is_none(), "matched entries must be consumed");
    }

    #[test]
    fn circular_buffer_overwrites_oldest() {
        let mut m = NextUseMonitor::new(4, 0, 2, 16);
        let l1 = line_in_set(0, 1, 4);
        let l2 = line_in_set(0, 2, 4);
        let l3 = line_in_set(0, 3, 4);
        m.on_evict(l1, Pc::new(1));
        m.on_evict(l2, Pc::new(2));
        m.on_evict(l3, Pc::new(3)); // overwrites l1
        assert!(m.on_next_use(l1).is_none());
        assert!(m.on_next_use(l2).is_some());
        assert!(m.on_next_use(l3).is_some());
    }

    #[test]
    fn sampling_skips_unsampled_sets() {
        let mut m = NextUseMonitor::new(4, 2, 4, 16); // sets 0,4,8,12 sampled
        let sampled = line_in_set(4, 1, 4);
        let unsampled = line_in_set(5, 1, 4);
        m.on_set_access(sampled);
        m.on_set_access(unsampled);
        assert_eq!(m.sampled_accesses(), 1);
        m.on_evict(unsampled, Pc::new(1));
        assert_eq!(m.recorded(), 0);
        assert_eq!(m.sampled_sets(), 4);
    }

    #[test]
    fn histograms_accumulate_per_pc() {
        let mut m = NextUseMonitor::new(4, 0, 8, 16);
        let pc = Pc::new(0x40);
        for tag in 0..5u64 {
            let l = line_in_set(0, 10 + tag, 4);
            m.on_evict(l, pc);
            m.on_set_access(l);
            m.on_set_access(l);
            assert!(m.on_next_use(l).is_some());
        }
        let h = m.histogram(pc).expect("histogram exists");
        assert_eq!(h.total(), 5);
        assert_eq!(m.matched(), 5);
    }

    #[test]
    fn decay_prunes_empty_histograms() {
        let mut m = NextUseMonitor::new(4, 0, 4, 16);
        let l = line_in_set(0, 1, 4);
        m.on_evict(l, Pc::new(7));
        m.on_set_access(l);
        m.on_next_use(l);
        assert_eq!(m.histogram(Pc::new(7)).unwrap().total(), 1);
        m.decay();
        assert!(m.histogram(Pc::new(7)).is_none(), "single-sample histogram decays away");
    }
}
