//! The NUcache LLC organization: MainWays + DeliWays.

use crate::config::{NuCacheConfig, SelectionStrategy};
use crate::delinquent::DelinquentTracker;
use crate::monitor::NextUseMonitor;
use crate::selector::{build_candidates, evaluate_chosen, select_pcs, Candidate, Selection};
use nucache_cache::meta::{AccessOutcome, EvictedLine, LineMeta};
use nucache_cache::{AuditStats, CacheGeometry, SetArray, SharedLlc};
use nucache_common::telemetry::{Event, PcSnapshot};
use nucache_common::{AccessKind, CacheStats, CoreId, LineAddr, Pc};
use std::collections::{BTreeMap, BTreeSet};

/// Candidate PCs included per [`Event::SelectionEpoch`] snapshot; enough
/// to cover every realistic chosen set (DeliWays ≤ 16) with headroom for
/// the rejected tail the cost-benefit analysis argued about.
const TELEMETRY_TOP_PCS: usize = 16;

/// Mask with the low `n` bits set (`n` up to 64).
#[inline]
const fn low_mask(n: usize) -> u64 {
    if n >= 64 {
        u64::MAX
    } else {
        (1u64 << n) - 1
    }
}

/// A shared LLC organized as NUcache.
///
/// Each set's ways are split into `M` MainWays (LRU, all lines) and `D`
/// DeliWays (FIFO, only lines allocated by the currently chosen
/// delinquent PCs, entered on eviction from the MainWays). A sampled
/// Next-Use monitor and a per-PC miss tracker feed the epoch-based
/// cost-benefit PC selection.
///
/// # Examples
///
/// ```
/// use nucache_cache::{CacheGeometry, SharedLlc};
/// use nucache_core::{NuCache, NuCacheConfig};
/// let geom = CacheGeometry::new(512 * 1024, 16, 64);
/// let llc = NuCache::new(geom, 2, NuCacheConfig::default().with_deli_ways(8));
/// assert_eq!(llc.main_ways(), 8);
/// assert_eq!(llc.deli_ways(), 8);
/// ```
#[derive(Debug)]
pub struct NuCache {
    array: SetArray,
    main_ways: usize,
    deli_ways: usize,
    config: NuCacheConfig,
    /// LRU stamps for ways `[0, main_ways)` of each set.
    main_touch: Vec<u64>,
    /// FIFO entry stamps for ways `[main_ways, assoc)` of each set.
    deli_entry: Vec<u64>,
    stamp: u64,
    monitor: NextUseMonitor,
    tracker: DelinquentTracker,
    /// DeliWays insertions per PC this window: a retained PC stops
    /// missing, so its continued delinquency (and its true FIFO
    /// pressure) shows up here rather than in the miss tracker.
    /// PC-ordered so the candidate merge in [`NuCache::combined_fills`]
    /// never depends on hasher state.
    deli_fills_by_pc: BTreeMap<Pc, u64>,
    chosen: BTreeSet<Pc>,
    last_selection: Selection,
    /// Global accesses in the current decay window — the denominator the
    /// fill-rate (lifetime) estimate pairs with the fill counts. Counted
    /// globally rather than scaled up from the sampled sets, because
    /// strided workloads skew traffic across sets and break the sampled
    /// estimate.
    window_accesses: u64,
    accesses_in_epoch: u64,
    epochs: u64,
    deli_hits: u64,
    deli_fills: u64,
    stats: CacheStats,
    core_stats: Vec<CacheStats>,
    /// When set, each selection epoch appends an
    /// [`Event::SelectionEpoch`] to `pending_events` for the driver to
    /// drain. Off by default: the only cost while disabled is this one
    /// branch per epoch.
    telemetry: bool,
    pending_events: Vec<Event>,
    /// Epoch-invariant oracle state; `Some` while auditing is enabled
    /// (which also turns on the tag array's reference mirror).
    audit: Option<EpochAudit>,
}

/// Counter snapshots for the audit oracle's monotonicity checks.
///
/// Each field records the value at the last check; counters must never
/// decrease between checks within an epoch. The decay at each selection
/// epoch (and an explicit stats reset) legitimately shrinks them, so both
/// paths refresh the snapshot via [`NuCache::audit_snapshot`].
#[derive(Debug, Clone, Default)]
struct EpochAudit {
    accesses: u64,
    deli_hits: u64,
    deli_fills: u64,
    window_accesses: u64,
    recorded: u64,
    matched: u64,
    /// Monitor counters at the start of the current decay window, for the
    /// bounded matched-vs-recorded check.
    window_recorded: u64,
    window_matched: u64,
    epoch_checks: u64,
}

impl NuCache {
    /// Creates a NUcache LLC for `num_cores` cores.
    ///
    /// # Panics
    ///
    /// Panics if `num_cores` is zero or the configuration is invalid for
    /// the geometry (see [`NuCacheConfig::validate`]).
    pub fn new(geom: CacheGeometry, num_cores: usize, config: NuCacheConfig) -> Self {
        assert!(num_cores > 0, "need at least one core");
        config.validate(geom.associativity());
        let main_ways = geom.associativity() - config.deli_ways;
        #[allow(unused_mut)] // mut only needed under debug_invariants
        let mut llc = NuCache {
            array: SetArray::new(geom),
            main_ways,
            deli_ways: config.deli_ways,
            monitor: NextUseMonitor::new(
                geom.set_bits(),
                config.monitor_shift.min(geom.set_bits()),
                config.monitor_depth,
                config.histogram_buckets,
            ),
            tracker: DelinquentTracker::new(256.max(config.max_candidates)),
            deli_fills_by_pc: BTreeMap::new(),
            chosen: BTreeSet::new(),
            last_selection: Selection { chosen: Vec::new(), expected_hits: 0, extra_lifetime: 0 },
            window_accesses: 0,
            main_touch: vec![0; geom.num_lines()],
            deli_entry: vec![0; geom.num_lines()],
            stamp: 0,
            config,
            accesses_in_epoch: 0,
            epochs: 0,
            deli_hits: 0,
            deli_fills: 0,
            stats: CacheStats::default(),
            core_stats: vec![CacheStats::default(); num_cores],
            telemetry: false,
            pending_events: Vec::new(),
            audit: None,
        };
        #[cfg(feature = "debug_invariants")]
        llc.enable_audit();
        llc
    }

    /// Enables the differential audit oracle: the tag array mirrors every
    /// operation into a naive reference model
    /// ([`nucache_cache::audit::ReferenceArray`]) and each selection epoch
    /// verifies NUcache's invariants (DeliWays occupancy within capacity,
    /// monotone counters, selection objective reproducible from the
    /// candidates). Violations panic at the faulting operation.
    pub fn enable_audit(&mut self) {
        self.array.enable_audit();
        self.audit = Some(EpochAudit::default());
        self.audit_snapshot();
    }

    /// Disables the audit oracle and drops its mirror state.
    pub fn disable_audit(&mut self) {
        self.array.disable_audit();
        self.audit = None;
    }

    /// Refreshes the oracle's counter snapshots to the current values
    /// (after the epoch decay or a stats reset, which legitimately move
    /// counters backwards).
    fn audit_snapshot(&mut self) {
        let accesses = self.stats.accesses();
        let (dh, df, wa) = (self.deli_hits, self.deli_fills, self.window_accesses);
        let (rec, mat) = (self.monitor.recorded(), self.monitor.matched());
        if let Some(a) = &mut self.audit {
            a.accesses = accesses;
            a.deli_hits = dh;
            a.deli_fills = df;
            a.window_accesses = wa;
            a.recorded = rec;
            a.matched = mat;
            a.window_recorded = rec;
            a.window_matched = mat;
        }
    }

    /// Per-access oracle checks: counters monotone since the last check
    /// and per-core attribution consistent with the aggregate.
    #[cold]
    #[inline(never)]
    fn audit_access_check(&mut self) {
        let (hits, misses) = (self.stats.hits, self.stats.misses);
        let core_hits: u64 = self.core_stats.iter().map(|c| c.hits).sum();
        let core_misses: u64 = self.core_stats.iter().map(|c| c.misses).sum();
        let (dh, df, wa) = (self.deli_hits, self.deli_fills, self.window_accesses);
        let (rec, mat) = (self.monitor.recorded(), self.monitor.matched());
        let Some(a) = &mut self.audit else { return };
        assert_eq!(
            (core_hits, core_misses),
            (hits, misses),
            "audit: per-core counters must sum to the aggregate"
        );
        assert!(dh <= hits, "audit: DeliWays hits ({dh}) exceed total hits ({hits})");
        assert!(
            hits + misses >= a.accesses,
            "audit: access counter moved backwards within an epoch"
        );
        assert!(
            dh >= a.deli_hits && df >= a.deli_fills,
            "audit: DeliWays counters moved backwards within an epoch"
        );
        assert!(
            wa >= a.window_accesses,
            "audit: window access counter moved backwards within an epoch"
        );
        assert!(
            rec >= a.recorded && mat >= a.matched,
            "audit: monitor counters moved backwards within an epoch"
        );
        a.accesses = hits + misses;
        a.deli_hits = dh;
        a.deli_fills = df;
        a.window_accesses = wa;
        a.recorded = rec;
        a.matched = mat;
    }

    /// Epoch-boundary oracle checks, run after selection but before the
    /// decay so occupancy and monitor state are what the selector saw.
    fn audit_epoch_check(&mut self, candidates: &[Candidate]) {
        let capacity = (self.deli_ways * self.array.geometry().num_sets()) as u64;
        let occ = self.deli_occupancy();
        assert!(occ <= capacity, "audit: DeliWays occupancy {occ} exceeds capacity {capacity}");
        let from_selection: BTreeSet<Pc> = self.last_selection.chosen.iter().copied().collect();
        assert!(
            self.chosen == from_selection,
            "audit: admitted PC set {:?} disagrees with the selection {:?}",
            self.chosen,
            self.last_selection.chosen
        );
        // The analytic strategies report an objective value; re-deriving it
        // for the chosen set from the same candidates must reproduce it.
        let analytic = matches!(
            self.config.strategy,
            SelectionStrategy::CostBenefit | SelectionStrategy::Exhaustive
        );
        if analytic && !self.last_selection.chosen.is_empty() {
            let recomputed = evaluate_chosen(
                candidates,
                &self.last_selection.chosen,
                self.deli_ways,
                self.window_accesses.max(1),
            );
            assert_eq!(
                recomputed,
                Some((self.last_selection.expected_hits, self.last_selection.extra_lifetime)),
                "audit: selection objective not reproducible from the candidates"
            );
        }
        // Every monitor match consumes a buffered eviction recorded either
        // in this decay window or already buffered when it started.
        let buffer_cap = (self.config.monitor_depth * self.monitor.sampled_sets()) as u64;
        let (rec, mat) = (self.monitor.recorded(), self.monitor.matched());
        let a = self.audit.as_mut().expect("epoch check runs only while auditing");
        let window_matched = mat.saturating_sub(a.window_matched);
        let window_recorded = rec.saturating_sub(a.window_recorded);
        assert!(
            window_matched <= window_recorded + buffer_cap,
            "audit: {window_matched} monitor matches cannot come from {window_recorded} \
             recorded evictions plus a buffer of {buffer_cap}"
        );
        a.epoch_checks += 1;
    }

    /// Number of MainWays per set.
    pub const fn main_ways(&self) -> usize {
        self.main_ways
    }

    /// Number of DeliWays per set.
    pub const fn deli_ways(&self) -> usize {
        self.deli_ways
    }

    /// The active configuration.
    pub const fn config(&self) -> &NuCacheConfig {
        &self.config
    }

    /// PCs currently admitted to the DeliWays.
    pub fn chosen_pcs(&self) -> Vec<Pc> {
        let mut v: Vec<Pc> = self.chosen.iter().copied().collect();
        v.sort_unstable();
        v
    }

    /// The outcome of the most recent selection pass.
    pub const fn last_selection(&self) -> &Selection {
        &self.last_selection
    }

    /// Completed selection epochs.
    pub const fn epochs(&self) -> u64 {
        self.epochs
    }

    /// Hits satisfied from the DeliWays.
    pub const fn deli_hits(&self) -> u64 {
        self.deli_hits
    }

    /// Lines moved from MainWays into DeliWays.
    pub const fn deli_fills(&self) -> u64 {
        self.deli_fills
    }

    /// Read access to the delinquent-PC tracker (Fig. 1 uses this).
    pub const fn tracker(&self) -> &DelinquentTracker {
        &self.tracker
    }

    /// Read access to the Next-Use monitor (Fig. 2 uses this).
    pub const fn monitor(&self) -> &NextUseMonitor {
        &self.monitor
    }

    /// Current combined fill counts (demand misses + DeliWays insertions)
    /// per PC, descending — the quantity candidate ranking and the
    /// lifetime cost model use. Exposed for diagnostics and tests.
    pub fn combined_fills(&self) -> Vec<(Pc, u64)> {
        let mut combined: BTreeMap<Pc, u64> = self.deli_fills_by_pc.clone();
        for (pc, misses) in self.tracker.top_k(self.tracker.len()) {
            *combined.entry(pc).or_insert(0) += misses;
        }
        let mut v: Vec<(Pc, u64)> = combined.into_iter().collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v
    }

    /// Access denominator the selector pairs with
    /// [`NuCache::combined_fills`] (global accesses in the decay window).
    pub fn selection_accesses(&self) -> u64 {
        self.window_accesses
    }

    #[inline]
    fn frame(&self, set: usize, way: usize) -> usize {
        set * self.array.geometry().associativity() + way
    }

    /// First invalid way among the MainWays of `set`, from the valid
    /// bitmask — the bit scan replaces a per-way [`SetArray::get`] probe
    /// on the miss path.
    #[inline]
    fn free_main_way(&self, set: usize) -> Option<usize> {
        let free = !self.array.valid_mask(set) & low_mask(self.main_ways);
        (free != 0).then(|| free.trailing_zeros() as usize)
    }

    fn touch_main(&mut self, set: usize, way: usize) {
        self.stamp += 1;
        let f = self.frame(set, way);
        self.main_touch[f] = self.stamp;
    }

    /// LRU victim among the MainWays of `set` (which are full).
    fn main_victim(&self, set: usize) -> usize {
        (0..self.main_ways)
            .min_by_key(|&w| self.main_touch[self.frame(set, w)])
            .expect("at least one MainWay")
    }

    /// FIFO victim among the DeliWays of `set`, or the first invalid one.
    fn deli_slot(&self, set: usize) -> usize {
        debug_assert!(self.deli_ways > 0, "deli_slot needs DeliWays");
        let free = (!self.array.valid_mask(set) >> self.main_ways) & low_mask(self.deli_ways);
        if free != 0 {
            return self.main_ways + free.trailing_zeros() as usize;
        }
        (self.main_ways..self.main_ways + self.deli_ways)
            .min_by_key(|&w| self.deli_entry[self.frame(set, w)])
            .expect("deli_ways > 0 when called")
    }

    /// Handles a line leaving the MainWays: moves it into the DeliWays if
    /// its PC is chosen (returning the line the FIFO dropped, if any) or
    /// lets it leave the cache. Either way the monitor sees the eviction —
    /// Next-Use is defined from MainWays eviction for every line, so the
    /// selector can discover PCs that are not currently chosen.
    fn retire_from_main(&mut self, set: usize, victim: EvictedLine) -> Option<EvictedLine> {
        self.monitor.on_evict(victim.line, victim.pc);
        if self.deli_ways == 0 || !self.chosen.contains(&victim.pc) {
            return Some(victim);
        }
        let slot = self.deli_slot(set);
        let geom = *self.array.geometry();
        let meta = LineMeta::new(geom.tag_of(victim.line), victim.core, victim.pc, victim.dirty);
        let dropped = self.array.fill(set, slot, meta);
        self.stamp += 1;
        let f = self.frame(set, slot);
        self.deli_entry[f] = self.stamp;
        self.deli_fills += 1;
        *self.deli_fills_by_pc.entry(victim.pc).or_insert(0) += 1;
        // A line aging out of the DeliWays FIFO leaves the cache for good;
        // its Next-Use from this (second) eviction is not what the
        // selector models, so it is not re-recorded.
        dropped
    }

    fn run_selection(&mut self) {
        self.epochs += 1;
        let pool = match self.config.strategy {
            crate::config::SelectionStrategy::Exhaustive => self.config.oracle_pool,
            _ => self.config.max_candidates,
        };
        // Candidate fills combine demand misses with DeliWays insertions:
        // for an unretained PC the former dominates; for a retained PC the
        // latter is both its continued-delinquency evidence and its actual
        // FIFO pressure. Without the combination, successfully retained
        // PCs stop missing, vanish from the candidate list and selection
        // oscillates.
        let mut combined: BTreeMap<Pc, u64> = self.deli_fills_by_pc.clone();
        for (pc, misses) in self.tracker.top_k(self.tracker.len()) {
            *combined.entry(pc).or_insert(0) += misses;
        }
        let mut top: Vec<(Pc, u64)> = combined.into_iter().collect();
        top.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        top.truncate(pool);
        let candidates = build_candidates(&top, self.monitor.histograms());
        // Fill counts and the access denominator are both global over the
        // same decayed window, so their ratio is the per-set fill rate;
        // the monitor's per-set-clock histograms use the same currency.
        let accesses_global = self.window_accesses;
        self.last_selection = select_pcs(
            &candidates,
            self.deli_ways,
            accesses_global.max(1),
            self.config.strategy,
            self.config.seed ^ self.epochs,
        );
        self.chosen = self.last_selection.chosen.iter().copied().collect();
        if self.telemetry {
            self.pending_events.push(self.selection_snapshot(&top));
        }
        if self.audit.is_some() {
            self.audit_epoch_check(&candidates);
        }
        self.tracker.decay();
        self.monitor.decay();
        self.deli_fills_by_pc.retain(|_, c| {
            *c /= 2;
            *c > 0
        });
        self.window_accesses /= 2;
        if self.audit.is_some() {
            self.audit_snapshot();
        }
    }

    /// Valid lines currently resident in the DeliWays across all sets.
    pub fn deli_occupancy(&self) -> u64 {
        let geom = self.array.geometry();
        (0..geom.num_sets())
            .map(|s| {
                (self.main_ways..self.main_ways + self.deli_ways)
                    .filter(|&w| self.array.get(s, w).is_some())
                    .count() as u64
            })
            .sum()
    }

    /// Builds the telemetry snapshot of the selection that just ran.
    /// Called before the epoch decays, so fills, window accesses and
    /// histogram summaries are exactly what the selector saw.
    fn selection_snapshot(&self, top: &[(Pc, u64)]) -> Event {
        let quant = |pc: Pc, p: f64| self.monitor.histogram(pc).and_then(|h| h.quantile(p));
        let top_pcs: Vec<PcSnapshot> = top
            .iter()
            .take(TELEMETRY_TOP_PCS)
            .map(|&(pc, fills)| PcSnapshot {
                pc,
                fills,
                chosen: self.chosen.contains(&pc),
                samples: self.monitor.histogram(pc).map_or(0, |h| h.total()),
                p25: quant(pc, 0.25),
                p50: quant(pc, 0.5),
                p75: quant(pc, 0.75),
                p90: quant(pc, 0.9),
            })
            .collect();
        Event::SelectionEpoch {
            epoch: self.epochs,
            window_accesses: self.window_accesses,
            chosen: self.chosen_pcs(),
            expected_hits: self.last_selection.expected_hits,
            extra_lifetime: self.last_selection.extra_lifetime,
            deli_hits: self.deli_hits,
            deli_fills: self.deli_fills,
            deli_occupancy: self.deli_occupancy(),
            deli_capacity: (self.deli_ways * self.array.geometry().num_sets()) as u64,
            top_pcs,
        }
    }

    fn epoch_tick(&mut self) {
        self.accesses_in_epoch += 1;
        if self.accesses_in_epoch >= self.config.epoch_len {
            self.accesses_in_epoch = 0;
            self.run_selection();
        }
    }
}

impl SharedLlc for NuCache {
    fn access(&mut self, core: CoreId, pc: Pc, line: LineAddr, kind: AccessKind) -> AccessOutcome {
        let geom = *self.array.geometry();
        let set = geom.set_of(line);
        let tag = geom.tag_of(line);
        self.monitor.on_set_access(line);
        self.window_accesses += 1;
        self.epoch_tick();

        if let Some(way) = self.array.find(set, tag) {
            self.stats.record_hit();
            self.core_stats[core.index()].record_hit();
            if kind.is_write() {
                self.array.mark_dirty(set, way);
            }
            if way < self.main_ways {
                self.touch_main(set, way);
            } else {
                self.deli_hits += 1;
                // A DeliWays hit is a successful next use after a MainWays
                // eviction: feed it to the monitor so chosen PCs keep
                // their Next-Use evidence instead of oscillating out.
                self.monitor.on_next_use(line);
                if !self.config.promote_on_deli_hit && self.config.deli_hit_refresh {
                    // Second-chance FIFO: an actively reused line moves to
                    // the FIFO tail instead of aging out on schedule.
                    self.stamp += 1;
                    let f = self.frame(set, way);
                    self.deli_entry[f] = self.stamp;
                }
                if self.config.promote_on_deli_hit && self.main_ways > 0 {
                    // Promote the hit line back into the MainWays: free
                    // its DeliWays slot, then displace the MainWays LRU
                    // victim through the normal retirement path (which
                    // admission-checks it into the freed slot only if its
                    // PC is chosen).
                    let deli_meta = self.array.get(set, way).expect("hit way valid");
                    self.array.invalidate(set, way);
                    let mv = self.free_main_way(set).unwrap_or_else(|| self.main_victim(set));
                    if let Some(victim) = self.array.invalidate(set, mv) {
                        if let Some(leaving) = self.retire_from_main(set, victim) {
                            self.stats.record_eviction(leaving.dirty);
                        }
                    }
                    self.array.fill(set, mv, deli_meta);
                    self.touch_main(set, mv);
                }
            }
            if self.audit.is_some() {
                self.audit_access_check();
            }
            return AccessOutcome::Hit;
        }

        self.stats.record_miss();
        self.core_stats[core.index()].record_miss();
        self.tracker.record_miss(pc);
        self.monitor.on_next_use(line);

        // Fill into the MainWays: invalid way first, else LRU victim whose
        // line retires (possibly into the DeliWays).
        let meta = LineMeta::new(tag, core, pc, kind.is_write());
        let (way, leaving) = match self.free_main_way(set) {
            Some(w) => (w, None),
            None => {
                let w = self.main_victim(set);
                let victim = self.array.invalidate(set, w).expect("MainWays full, victim valid");
                (w, self.retire_from_main(set, victim))
            }
        };
        self.array.fill(set, way, meta);
        self.touch_main(set, way);
        if let Some(ev) = leaving {
            self.stats.record_eviction(ev.dirty);
        }
        if self.audit.is_some() {
            self.audit_access_check();
        }
        AccessOutcome::Miss { evicted: leaving }
    }

    fn stats(&self) -> &CacheStats {
        &self.stats
    }

    fn core_stats(&self) -> &[CacheStats] {
        &self.core_stats
    }

    fn reset_stats(&mut self) {
        self.stats.clear();
        self.core_stats.iter_mut().for_each(CacheStats::clear);
        self.deli_hits = 0;
        self.deli_fills = 0;
        if self.audit.is_some() {
            self.audit_snapshot();
        }
    }

    fn geometry(&self) -> &CacheGeometry {
        self.array.geometry()
    }

    fn scheme_name(&self) -> String {
        format!("nucache-d{}", self.deli_ways)
    }

    fn set_telemetry(&mut self, enabled: bool) {
        self.telemetry = enabled;
        if !enabled {
            self.pending_events.clear();
        }
    }

    fn drain_events(&mut self) -> Vec<Event> {
        std::mem::take(&mut self.pending_events)
    }

    fn set_audit(&mut self, enabled: bool) {
        if enabled {
            self.enable_audit();
        } else {
            self.disable_audit();
        }
    }

    fn audit_stats(&self) -> Option<AuditStats> {
        self.audit
            .as_ref()
            .map(|a| AuditStats { array_ops: self.array.audit_ops(), epoch_checks: a.epoch_checks })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SelectionStrategy;

    fn geom(sets: u64, assoc: usize) -> CacheGeometry {
        CacheGeometry::new(64 * assoc as u64 * sets, assoc, 64)
    }

    fn cfg(deli: usize) -> NuCacheConfig {
        NuCacheConfig::default().with_deli_ways(deli).with_epoch_len(1000)
    }

    fn read(llc: &mut NuCache, pc: u64, line: u64) -> AccessOutcome {
        llc.access(CoreId::new(0), Pc::new(pc), LineAddr::new(line), AccessKind::Read)
    }

    /// Sampled monitoring on: shift 0 so every set is observed in tests.
    fn test_config(deli: usize) -> NuCacheConfig {
        let mut c = cfg(deli);
        c.monitor_shift = 0;
        c
    }

    #[test]
    fn basic_hit_miss() {
        let mut llc = NuCache::new(geom(16, 4), 1, test_config(2));
        assert!(read(&mut llc, 1, 5).is_miss());
        assert!(read(&mut llc, 1, 5).is_hit());
    }

    #[test]
    fn unchosen_lines_bypass_deliways() {
        let mut llc = NuCache::new(geom(1, 4), 1, test_config(2));
        // 2 MainWays, 2 DeliWays; nothing chosen yet, so a working set of
        // 3 lines thrashes the 2 MainWays exactly like a 2-way LRU.
        let mut hits = 0;
        for _ in 0..10 {
            for n in 0..3 {
                if read(&mut llc, 1, n).is_hit() {
                    hits += 1;
                }
            }
        }
        assert_eq!(hits, 0);
        assert_eq!(llc.deli_fills(), 0);
    }

    #[test]
    fn chosen_pc_lines_enter_deliways_and_hit() {
        let mut llc = NuCache::new(geom(1, 4), 1, test_config(2));
        llc.chosen.insert(Pc::new(1));
        // 2 MainWays + 2 DeliWays and a 4-line loop from the chosen PC:
        // evicted lines park in the DeliWays and are re-hit.
        let mut hits = 0;
        for _ in 0..20 {
            for n in 0..4 {
                if read(&mut llc, 1, n).is_hit() {
                    hits += 1;
                }
            }
        }
        assert!(llc.deli_fills() > 0, "chosen lines must enter DeliWays");
        assert!(llc.deli_hits() > 0, "DeliWays must produce hits");
        assert!(hits > 40, "retention should convert most misses, got {hits}");
    }

    #[test]
    fn capacity_never_exceeded() {
        let mut llc = NuCache::new(geom(4, 4), 1, test_config(2));
        llc.chosen.insert(Pc::new(1));
        for n in 0..10_000 {
            read(&mut llc, 1, n % 97);
        }
        assert!(llc.array.total_occupancy() <= 16);
    }

    #[test]
    fn cost_benefit_selection_discovers_loop_pc() {
        // One set-heavy scenario: PC 1 loops over a working set that fits
        // only with DeliWays help; PC 2 streams. After a few epochs the
        // selector must choose PC 1 and not PC 2.
        let mut config = test_config(8);
        config.epoch_len = 2_000;
        let mut llc = NuCache::new(geom(64, 16), 1, config);
        let mut stream = 1 << 20;
        for round in 0..30_000u64 {
            // Loop: 12 lines per set over 64 sets = 768 lines; MainWays
            // hold 8/set = 512: thrashes without DeliWays, fits with them.
            read(&mut llc, 1, round % 768);
            if round % 2 == 0 {
                read(&mut llc, 2, stream);
                stream += 1;
            }
        }
        assert!(llc.epochs() >= 2);
        let chosen = llc.chosen_pcs();
        assert!(chosen.contains(&Pc::new(1)), "loop PC must be chosen, got {chosen:?}");
        assert!(!chosen.contains(&Pc::new(2)), "stream PC must not be chosen, got {chosen:?}");
        assert!(llc.deli_hits() > 0);
    }

    #[test]
    fn strategy_none_never_uses_deliways() {
        let mut config = test_config(8).with_strategy(SelectionStrategy::None);
        config.epoch_len = 500;
        let mut llc = NuCache::new(geom(16, 16), 1, config);
        for n in 0..20_000u64 {
            read(&mut llc, 1, n % 300);
        }
        assert_eq!(llc.deli_fills(), 0);
        assert!(llc.epochs() > 0);
    }

    #[test]
    fn deli_hit_promotion_moves_line_to_main() {
        let mut config = test_config(2);
        config.promote_on_deli_hit = true;
        let mut llc = NuCache::new(geom(1, 4), 1, config);
        llc.chosen.insert(Pc::new(1));
        // Fill MainWays with lines 0,1; push 0 into DeliWays with 2.
        read(&mut llc, 1, 0);
        read(&mut llc, 1, 1);
        read(&mut llc, 1, 2); // evicts 0 -> DeliWays
        assert_eq!(llc.deli_fills(), 1);
        assert!(read(&mut llc, 1, 0).is_hit()); // DeliWays hit, promoted
        assert_eq!(llc.deli_hits(), 1);
        // After promotion, 0 sits in the MainWays as MRU: another fill
        // must evict some other line, not 0.
        read(&mut llc, 1, 3);
        assert!(read(&mut llc, 1, 0).is_hit());
    }

    #[test]
    fn deli_hit_refresh_extends_retention() {
        // Without refresh: lines 0 and 1 are pushed into the 2-deep FIFO,
        // then recurring hits on 0 do not save it from being dropped when
        // two more lines arrive. With refresh, the hit moves 0 to the
        // FIFO tail, so the *unused* line is dropped instead.
        let run = |refresh: bool| {
            let mut config = test_config(2);
            config.promote_on_deli_hit = false;
            config.deli_hit_refresh = refresh;
            let mut llc = NuCache::new(geom(1, 4), 1, config);
            llc.chosen.insert(Pc::new(1));
            read(&mut llc, 1, 0);
            read(&mut llc, 1, 1);
            read(&mut llc, 1, 2); // evicts 0 -> FIFO
            read(&mut llc, 1, 3); // evicts 1 -> FIFO (0 is FIFO head)
            assert!(read(&mut llc, 1, 0).is_hit()); // deli hit on 0
                                                    // One more arrival: pure FIFO drops head (= 0); with refresh
                                                    // the hit moved 0 to the tail, so 1 is dropped instead.
            read(&mut llc, 1, 4); // evicts 2 -> FIFO drops one line
            read(&mut llc, 1, 0).is_hit()
        };
        assert!(!run(false), "pure FIFO drops the reused line on schedule");
        assert!(run(true), "second-chance FIFO keeps the reused line");
    }

    #[test]
    fn telemetry_emits_one_event_per_epoch() {
        let mut config = test_config(8);
        config.epoch_len = 2_000;
        let mut llc = NuCache::new(geom(64, 16), 1, config);
        llc.set_telemetry(true);
        for round in 0..10_000u64 {
            read(&mut llc, 1, round % 768);
        }
        let events = llc.drain_events();
        assert_eq!(events.len() as u64, llc.epochs());
        assert!(!events.is_empty());
        let Event::SelectionEpoch { epoch, chosen, deli_capacity, top_pcs, .. } = &events[0] else {
            panic!("expected a selection epoch, got {events:?}");
        };
        assert_eq!(*epoch, 1);
        assert_eq!(*deli_capacity, 8 * 64);
        assert!(top_pcs.iter().any(|p| p.fills > 0), "candidates carry fill counts");
        for pc in chosen {
            assert!(top_pcs.iter().any(|p| p.pc == *pc && p.chosen), "chosen PCs flagged");
        }
        assert!(llc.drain_events().is_empty(), "drain consumes the buffer");
    }

    #[test]
    fn telemetry_disabled_buffers_nothing() {
        let mut config = test_config(2);
        config.epoch_len = 500;
        let mut llc = NuCache::new(geom(16, 4), 1, config);
        for n in 0..5_000u64 {
            read(&mut llc, 1, n % 40);
        }
        assert!(llc.epochs() > 0);
        assert!(llc.drain_events().is_empty());
        // Disabling clears anything pending.
        llc.set_telemetry(true);
        for n in 0..1_000u64 {
            read(&mut llc, 1, n % 40);
        }
        llc.set_telemetry(false);
        assert!(llc.drain_events().is_empty());
    }

    #[test]
    fn deli_occupancy_counts_valid_deli_lines() {
        let mut llc = NuCache::new(geom(1, 4), 1, test_config(2));
        llc.chosen.insert(Pc::new(1));
        assert_eq!(llc.deli_occupancy(), 0);
        read(&mut llc, 1, 0);
        read(&mut llc, 1, 1);
        read(&mut llc, 1, 2); // evicts 0 -> DeliWays
        assert_eq!(llc.deli_occupancy(), 1);
        read(&mut llc, 1, 3); // evicts 1 -> DeliWays
        assert_eq!(llc.deli_occupancy(), 2);
    }

    #[test]
    fn scheme_name_reports_deliways() {
        let llc = NuCache::new(geom(16, 16), 1, test_config(4));
        assert_eq!(llc.scheme_name(), "nucache-d4");
        assert_eq!(llc.main_ways(), 12);
    }

    #[test]
    fn per_core_stats_attributed() {
        let mut llc = NuCache::new(geom(16, 4), 2, test_config(2));
        llc.access(CoreId::new(1), Pc::new(9), LineAddr::new(3), AccessKind::Read);
        llc.access(CoreId::new(1), Pc::new(9), LineAddr::new(3), AccessKind::Read);
        assert_eq!(llc.core_stats()[1].hits, 1);
        assert_eq!(llc.core_stats()[0].accesses(), 0);
    }

    #[test]
    fn reset_stats_keeps_learning_state() {
        let mut config = test_config(2);
        config.epoch_len = 100;
        let mut llc = NuCache::new(geom(16, 4), 1, config);
        for n in 0..500 {
            read(&mut llc, 1, n % 40);
        }
        let epochs = llc.epochs();
        llc.reset_stats();
        assert_eq!(llc.stats().accesses(), 0);
        assert_eq!(llc.deli_hits(), 0);
        assert_eq!(llc.epochs(), epochs, "selection state survives reset");
    }

    #[test]
    fn audited_run_checks_epochs_and_matches_unaudited() {
        let mut config = test_config(4);
        config.epoch_len = 500;
        let run = |audit: bool| {
            let mut llc = NuCache::new(geom(16, 8), 1, config);
            if audit {
                llc.enable_audit();
            } else {
                // With the debug_invariants feature on, constructors
                // auto-enable auditing; this arm wants a truly plain run.
                llc.disable_audit();
            }
            for n in 0..10_000u64 {
                read(&mut llc, 1 + n % 3, n % 90);
            }
            let summary = (llc.stats().hits, llc.stats().misses, llc.deli_hits(), llc.chosen_pcs());
            (summary, llc.audit_stats())
        };
        let (plain, none) = run(false);
        let (audited, stats) = run(true);
        assert_eq!(none, None);
        assert_eq!(plain, audited, "auditing must not perturb simulation results");
        let stats = stats.expect("auditing was on");
        assert!(stats.array_ops > 0, "array mirror must have been exercised");
        assert!(stats.epoch_checks > 0, "epoch invariants must have been checked");
    }

    #[test]
    fn disable_audit_stops_checking() {
        let mut llc = NuCache::new(geom(16, 4), 1, test_config(2));
        llc.enable_audit();
        read(&mut llc, 1, 5);
        assert!(llc.audit_stats().is_some());
        llc.disable_audit();
        assert_eq!(llc.audit_stats(), None);
        read(&mut llc, 1, 6);
    }

    #[test]
    #[should_panic(expected = "audit: DeliWays hits")]
    fn audit_catches_corrupted_counter() {
        let mut llc = NuCache::new(geom(16, 4), 1, test_config(2));
        llc.enable_audit();
        read(&mut llc, 1, 5);
        llc.deli_hits = 10_000; // corrupt: more deli hits than total hits
        read(&mut llc, 1, 5);
    }

    #[test]
    fn dirty_bit_survives_deliways_transit() {
        let mut llc = NuCache::new(geom(1, 4), 1, test_config(2));
        llc.chosen.insert(Pc::new(1));
        llc.access(CoreId::new(0), Pc::new(1), LineAddr::new(0), AccessKind::Write);
        read(&mut llc, 1, 1);
        read(&mut llc, 1, 2); // dirty 0 -> DeliWays
        read(&mut llc, 1, 3); // dirty 1 -> DeliWays
                              // Push 0 out of the DeliWays FIFO: two more chosen evictions.
        read(&mut llc, 1, 4); // evicts 2 -> DeliWays, FIFO drops 0
        let out = read(&mut llc, 1, 5);
        // The drop of a dirty line must be visible as a writeback
        // eviction at some point.
        let _ = out;
        assert!(llc.stats().writebacks >= 1, "dirty line leaving must count as writeback");
    }
}
