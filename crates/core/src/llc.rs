//! The NUcache LLC organization: a thin simulator adapter over the
//! embeddable [`nucache_kernel`] state machine.
//!
//! The MainWays/DeliWays replacement logic, the Next-Use monitor, the
//! delinquent tracker and the epoch selection all live in
//! [`NucacheKernel`]; this adapter maps the simulator's vocabulary onto
//! the kernel's keyed API:
//!
//! * key — the raw [`LineAddr`] (`line.0`); the kernel's set/tag split
//!   is exactly the geometry's;
//! * insertion class — the allocating [`Pc`] (the paper's DelinquentPC);
//! * value — the per-line simulator state (the private `LineInfo`:
//!   allocating core + dirty bit);
//!
//! and layers on what only the simulator cares about: per-core stats
//! attribution, write-back accounting, [`Event`] telemetry conversion
//! and the [`SharedLlc`] trait surface the driver's monomorphized hot
//! loop dispatches on.

use crate::config::NuCacheConfig;
use crate::delinquent::DelinquentTracker;
use crate::monitor::NextUseMonitor;
use crate::selector::Selection;
use nucache_cache::meta::{AccessOutcome, EvictedLine};
use nucache_cache::{AuditStats, CacheGeometry, SharedLlc};
use nucache_common::telemetry::{Event, PcSnapshot};
use nucache_common::{AccessKind, CacheStats, CoreId, LineAddr, Pc};
use nucache_kernel::{Evicted, Lookup, NucacheKernel};

/// Per-line simulator state stored as the kernel's value type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct LineInfo {
    core: CoreId,
    dirty: bool,
}

/// A shared LLC organized as NUcache.
///
/// Each set's ways are split into `M` MainWays (LRU, all lines) and `D`
/// DeliWays (FIFO, only lines allocated by the currently chosen
/// delinquent PCs, entered on eviction from the MainWays). A sampled
/// Next-Use monitor and a per-PC miss tracker feed the epoch-based
/// cost-benefit PC selection.
///
/// # Examples
///
/// ```
/// use nucache_cache::{CacheGeometry, SharedLlc};
/// use nucache_core::{NuCache, NuCacheConfig};
/// let geom = CacheGeometry::new(512 * 1024, 16, 64);
/// let llc = NuCache::new(geom, 2, NuCacheConfig::default().with_deli_ways(8));
/// assert_eq!(llc.main_ways(), 8);
/// assert_eq!(llc.deli_ways(), 8);
/// ```
#[derive(Debug)]
pub struct NuCache {
    kernel: NucacheKernel<LineInfo, Pc>,
    geom: CacheGeometry,
    config: NuCacheConfig,
    stats: CacheStats,
    core_stats: Vec<CacheStats>,
}

impl NuCache {
    /// Creates a NUcache LLC for `num_cores` cores.
    ///
    /// # Panics
    ///
    /// Panics if `num_cores` is zero or the configuration is invalid for
    /// the geometry (see [`NuCacheConfig::validate`]).
    pub fn new(geom: CacheGeometry, num_cores: usize, config: NuCacheConfig) -> Self {
        assert!(num_cores > 0, "need at least one core");
        config.validate(geom.associativity());
        let kc = config.to_kernel(geom.num_sets(), geom.associativity());
        #[allow(unused_mut)] // mut only needed under debug_invariants
        let mut llc = NuCache {
            kernel: NucacheKernel::init(kc).expect("NuCacheConfig::validate covers kernel rules"),
            geom,
            config,
            stats: CacheStats::default(),
            core_stats: vec![CacheStats::default(); num_cores],
        };
        #[cfg(feature = "debug_invariants")]
        llc.enable_audit();
        llc
    }

    /// Enables the differential audit oracle: the kernel mirrors every
    /// array operation into a naive reference model of residency and
    /// each selection epoch verifies NUcache's invariants (DeliWays
    /// occupancy within capacity, monotone counters, selection objective
    /// reproducible from the candidates). The adapter additionally
    /// cross-checks per-core stats attribution against the aggregate on
    /// every access. Violations panic at the faulting operation.
    pub fn enable_audit(&mut self) {
        self.kernel.enable_audit();
    }

    /// Disables the audit oracle and drops its mirror state.
    pub fn disable_audit(&mut self) {
        self.kernel.disable_audit();
    }

    /// Per-core attribution check, the one audit invariant that lives in
    /// the adapter (the kernel has no notion of cores).
    #[cold]
    #[inline(never)]
    fn audit_core_attribution(&self) {
        let core_hits: u64 = self.core_stats.iter().map(|c| c.hits).sum();
        let core_misses: u64 = self.core_stats.iter().map(|c| c.misses).sum();
        assert_eq!(
            (core_hits, core_misses),
            (self.stats.hits, self.stats.misses),
            "audit: per-core counters must sum to the aggregate"
        );
    }

    /// Number of MainWays per set.
    pub const fn main_ways(&self) -> usize {
        self.kernel.main_ways()
    }

    /// Number of DeliWays per set.
    pub const fn deli_ways(&self) -> usize {
        self.kernel.deli_ways()
    }

    /// The active configuration.
    pub const fn config(&self) -> &NuCacheConfig {
        &self.config
    }

    /// PCs currently admitted to the DeliWays.
    pub fn chosen_pcs(&self) -> Vec<Pc> {
        self.kernel.chosen_classes()
    }

    /// The outcome of the most recent selection pass.
    pub const fn last_selection(&self) -> &Selection {
        self.kernel.last_selection()
    }

    /// Completed selection epochs.
    pub const fn epochs(&self) -> u64 {
        self.kernel.epochs()
    }

    /// Hits satisfied from the DeliWays.
    pub const fn deli_hits(&self) -> u64 {
        self.kernel.deli_hits()
    }

    /// Lines moved from MainWays into DeliWays.
    pub const fn deli_fills(&self) -> u64 {
        self.kernel.deli_fills()
    }

    /// Read access to the delinquent-PC tracker (Fig. 1 uses this).
    pub const fn tracker(&self) -> &DelinquentTracker {
        self.kernel.tracker()
    }

    /// Read access to the Next-Use monitor (Fig. 2 uses this).
    pub const fn monitor(&self) -> &NextUseMonitor {
        self.kernel.monitor()
    }

    /// Current combined fill counts (demand misses + DeliWays insertions)
    /// per PC, descending — the quantity candidate ranking and the
    /// lifetime cost model use. Exposed for diagnostics and tests.
    pub fn combined_fills(&self) -> Vec<(Pc, u64)> {
        self.kernel.combined_fills()
    }

    /// Access denominator the selector pairs with
    /// [`NuCache::combined_fills`] (global accesses in the decay window).
    pub fn selection_accesses(&self) -> u64 {
        self.kernel.selection_accesses()
    }

    /// Valid lines currently resident in the DeliWays across all sets.
    pub fn deli_occupancy(&self) -> u64 {
        self.kernel.deli_occupancy()
    }

    /// Maps an eviction leaving the kernel back into the simulator's
    /// vocabulary.
    fn to_evicted_line(ev: Evicted<LineInfo, Pc>) -> EvictedLine {
        EvictedLine {
            line: LineAddr::new(ev.key),
            dirty: ev.value.dirty,
            core: ev.value.core,
            pc: ev.class,
        }
    }
}

impl SharedLlc for NuCache {
    fn access(&mut self, core: CoreId, pc: Pc, line: LineAddr, kind: AccessKind) -> AccessOutcome {
        // First phase against the kernel: the lookup. Owned results are
        // extracted immediately so the miss path can call back into the
        // kernel for the fill.
        let hit = match self.kernel.get(line.0, pc) {
            Lookup::Hit { value, evicted, .. } => {
                if kind.is_write() {
                    value.dirty = true;
                }
                Some(evicted)
            }
            Lookup::Miss => None,
        };

        let outcome = if let Some(promotion_eviction) = hit {
            self.stats.record_hit();
            self.core_stats[core.index()].record_hit();
            // A DeliWays-hit promotion can displace a MainWays victim out
            // of the cache entirely; that leaves through here and only
            // its write-back matters to the outer layers.
            if let Some(ev) = promotion_eviction {
                self.stats.record_eviction(ev.value.dirty);
            }
            AccessOutcome::Hit
        } else {
            self.stats.record_miss();
            self.core_stats[core.index()].record_miss();
            let leaving = self
                .kernel
                .put(line.0, pc, LineInfo { core, dirty: kind.is_write() })
                .map(Self::to_evicted_line);
            if let Some(ev) = &leaving {
                self.stats.record_eviction(ev.dirty);
            }
            AccessOutcome::Miss { evicted: leaving }
        };
        if self.kernel.audit_enabled() {
            self.audit_core_attribution();
        }
        outcome
    }

    fn stats(&self) -> &CacheStats {
        &self.stats
    }

    fn core_stats(&self) -> &[CacheStats] {
        &self.core_stats
    }

    fn reset_stats(&mut self) {
        self.stats.clear();
        self.core_stats.iter_mut().for_each(CacheStats::clear);
        self.kernel.reset_stats();
    }

    fn geometry(&self) -> &CacheGeometry {
        &self.geom
    }

    fn scheme_name(&self) -> String {
        format!("nucache-d{}", self.deli_ways())
    }

    fn set_telemetry(&mut self, enabled: bool) {
        self.kernel.set_telemetry(enabled);
    }

    fn drain_events(&mut self) -> Vec<Event> {
        self.kernel
            .drain_epochs()
            .into_iter()
            .map(|s| Event::SelectionEpoch {
                epoch: s.epoch,
                window_accesses: s.window_accesses,
                chosen: s.chosen,
                expected_hits: s.expected_hits,
                extra_lifetime: s.extra_lifetime,
                deli_hits: s.deli_hits,
                deli_fills: s.deli_fills,
                deli_occupancy: s.deli_occupancy,
                deli_capacity: s.deli_capacity,
                top_pcs: s
                    .top_classes
                    .into_iter()
                    .map(|c| PcSnapshot {
                        pc: c.class,
                        fills: c.fills,
                        chosen: c.chosen,
                        samples: c.samples,
                        p25: c.p25,
                        p50: c.p50,
                        p75: c.p75,
                        p90: c.p90,
                    })
                    .collect(),
            })
            .collect()
    }

    fn set_audit(&mut self, enabled: bool) {
        if enabled {
            self.enable_audit();
        } else {
            self.disable_audit();
        }
    }

    fn audit_stats(&self) -> Option<AuditStats> {
        self.kernel.audit_enabled().then(|| AuditStats {
            array_ops: self.kernel.audit_ops(),
            epoch_checks: self.kernel.epoch_checks(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SelectionStrategy;

    fn geom(sets: u64, assoc: usize) -> CacheGeometry {
        CacheGeometry::new(64 * assoc as u64 * sets, assoc, 64)
    }

    fn cfg(deli: usize) -> NuCacheConfig {
        NuCacheConfig::default().with_deli_ways(deli).with_epoch_len(1000)
    }

    fn read(llc: &mut NuCache, pc: u64, line: u64) -> AccessOutcome {
        llc.access(CoreId::new(0), Pc::new(pc), LineAddr::new(line), AccessKind::Read)
    }

    /// Sampled monitoring on: shift 0 so every set is observed in tests.
    fn test_config(deli: usize) -> NuCacheConfig {
        let mut c = cfg(deli);
        c.monitor_shift = 0;
        c
    }

    #[test]
    fn basic_hit_miss() {
        let mut llc = NuCache::new(geom(16, 4), 1, test_config(2));
        assert!(read(&mut llc, 1, 5).is_miss());
        assert!(read(&mut llc, 1, 5).is_hit());
    }

    #[test]
    fn unchosen_lines_bypass_deliways() {
        let mut llc = NuCache::new(geom(1, 4), 1, test_config(2));
        // 2 MainWays, 2 DeliWays; nothing chosen yet, so a working set of
        // 3 lines thrashes the 2 MainWays exactly like a 2-way LRU.
        let mut hits = 0;
        for _ in 0..10 {
            for n in 0..3 {
                if read(&mut llc, 1, n).is_hit() {
                    hits += 1;
                }
            }
        }
        assert_eq!(hits, 0);
        assert_eq!(llc.deli_fills(), 0);
    }

    #[test]
    fn chosen_pc_lines_enter_deliways_and_hit() {
        let mut llc = NuCache::new(geom(1, 4), 1, test_config(2));
        llc.kernel.force_chosen(&[Pc::new(1)]);
        // 2 MainWays + 2 DeliWays and a 4-line loop from the chosen PC:
        // evicted lines park in the DeliWays and are re-hit.
        let mut hits = 0;
        for _ in 0..20 {
            for n in 0..4 {
                if read(&mut llc, 1, n).is_hit() {
                    hits += 1;
                }
            }
        }
        assert!(llc.deli_fills() > 0, "chosen lines must enter DeliWays");
        assert!(llc.deli_hits() > 0, "DeliWays must produce hits");
        assert!(hits > 40, "retention should convert most misses, got {hits}");
    }

    #[test]
    fn capacity_never_exceeded() {
        let mut llc = NuCache::new(geom(4, 4), 1, test_config(2));
        llc.kernel.force_chosen(&[Pc::new(1)]);
        for n in 0..10_000 {
            read(&mut llc, 1, n % 97);
        }
        assert!(llc.kernel.len() <= 16);
    }

    #[test]
    fn cost_benefit_selection_discovers_loop_pc() {
        // One set-heavy scenario: PC 1 loops over a working set that fits
        // only with DeliWays help; PC 2 streams. After a few epochs the
        // selector must choose PC 1 and not PC 2.
        let mut config = test_config(8);
        config.epoch_len = 2_000;
        let mut llc = NuCache::new(geom(64, 16), 1, config);
        let mut stream = 1 << 20;
        for round in 0..30_000u64 {
            // Loop: 12 lines per set over 64 sets = 768 lines; MainWays
            // hold 8/set = 512: thrashes without DeliWays, fits with them.
            read(&mut llc, 1, round % 768);
            if round % 2 == 0 {
                read(&mut llc, 2, stream);
                stream += 1;
            }
        }
        assert!(llc.epochs() >= 2);
        let chosen = llc.chosen_pcs();
        assert!(chosen.contains(&Pc::new(1)), "loop PC must be chosen, got {chosen:?}");
        assert!(!chosen.contains(&Pc::new(2)), "stream PC must not be chosen, got {chosen:?}");
        assert!(llc.deli_hits() > 0);
    }

    #[test]
    fn strategy_none_never_uses_deliways() {
        let mut config = test_config(8).with_strategy(SelectionStrategy::None);
        config.epoch_len = 500;
        let mut llc = NuCache::new(geom(16, 16), 1, config);
        for n in 0..20_000u64 {
            read(&mut llc, 1, n % 300);
        }
        assert_eq!(llc.deli_fills(), 0);
        assert!(llc.epochs() > 0);
    }

    #[test]
    fn deli_hit_promotion_moves_line_to_main() {
        let mut config = test_config(2);
        config.promote_on_deli_hit = true;
        let mut llc = NuCache::new(geom(1, 4), 1, config);
        llc.kernel.force_chosen(&[Pc::new(1)]);
        // Fill MainWays with lines 0,1; push 0 into DeliWays with 2.
        read(&mut llc, 1, 0);
        read(&mut llc, 1, 1);
        read(&mut llc, 1, 2); // evicts 0 -> DeliWays
        assert_eq!(llc.deli_fills(), 1);
        assert!(read(&mut llc, 1, 0).is_hit()); // DeliWays hit, promoted
        assert_eq!(llc.deli_hits(), 1);
        // After promotion, 0 sits in the MainWays as MRU: another fill
        // must evict some other line, not 0.
        read(&mut llc, 1, 3);
        assert!(read(&mut llc, 1, 0).is_hit());
    }

    #[test]
    fn deli_hit_refresh_extends_retention() {
        // Without refresh: lines 0 and 1 are pushed into the 2-deep FIFO,
        // then recurring hits on 0 do not save it from being dropped when
        // two more lines arrive. With refresh, the hit moves 0 to the
        // FIFO tail, so the *unused* line is dropped instead.
        let run = |refresh: bool| {
            let mut config = test_config(2);
            config.promote_on_deli_hit = false;
            config.deli_hit_refresh = refresh;
            let mut llc = NuCache::new(geom(1, 4), 1, config);
            llc.kernel.force_chosen(&[Pc::new(1)]);
            read(&mut llc, 1, 0);
            read(&mut llc, 1, 1);
            read(&mut llc, 1, 2); // evicts 0 -> FIFO
            read(&mut llc, 1, 3); // evicts 1 -> FIFO (0 is FIFO head)
            assert!(read(&mut llc, 1, 0).is_hit()); // deli hit on 0
                                                    // One more arrival: pure FIFO drops head (= 0); with refresh
                                                    // the hit moved 0 to the tail, so 1 is dropped instead.
            read(&mut llc, 1, 4); // evicts 2 -> FIFO drops one line
            read(&mut llc, 1, 0).is_hit()
        };
        assert!(!run(false), "pure FIFO drops the reused line on schedule");
        assert!(run(true), "second-chance FIFO keeps the reused line");
    }

    #[test]
    fn telemetry_emits_one_event_per_epoch() {
        let mut config = test_config(8);
        config.epoch_len = 2_000;
        let mut llc = NuCache::new(geom(64, 16), 1, config);
        llc.set_telemetry(true);
        for round in 0..10_000u64 {
            read(&mut llc, 1, round % 768);
        }
        let events = llc.drain_events();
        assert_eq!(events.len() as u64, llc.epochs());
        assert!(!events.is_empty());
        let Event::SelectionEpoch { epoch, chosen, deli_capacity, top_pcs, .. } = &events[0] else {
            panic!("expected a selection epoch, got {events:?}");
        };
        assert_eq!(*epoch, 1);
        assert_eq!(*deli_capacity, 8 * 64);
        assert!(top_pcs.iter().any(|p| p.fills > 0), "candidates carry fill counts");
        for pc in chosen {
            assert!(top_pcs.iter().any(|p| p.pc == *pc && p.chosen), "chosen PCs flagged");
        }
        assert!(llc.drain_events().is_empty(), "drain consumes the buffer");
    }

    #[test]
    fn telemetry_disabled_buffers_nothing() {
        let mut config = test_config(2);
        config.epoch_len = 500;
        let mut llc = NuCache::new(geom(16, 4), 1, config);
        for n in 0..5_000u64 {
            read(&mut llc, 1, n % 40);
        }
        assert!(llc.epochs() > 0);
        assert!(llc.drain_events().is_empty());
        // Disabling clears anything pending.
        llc.set_telemetry(true);
        for n in 0..1_000u64 {
            read(&mut llc, 1, n % 40);
        }
        llc.set_telemetry(false);
        assert!(llc.drain_events().is_empty());
    }

    #[test]
    fn deli_occupancy_counts_valid_deli_lines() {
        let mut llc = NuCache::new(geom(1, 4), 1, test_config(2));
        llc.kernel.force_chosen(&[Pc::new(1)]);
        assert_eq!(llc.deli_occupancy(), 0);
        read(&mut llc, 1, 0);
        read(&mut llc, 1, 1);
        read(&mut llc, 1, 2); // evicts 0 -> DeliWays
        assert_eq!(llc.deli_occupancy(), 1);
        read(&mut llc, 1, 3); // evicts 1 -> DeliWays
        assert_eq!(llc.deli_occupancy(), 2);
    }

    #[test]
    fn scheme_name_reports_deliways() {
        let llc = NuCache::new(geom(16, 16), 1, test_config(4));
        assert_eq!(llc.scheme_name(), "nucache-d4");
        assert_eq!(llc.main_ways(), 12);
    }

    #[test]
    fn per_core_stats_attributed() {
        let mut llc = NuCache::new(geom(16, 4), 2, test_config(2));
        llc.access(CoreId::new(1), Pc::new(9), LineAddr::new(3), AccessKind::Read);
        llc.access(CoreId::new(1), Pc::new(9), LineAddr::new(3), AccessKind::Read);
        assert_eq!(llc.core_stats()[1].hits, 1);
        assert_eq!(llc.core_stats()[0].accesses(), 0);
    }

    #[test]
    fn reset_stats_keeps_learning_state() {
        let mut config = test_config(2);
        config.epoch_len = 100;
        let mut llc = NuCache::new(geom(16, 4), 1, config);
        for n in 0..500 {
            read(&mut llc, 1, n % 40);
        }
        let epochs = llc.epochs();
        llc.reset_stats();
        assert_eq!(llc.stats().accesses(), 0);
        assert_eq!(llc.deli_hits(), 0);
        assert_eq!(llc.epochs(), epochs, "selection state survives reset");
    }

    #[test]
    fn audited_run_checks_epochs_and_matches_unaudited() {
        let mut config = test_config(4);
        config.epoch_len = 500;
        let run = |audit: bool| {
            let mut llc = NuCache::new(geom(16, 8), 1, config);
            if audit {
                llc.enable_audit();
            } else {
                // With the debug_invariants feature on, constructors
                // auto-enable auditing; this arm wants a truly plain run.
                llc.disable_audit();
            }
            for n in 0..10_000u64 {
                read(&mut llc, 1 + n % 3, n % 90);
            }
            let summary = (llc.stats().hits, llc.stats().misses, llc.deli_hits(), llc.chosen_pcs());
            (summary, llc.audit_stats())
        };
        let (plain, none) = run(false);
        let (audited, stats) = run(true);
        assert_eq!(none, None);
        assert_eq!(plain, audited, "auditing must not perturb simulation results");
        let stats = stats.expect("auditing was on");
        assert!(stats.array_ops > 0, "array mirror must have been exercised");
        assert!(stats.epoch_checks > 0, "epoch invariants must have been checked");
    }

    #[test]
    fn disable_audit_stops_checking() {
        let mut llc = NuCache::new(geom(16, 4), 1, test_config(2));
        llc.enable_audit();
        read(&mut llc, 1, 5);
        assert!(llc.audit_stats().is_some());
        llc.disable_audit();
        assert_eq!(llc.audit_stats(), None);
        read(&mut llc, 1, 6);
    }

    #[test]
    #[should_panic(expected = "audit: per-core counters")]
    fn audit_catches_misattributed_stats() {
        let mut llc = NuCache::new(geom(16, 4), 2, test_config(2));
        llc.enable_audit();
        read(&mut llc, 1, 5);
        llc.core_stats[1].hits = 10_000; // corrupt: attribution out of sync
        read(&mut llc, 1, 5);
    }

    #[test]
    fn dirty_bit_survives_deliways_transit() {
        let mut llc = NuCache::new(geom(1, 4), 1, test_config(2));
        llc.kernel.force_chosen(&[Pc::new(1)]);
        llc.access(CoreId::new(0), Pc::new(1), LineAddr::new(0), AccessKind::Write);
        read(&mut llc, 1, 1);
        read(&mut llc, 1, 2); // dirty 0 -> DeliWays
        read(&mut llc, 1, 3); // dirty 1 -> DeliWays
                              // Push 0 out of the DeliWays FIFO: two more chosen evictions.
        read(&mut llc, 1, 4); // evicts 2 -> DeliWays, FIFO drops 0
        let out = read(&mut llc, 1, 5);
        // The drop of a dirty line must be visible as a writeback
        // eviction at some point.
        let _ = out;
        assert!(llc.stats().writebacks >= 1, "dirty line leaving must count as writeback");
    }
}
