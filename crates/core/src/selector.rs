//! Epoch PC selection — the kernel's generic cost-benefit machinery,
//! keyed by PC.
//!
//! The strategies (greedy cost-benefit, exhaustive oracle, static top-k,
//! random, none) live in [`nucache_kernel::selector`]; this module pins
//! the insertion-class parameter to [`Pc`] and keeps the historical
//! `select_pcs` name.

use nucache_common::Pc;

pub use nucache_kernel::selector::{build_candidates, evaluate_chosen};

/// Computes the chosen PC set for the next epoch (the kernel's
/// [`select_classes`](nucache_kernel::selector::select_classes) under
/// its simulator-era name).
pub use nucache_kernel::selector::select_classes as select_pcs;

/// One delinquent PC up for selection.
pub type Candidate = nucache_kernel::Candidate<Pc>;

/// The outcome of a selection pass.
pub type Selection = nucache_kernel::Selection<Pc>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SelectionStrategy;
    use nucache_common::Log2Histogram;

    #[test]
    fn pc_instantiation_selects_reusable_pc() {
        let mut near = Log2Histogram::new(16);
        for _ in 0..100 {
            near.record(8);
        }
        let candidates = vec![
            Candidate { class: Pc::new(1), fills: 500, histogram: Some(near) },
            Candidate { class: Pc::new(2), fills: 500, histogram: None },
        ];
        let sel = select_pcs(&candidates, 4, 10_000, SelectionStrategy::CostBenefit, 1);
        assert_eq!(sel.chosen, vec![Pc::new(1)]);
        assert!(sel.expected_hits > 0);
    }
}
