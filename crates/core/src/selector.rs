//! Cost-benefit PC selection.
//!
//! Given the epoch's delinquent-PC candidates, their measured fill
//! (miss) counts, and their Next-Use histograms, choose the subset of PCs
//! whose lines should be admitted into the DeliWays.
//!
//! The trade-off: with `D` DeliWays per set and a chosen set `S` whose
//! members fill at a combined rate of `r(S)` fills per set-access, the
//! FIFO grants each admitted line an extra lifetime of about `D / r(S)`
//! set-accesses. A PC's benefit is its Next-Use histogram mass at or
//! below that lifetime — evictions that would have been re-requested in
//! time. Adding a PC adds its benefit but raises `r(S)`, shrinking the
//! lifetime for everyone; the selection maximizes the *total* expected
//! DeliWays hits.

use crate::config::SelectionStrategy;
use nucache_common::{DetRng, Log2Histogram, Pc};
use std::collections::BTreeMap;

/// One candidate PC presented to the selector.
#[derive(Debug, Clone)]
pub struct Candidate {
    /// The PC.
    pub pc: Pc,
    /// Fills (misses) attributed to the PC this epoch.
    pub fills: u64,
    /// Next-Use histogram measured for the PC (distances in
    /// set-accesses), if the monitor captured any.
    pub histogram: Option<Log2Histogram>,
}

/// Outcome of a selection pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Selection {
    /// The chosen PCs.
    pub chosen: Vec<Pc>,
    /// Expected DeliWays hits per epoch for the chosen set (the
    /// objective value; 0 for the non-analytic strategies).
    pub expected_hits: u64,
    /// The extra lifetime (set-accesses) the chosen set enjoys.
    pub extra_lifetime: u64,
}

/// Expected extra lifetime for a combined fill count, given the epoch's
/// sampled set-accesses and the DeliWays depth.
///
/// `fills` and `accesses` must be measured over the same window (the
/// monitor's sampled sets); the result is in set-accesses.
fn extra_lifetime(deli_ways: usize, fills: u64, accesses: u64) -> u64 {
    if fills == 0 {
        return u64::MAX;
    }
    // lifetime = D / (fills per set-access) = D * accesses / fills
    (deli_ways as u64).saturating_mul(accesses) / fills
}

/// Objective: expected DeliWays hits for subset `idx` of `candidates`.
fn expected_hits(
    candidates: &[Candidate],
    idx: &[usize],
    deli_ways: usize,
    accesses: u64,
) -> (u64, u64) {
    let fills: u64 = idx.iter().map(|&i| candidates[i].fills).sum();
    let life = extra_lifetime(deli_ways, fills, accesses);
    let hits =
        idx.iter().map(|&i| candidates[i].histogram.as_ref().map_or(0, |h| h.count_le(life))).sum();
    (hits, life)
}

/// Recomputes the selection objective for an explicit chosen PC set.
///
/// The audit oracle uses this to cross-check a [`Selection`] produced by
/// the analytic strategies: re-deriving `(expected_hits, extra_lifetime)`
/// for `selection.chosen` from the same candidates must reproduce the
/// values the strategy reported.
///
/// Returns `None` when a chosen PC is not among the candidates (itself an
/// invariant violation the caller reports).
pub fn evaluate_chosen(
    candidates: &[Candidate],
    chosen: &[Pc],
    deli_ways: usize,
    accesses: u64,
) -> Option<(u64, u64)> {
    let idx: Vec<usize> = chosen
        .iter()
        .map(|pc| candidates.iter().position(|c| c.pc == *pc))
        .collect::<Option<_>>()?;
    Some(expected_hits(candidates, &idx, deli_ways, accesses))
}

/// Runs the configured selection strategy.
///
/// `accesses` is the number of set-accesses observed by the monitor over
/// the same window as the candidates' `fills` (both come from the sampled
/// sets, so their ratio is the per-set fill rate).
///
/// # Examples
///
/// ```
/// use nucache_core::selector::{select_pcs, Candidate};
/// use nucache_core::SelectionStrategy;
/// use nucache_common::{Log2Histogram, Pc};
///
/// let mut h = Log2Histogram::new(16);
/// h.record_n(10, 100); // reused soon after eviction
/// let cands = vec![Candidate { pc: Pc::new(1), fills: 50, histogram: Some(h) }];
/// let sel = select_pcs(&cands, 8, 10_000, SelectionStrategy::CostBenefit, 0);
/// assert_eq!(sel.chosen, vec![Pc::new(1)]);
/// ```
pub fn select_pcs(
    candidates: &[Candidate],
    deli_ways: usize,
    accesses: u64,
    strategy: SelectionStrategy,
    seed: u64,
) -> Selection {
    match strategy {
        SelectionStrategy::CostBenefit => greedy_cost_benefit(candidates, deli_ways, accesses),
        SelectionStrategy::Exhaustive => exhaustive(candidates, deli_ways, accesses),
        SelectionStrategy::StaticTopK(k) => {
            let mut by_fills: Vec<usize> = (0..candidates.len()).collect();
            by_fills.sort_by(|&a, &b| {
                candidates[b]
                    .fills
                    .cmp(&candidates[a].fills)
                    .then(candidates[a].pc.cmp(&candidates[b].pc))
            });
            let idx: Vec<usize> = by_fills.into_iter().take(k).collect();
            let (hits, life) = expected_hits(candidates, &idx, deli_ways, accesses);
            Selection {
                chosen: idx.iter().map(|&i| candidates[i].pc).collect(),
                expected_hits: hits,
                extra_lifetime: life,
            }
        }
        SelectionStrategy::Random(k) => {
            let mut rng = DetRng::substream(seed, 0x5e1ec7);
            let mut idx: Vec<usize> = (0..candidates.len()).collect();
            rng.shuffle(&mut idx);
            idx.truncate(k);
            idx.sort_unstable();
            let (hits, life) = expected_hits(candidates, &idx, deli_ways, accesses);
            Selection {
                chosen: idx.iter().map(|&i| candidates[i].pc).collect(),
                expected_hits: hits,
                extra_lifetime: life,
            }
        }
        SelectionStrategy::None => {
            Selection { chosen: Vec::new(), expected_hits: 0, extra_lifetime: 0 }
        }
    }
}

/// The paper's mechanism: grow the chosen set greedily, accepting the PC
/// that maximizes total expected hits, until no addition improves it.
fn greedy_cost_benefit(candidates: &[Candidate], deli_ways: usize, accesses: u64) -> Selection {
    let mut chosen_idx: Vec<usize> = Vec::new();
    let mut best_hits = 0u64;
    let mut best_life = 0u64;
    loop {
        let mut best_add: Option<(u64, u64, usize)> = None;
        for i in 0..candidates.len() {
            if chosen_idx.contains(&i) {
                continue;
            }
            let mut trial = chosen_idx.clone();
            trial.push(i);
            let (hits, life) = expected_hits(candidates, &trial, deli_ways, accesses);
            let better = match best_add {
                None => hits > best_hits,
                Some((bh, _, bi)) => {
                    hits > bh || (hits == bh && candidates[i].pc < candidates[bi].pc)
                }
            };
            if better {
                best_add = Some((hits, life, i));
            }
        }
        match best_add {
            Some((hits, life, i)) if hits > best_hits => {
                chosen_idx.push(i);
                best_hits = hits;
                best_life = life;
            }
            _ => break,
        }
    }
    chosen_idx.sort_unstable();
    Selection {
        chosen: chosen_idx.iter().map(|&i| candidates[i].pc).collect(),
        expected_hits: best_hits,
        extra_lifetime: best_life,
    }
}

/// Exhaustive subset search (selection upper bound for the ablation).
/// Exponential in the candidate count — callers cap the pool.
fn exhaustive(candidates: &[Candidate], deli_ways: usize, accesses: u64) -> Selection {
    let n = candidates.len().min(20);
    let mut best: (u64, u64, u32) = (0, 0, 0); // (hits, life, mask)
    for mask in 1u32..(1 << n) {
        let idx: Vec<usize> = (0..n).filter(|&i| mask & (1 << i) != 0).collect();
        let (hits, life) = expected_hits(candidates, &idx, deli_ways, accesses);
        if hits > best.0 {
            best = (hits, life, mask);
        }
    }
    let idx: Vec<usize> = (0..n).filter(|&i| best.2 & (1 << i) != 0).collect();
    Selection {
        chosen: idx.iter().map(|&i| candidates[i].pc).collect(),
        expected_hits: best.0,
        extra_lifetime: best.1,
    }
}

/// Builds candidates from the tracker's top PCs and the monitor's
/// histograms (the glue the LLC organization uses each epoch).
pub fn build_candidates(
    top: &[(Pc, u64)],
    histograms: &BTreeMap<Pc, Log2Histogram>,
) -> Vec<Candidate> {
    top.iter()
        .map(|&(pc, fills)| Candidate { pc, fills, histogram: histograms.get(&pc).cloned() })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hist(dist: u64, n: u64) -> Option<Log2Histogram> {
        let mut h = Log2Histogram::new(24);
        h.record_n(dist, n);
        Some(h)
    }

    fn cand(pc: u64, fills: u64, h: Option<Log2Histogram>) -> Candidate {
        Candidate { pc: Pc::new(pc), fills, histogram: h }
    }

    #[test]
    fn selects_reusable_pc_rejects_stream() {
        // PC 1: 1000 fills, reused 60 set-accesses after eviction.
        // PC 2: a stream — 2000 fills, never reused (no histogram).
        // D=8, 100k sampled accesses. Alone, PC1's lifetime =
        // 8*100000/1000 = 800 >= 60 -> all 900 recorded reuses covered.
        // Adding PC2 drops lifetime to 8*100000/3000 = 266 (still fine)
        // but adds no hits — the greedy pass must not bother, and must
        // never pick PC2 alone.
        let c = vec![cand(1, 1000, hist(60, 900)), cand(2, 2000, None)];
        let sel = select_pcs(&c, 8, 100_000, SelectionStrategy::CostBenefit, 0);
        assert_eq!(sel.chosen, vec![Pc::new(1)]);
        assert_eq!(sel.expected_hits, 900);
    }

    #[test]
    fn cost_side_rejects_lifetime_killers() {
        // PC 1: modest fills, reuse at 50. PC 2: huge fills, reuse at 5000.
        // Together lifetime = 8*100000/10500 = 76: PC2 gains nothing and
        // keeps PC1's hits — greedy takes both only if total improves.
        // Alone PC2: lifetime = 8*100000/10000 = 80 < 5000 -> 0 hits.
        let c = vec![cand(1, 500, hist(50, 400)), cand(2, 10_000, hist(5_000, 5_000))];
        let sel = select_pcs(&c, 8, 100_000, SelectionStrategy::CostBenefit, 0);
        assert_eq!(sel.chosen, vec![Pc::new(1)], "PC2 can never profit and must be excluded");
    }

    #[test]
    fn greedy_matches_exhaustive_on_small_pools() {
        let c = vec![
            cand(1, 800, hist(100, 700)),
            cand(2, 1200, hist(300, 900)),
            cand(3, 5000, hist(20_000, 2_000)),
            cand(4, 300, hist(40, 250)),
        ];
        let g = select_pcs(&c, 8, 200_000, SelectionStrategy::CostBenefit, 0);
        let o = select_pcs(&c, 8, 200_000, SelectionStrategy::Exhaustive, 0);
        assert!(g.expected_hits <= o.expected_hits);
        // On this instance greedy should actually find the optimum.
        assert_eq!(g.expected_hits, o.expected_hits);
    }

    #[test]
    fn exhaustive_beats_greedy_on_adversarial_instance() {
        // Construct a case where the single best first pick (by marginal
        // hits) poisons the lifetime for a pair that together beat it.
        // PC 9: big immediate benefit but huge fills.
        // PCs 1,2: together excellent, but each alone is weaker than PC 9.
        let c = vec![
            cand(9, 60_000, hist(10, 3_000)),
            cand(1, 1_000, hist(700, 2_000)),
            cand(2, 1_000, hist(700, 2_000)),
        ];
        let g = select_pcs(&c, 8, 100_000, SelectionStrategy::CostBenefit, 0);
        let o = select_pcs(&c, 8, 100_000, SelectionStrategy::Exhaustive, 0);
        assert!(o.expected_hits >= g.expected_hits);
    }

    #[test]
    fn static_and_random_strategies_have_expected_sizes() {
        let c: Vec<Candidate> = (0..10).map(|i| cand(i, 100 + i, hist(50, 50))).collect();
        let s = select_pcs(&c, 8, 10_000, SelectionStrategy::StaticTopK(3), 0);
        assert_eq!(s.chosen.len(), 3);
        assert_eq!(s.chosen[0], Pc::new(9), "top-k orders by fills");
        let r = select_pcs(&c, 8, 10_000, SelectionStrategy::Random(4), 1);
        assert_eq!(r.chosen.len(), 4);
        let r2 = select_pcs(&c, 8, 10_000, SelectionStrategy::Random(4), 1);
        assert_eq!(r.chosen, r2.chosen, "random selection is seed-deterministic");
        let n = select_pcs(&c, 8, 10_000, SelectionStrategy::None, 0);
        assert!(n.chosen.is_empty());
    }

    #[test]
    fn empty_candidates_select_nothing() {
        for strat in [
            SelectionStrategy::CostBenefit,
            SelectionStrategy::Exhaustive,
            SelectionStrategy::StaticTopK(4),
            SelectionStrategy::Random(4),
        ] {
            let sel = select_pcs(&[], 8, 1000, strat, 0);
            assert!(sel.chosen.is_empty());
        }
    }

    #[test]
    fn build_candidates_joins_tracker_and_monitor() {
        let mut hists = BTreeMap::new();
        let mut h = Log2Histogram::new(16);
        h.record(9);
        hists.insert(Pc::new(1), h);
        let top = vec![(Pc::new(1), 10), (Pc::new(2), 5)];
        let c = build_candidates(&top, &hists);
        assert_eq!(c.len(), 2);
        assert!(c[0].histogram.is_some());
        assert!(c[1].histogram.is_none());
    }

    #[test]
    fn evaluate_chosen_reproduces_selection_objective() {
        let c = vec![
            cand(1, 800, hist(100, 700)),
            cand(2, 1200, hist(300, 900)),
            cand(4, 300, hist(40, 250)),
        ];
        let sel = select_pcs(&c, 8, 200_000, SelectionStrategy::CostBenefit, 0);
        assert!(!sel.chosen.is_empty());
        assert_eq!(
            evaluate_chosen(&c, &sel.chosen, 8, 200_000),
            Some((sel.expected_hits, sel.extra_lifetime))
        );
        assert_eq!(evaluate_chosen(&c, &[Pc::new(99)], 8, 200_000), None, "unknown PC");
    }

    #[test]
    fn zero_fills_means_infinite_lifetime() {
        let c = vec![cand(1, 0, hist(1_000_000, 10))];
        let sel = select_pcs(&c, 8, 1000, SelectionStrategy::CostBenefit, 0);
        // Overflowed samples aside, any finite distance is covered.
        assert_eq!(sel.chosen, vec![Pc::new(1)]);
    }
}
