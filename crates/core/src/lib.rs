//! NUcache: an efficient multicore cache organization based on Next-Use
//! distance (Manikantan, Rajan & Govindarajan, HPCA 2011) — the paper's
//! primary contribution, implemented from scratch.
//!
//! # The mechanism
//!
//! NUcache logically partitions the ways of each LLC set into **MainWays**
//! and **DeliWays**. All lines are inserted into the MainWays under LRU;
//! when a line allocated by one of the currently *chosen* delinquent PCs
//! is evicted from the MainWays, it is moved into the DeliWays (managed
//! FIFO) instead of leaving the cache, buying it an extra lifetime of
//! roughly `DeliWays / fill-rate` set-accesses. Lookups search both
//! regions.
//!
//! The chosen set of PCs is recomputed every epoch by a cost-benefit
//! analysis over **Next-Use distances**: a sampled monitor records, per
//! delinquent PC, a histogram of the number of set-accesses between a
//! line's MainWays eviction and its next request. Selecting a PC adds its
//! histogram mass within the extra lifetime (benefit) but raises the
//! combined DeliWays fill rate, shortening that lifetime for every chosen
//! PC (cost). A greedy pass — or, for ablation, exhaustive search —
//! maximizes expected DeliWays hits.
//!
//! # Epoch data flow: monitor → selector → DeliWays
//!
//! ```text
//!  demand accesses
//!        │
//!        ▼
//!  DelinquentTracker            per-PC miss/fill counters
//!        │ top-K delinquent PCs
//!        ▼
//!  NextUseMonitor (sampled)     histograms of set-accesses between
//!        │                      MainWays eviction and next request
//!        ▼  every epoch_len LLC accesses
//!  selector::select_pcs         cost-benefit over the histograms
//!        │ chosen PC set
//!        ▼
//!  MainWays eviction ──(allocated by a chosen PC?)──▶ DeliWays (FIFO)
//! ```
//!
//! Each epoch ends with a selection pass, then the tracker and monitor
//! decay so the next epoch reflects recent behaviour. With telemetry
//! enabled ([`nucache_cache::SharedLlc::set_telemetry`]) the
//! organization buffers one `selection_epoch` event per epoch — chosen
//! set, expected hits, DeliWays occupancy and hit/fill counters, and
//! histogram quantiles of the top PCs, snapshotted exactly as the
//! selector saw them (before the decays) — for the simulation driver to
//! drain into its event sink.
//!
//! # Crate layout
//!
//! The mechanism itself lives in the embeddable [`nucache_kernel`]
//! crate (`no_std + alloc` capable, generic over the insertion class);
//! this crate instantiates it for the simulator — class =
//! [`Pc`](nucache_common::Pc), key = raw
//! [`LineAddr`](nucache_common::LineAddr) — and keeps the
//! simulator-specific surface:
//!
//! * [`NuCacheConfig`] — all knobs with paper-faithful defaults,
//!   lowered to a [`nucache_kernel::KernelConfig`] via
//!   [`NuCacheConfig::to_kernel`];
//! * [`delinquent`] — per-PC miss accounting, top-K extraction (kernel
//!   tracker, PC-keyed);
//! * [`monitor`] — the sampled Next-Use monitor (kernel monitor,
//!   PC-keyed);
//! * [`selector`] — cost-benefit, exhaustive (oracle), static-top-k and
//!   random selection strategies (kernel selector, PC-keyed);
//! * [`NuCache`] — the thin adapter implementing
//!   [`nucache_cache::SharedLlc`] over
//!   [`nucache_kernel::NucacheKernel`]: per-core stats, write-back
//!   accounting, telemetry event conversion;
//! * [`overhead`] — hardware storage-cost model for the overhead table.
//!
//! # Examples
//!
//! ```
//! use nucache_cache::{CacheGeometry, SharedLlc};
//! use nucache_core::{NuCache, NuCacheConfig};
//! use nucache_common::{AccessKind, CoreId, LineAddr, Pc};
//!
//! let geom = CacheGeometry::new(1024 * 1024, 16, 64);
//! let mut llc = NuCache::new(geom, 2, NuCacheConfig::default());
//! llc.access(CoreId::new(0), Pc::new(0x400), LineAddr::new(1), AccessKind::Read);
//! assert_eq!(llc.stats().misses, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod delinquent;
pub mod llc;
pub mod monitor;
pub mod overhead;
pub mod selector;

pub use config::{NuCacheConfig, SelectionStrategy};
pub use delinquent::DelinquentTracker;
pub use llc::NuCache;
pub use monitor::NextUseMonitor;
pub use selector::select_pcs;
