//! NUcache configuration knobs.
//!
//! The policy enum, the `DEFAULT_*` design-point constants and the
//! selection machinery itself live in the embeddable
//! [`nucache_kernel`] crate; this module re-exports them and keeps
//! [`NuCacheConfig`], the simulator-facing configuration (geometry is
//! supplied separately by [`nucache_cache::CacheGeometry`], so unlike
//! [`nucache_kernel::KernelConfig`] it carries no set/way counts).

pub use nucache_kernel::{
    SelectionStrategy, DEFAULT_DELI_WAYS, DEFAULT_EPOCH_LEN, DEFAULT_HISTOGRAM_BUCKETS,
    DEFAULT_MAX_CANDIDATES, DEFAULT_MONITOR_DEPTH, DEFAULT_MONITOR_SHIFT, DEFAULT_ORACLE_POOL,
};

/// Configuration of a [`NuCache`](crate::NuCache) instance.
///
/// The defaults correspond to the design point used for the headline
/// results: half the ways reserved as DeliWays, 32 delinquent-PC
/// candidates, Next-Use monitoring on 1 set in 32, and a 100k-access
/// selection epoch. The design-point values are the named `DEFAULT_*`
/// constants above; DESIGN.md binds its configuration table to them
/// (checked by `nucache-audit lint`, lint `doc-constant-drift`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NuCacheConfig {
    /// Number of ways per set reserved as DeliWays (the remaining ways
    /// are MainWays).
    pub deli_ways: usize,
    /// LLC accesses between PC re-selections.
    pub epoch_len: u64,
    /// How many of the most-missing PCs are candidates for selection.
    pub max_candidates: usize,
    /// Candidate-pool cap for [`SelectionStrategy::Exhaustive`].
    pub oracle_pool: usize,
    /// Next-Use monitor samples one set in `2^monitor_shift`.
    pub monitor_shift: u32,
    /// Entries in each sampled set's eviction buffer.
    pub monitor_depth: usize,
    /// Buckets in each per-PC Next-Use histogram.
    pub histogram_buckets: usize,
    /// On a DeliWays hit, promote the line back into the MainWays (MRU)
    /// instead of leaving it to age out of the FIFO.
    pub promote_on_deli_hit: bool,
    /// On a DeliWays hit without promotion, refresh the line's FIFO
    /// position (move it to the tail) so actively reused lines are not
    /// dropped on schedule. Turns the DeliWays from pure FIFO into
    /// second-chance FIFO; only meaningful when `promote_on_deli_hit`
    /// is off. An extension ablated in the benches.
    pub deli_hit_refresh: bool,
    /// Selection strategy.
    pub strategy: SelectionStrategy,
    /// Seed for the stochastic strategies.
    pub seed: u64,
}

impl Default for NuCacheConfig {
    fn default() -> Self {
        NuCacheConfig {
            deli_ways: DEFAULT_DELI_WAYS,
            epoch_len: DEFAULT_EPOCH_LEN,
            max_candidates: DEFAULT_MAX_CANDIDATES,
            oracle_pool: DEFAULT_ORACLE_POOL,
            monitor_shift: DEFAULT_MONITOR_SHIFT,
            monitor_depth: DEFAULT_MONITOR_DEPTH,
            histogram_buckets: DEFAULT_HISTOGRAM_BUCKETS,
            promote_on_deli_hit: true,
            deli_hit_refresh: false,
            strategy: SelectionStrategy::CostBenefit,
            seed: 0xcafe,
        }
    }
}

impl NuCacheConfig {
    /// Returns a copy with a different DeliWays count.
    #[must_use]
    pub fn with_deli_ways(mut self, deli_ways: usize) -> Self {
        self.deli_ways = deli_ways;
        self
    }

    /// Returns a copy with a different epoch length.
    ///
    /// # Panics
    ///
    /// Panics if `epoch_len` is zero.
    #[must_use]
    pub fn with_epoch_len(mut self, epoch_len: u64) -> Self {
        assert!(epoch_len > 0, "zero epoch length");
        self.epoch_len = epoch_len;
        self
    }

    /// Returns a copy with a different selection strategy.
    #[must_use]
    pub fn with_strategy(mut self, strategy: SelectionStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Returns a copy with a different seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Validates the configuration against a total associativity.
    ///
    /// # Panics
    ///
    /// Panics if the DeliWays consume every way (at least one MainWay is
    /// required), or any count is zero where that makes no sense.
    pub fn validate(&self, associativity: usize) {
        assert!(self.deli_ways < associativity, "DeliWays must leave at least one MainWay");
        assert!(self.epoch_len > 0, "zero epoch length");
        assert!(self.max_candidates > 0, "no candidates");
        assert!(self.monitor_depth > 0, "zero monitor depth");
        assert!(self.histogram_buckets > 0 && self.histogram_buckets <= 64, "bad bucket count");
        assert!(self.oracle_pool >= 1 && self.oracle_pool <= 20, "oracle pool out of range");
    }

    /// Lowers this simulator configuration to a kernel configuration for
    /// a cache with `sets` sets of `ways` ways. Every policy knob maps
    /// one-to-one; only the geometry (which the simulator keeps in
    /// [`nucache_cache::CacheGeometry`]) is added.
    #[must_use]
    pub fn to_kernel(&self, sets: usize, ways: usize) -> nucache_kernel::KernelConfig {
        let mut k = nucache_kernel::KernelConfig::default()
            .with_sets(sets)
            .with_ways(ways)
            .with_deli_ways(self.deli_ways)
            .with_epoch_len(self.epoch_len)
            .with_strategy(self.strategy)
            .with_seed(self.seed);
        k.max_candidates = self.max_candidates;
        k.oracle_pool = self.oracle_pool;
        k.monitor_shift = self.monitor_shift;
        k.monitor_depth = self.monitor_depth;
        k.histogram_buckets = self.histogram_buckets;
        k.promote_on_deli_hit = self.promote_on_deli_hit;
        k.deli_hit_refresh = self.deli_hit_refresh;
        k
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid_for_16_way() {
        NuCacheConfig::default().validate(16);
    }

    #[test]
    fn builders_apply() {
        let c = NuCacheConfig::default()
            .with_deli_ways(4)
            .with_epoch_len(5)
            .with_strategy(SelectionStrategy::Random(3))
            .with_seed(9);
        assert_eq!(c.deli_ways, 4);
        assert_eq!(c.epoch_len, 5);
        assert_eq!(c.strategy, SelectionStrategy::Random(3));
        assert_eq!(c.seed, 9);
    }

    #[test]
    #[should_panic(expected = "at least one MainWay")]
    fn all_deli_rejected() {
        NuCacheConfig::default().with_deli_ways(16).validate(16);
    }

    #[test]
    fn strategy_display() {
        assert_eq!(format!("{}", SelectionStrategy::CostBenefit), "cost-benefit");
        assert_eq!(format!("{}", SelectionStrategy::StaticTopK(5)), "static-top-5");
        assert_eq!(format!("{}", SelectionStrategy::Random(2)), "random-2");
        assert_eq!(format!("{}", SelectionStrategy::Exhaustive), "exhaustive");
        assert_eq!(format!("{}", SelectionStrategy::None), "none");
    }
}
