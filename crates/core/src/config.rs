//! NUcache configuration knobs.

use std::fmt;

/// How the set of chosen PCs is computed each epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SelectionStrategy {
    /// The paper's mechanism: greedy cost-benefit maximization of expected
    /// DeliWays hits using Next-Use histograms.
    CostBenefit,
    /// Exhaustive subset search over the top candidates (the selection
    /// upper bound the greedy pass is compared against; exponential, so
    /// the candidate pool is capped — see
    /// [`NuCacheConfig::oracle_pool`]).
    Exhaustive,
    /// Always choose the `k` PCs with the most misses, ignoring Next-Use
    /// information (ablation: shows delinquency alone is not enough).
    StaticTopK(usize),
    /// Choose `k` candidate PCs uniformly at random each epoch
    /// (ablation lower bound).
    Random(usize),
    /// Never choose any PC: DeliWays stay empty and NUcache degrades to
    /// an LRU cache of `MainWays` associativity (worst case sanity
    /// bound).
    None,
}

impl fmt::Display for SelectionStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SelectionStrategy::CostBenefit => f.write_str("cost-benefit"),
            SelectionStrategy::Exhaustive => f.write_str("exhaustive"),
            SelectionStrategy::StaticTopK(k) => write!(f, "static-top-{k}"),
            SelectionStrategy::Random(k) => write!(f, "random-{k}"),
            SelectionStrategy::None => f.write_str("none"),
        }
    }
}

/// Default DeliWays per set (half of the 16-way baseline LLC).
pub const DEFAULT_DELI_WAYS: usize = 8;
/// Default LLC accesses between PC re-selections.
pub const DEFAULT_EPOCH_LEN: u64 = 100_000;
/// Default delinquent-PC candidate pool per selection.
pub const DEFAULT_MAX_CANDIDATES: usize = 32;
/// Default candidate cap for the exhaustive selection oracle.
pub const DEFAULT_ORACLE_POOL: usize = 12;
/// Default monitor sampling: one set in `2^DEFAULT_MONITOR_SHIFT`.
pub const DEFAULT_MONITOR_SHIFT: u32 = 5;
/// Default entries per sampled monitor set.
pub const DEFAULT_MONITOR_DEPTH: usize = 64;
/// Default buckets per per-PC Next-Use histogram.
pub const DEFAULT_HISTOGRAM_BUCKETS: usize = 32;

/// Configuration of a [`NuCache`](crate::NuCache) instance.
///
/// The defaults correspond to the design point used for the headline
/// results: half the ways reserved as DeliWays, 32 delinquent-PC
/// candidates, Next-Use monitoring on 1 set in 32, and a 100k-access
/// selection epoch. The design-point values are the named `DEFAULT_*`
/// constants above; DESIGN.md binds its configuration table to them
/// (checked by `nucache-audit lint`, lint `doc-constant-drift`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NuCacheConfig {
    /// Number of ways per set reserved as DeliWays (the remaining ways
    /// are MainWays).
    pub deli_ways: usize,
    /// LLC accesses between PC re-selections.
    pub epoch_len: u64,
    /// How many of the most-missing PCs are candidates for selection.
    pub max_candidates: usize,
    /// Candidate-pool cap for [`SelectionStrategy::Exhaustive`].
    pub oracle_pool: usize,
    /// Next-Use monitor samples one set in `2^monitor_shift`.
    pub monitor_shift: u32,
    /// Entries in each sampled set's eviction buffer.
    pub monitor_depth: usize,
    /// Buckets in each per-PC Next-Use histogram.
    pub histogram_buckets: usize,
    /// On a DeliWays hit, promote the line back into the MainWays (MRU)
    /// instead of leaving it to age out of the FIFO.
    pub promote_on_deli_hit: bool,
    /// On a DeliWays hit without promotion, refresh the line's FIFO
    /// position (move it to the tail) so actively reused lines are not
    /// dropped on schedule. Turns the DeliWays from pure FIFO into
    /// second-chance FIFO; only meaningful when `promote_on_deli_hit`
    /// is off. An extension ablated in the benches.
    pub deli_hit_refresh: bool,
    /// Selection strategy.
    pub strategy: SelectionStrategy,
    /// Seed for the stochastic strategies.
    pub seed: u64,
}

impl Default for NuCacheConfig {
    fn default() -> Self {
        NuCacheConfig {
            deli_ways: DEFAULT_DELI_WAYS,
            epoch_len: DEFAULT_EPOCH_LEN,
            max_candidates: DEFAULT_MAX_CANDIDATES,
            oracle_pool: DEFAULT_ORACLE_POOL,
            monitor_shift: DEFAULT_MONITOR_SHIFT,
            monitor_depth: DEFAULT_MONITOR_DEPTH,
            histogram_buckets: DEFAULT_HISTOGRAM_BUCKETS,
            promote_on_deli_hit: true,
            deli_hit_refresh: false,
            strategy: SelectionStrategy::CostBenefit,
            seed: 0xcafe,
        }
    }
}

impl NuCacheConfig {
    /// Returns a copy with a different DeliWays count.
    #[must_use]
    pub fn with_deli_ways(mut self, deli_ways: usize) -> Self {
        self.deli_ways = deli_ways;
        self
    }

    /// Returns a copy with a different epoch length.
    ///
    /// # Panics
    ///
    /// Panics if `epoch_len` is zero.
    #[must_use]
    pub fn with_epoch_len(mut self, epoch_len: u64) -> Self {
        assert!(epoch_len > 0, "zero epoch length");
        self.epoch_len = epoch_len;
        self
    }

    /// Returns a copy with a different selection strategy.
    #[must_use]
    pub fn with_strategy(mut self, strategy: SelectionStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Returns a copy with a different seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Validates the configuration against a total associativity.
    ///
    /// # Panics
    ///
    /// Panics if the DeliWays consume every way (at least one MainWay is
    /// required), or any count is zero where that makes no sense.
    pub fn validate(&self, associativity: usize) {
        assert!(self.deli_ways < associativity, "DeliWays must leave at least one MainWay");
        assert!(self.epoch_len > 0, "zero epoch length");
        assert!(self.max_candidates > 0, "no candidates");
        assert!(self.monitor_depth > 0, "zero monitor depth");
        assert!(self.histogram_buckets > 0 && self.histogram_buckets <= 64, "bad bucket count");
        assert!(self.oracle_pool >= 1 && self.oracle_pool <= 20, "oracle pool out of range");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid_for_16_way() {
        NuCacheConfig::default().validate(16);
    }

    #[test]
    fn builders_apply() {
        let c = NuCacheConfig::default()
            .with_deli_ways(4)
            .with_epoch_len(5)
            .with_strategy(SelectionStrategy::Random(3))
            .with_seed(9);
        assert_eq!(c.deli_ways, 4);
        assert_eq!(c.epoch_len, 5);
        assert_eq!(c.strategy, SelectionStrategy::Random(3));
        assert_eq!(c.seed, 9);
    }

    #[test]
    #[should_panic(expected = "at least one MainWay")]
    fn all_deli_rejected() {
        NuCacheConfig::default().with_deli_ways(16).validate(16);
    }

    #[test]
    fn strategy_display() {
        assert_eq!(format!("{}", SelectionStrategy::CostBenefit), "cost-benefit");
        assert_eq!(format!("{}", SelectionStrategy::StaticTopK(5)), "static-top-5");
        assert_eq!(format!("{}", SelectionStrategy::Random(2)), "random-2");
        assert_eq!(format!("{}", SelectionStrategy::Exhaustive), "exhaustive");
        assert_eq!(format!("{}", SelectionStrategy::None), "none");
    }
}
