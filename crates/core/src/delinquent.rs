//! Delinquent-PC accounting: which static instructions cause the misses.
//!
//! The DelinquentPC observation underpinning NUcache is that a handful of
//! PCs produce most LLC misses. This tracker maintains per-PC miss (and
//! fill) counters over a window, with exponential decay at epoch
//! boundaries and a hard cap on tracked PCs so the structure stays
//! hardware-plausible: when full, the weakest entry is reclaimed for a
//! newly hot PC (a standard victim-replacement counter table).

use nucache_common::Pc;
use std::collections::BTreeMap;

/// Per-PC miss counters with bounded capacity and epoch decay.
///
/// # Examples
///
/// ```
/// use nucache_core::DelinquentTracker;
/// use nucache_common::Pc;
///
/// let mut t = DelinquentTracker::new(8);
/// t.record_miss(Pc::new(0x400));
/// t.record_miss(Pc::new(0x400));
/// t.record_miss(Pc::new(0x408));
/// let top = t.top_k(1);
/// assert_eq!(top[0].0, Pc::new(0x400));
/// assert_eq!(top[0].1, 2);
/// ```
#[derive(Debug, Clone)]
pub struct DelinquentTracker {
    capacity: usize,
    /// Keyed by PC in a `BTreeMap` so every iteration (victim scan,
    /// top-k) visits entries in PC order — tie-breaks are deterministic
    /// by construction, never a function of hasher state.
    misses: BTreeMap<Pc, u64>,
    total_misses: u64,
}

impl DelinquentTracker {
    /// Creates a tracker holding at most `capacity` PCs.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "zero capacity");
        DelinquentTracker { capacity, misses: BTreeMap::new(), total_misses: 0 }
    }

    /// Records one miss caused by `pc`.
    pub fn record_miss(&mut self, pc: Pc) {
        self.total_misses += 1;
        if let Some(c) = self.misses.get_mut(&pc) {
            *c += 1;
            return;
        }
        if self.misses.len() >= self.capacity {
            // Reclaim the weakest entry; BTreeMap iteration is in PC order
            // and min_by_key keeps the first minimum, so equal counts
            // resolve to the lowest PC.
            let victim = self
                .misses
                .iter()
                .min_by_key(|&(_, c)| *c)
                .map(|(p, _)| *p)
                .expect("non-empty map at capacity");
            self.misses.remove(&victim);
        }
        self.misses.insert(pc, 1);
    }

    /// Misses recorded for `pc` in the current window.
    pub fn misses_of(&self, pc: Pc) -> u64 {
        self.misses.get(&pc).copied().unwrap_or(0)
    }

    /// Total misses observed (including those from untracked PCs).
    pub const fn total_misses(&self) -> u64 {
        self.total_misses
    }

    /// Number of PCs currently tracked.
    pub fn len(&self) -> usize {
        self.misses.len()
    }

    /// Whether no PC has missed yet.
    pub fn is_empty(&self) -> bool {
        self.misses.is_empty()
    }

    /// The `k` PCs with the most misses, descending (ties broken by PC for
    /// determinism).
    pub fn top_k(&self, k: usize) -> Vec<(Pc, u64)> {
        let mut v: Vec<(Pc, u64)> = self.misses.iter().map(|(p, c)| (*p, *c)).collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v.truncate(k);
        v
    }

    /// Fraction of tracked misses covered by the top `k` PCs (the
    /// DelinquentPC concentration statistic of Fig. 1).
    pub fn top_k_coverage(&self, k: usize) -> f64 {
        let tracked: u64 = self.misses.values().sum();
        if tracked == 0 {
            return 0.0;
        }
        let top: u64 = self.top_k(k).iter().map(|&(_, c)| c).sum();
        top as f64 / tracked as f64
    }

    /// Halves every counter and drops emptied entries (epoch decay).
    pub fn decay(&mut self) {
        self.misses.retain(|_, c| {
            *c /= 2;
            *c > 0
        });
        self.total_misses /= 2;
    }

    /// Clears everything.
    pub fn clear(&mut self) {
        self.misses.clear();
        self.total_misses = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_orders() {
        let mut t = DelinquentTracker::new(16);
        for _ in 0..5 {
            t.record_miss(Pc::new(1));
        }
        for _ in 0..3 {
            t.record_miss(Pc::new(2));
        }
        t.record_miss(Pc::new(3));
        let top = t.top_k(2);
        assert_eq!(top, vec![(Pc::new(1), 5), (Pc::new(2), 3)]);
        assert_eq!(t.total_misses(), 9);
        assert_eq!(t.misses_of(Pc::new(3)), 1);
        assert_eq!(t.misses_of(Pc::new(99)), 0);
    }

    #[test]
    fn capacity_evicts_weakest() {
        let mut t = DelinquentTracker::new(2);
        for _ in 0..10 {
            t.record_miss(Pc::new(1));
        }
        t.record_miss(Pc::new(2));
        t.record_miss(Pc::new(3)); // evicts PC 2 (weakest)
        assert_eq!(t.len(), 2);
        assert_eq!(t.misses_of(Pc::new(2)), 0);
        assert_eq!(t.misses_of(Pc::new(1)), 10);
        assert_eq!(t.misses_of(Pc::new(3)), 1);
    }

    #[test]
    fn coverage_concentrates() {
        let mut t = DelinquentTracker::new(64);
        for _ in 0..90 {
            t.record_miss(Pc::new(7));
        }
        for p in 0..10 {
            t.record_miss(Pc::new(100 + p));
        }
        assert!(t.top_k_coverage(1) > 0.89);
        assert!((t.top_k_coverage(100) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn decay_halves_and_prunes() {
        let mut t = DelinquentTracker::new(8);
        t.record_miss(Pc::new(1));
        for _ in 0..4 {
            t.record_miss(Pc::new(2));
        }
        t.decay();
        assert_eq!(t.misses_of(Pc::new(1)), 0, "count 1 decays to 0 and is pruned");
        assert_eq!(t.misses_of(Pc::new(2)), 2);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn empty_edge_cases() {
        let t = DelinquentTracker::new(4);
        assert!(t.is_empty());
        assert_eq!(t.top_k(3), vec![]);
        assert_eq!(t.top_k_coverage(3), 0.0);
    }
}
