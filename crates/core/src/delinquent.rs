//! Delinquent-PC accounting — the kernel's generic tracker, keyed by PC.
//!
//! The implementation lives in [`nucache_kernel::tracker`]; the simulator
//! instantiates the insertion-class parameter with [`Pc`], the static
//! instruction that caused the miss (the paper's DelinquentPC notion).

use nucache_common::Pc;

/// Per-PC miss counters with bounded capacity and epoch decay.
pub type DelinquentTracker = nucache_kernel::DelinquentTracker<Pc>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pc_instantiation_tracks_and_ranks() {
        let mut t = DelinquentTracker::new(8);
        for _ in 0..3 {
            t.record_miss(Pc::new(0x400));
        }
        t.record_miss(Pc::new(0x408));
        assert_eq!(t.top_k(1), vec![(Pc::new(0x400), 3)]);
        assert!(t.top_k_coverage(1) > 0.74);
    }
}
