//! Hardware storage-overhead model (Table 4).
//!
//! Estimates the extra state each scheme adds to a baseline LRU LLC, in
//! bits, using the structure sizes of this implementation and partial
//! tags where the literature uses them. The absolute numbers are
//! estimates; the comparison across schemes is what the table shows.

use crate::config::NuCacheConfig;
use nucache_cache::CacheGeometry;

/// Bits of a partial tag stored in sampled monitor structures.
pub const PARTIAL_TAG_BITS: u64 = 16;
/// Bits of a PC identifier (index into the candidate table).
pub const PC_ID_BITS: u64 = 8;
/// Bits of each timestamp / counter in monitor entries.
pub const COUNTER_BITS: u64 = 16;

/// Storage overhead of one scheme, in bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Overhead {
    /// Extra bits attached to every cache line.
    pub per_line_bits: u64,
    /// Bits in monitoring structures (samplers, shadow tags, histograms).
    pub monitor_bits: u64,
    /// Bits of global control state (PSELs, allocations, chosen-PC table).
    pub control_bits: u64,
}

impl Overhead {
    /// Total overhead in bits.
    pub const fn total_bits(&self) -> u64 {
        self.per_line_bits + self.monitor_bits + self.control_bits
    }

    /// Total overhead in kilobytes.
    pub fn total_kb(&self) -> f64 {
        self.total_bits() as f64 / 8.0 / 1024.0
    }

    /// Overhead as a fraction of the data array.
    pub fn fraction_of(&self, geom: &CacheGeometry) -> f64 {
        self.total_bits() as f64 / (geom.size_bytes() as f64 * 8.0)
    }
}

/// NUcache: per-line PC-id (to test chosen-ness at MainWays eviction) and
/// a FIFO stamp on DeliWays lines; sampled Next-Use buffers; per-PC
/// histograms; the chosen-PC table.
pub fn nucache_overhead(geom: &CacheGeometry, config: &NuCacheConfig) -> Overhead {
    let lines = geom.num_lines() as u64;
    let per_line_bits =
        lines * PC_ID_BITS + (geom.num_sets() as u64) * (config.deli_ways as u64) * COUNTER_BITS;
    let sampled_sets = (geom.num_sets() >> config.monitor_shift).max(1) as u64;
    let buffer_bits =
        sampled_sets * config.monitor_depth as u64 * (PARTIAL_TAG_BITS + PC_ID_BITS + COUNTER_BITS);
    let clock_bits = sampled_sets * COUNTER_BITS;
    let hist_bits = config.max_candidates as u64 * config.histogram_buckets as u64 * COUNTER_BITS;
    let tracker_bits = config.max_candidates as u64 * (PC_ID_BITS + 32 + COUNTER_BITS);
    let control_bits = config.max_candidates as u64; // chosen bit-vector
    Overhead {
        per_line_bits,
        monitor_bits: buffer_bits + clock_bits + hist_bits + tracker_bits,
        control_bits,
    }
}

/// UCP: per-line core-id; per-core sampled shadow directory with
/// per-rank counters.
pub fn ucp_overhead(geom: &CacheGeometry, num_cores: usize, umon_shift: u32) -> Overhead {
    let lines = geom.num_lines() as u64;
    let core_bits = (num_cores as u64).next_power_of_two().trailing_zeros().max(1) as u64;
    let sampled_sets = (geom.num_sets() >> umon_shift).max(1) as u64;
    let per_core = sampled_sets * geom.associativity() as u64 * PARTIAL_TAG_BITS
        + geom.associativity() as u64 * 32;
    Overhead {
        per_line_bits: lines * core_bits,
        monitor_bits: num_cores as u64 * per_core,
        control_bits: num_cores as u64 * 8, // way allocations
    }
}

/// PIPP: UCP's monitors plus per-set position stacks (modelled as
/// log2(assoc) bits per line) and stream-detection flags.
pub fn pipp_overhead(geom: &CacheGeometry, num_cores: usize, umon_shift: u32) -> Overhead {
    let base = ucp_overhead(geom, num_cores, umon_shift);
    let lines = geom.num_lines() as u64;
    let pos_bits = (geom.associativity() as u64).next_power_of_two().trailing_zeros() as u64;
    Overhead {
        per_line_bits: base.per_line_bits + lines * pos_bits,
        monitor_bits: base.monitor_bits,
        control_bits: base.control_bits + num_cores as u64,
    }
}

/// TADIP-F: per-line core-id (for leader-set attribution) and per-core
/// 10-bit PSELs — by far the cheapest scheme.
pub fn tadip_overhead(geom: &CacheGeometry, num_cores: usize) -> Overhead {
    let lines = geom.num_lines() as u64;
    let core_bits = (num_cores as u64).next_power_of_two().trailing_zeros().max(1) as u64;
    Overhead {
        per_line_bits: lines * core_bits,
        monitor_bits: 0,
        control_bits: num_cores as u64 * 10,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geom() -> CacheGeometry {
        CacheGeometry::new(2 * 1024 * 1024, 16, 64)
    }

    #[test]
    fn all_overheads_positive_and_small() {
        let g = geom();
        let n = nucache_overhead(&g, &NuCacheConfig::default());
        let u = ucp_overhead(&g, 4, 5);
        let p = pipp_overhead(&g, 4, 5);
        let t = tadip_overhead(&g, 4);
        for o in [n, u, p, t] {
            assert!(o.total_bits() > 0);
            assert!(o.fraction_of(&g) < 0.10, "overhead should stay below 10%: {o:?}");
        }
    }

    #[test]
    fn tadip_is_cheapest() {
        let g = geom();
        let t = tadip_overhead(&g, 4).total_bits();
        assert!(t < ucp_overhead(&g, 4, 5).total_bits());
        assert!(t < nucache_overhead(&g, &NuCacheConfig::default()).total_bits());
        assert!(t < pipp_overhead(&g, 4, 5).total_bits());
    }

    #[test]
    fn pipp_extends_ucp() {
        let g = geom();
        assert!(pipp_overhead(&g, 4, 5).total_bits() > ucp_overhead(&g, 4, 5).total_bits());
    }

    #[test]
    fn kb_conversion() {
        let o = Overhead { per_line_bits: 8 * 1024 * 8, monitor_bits: 0, control_bits: 0 };
        assert!((o.total_kb() - 8.0).abs() < 1e-12);
    }

    #[test]
    fn ucp_monitor_scales_with_cores() {
        let g = geom();
        let u2 = ucp_overhead(&g, 2, 5).monitor_bits;
        let u8 = ucp_overhead(&g, 8, 5).monitor_bits;
        assert_eq!(u8, 4 * u2);
    }
}
