//! Geometric (power-of-two) histograms.
//!
//! The Next-Use monitor records per-PC distributions of Next-Use distances.
//! Distances span several orders of magnitude, so buckets grow
//! geometrically: bucket `i` covers `[2^(i-1), 2^i)` for `i >= 1`, and
//! bucket 0 covers the single value 0. The structure supports the two
//! queries the PC-selection algorithm needs: total mass and mass at or
//! below a threshold (with linear interpolation inside the boundary
//! bucket).

use alloc::vec;
use alloc::vec::Vec;

/// A histogram with power-of-two bucket boundaries over `u64` samples.
///
/// # Examples
///
/// ```
/// use nucache_common::Log2Histogram;
/// let mut h = Log2Histogram::new(16);
/// h.record(3);
/// h.record(100);
/// assert_eq!(h.total(), 2);
/// assert_eq!(h.count_le(10), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Log2Histogram {
    buckets: Vec<u64>,
    total: u64,
    overflow: u64,
}

impl Log2Histogram {
    /// Creates a histogram with `num_buckets` buckets. Samples of
    /// `2^(num_buckets-1)` or more land in a dedicated overflow counter.
    ///
    /// # Panics
    ///
    /// Panics if `num_buckets` is 0 or greater than 64.
    pub fn new(num_buckets: usize) -> Self {
        assert!(num_buckets > 0 && num_buckets <= 64, "bucket count must be in 1..=64");
        // audit:allow-alloc(bucket vector sized once at construction; hot-path callers construct lazily per class)
        Log2Histogram { buckets: vec![0; num_buckets], total: 0, overflow: 0 }
    }

    /// Number of regular (non-overflow) buckets.
    pub fn num_buckets(&self) -> usize {
        self.buckets.len()
    }

    /// Index of the bucket a sample falls into, or `None` for overflow.
    fn bucket_of(&self, sample: u64) -> Option<usize> {
        let idx = if sample == 0 { 0 } else { 64 - (sample.leading_zeros() as usize) };
        if idx < self.buckets.len() {
            Some(idx)
        } else {
            None
        }
    }

    /// Records one sample.
    pub fn record(&mut self, sample: u64) {
        match self.bucket_of(sample) {
            Some(i) => self.buckets[i] += 1,
            None => self.overflow += 1,
        }
        self.total += 1;
    }

    /// Records `weight` identical samples.
    pub fn record_n(&mut self, sample: u64, weight: u64) {
        match self.bucket_of(sample) {
            Some(i) => self.buckets[i] += weight,
            None => self.overflow += weight,
        }
        self.total += weight;
    }

    /// Total number of recorded samples (including overflow).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Samples that exceeded the largest bucket.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Raw bucket counts (excluding overflow). Bucket `i >= 1` covers
    /// `[2^(i-1), 2^i)`; bucket 0 holds zeros.
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Estimated number of samples `<= threshold`.
    ///
    /// Buckets entirely at or below the threshold count fully; the bucket
    /// containing the threshold contributes a linearly interpolated share.
    /// This is the quantity the cost-benefit selector uses as "hits gained
    /// if retained for `threshold` more accesses".
    pub fn count_le(&self, threshold: u64) -> u64 {
        let mut acc = 0u64;
        for (i, &count) in self.buckets.iter().enumerate() {
            let (lo, hi) = Self::bucket_range(i);
            if hi <= threshold {
                acc += count;
            } else if lo <= threshold {
                // Partial bucket: interpolate. Bucket spans [lo, hi).
                let span = hi - lo;
                let covered = threshold - lo + 1;
                acc += count * covered / span;
            } else {
                break;
            }
        }
        acc
    }

    /// `[lo, hi)` value range of bucket `i` (bucket 0 is `[0,1)`).
    fn bucket_range(i: usize) -> (u64, u64) {
        if i == 0 {
            (0, 1)
        } else {
            (1u64 << (i - 1), 1u64 << i)
        }
    }

    /// Empties the histogram.
    pub fn clear(&mut self) {
        self.buckets.iter_mut().for_each(|b| *b = 0);
        self.total = 0;
        self.overflow = 0;
    }

    /// Halves every counter (including overflow), used for exponential
    /// decay across selection epochs so stale behaviour ages out.
    pub fn decay(&mut self) {
        let mut new_total = self.overflow / 2;
        self.overflow /= 2;
        for b in &mut self.buckets {
            *b /= 2;
            new_total += *b;
        }
        self.total = new_total;
    }

    /// Merges another histogram into this one.
    ///
    /// # Panics
    ///
    /// Panics if the bucket counts differ.
    pub fn merge(&mut self, other: &Log2Histogram) {
        assert_eq!(self.buckets.len(), other.buckets.len(), "bucket count mismatch");
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.overflow += other.overflow;
        self.total += other.total;
    }

    /// Lower edge of the overflow region: samples of this value or more
    /// land in the overflow counter rather than a regular bucket. This
    /// is the saturating value [`quantile`](Self::quantile) reports when
    /// the requested quantile falls in overflow.
    pub fn overflow_edge(&self) -> u64 {
        1u64 << (self.buckets.len() - 1)
    }

    /// Approximate p-quantile of the distribution (`0.0..=1.0`, clamped),
    /// using the upper edge of the bucket where the quantile falls.
    ///
    /// Returns `None` only for an empty histogram. When the quantile
    /// lands in the overflow region the result **saturates** to
    /// [`overflow_edge`](Self::overflow_edge) — a lower bound on the true
    /// value — rather than dropping the tail: a p99 that silently
    /// returned `None` for overflowing latencies would hide exactly the
    /// samples it exists to surface. `p = 0.0` reports the first
    /// non-empty bucket's edge (the minimum sample's bucket); `p = 1.0`
    /// reports the last non-empty bucket's edge, or the overflow edge if
    /// any sample overflowed.
    pub fn quantile(&self, p: f64) -> Option<u64> {
        if self.total == 0 {
            return None;
        }
        // Integer ceiling of `p * total`, spelled out because `f64::ceil`
        // lives in std and this crate also builds for `no_std` targets.
        let scaled = p.clamp(0.0, 1.0) * self.total as f64;
        let trunc = scaled as u64;
        let ceil = if scaled > trunc as f64 { trunc + 1 } else { trunc };
        // At least one sample must be covered, so p = 0.0 lands on the
        // minimum sample's bucket instead of an unconditional bucket 0.
        let target = ceil.max(1);
        let mut acc = 0u64;
        for (i, &count) in self.buckets.iter().enumerate() {
            acc += count;
            if acc >= target {
                return Some(Self::bucket_range(i).1 - 1);
            }
        }
        Some(self.overflow_edge())
    }
}

impl Default for Log2Histogram {
    fn default() -> Self {
        Log2Histogram::new(32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_goes_to_bucket_zero() {
        let mut h = Log2Histogram::new(8);
        h.record(0);
        assert_eq!(h.buckets()[0], 1);
        assert_eq!(h.count_le(0), 1);
    }

    #[test]
    fn bucket_boundaries() {
        let mut h = Log2Histogram::new(8);
        h.record(1); // bucket 1: [1,2)
        h.record(2); // bucket 2: [2,4)
        h.record(3); // bucket 2
        h.record(4); // bucket 3: [4,8)
        assert_eq!(h.buckets()[1], 1);
        assert_eq!(h.buckets()[2], 2);
        assert_eq!(h.buckets()[3], 1);
    }

    #[test]
    fn overflow_counts_in_total() {
        let mut h = Log2Histogram::new(4); // largest bucket [4,8)
        h.record(8);
        h.record(1_000_000);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.total(), 2);
        assert_eq!(h.count_le(u64::MAX), 0, "overflow never counted as covered");
    }

    #[test]
    fn count_le_full_and_partial() {
        let mut h = Log2Histogram::new(16);
        h.record_n(10, 100); // bucket 4: [8,16)
        assert_eq!(h.count_le(7), 0);
        assert_eq!(h.count_le(15), 100);
        let partial = h.count_le(11);
        assert!(partial > 0 && partial < 100, "interpolated share expected, got {partial}");
    }

    #[test]
    fn decay_halves_mass() {
        let mut h = Log2Histogram::new(8);
        h.record_n(3, 10);
        h.record_n(1000, 5); // beyond bucket 7's [64,128): overflow
        h.decay();
        assert_eq!(h.buckets()[2], 5);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.total(), 7);
    }

    #[test]
    fn merge_adds_mass() {
        let mut a = Log2Histogram::new(8);
        let mut b = Log2Histogram::new(8);
        a.record(5);
        b.record(5);
        b.record(6);
        a.merge(&b);
        assert_eq!(a.total(), 3);
        assert_eq!(a.buckets()[3], 3);
    }

    #[test]
    fn quantile_sane() {
        let mut h = Log2Histogram::new(16);
        h.record_n(4, 50);
        h.record_n(1000, 50);
        let q25 = h.quantile(0.25).unwrap();
        let q90 = h.quantile(0.9).unwrap();
        assert!(q25 < q90);
        assert!(h.quantile(0.0).is_some());
        assert!(Log2Histogram::new(4).quantile(0.5).is_none());
    }

    #[test]
    fn quantile_p0_reports_the_minimum_samples_bucket() {
        let mut h = Log2Histogram::new(16);
        h.record_n(100, 10); // bucket 7: [64,128)
        assert_eq!(h.quantile(0.0), Some(127), "p=0 must not report empty bucket 0");
        assert_eq!(h.quantile(1.0), Some(127));
    }

    #[test]
    fn quantile_saturates_into_overflow() {
        let mut h = Log2Histogram::new(4); // regular buckets cover [0,8); overflow edge 8
        assert_eq!(h.overflow_edge(), 8);
        h.record_n(2, 90);
        h.record_n(1_000_000, 10); // overflow
                                   // p50 sits in the regular mass; p99 lands in overflow and must
                                   // saturate to the overflow lower edge instead of vanishing.
        assert_eq!(h.quantile(0.5), Some(3));
        assert_eq!(h.quantile(0.99), Some(8));
        assert_eq!(h.quantile(1.0), Some(8));
        // All-overflow distribution: every quantile saturates.
        let mut all_over = Log2Histogram::new(4);
        all_over.record(5_000);
        assert_eq!(all_over.quantile(0.0), Some(8));
        assert_eq!(all_over.quantile(1.0), Some(8));
        // Out-of-range p clamps rather than panicking or escaping.
        assert_eq!(h.quantile(-1.0), h.quantile(0.0));
        assert_eq!(h.quantile(2.0), h.quantile(1.0));
    }

    #[test]
    fn clear_resets() {
        let mut h = Log2Histogram::new(8);
        h.record_n(3, 7);
        h.clear();
        assert_eq!(h.total(), 0);
        assert!(h.buckets().iter().all(|&b| b == 0));
    }

    #[test]
    #[should_panic(expected = "bucket count")]
    fn zero_buckets_rejected() {
        let _ = Log2Histogram::new(0);
    }
}
