//! Counter bundles and ratio helpers shared across cache levels.

use core::fmt;

/// Hit/miss/eviction counters for one cache (or one region of a cache).
///
/// # Examples
///
/// ```
/// use nucache_common::CacheStats;
/// let mut s = CacheStats::default();
/// s.record_hit();
/// s.record_miss();
/// assert_eq!(s.accesses(), 2);
/// assert!((s.hit_rate() - 0.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Demand hits.
    pub hits: u64,
    /// Demand misses.
    pub misses: u64,
    /// Lines evicted (clean or dirty).
    pub evictions: u64,
    /// Dirty lines written back on eviction.
    pub writebacks: u64,
}

impl CacheStats {
    /// Increments the hit counter.
    pub fn record_hit(&mut self) {
        self.hits += 1;
    }

    /// Increments the miss counter.
    pub fn record_miss(&mut self) {
        self.misses += 1;
    }

    /// Increments eviction (and, if `dirty`, writeback) counters.
    pub fn record_eviction(&mut self, dirty: bool) {
        self.evictions += 1;
        if dirty {
            self.writebacks += 1;
        }
    }

    /// Total accesses observed.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hit rate in `[0,1]`; 0 for an untouched cache.
    pub fn hit_rate(&self) -> f64 {
        ratio(self.hits, self.accesses())
    }

    /// Miss rate in `[0,1]`; 0 for an untouched cache.
    pub fn miss_rate(&self) -> f64 {
        ratio(self.misses, self.accesses())
    }

    /// Misses per kilo-instruction given an instruction count.
    pub fn mpki(&self, instructions: u64) -> f64 {
        if instructions == 0 {
            0.0
        } else {
            self.misses as f64 * 1000.0 / instructions as f64
        }
    }

    /// Component-wise sum of two counter bundles.
    pub fn merged(&self, other: &CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits + other.hits,
            misses: self.misses + other.misses,
            evictions: self.evictions + other.evictions,
            writebacks: self.writebacks + other.writebacks,
        }
    }

    /// Resets all counters to zero.
    pub fn clear(&mut self) {
        *self = CacheStats::default();
    }
}

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "hits={} misses={} ({:.2}% hit) evictions={} writebacks={}",
            self.hits,
            self.misses,
            self.hit_rate() * 100.0,
            self.evictions,
            self.writebacks
        )
    }
}

/// `num / den` as `f64`, 0 when the denominator is 0.
pub fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// Geometric mean of a slice of positive values; 0 if empty or any value
/// is non-positive.
///
/// Gated out of `no_std` builds: `f64::ln`/`exp` live in std, and the
/// reporting paths that aggregate speedups always run hosted.
#[cfg(any(feature = "std", test))]
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() || values.iter().any(|&v| v <= 0.0) {
        return 0.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    (log_sum / values.len() as f64).exp()
}

/// Arithmetic mean; 0 if empty.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Harmonic mean of positive values; 0 if empty or any value non-positive.
pub fn harmonic_mean(values: &[f64]) -> f64 {
    if values.is_empty() || values.iter().any(|&v| v <= 0.0) {
        return 0.0;
    }
    values.len() as f64 / values.iter().map(|v| 1.0 / v).sum::<f64>()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_zero_on_empty() {
        let s = CacheStats::default();
        assert_eq!(s.hit_rate(), 0.0);
        assert_eq!(s.miss_rate(), 0.0);
        assert_eq!(s.mpki(0), 0.0);
    }

    #[test]
    fn counters_accumulate() {
        let mut s = CacheStats::default();
        s.record_hit();
        s.record_miss();
        s.record_miss();
        s.record_eviction(true);
        s.record_eviction(false);
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 2);
        assert_eq!(s.evictions, 2);
        assert_eq!(s.writebacks, 1);
        assert!((s.miss_rate() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn mpki_scales() {
        let s = CacheStats { misses: 50, ..CacheStats::default() };
        assert!((s.mpki(10_000) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn merge_is_componentwise() {
        let a = CacheStats { hits: 1, misses: 2, evictions: 3, writebacks: 4 };
        let b = CacheStats { hits: 10, misses: 20, evictions: 30, writebacks: 40 };
        let m = a.merged(&b);
        assert_eq!(m, CacheStats { hits: 11, misses: 22, evictions: 33, writebacks: 44 });
    }

    #[test]
    fn means_behave() {
        assert_eq!(geomean(&[]), 0.0);
        assert_eq!(geomean(&[2.0, 0.0]), 0.0);
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((mean(&[1.0, 3.0]) - 2.0).abs() < 1e-12);
        assert!((harmonic_mean(&[1.0, 1.0]) - 1.0).abs() < 1e-12);
        assert!((harmonic_mean(&[2.0, 2.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn display_mentions_hits() {
        let s = CacheStats { hits: 5, ..CacheStats::default() };
        assert!(format!("{s}").contains("hits=5"));
    }
}
