//! Deterministic fault injection for pipeline robustness testing.
//!
//! The experiment pipeline must degrade predictably under partial
//! failure: one panicking simulation job, one unwritable telemetry
//! stream or one malformed trace record cannot be allowed to discard a
//! whole batch of completed results. Those degradation paths are only
//! trustworthy if they are exercised, so this module defines a seeded
//! [`FaultPlan`] that injects failures at well-known sites:
//!
//! * [`FaultSite::WorkerPanic`] — a simulation job panics in its worker
//!   thread (exercises panic isolation and per-job retry in the runner);
//! * [`FaultSite::TelemetryCreate`] — creating a JSONL event stream
//!   fails (exercises the degrade-to-Null-sink path);
//! * [`FaultSite::TelemetryWrite`] — writing an event stream fails
//!   mid-run (exercises deferred-error surfacing and manifest notes);
//! * [`FaultSite::TraceRecord`] — a trace file yields a malformed record
//!   (exercises error propagation in trace replay).
//!
//! Decisions are a pure function of `(plan seed, site, index)` — the
//! same plan always fails the same jobs — so a faulted run is exactly as
//! reproducible as a clean one, and retrying an injected failure fails
//! again (injection models a deterministic bug, not a transient blip).
//!
//! A plan can be installed process-wide ([`set_fault_plan`], the
//! `--inject-faults SEED` flag) or passed explicitly; with no plan
//! active every injection site compiles down to a `None` check.
//!
//! # Examples
//!
//! ```
//! use nucache_common::fault::{FaultPlan, FaultSite};
//!
//! let plan = FaultPlan::new(42);
//! // Deterministic: the same (site, index) always gives the same answer.
//! let a = plan.should_fault(FaultSite::WorkerPanic, 3);
//! assert_eq!(a, plan.should_fault(FaultSite::WorkerPanic, 3));
//! // Roughly one in eight worker jobs faults.
//! let faulted = (0..1000).filter(|&i| plan.should_fault(FaultSite::WorkerPanic, i)).count();
//! assert!(faulted > 50 && faulted < 250);
//! ```

use crate::rng::DetRng;
use std::sync::{Mutex, OnceLock, PoisonError};

/// A pipeline location where a [`FaultPlan`] can inject a failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSite {
    /// A simulation job panics inside its worker thread.
    WorkerPanic,
    /// Creating a telemetry stream fails with an I/O error.
    TelemetryCreate,
    /// Writing a telemetry stream fails with an I/O error.
    TelemetryWrite,
    /// A trace file read yields a malformed record.
    TraceRecord,
    /// A load-generator request batch panics mid-batch while holding a
    /// shard lock (exercises poisoned-shard recovery in the concurrent
    /// cache front-end).
    ServeBatch,
}

impl FaultSite {
    /// Stable per-site salt separating the decision streams.
    const fn salt(self) -> u64 {
        match self {
            FaultSite::WorkerPanic => 0x77_6f_72_6b,     // "work"
            FaultSite::TelemetryCreate => 0x74_63_72_74, // "tcrt"
            FaultSite::TelemetryWrite => 0x74_77_72_74,  // "twrt"
            FaultSite::TraceRecord => 0x74_72_63_65,     // "trce"
            FaultSite::ServeBatch => 0x73_72_76_62,      // "srvb"
        }
    }

    /// Injection probability per decision at this site.
    const fn rate(self) -> f64 {
        match self {
            FaultSite::WorkerPanic => 0.125,
            FaultSite::TelemetryCreate => 0.125,
            FaultSite::TelemetryWrite => 0.125,
            // Per-record: traces have thousands of records, so the rate
            // is low enough that short reads often survive.
            FaultSite::TraceRecord => 1.0 / 1024.0,
            // Per-batch: a short smoke run issues tens of batches per
            // thread, so several shards get poisoned and recovered.
            FaultSite::ServeBatch => 0.125,
        }
    }

    /// Stable lowercase name used in injected error messages.
    pub const fn name(self) -> &'static str {
        match self {
            FaultSite::WorkerPanic => "worker-panic",
            FaultSite::TelemetryCreate => "telemetry-create",
            FaultSite::TelemetryWrite => "telemetry-write",
            FaultSite::TraceRecord => "trace-record",
            FaultSite::ServeBatch => "serve-batch",
        }
    }
}

/// A seeded, deterministic schedule of injected faults.
///
/// See the [module docs](self) for the overall model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    seed: u64,
}

impl FaultPlan {
    /// Creates a plan from a seed.
    pub const fn new(seed: u64) -> Self {
        FaultPlan { seed }
    }

    /// The plan's seed.
    pub const fn seed(&self) -> u64 {
        self.seed
    }

    /// Whether the `index`-th decision at `site` faults. Pure function
    /// of `(seed, site, index)`.
    pub fn should_fault(&self, site: FaultSite, index: u64) -> bool {
        DetRng::substream(self.seed ^ site.salt(), index).chance(site.rate())
    }

    /// The message injected failures carry; always contains the literal
    /// `"injected fault"` so logs and manifests are unambiguous about
    /// what was real.
    pub fn message(&self, site: FaultSite, index: u64) -> String {
        format!("injected fault: {} at index {index} (plan seed {})", site.name(), self.seed)
    }
}

fn plan_slot() -> &'static Mutex<Option<FaultPlan>> {
    static SLOT: OnceLock<Mutex<Option<FaultPlan>>> = OnceLock::new();
    SLOT.get_or_init(|| Mutex::new(None))
}

/// Installs a process-wide fault plan (the `--inject-faults SEED` flags
/// call this); `None` clears it.
pub fn set_fault_plan(plan: Option<FaultPlan>) {
    *plan_slot().lock().unwrap_or_else(PoisonError::into_inner) = plan;
}

/// The active fault plan: the [`set_fault_plan`] override when
/// installed, else a plan seeded from `NUCACHE_FAULTS` when that parses
/// as an integer, else `None` (no injection; an unparsable value warns
/// once and is ignored rather than silently arming or disarming
/// injection with a typo'd seed).
pub fn active_fault_plan() -> Option<FaultPlan> {
    if let Some(plan) = *plan_slot().lock().unwrap_or_else(PoisonError::into_inner) {
        return Some(plan);
    }
    let raw = std::env::var("NUCACHE_FAULTS").ok()?;
    match raw.trim().parse::<u64>() {
        Ok(seed) => Some(FaultPlan::new(seed)),
        Err(_) => {
            static WARNED: std::sync::Once = std::sync::Once::new();
            WARNED.call_once(|| {
                eprintln!(
                    "[fault] ignoring unparsable NUCACHE_FAULTS='{raw}' (expected a u64 seed)"
                );
            });
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_deterministic() {
        let plan = FaultPlan::new(7);
        for site in [
            FaultSite::WorkerPanic,
            FaultSite::TelemetryCreate,
            FaultSite::TelemetryWrite,
            FaultSite::TraceRecord,
        ] {
            for i in 0..64 {
                assert_eq!(plan.should_fault(site, i), plan.should_fault(site, i));
            }
        }
    }

    #[test]
    fn sites_decide_independently() {
        // The same indices must not fault at every site — the salts keep
        // the decision streams apart.
        let plan = FaultPlan::new(1);
        let at = |site| -> Vec<u64> { (0..512).filter(|&i| plan.should_fault(site, i)).collect() };
        assert_ne!(at(FaultSite::WorkerPanic), at(FaultSite::TelemetryCreate));
    }

    #[test]
    fn seeds_change_the_schedule() {
        let at = |seed| -> Vec<u64> {
            (0..512)
                .filter(|&i| FaultPlan::new(seed).should_fault(FaultSite::WorkerPanic, i))
                .collect()
        };
        assert_ne!(at(1), at(2));
    }

    #[test]
    fn worker_rate_is_roughly_one_in_eight() {
        let plan = FaultPlan::new(99);
        let n = (0..4096).filter(|&i| plan.should_fault(FaultSite::WorkerPanic, i)).count();
        assert!((300..750).contains(&n), "got {n} faults in 4096 decisions");
    }

    #[test]
    fn message_is_marked_injected() {
        let m = FaultPlan::new(3).message(FaultSite::WorkerPanic, 5);
        assert!(m.contains("injected fault"));
        assert!(m.contains("worker-panic"));
        assert!(m.contains("index 5"));
    }

    #[test]
    fn override_wins_and_clears() {
        set_fault_plan(Some(FaultPlan::new(11)));
        assert_eq!(active_fault_plan(), Some(FaultPlan::new(11)));
        set_fault_plan(None);
        // With no override the result depends on NUCACHE_FAULTS, which
        // the test environment does not set.
    }
}
