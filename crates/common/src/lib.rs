//! Common foundation types for the NUcache reproduction.
//!
//! This crate holds the vocabulary shared by every other crate in the
//! workspace: strongly-typed addresses and program counters, access
//! records, geometric histograms (used by the Next-Use monitor), counter
//! bundles, a deterministic seeded RNG wrapper, small text-table /
//! CSV reporting helpers used by the experiment binaries, the
//! epoch-level [`telemetry`] event model (with its dependency-free
//! [`json`] substrate) that the simulator's JSONL streams and run
//! manifests are built on, and the seeded [`fault`]-injection plan the
//! pipeline's fault-tolerance paths are exercised with.
//!
//! # Examples
//!
//! ```
//! use nucache_common::{Access, AccessKind, Addr, CoreId, Pc};
//!
//! let a = Access::new(CoreId::new(0), Pc::new(0x400_1000), Addr::new(0x8000), AccessKind::Read);
//! assert_eq!(a.addr.line(6).0, 0x8000 >> 6);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(feature = "std"), no_std)]

extern crate alloc;

pub mod access;
pub mod addr;
#[cfg(feature = "std")]
pub mod fault;
pub mod histogram;
#[cfg(any(test, feature = "interleave"))]
#[cfg(feature = "std")]
pub mod interleave;
#[cfg(feature = "std")]
pub mod json;
pub mod rng;
pub mod stats;
#[cfg(feature = "std")]
pub mod table;
#[cfg(feature = "std")]
pub mod telemetry;

pub use access::{Access, AccessKind};
pub use addr::{Addr, CoreId, LineAddr, Pc};
#[cfg(feature = "std")]
pub use fault::{active_fault_plan, set_fault_plan, FaultPlan, FaultSite};
pub use histogram::Log2Histogram;
#[cfg(feature = "std")]
pub use json::JsonValue;
pub use rng::{mix64, DetRng, FastRange};
pub use stats::CacheStats;
#[cfg(feature = "std")]
pub use telemetry::{CounterSink, Event, EventSink, JsonlSink, NullSink};
