//! Common foundation types for the NUcache reproduction.
//!
//! This crate holds the vocabulary shared by every other crate in the
//! workspace: strongly-typed addresses and program counters, access
//! records, geometric histograms (used by the Next-Use monitor), counter
//! bundles, a deterministic seeded RNG wrapper, and small text-table /
//! CSV reporting helpers used by the experiment binaries.
//!
//! # Examples
//!
//! ```
//! use nucache_common::{Access, AccessKind, Addr, CoreId, Pc};
//!
//! let a = Access::new(CoreId::new(0), Pc::new(0x400_1000), Addr::new(0x8000), AccessKind::Read);
//! assert_eq!(a.addr.line(6).0, 0x8000 >> 6);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod access;
pub mod addr;
pub mod histogram;
pub mod rng;
pub mod stats;
pub mod table;

pub use access::{Access, AccessKind};
pub use addr::{Addr, CoreId, LineAddr, Pc};
pub use histogram::Log2Histogram;
pub use rng::DetRng;
pub use stats::CacheStats;
