//! Loom-lite bounded interleaving explorer for model-checking the
//! workspace's concurrency seams.
//!
//! [`explore`] runs a model function many times, once per distinct
//! thread interleaving, under a cooperative scheduler that allows
//! exactly one model thread to run at a time. Every operation on the
//! shim types ([`Mutex`], [`AtomicUsize`], [`AtomicBool`], [`Once`],
//! [`spawn`]/[`JoinHandle::join`]) is a *scheduling point*: the
//! scheduler decides which runnable thread proceeds, and a depth-first
//! search over those decisions enumerates every schedule with at most
//! [`Explorer::preemption_bound`] preemptions (a preemption is choosing
//! to switch away from a thread that could have kept running; forced
//! switches at blocking operations are free). Bounding preemptions is
//! the classic CHESS result: almost every concurrency bug manifests
//! within two preemptions, while the bounded schedule space stays
//! enumerable.
//!
//! The search is deterministic — the first schedule is always
//! run-to-completion in spawn order, and backtracking visits
//! alternatives in a fixed (optionally seeded) order — so a failing
//! schedule reproduces exactly and the explored-schedule count is
//! stable across runs. Code between two scheduling points runs
//! atomically with respect to the model, which is sound as long as all
//! cross-thread communication goes through the shim types.
//!
//! Failure modes all panic with the offending schedule: an assertion
//! failure inside a model thread (unless the panic is consumed via
//! [`JoinHandle::join`], which poison-recovery models do deliberately),
//! a deadlock (every live thread blocked), a re-entrant `lock` by the
//! owning thread, and a nondeterministic model (a replayed decision no
//! longer matches the enabled set).
//!
//! # Examples
//!
//! ```
//! use nucache_common::interleave::{self, Explorer};
//! use std::sync::Arc;
//!
//! let stats = Explorer::default().explore(|| {
//!     let lock = Arc::new(interleave::Mutex::new(0u64));
//!     let t = {
//!         let lock = Arc::clone(&lock);
//!         interleave::spawn(move || {
//!             *lock.lock().unwrap_or_else(|e| e.into_inner()) += 1;
//!         })
//!     };
//!     *lock.lock().unwrap_or_else(|e| e.into_inner()) += 1;
//!     t.join().unwrap();
//!     assert_eq!(*lock.lock().unwrap_or_else(|e| e.into_inner()), 2);
//! });
//! assert!(stats.schedules >= 2, "both acquisition orders explored");
//! ```

use crate::rng::DetRng;
use std::cell::RefCell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Condvar, Mutex as StdMutex, PoisonError};

/// Default preemption bound: two preemptions reach the overwhelming
/// majority of concurrency bugs (CHESS) while keeping exploration of
/// the workspace seams in the hundreds-of-schedules range.
pub const DEFAULT_PREEMPTION_BOUND: usize = 2;

/// Safety valve on the number of schedules one [`explore`] call may
/// run; exceeding it is a model-size bug, not a soundness issue, and
/// panics rather than spinning CI forever.
pub const MAX_SCHEDULES: usize = 65536;

/// Most model threads (including the root) one execution may register.
pub const MAX_MODEL_THREADS: usize = 8;

thread_local! {
    /// The scheduler + thread id of the model thread running on this OS
    /// thread, set for the duration of one execution.
    static CURRENT: RefCell<Option<(Arc<Sched>, usize)>> = const { RefCell::new(None) };
}

/// Panic payload used to unwind model threads out of an aborted
/// execution (deadlock / nondeterminism); never surfaced to the user.
const ABORT_PAYLOAD: &str = "interleave-abort";

fn current() -> (Arc<Sched>, usize) {
    CURRENT.with(|c| match c.borrow().as_ref() {
        Some((sched, tid)) => (Arc::clone(sched), *tid),
        None => panic!("interleave shim types may only be used inside explore()"),
    })
}

/// Run state of one model thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Run {
    Runnable,
    Blocked(Resource),
    Finished,
}

/// What a blocked model thread is waiting for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Resource {
    /// A shim mutex, by registration id.
    Lock(usize),
    /// Another model thread finishing, by thread id.
    Join(usize),
}

/// One recorded scheduling decision (only points with ≥ 2 enabled
/// threads are recorded — they are the branch points of the search).
#[derive(Debug, Clone)]
struct Decision {
    /// Runnable thread ids at the decision, ascending.
    enabled: Vec<usize>,
    /// Thread that was running when the decision was taken.
    current: usize,
    /// Index into `enabled` of the thread chosen.
    chosen: usize,
}

/// Model state of one shim mutex.
#[derive(Debug, Default, Clone, Copy)]
struct LockState {
    owner: Option<usize>,
    poisoned: bool,
}

/// Shared scheduler state for one execution.
#[derive(Debug)]
struct State {
    threads: Vec<Run>,
    current: usize,
    /// Thread ids to choose at each recorded decision, from the driver.
    replay: Vec<usize>,
    trace: Vec<Decision>,
    locks: Vec<LockState>,
    abort: Option<String>,
    /// Per thread: panicked, and whether the panic was consumed by join.
    panicked: Vec<bool>,
    joined: Vec<bool>,
    /// OS handles of spawned (non-root) model threads, drained by the driver.
    handles: Vec<std::thread::JoinHandle<()>>,
    root_panic: Option<String>,
}

/// The per-execution cooperative scheduler.
#[derive(Debug)]
struct Sched {
    state: StdMutex<State>,
    cv: Condvar,
}

impl Sched {
    fn new(replay: Vec<usize>) -> Sched {
        Sched {
            state: StdMutex::new(State {
                threads: Vec::new(),
                current: 0,
                replay,
                trace: Vec::new(),
                locks: Vec::new(),
                abort: None,
                panicked: Vec::new(),
                joined: Vec::new(),
                handles: Vec::new(),
                root_panic: None,
            }),
            cv: Condvar::new(),
        }
    }

    fn st(&self) -> std::sync::MutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn register_thread(&self) -> usize {
        let mut st = self.st();
        let tid = st.threads.len();
        assert!(tid < MAX_MODEL_THREADS, "model spawned more than {MAX_MODEL_THREADS} threads");
        st.threads.push(Run::Runnable);
        st.panicked.push(false);
        st.joined.push(false);
        tid
    }

    fn register_lock(&self) -> usize {
        let mut st = self.st();
        st.locks.push(LockState::default());
        st.locks.len() - 1
    }

    /// Picks the next thread to run among the runnable set, recording a
    /// decision when there is a real choice. Returns `None` when no
    /// thread is runnable (all finished, or deadlock).
    fn pick(&self, st: &mut State) -> Option<usize> {
        let enabled: Vec<usize> = st
            .threads
            .iter()
            .enumerate()
            .filter(|(_, r)| matches!(r, Run::Runnable))
            .map(|(i, _)| i)
            // audit:allow-alloc(interleave shim scheduler state, cfg-gated out of release builds)
            .collect();
        if enabled.is_empty() {
            return None;
        }
        if enabled.len() == 1 {
            return Some(enabled[0]);
        }
        let k = st.trace.len();
        let chosen_tid = if let Some(&want) = st.replay.get(k) {
            if !enabled.contains(&want) {
                // audit:allow-alloc(interleave shim abort report, cfg-gated out of release builds)
                st.abort = Some(format!(
                    "nondeterministic model: replayed choice t{want} not in enabled set {enabled:?}"
                ));
                self.cv.notify_all();
                return Some(st.current);
            }
            want
        } else if enabled.contains(&st.current) {
            st.current
        } else {
            enabled[0]
        };
        let chosen = enabled.iter().position(|&t| t == chosen_tid).unwrap_or(0);
        // audit:allow-alloc(interleave shim decision trace, cfg-gated out of release builds)
        st.trace.push(Decision { enabled, current: st.current, chosen });
        Some(chosen_tid)
    }

    /// Aborts the execution if an abort is pending, unwinding this
    /// model thread. Must be called without the state lock held.
    fn bail(&self) -> ! {
        std::panic::panic_any(ABORT_PAYLOAD);
    }

    /// A scheduling point for a runnable thread: decide who runs next,
    /// hand over if it isn't us, and wait for our turn back.
    fn schedule_point(&self, me: usize) {
        let mut st = self.st();
        if st.abort.is_some() {
            drop(st);
            self.bail();
        }
        // `me` is runnable, so pick() always finds someone.
        let next = self.pick(&mut st).unwrap_or(me);
        if next != me {
            st.current = next;
            self.cv.notify_all();
            while st.current != me {
                if st.abort.is_some() {
                    drop(st);
                    self.bail();
                }
                st = self.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
            }
        } else {
            st.current = next;
        }
    }

    /// Blocks `me` on `res`: hand control to another thread (or declare
    /// deadlock) and wait until we are runnable *and* scheduled again.
    fn block(&self, me: usize, res: Resource) {
        let mut st = self.st();
        st.threads[me] = Run::Blocked(res);
        match self.pick(&mut st) {
            Some(next) => {
                st.current = next;
                self.cv.notify_all();
            }
            None => {
                st.abort = Some(format!(
                    "deadlock: every live thread is blocked (thread {me} on {res:?})"
                ));
                self.cv.notify_all();
            }
        }
        while st.current != me || st.threads[me] != Run::Runnable {
            if st.abort.is_some() {
                drop(st);
                self.bail();
            }
            st = self.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Marks `me` finished, wakes joiners, hands control onward.
    fn finish(&self, me: usize, panicked: bool) {
        let mut st = self.st();
        st.threads[me] = Run::Finished;
        st.panicked[me] = panicked;
        for i in 0..st.threads.len() {
            if st.threads[i] == Run::Blocked(Resource::Join(me)) {
                st.threads[i] = Run::Runnable;
            }
        }
        if st.abort.is_none() {
            if let Some(next) = self.pick(&mut st) {
                st.current = next;
            } else if st.threads.iter().any(|r| matches!(r, Run::Blocked(_))) {
                st.abort =
                    Some(format!("deadlock: thread {me} finished with every other thread blocked"));
            }
        }
        self.cv.notify_all();
    }

    /// First wait of a freshly spawned thread: block until scheduled.
    fn wait_for_turn(&self, me: usize) {
        let mut st = self.st();
        while st.current != me {
            if st.abort.is_some() {
                drop(st);
                self.bail();
            }
            st = self.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
    }
}

/// Renders a `catch_unwind` payload as a message string.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "panic with non-string payload".to_string())
}

fn is_abort_payload(payload: &(dyn std::any::Any + Send)) -> bool {
    payload.downcast_ref::<&str>().is_some_and(|s| *s == ABORT_PAYLOAD)
}

// ---------------------------------------------------------------------------
// Shim types
// ---------------------------------------------------------------------------

/// A model mutex: mutual exclusion and poisoning semantics of
/// [`std::sync::Mutex`], with every `lock` a scheduling point.
#[derive(Debug)]
pub struct Mutex<T> {
    sched: Arc<Sched>,
    id: usize,
    data: StdMutex<T>,
}

/// Guard returned by [`Mutex::lock`]; releasing it (drop) wakes blocked
/// contenders and poisons the model mutex when dropped during a panic.
#[derive(Debug)]
pub struct MutexGuard<'a, T> {
    lock: &'a Mutex<T>,
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Mutex<T> {
        Mutex::new(T::default())
    }
}

impl<T> Mutex<T> {
    /// Creates a model mutex. Must be called inside [`explore`].
    pub fn new(value: T) -> Mutex<T> {
        let (sched, _) = current();
        let id = sched.register_lock();
        Mutex { sched, id, data: StdMutex::new(value) }
    }

    /// Acquires the mutex, blocking (in model time) while another model
    /// thread holds it. Mirrors `std`: a poisoned mutex still locks but
    /// hands the guard back inside `Err(PoisonError)`.
    ///
    /// # Panics
    ///
    /// Aborts the schedule if the owning thread re-locks (self-deadlock).
    #[allow(clippy::type_complexity)]
    pub fn lock(&self) -> Result<MutexGuard<'_, T>, PoisonError<MutexGuard<'_, T>>> {
        let (sched, me) = current();
        sched.schedule_point(me);
        loop {
            let mut st = sched.st();
            if st.abort.is_some() {
                drop(st);
                sched.bail();
            }
            let ls = &mut st.locks[self.id];
            match ls.owner {
                None => {
                    ls.owner = Some(me);
                    let poisoned = ls.poisoned;
                    drop(st);
                    let inner = self.data.lock().unwrap_or_else(PoisonError::into_inner);
                    let guard = MutexGuard { lock: self, inner: Some(inner) };
                    return if poisoned { Err(PoisonError::new(guard)) } else { Ok(guard) };
                }
                Some(owner) if owner == me => {
                    st.abort = Some(format!(
                        "self-deadlock: thread {me} re-locks a mutex it already holds"
                    ));
                    sched.cv.notify_all();
                    drop(st);
                    sched.bail();
                }
                Some(_) => {
                    drop(st);
                    sched.block(me, Resource::Lock(self.id));
                }
            }
        }
    }

    /// Whether a panic has poisoned this mutex (model-level flag).
    pub fn is_poisoned(&self) -> bool {
        self.sched.st().locks[self.id].poisoned
    }
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        match self.inner.as_ref() {
            Some(g) => g,
            None => unreachable!("guard taken"),
        }
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        match self.inner.as_mut() {
            Some(g) => g,
            None => unreachable!("guard taken"),
        }
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Release the inner std guard before touching scheduler state.
        self.inner.take();
        let mut st = self.lock.sched.st();
        let panicking = std::thread::panicking();
        let ls = &mut st.locks[self.lock.id];
        ls.owner = None;
        if panicking {
            ls.poisoned = true;
        }
        for i in 0..st.threads.len() {
            if st.threads[i] == Run::Blocked(Resource::Lock(self.lock.id)) {
                st.threads[i] = Run::Runnable;
            }
        }
        self.lock.sched.cv.notify_all();
    }
}

macro_rules! shim_atomic {
    ($(#[$doc:meta])* $name:ident, $std:ty, $prim:ty) => {
        $(#[$doc])*
        #[derive(Debug)]
        pub struct $name {
            sched: Arc<Sched>,
            v: $std,
        }

        impl $name {
            /// Creates the shim atomic. Must be called inside [`explore`].
            pub fn new(value: $prim) -> $name {
                let (sched, _) = current();
                $name { sched, v: <$std>::new(value) }
            }

            fn point(&self) {
                let (_, me) = current();
                self.sched.schedule_point(me);
            }

            /// Atomic load; the `Ordering` is accepted for API parity and
            /// modeled as sequentially consistent.
            pub fn load(&self, _order: Ordering) -> $prim {
                self.point();
                self.v.load(Ordering::SeqCst)
            }

            /// Atomic store (modeled sequentially consistent).
            pub fn store(&self, value: $prim, _order: Ordering) {
                self.point();
                self.v.store(value, Ordering::SeqCst);
            }

            /// Atomic swap (modeled sequentially consistent).
            pub fn swap(&self, value: $prim, _order: Ordering) -> $prim {
                self.point();
                self.v.swap(value, Ordering::SeqCst)
            }
        }
    };
}

shim_atomic!(
    /// A model [`std::sync::atomic::AtomicUsize`]: every operation is a
    /// scheduling point; orderings are modeled as `SeqCst`.
    AtomicUsize,
    std::sync::atomic::AtomicUsize,
    usize
);

shim_atomic!(
    /// A model [`std::sync::atomic::AtomicBool`]: every operation is a
    /// scheduling point; orderings are modeled as `SeqCst`.
    AtomicBool,
    std::sync::atomic::AtomicBool,
    bool
);

impl AtomicUsize {
    /// Atomic fetch-add (modeled sequentially consistent).
    pub fn fetch_add(&self, value: usize, _order: Ordering) -> usize {
        self.point();
        self.v.fetch_add(value, Ordering::SeqCst)
    }

    /// Atomic compare-exchange (modeled sequentially consistent).
    pub fn compare_exchange(
        &self,
        expected: usize,
        new: usize,
        _success: Ordering,
        _failure: Ordering,
    ) -> Result<usize, usize> {
        self.point();
        self.v.compare_exchange(expected, new, Ordering::SeqCst, Ordering::SeqCst)
    }
}

/// A model [`std::sync::Once`]: `call_once` runs the closure exactly
/// once; concurrent callers block (in model time) until it completes.
#[derive(Debug)]
pub struct Once {
    done: Mutex<bool>,
}

impl Once {
    /// Creates the shim. Must be called inside [`explore`].
    #[allow(clippy::new_without_default)]
    pub fn new() -> Once {
        Once { done: Mutex::new(false) }
    }

    /// Runs `f` if no call has completed yet, holding the internal lock
    /// so racing callers observe completed initialization.
    pub fn call_once(&self, f: impl FnOnce()) {
        let mut done = self.done.lock().unwrap_or_else(PoisonError::into_inner);
        if !*done {
            f();
            *done = true;
        }
    }
}

// ---------------------------------------------------------------------------
// Threads
// ---------------------------------------------------------------------------

/// Handle to a model thread started with [`spawn`].
#[derive(Debug)]
pub struct JoinHandle<T> {
    tid: usize,
    result: Arc<StdMutex<Option<Result<T, String>>>>,
}

impl<T> JoinHandle<T> {
    /// Waits (in model time) for the thread to finish. A panicking
    /// thread yields `Err` with its panic message — consuming it this
    /// way marks the panic as expected (poison-recovery models rely on
    /// this), while an unconsumed panic fails the whole exploration.
    pub fn join(self) -> Result<T, String> {
        let (sched, me) = current();
        sched.schedule_point(me);
        loop {
            let mut st = sched.st();
            if st.abort.is_some() {
                drop(st);
                sched.bail();
            }
            if st.threads[self.tid] == Run::Finished {
                st.joined[self.tid] = true;
                drop(st);
                break;
            }
            drop(st);
            sched.block(me, Resource::Join(self.tid));
        }
        let taken = self.result.lock().unwrap_or_else(PoisonError::into_inner).take();
        match taken {
            Some(outcome) => outcome,
            None => Err("model thread finished without storing a result".to_string()),
        }
    }
}

/// Spawns a model thread running `f`. The spawn itself is a scheduling
/// point, so the child may run before the parent's next operation.
pub fn spawn<T, F>(f: F) -> JoinHandle<T>
where
    T: Send + 'static,
    F: FnOnce() -> T + Send + 'static,
{
    let (sched, me) = current();
    let tid = sched.register_thread();
    let result: Arc<StdMutex<Option<Result<T, String>>>> = Arc::new(StdMutex::new(None));
    let os = {
        let sched = Arc::clone(&sched);
        let result = Arc::clone(&result);
        let spawned =
            std::thread::Builder::new().name(format!("interleave-{tid}")).spawn(move || {
                CURRENT.with(|c| *c.borrow_mut() = Some((Arc::clone(&sched), tid)));
                let run = catch_unwind(AssertUnwindSafe(|| {
                    sched.wait_for_turn(tid);
                    f()
                }));
                let panicked =
                    run.is_err() && !run.as_ref().is_err_and(|p| is_abort_payload(p.as_ref()));
                let stored = match run {
                    Ok(v) => Ok(v),
                    Err(p) => Err(panic_message(p.as_ref())),
                };
                *result.lock().unwrap_or_else(PoisonError::into_inner) = Some(stored);
                sched.finish(tid, panicked);
                CURRENT.with(|c| *c.borrow_mut() = None);
            });
        match spawned {
            Ok(h) => h,
            Err(e) => panic!("interleave: spawning an OS thread failed: {e}"),
        }
    };
    sched.st().handles.push(os);
    sched.schedule_point(me);
    JoinHandle { tid, result }
}

// ---------------------------------------------------------------------------
// Explorer (driver)
// ---------------------------------------------------------------------------

/// Exploration summary returned by [`explore`] / [`Explorer::explore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Stats {
    /// Distinct schedules executed.
    pub schedules: usize,
    /// The preemption bound the search ran under.
    pub preemption_bound: usize,
    /// Deepest decision count of any schedule.
    pub max_decisions: usize,
}

/// One branch point of the depth-first search, persisted across
/// executions.
struct Frame {
    enabled: Vec<usize>,
    current: usize,
    /// Alternative order: indices into `enabled`, default choice first.
    order: Vec<usize>,
    /// Position in `order` currently being explored.
    pos: usize,
}

impl Frame {
    /// Preemption cost of alternative `pos`: 1 when switching away from
    /// a thread that could have kept running.
    fn cost(&self, pos: usize) -> usize {
        let tid = self.enabled[self.order[pos]];
        usize::from(self.enabled.contains(&self.current) && tid != self.current)
    }
}

/// Result of one execution.
struct Outcome {
    trace: Vec<Decision>,
    abort: Option<String>,
    root_panic: Option<String>,
    unjoined: Vec<(usize, String)>,
}

/// The bounded interleaving explorer. Construct with
/// [`Explorer::default`] and adjust the bound/seed as needed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Explorer {
    /// Maximum preemptions per schedule ([`DEFAULT_PREEMPTION_BOUND`]).
    pub preemption_bound: usize,
    /// Schedule budget before the search panics ([`MAX_SCHEDULES`]).
    pub max_schedules: usize,
    /// Seed permuting the order alternatives are visited in (coverage
    /// is exhaustive either way; the seed only changes visit order).
    pub seed: u64,
}

impl Default for Explorer {
    fn default() -> Explorer {
        Explorer {
            preemption_bound: DEFAULT_PREEMPTION_BOUND,
            max_schedules: MAX_SCHEDULES,
            seed: 0,
        }
    }
}

impl Explorer {
    /// An explorer with a specific preemption bound.
    pub fn with_bound(bound: usize) -> Explorer {
        Explorer { preemption_bound: bound, ..Explorer::default() }
    }

    /// A seeded explorer: same exhaustive coverage, different DFS order.
    #[must_use]
    pub fn seeded(mut self, seed: u64) -> Explorer {
        self.seed = seed;
        self
    }

    /// Runs `f` under every schedule with at most `preemption_bound`
    /// preemptions.
    ///
    /// # Panics
    ///
    /// Panics when any schedule fails: a model-thread panic that no
    /// `join` consumed, a deadlock, a re-entrant lock, a
    /// nondeterministic model, or the schedule budget being exceeded.
    /// The panic message carries the offending schedule as the chosen
    /// thread id per decision point.
    pub fn explore<F>(&self, f: F) -> Stats
    where
        F: Fn() + Send + Sync + 'static,
    {
        let f = Arc::new(f);
        let mut stack: Vec<Frame> = Vec::new();
        let mut schedules = 0usize;
        let mut max_decisions = 0usize;
        loop {
            schedules += 1;
            assert!(
                schedules <= self.max_schedules,
                "interleave: schedule budget ({}) exceeded — shrink the model or raise max_schedules",
                self.max_schedules
            );
            let replay: Vec<usize> = stack.iter().map(|fr| fr.enabled[fr.order[fr.pos]]).collect();
            let out = run_once(&f, replay.clone());
            let schedule = render_schedule(&out.trace);
            if let Some(msg) = &out.abort {
                panic!("interleave: {msg}; schedule {schedule}");
            }
            if let Some(msg) = &out.root_panic {
                panic!("interleave: root model thread panicked: {msg}; schedule {schedule}");
            }
            if let Some((tid, msg)) = out.unjoined.first() {
                panic!(
                    "interleave: model thread {tid} panicked without being joined: {msg}; \
                     schedule {schedule}"
                );
            }
            max_decisions = max_decisions.max(out.trace.len());
            // Extend the stack with the fresh decisions this run took
            // past the replayed prefix.
            let mut rng = DetRng::substream(self.seed, stack.len() as u64);
            for d in out.trace.iter().skip(stack.len()) {
                let mut rest: Vec<usize> =
                    (0..d.enabled.len()).filter(|&i| i != d.chosen).collect();
                if self.seed != 0 {
                    // Fisher–Yates over the non-default alternatives.
                    for i in (1..rest.len()).rev() {
                        let j = rng.index(i + 1);
                        rest.swap(i, j);
                    }
                }
                let mut order = Vec::with_capacity(d.enabled.len());
                order.push(d.chosen);
                order.extend(rest);
                stack.push(Frame { enabled: d.enabled.clone(), current: d.current, order, pos: 0 });
            }
            // Backtrack: advance the deepest frame that still has an
            // alternative within the preemption budget.
            'backtrack: loop {
                let Some(top) = stack.last() else {
                    return Stats {
                        schedules,
                        preemption_bound: self.preemption_bound,
                        max_decisions,
                    };
                };
                let used_below: usize =
                    stack[..stack.len() - 1].iter().map(|fr| fr.cost(fr.pos)).sum();
                let mut next = top.pos + 1;
                while next < top.order.len() {
                    if used_below + top.cost(next) <= self.preemption_bound {
                        break;
                    }
                    next += 1;
                }
                if next < top.order.len() {
                    let last = stack.len() - 1;
                    stack[last].pos = next;
                    break 'backtrack;
                }
                stack.pop();
            }
        }
    }
}

/// Renders a trace as the chosen thread per decision, e.g. `[0 1 1 0]`.
fn render_schedule(trace: &[Decision]) -> String {
    let ids: Vec<String> = trace.iter().map(|d| d.enabled[d.chosen].to_string()).collect();
    format!("[{}]", ids.join(" "))
}

/// Explores `f` with the default explorer (bound
/// [`DEFAULT_PREEMPTION_BOUND`]).
pub fn explore<F>(f: F) -> Stats
where
    F: Fn() + Send + Sync + 'static,
{
    Explorer::default().explore(f)
}

/// Runs one execution of the model under `replay`, collecting the trace.
fn run_once<F>(f: &Arc<F>, replay: Vec<usize>) -> Outcome
where
    F: Fn() + Send + Sync + 'static,
{
    let sched = Arc::new(Sched::new(replay));
    let root_tid = sched.register_thread();
    let root = {
        let sched = Arc::clone(&sched);
        let f = Arc::clone(f);
        let spawned =
            std::thread::Builder::new().name("interleave-root".to_string()).spawn(move || {
                CURRENT.with(|c| *c.borrow_mut() = Some((Arc::clone(&sched), root_tid)));
                let run = catch_unwind(AssertUnwindSafe(|| f()));
                let (panicked, msg) = match &run {
                    Ok(()) => (false, None),
                    Err(p) if is_abort_payload(p.as_ref()) => (false, None),
                    Err(p) => (true, Some(panic_message(p.as_ref()))),
                };
                if let Some(msg) = msg {
                    sched.st().root_panic = Some(msg);
                }
                sched.finish(root_tid, panicked);
                CURRENT.with(|c| *c.borrow_mut() = None);
            });
        match spawned {
            Ok(h) => h,
            Err(e) => panic!("interleave: spawning the root thread failed: {e}"),
        }
    };
    let _ = root.join();
    // Children may still be running (or newly spawned); drain until the
    // handle registry stays empty.
    loop {
        let handles: Vec<std::thread::JoinHandle<()>> = std::mem::take(&mut sched.st().handles);
        if handles.is_empty() {
            break;
        }
        for h in handles {
            let _ = h.join();
        }
    }
    let st = sched.st();
    let unjoined: Vec<(usize, String)> = st
        .panicked
        .iter()
        .enumerate()
        .filter(|&(tid, &p)| p && tid != 0 && !st.joined[tid])
        .map(|(tid, _)| (tid, format!("thread {tid}")))
        .collect();
    Outcome {
        trace: st.trace.clone(),
        abort: st.abort.clone(),
        root_panic: st.root_panic.clone(),
        unjoined,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_thread_model_runs_once() {
        let stats = explore(|| {
            let m = Mutex::new(1u64);
            *m.lock().unwrap_or_else(PoisonError::into_inner) += 1;
        });
        assert_eq!(stats.schedules, 1, "no branch points, one schedule");
    }

    #[test]
    fn two_increments_never_lose_an_update() {
        let stats = explore(|| {
            let n = Arc::new(AtomicUsize::new(0));
            let t = {
                let n = Arc::clone(&n);
                spawn(move || {
                    let v = n.load(Ordering::SeqCst);
                    n.store(v + 1, Ordering::SeqCst);
                })
            };
            let v = n.load(Ordering::SeqCst);
            n.store(v + 1, Ordering::SeqCst);
            t.join().map_err(|e| e.to_string()).ok();
            let total = n.load(Ordering::SeqCst);
            assert!(total == 1 || total == 2, "non-atomic increment loses at most one update");
        });
        assert!(stats.schedules > 1, "interleavings were explored: {stats:?}");
    }

    #[test]
    fn unsynchronized_increment_bug_is_found() {
        // The load/store race above CAN lose an update; asserting it
        // never does must fail, proving the explorer finds the bug.
        let caught = catch_unwind(|| {
            explore(|| {
                let n = Arc::new(AtomicUsize::new(0));
                let t = {
                    let n = Arc::clone(&n);
                    spawn(move || {
                        let v = n.load(Ordering::SeqCst);
                        n.store(v + 1, Ordering::SeqCst);
                    })
                };
                let v = n.load(Ordering::SeqCst);
                n.store(v + 1, Ordering::SeqCst);
                let _ = t.join();
                assert_eq!(n.load(Ordering::SeqCst), 2, "lost update");
            });
        });
        let msg = panic_message(caught.expect_err("the lost update must be found").as_ref());
        assert!(msg.contains("lost update"), "explorer surfaces the failing assertion: {msg}");
    }

    #[test]
    fn mutexed_increments_hold_under_full_exploration() {
        let stats = Explorer::with_bound(3).explore(|| {
            let m = Arc::new(Mutex::new(0u64));
            let mk = |m: &Arc<Mutex<u64>>| {
                let m = Arc::clone(m);
                spawn(move || {
                    let mut g = m.lock().unwrap_or_else(PoisonError::into_inner);
                    *g += 1;
                })
            };
            let a = mk(&m);
            let b = mk(&m);
            a.join().map_err(|e| e.to_string()).ok();
            b.join().map_err(|e| e.to_string()).ok();
            assert_eq!(*m.lock().unwrap_or_else(PoisonError::into_inner), 2);
        });
        assert!(stats.schedules >= 2, "{stats:?}");
    }

    #[test]
    fn ab_ba_deadlock_is_detected() {
        let caught = catch_unwind(|| {
            explore(|| {
                let a = Arc::new(Mutex::new(0u64));
                let b = Arc::new(Mutex::new(0u64));
                let t = {
                    let (a, b) = (Arc::clone(&a), Arc::clone(&b));
                    spawn(move || {
                        let _gb = b.lock().unwrap_or_else(PoisonError::into_inner);
                        let _ga = a.lock().unwrap_or_else(PoisonError::into_inner);
                    })
                };
                let _ga = a.lock().unwrap_or_else(PoisonError::into_inner);
                let _gb = b.lock().unwrap_or_else(PoisonError::into_inner);
                drop((_ga, _gb));
                let _ = t.join();
            });
        });
        let msg = panic_message(caught.expect_err("AB/BA must deadlock somewhere").as_ref());
        assert!(msg.contains("deadlock"), "{msg}");
    }

    #[test]
    fn reentrant_lock_is_detected() {
        let caught = catch_unwind(|| {
            explore(|| {
                let m = Mutex::new(0u64);
                let _g = m.lock().unwrap_or_else(PoisonError::into_inner);
                let _h = m.lock().unwrap_or_else(PoisonError::into_inner);
            });
        });
        let msg = panic_message(caught.expect_err("re-entrant lock must abort").as_ref());
        assert!(msg.contains("self-deadlock"), "{msg}");
    }

    #[test]
    fn panic_while_holding_poisons_and_join_consumes_it() {
        explore(|| {
            let m = Arc::new(Mutex::new(7u64));
            let t = {
                let m = Arc::clone(&m);
                spawn(move || {
                    let _g = m.lock().unwrap_or_else(PoisonError::into_inner);
                    panic!("deliberate poison");
                })
            };
            let joined = t.join();
            assert!(joined.is_err(), "panic surfaces through join");
            // The mutex may or may not be poisoned yet depending on the
            // schedule, but once the panicking thread is joined it must be.
            assert!(m.is_poisoned());
            let v = *m.lock().unwrap_or_else(PoisonError::into_inner);
            assert_eq!(v, 7, "data survives poisoning");
        });
    }

    #[test]
    fn unjoined_panic_fails_the_exploration() {
        let caught = catch_unwind(|| {
            explore(|| {
                let _t = spawn(|| panic!("dropped on the floor"));
            });
        });
        let msg = panic_message(caught.expect_err("unjoined panic must fail").as_ref());
        assert!(msg.contains("without being joined"), "{msg}");
    }

    #[test]
    fn once_runs_exactly_once_under_contention() {
        explore(|| {
            let once = Arc::new(Once::new());
            let calls = Arc::new(AtomicUsize::new(0));
            let mk = |once: &Arc<Once>, calls: &Arc<AtomicUsize>| {
                let (once, calls) = (Arc::clone(once), Arc::clone(calls));
                spawn(move || {
                    once.call_once(|| {
                        calls.fetch_add(1, Ordering::SeqCst);
                    });
                })
            };
            let a = mk(&once, &calls);
            let b = mk(&once, &calls);
            a.join().map_err(|e| e.to_string()).ok();
            b.join().map_err(|e| e.to_string()).ok();
            assert_eq!(calls.load(Ordering::SeqCst), 1);
        });
    }

    #[test]
    fn exploration_is_deterministic() {
        let model = || {
            let m = Arc::new(Mutex::new(0u64));
            let t = {
                let m = Arc::clone(&m);
                spawn(move || {
                    *m.lock().unwrap_or_else(PoisonError::into_inner) += 1;
                })
            };
            *m.lock().unwrap_or_else(PoisonError::into_inner) += 1;
            t.join().map_err(|e| e.to_string()).ok();
        };
        let a = explore(model);
        let b = explore(model);
        assert_eq!(a, b, "same model, same bound, same schedule count");
        let seeded = Explorer::default().seeded(0x5eed).explore(model);
        assert_eq!(seeded.schedules, a.schedules, "seeding permutes visit order, not coverage");
    }

    #[test]
    fn preemption_bound_trims_the_schedule_space() {
        let model = || {
            let n = Arc::new(AtomicUsize::new(0));
            let mk = |n: &Arc<AtomicUsize>| {
                let n = Arc::clone(n);
                spawn(move || {
                    n.fetch_add(1, Ordering::SeqCst);
                    n.fetch_add(1, Ordering::SeqCst);
                })
            };
            let a = mk(&n);
            let b = mk(&n);
            a.join().map_err(|e| e.to_string()).ok();
            b.join().map_err(|e| e.to_string()).ok();
            assert_eq!(n.load(Ordering::SeqCst), 4);
        };
        let tight = Explorer::with_bound(0).explore(model);
        let wide = Explorer::with_bound(2).explore(model);
        assert!(
            tight.schedules < wide.schedules,
            "bound 0 ({}) explores fewer schedules than bound 2 ({})",
            tight.schedules,
            wide.schedules
        );
    }
}
