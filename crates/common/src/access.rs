//! Memory-access records: the unit of work flowing through the simulator.

use crate::addr::{Addr, CoreId, Pc};
use core::fmt;

/// Whether an access reads or writes its target line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A demand load.
    Read,
    /// A demand store (allocates on miss; the hierarchy is write-allocate,
    /// write-back).
    Write,
}

impl AccessKind {
    /// Returns `true` for [`AccessKind::Write`].
    pub const fn is_write(self) -> bool {
        matches!(self, AccessKind::Write)
    }
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessKind::Read => f.write_str("R"),
            AccessKind::Write => f.write_str("W"),
        }
    }
}

/// One memory access: which core issued it, from which static instruction,
/// to which byte address.
///
/// `gap` carries the number of non-memory instructions the core executed
/// since its previous memory access; the timing model charges one cycle per
/// such instruction. Traces are therefore self-contained: no separate
/// instruction stream is needed.
///
/// `mlp` is the memory-level parallelism the issuing instruction enjoys:
/// how many outstanding long-latency accesses the (out-of-order) core
/// overlaps with this one. The timing model divides miss latency by it,
/// so independent streaming loads drain far faster than dependent
/// pointer chases — which is what lets streamers exert realistic
/// pollution pressure on a shared LLC.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Access {
    /// Issuing core.
    pub core: CoreId,
    /// Static instruction (program counter) performing the access.
    pub pc: Pc,
    /// Byte address accessed.
    pub addr: Addr,
    /// Read or write.
    pub kind: AccessKind,
    /// Non-memory instructions executed since the core's previous access.
    pub gap: u32,
    /// Memory-level parallelism (>= 1) of this access.
    pub mlp: u8,
}

impl Access {
    /// Creates an access with a zero instruction gap and no overlap.
    pub const fn new(core: CoreId, pc: Pc, addr: Addr, kind: AccessKind) -> Self {
        Access { core, pc, addr, kind, gap: 0, mlp: 1 }
    }

    /// Creates an access with an explicit instruction gap (no overlap).
    pub const fn with_gap(core: CoreId, pc: Pc, addr: Addr, kind: AccessKind, gap: u32) -> Self {
        Access { core, pc, addr, kind, gap, mlp: 1 }
    }

    /// Sets the memory-level parallelism, builder-style (clamped to at
    /// least 1).
    #[must_use]
    pub const fn with_mlp(mut self, mlp: u8) -> Self {
        self.mlp = if mlp == 0 { 1 } else { mlp };
        self
    }

    /// Total instructions this record accounts for (the access itself plus
    /// the preceding non-memory gap).
    pub const fn instructions(&self) -> u64 {
        self.gap as u64 + 1
    }
}

impl fmt::Display for Access {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {} {}", self.core, self.kind, self.pc, self.addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_detection() {
        assert!(AccessKind::Write.is_write());
        assert!(!AccessKind::Read.is_write());
    }

    #[test]
    fn instruction_accounting_includes_access() {
        let a = Access::with_gap(CoreId::new(0), Pc::new(1), Addr::new(2), AccessKind::Read, 9);
        assert_eq!(a.instructions(), 10);
        let b = Access::new(CoreId::new(0), Pc::new(1), Addr::new(2), AccessKind::Read);
        assert_eq!(b.instructions(), 1);
    }

    #[test]
    fn display_is_nonempty() {
        let a = Access::new(CoreId::new(1), Pc::new(0x400), Addr::new(0x80), AccessKind::Write);
        let s = format!("{a}");
        assert!(s.contains("core1") && s.contains('W'));
    }

    #[test]
    fn mlp_defaults_to_one_and_clamps() {
        let a = Access::new(CoreId::new(0), Pc::new(1), Addr::new(2), AccessKind::Read);
        assert_eq!(a.mlp, 1);
        assert_eq!(a.with_mlp(4).mlp, 4);
        assert_eq!(a.with_mlp(0).mlp, 1, "zero overlap is clamped to 1");
    }
}
