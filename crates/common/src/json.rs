//! A minimal, dependency-free JSON value model with a serializer and a
//! strict parser.
//!
//! The telemetry subsystem writes JSONL streams and `manifest.json`
//! files and the `report` binary reads them back; both sides go through
//! [`JsonValue`], so what the sink emits is exactly what the parser
//! accepts (round-trip asserted by tests). This is deliberately a small
//! subset of JSON:
//!
//! * numbers are `u64`, `i64` or finite `f64` (no exponent emission,
//!   though the parser accepts exponents);
//! * object keys keep insertion order (streams stay diff-friendly and
//!   deterministic);
//! * no `\uXXXX` escapes are emitted; the parser accepts the basic
//!   escapes it could ever see from our own serializer plus `\u`.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed or buildable JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number, stored as `f64` (exact for integers < 2^53,
    /// which covers every counter this workspace emits).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object; insertion-ordered key/value pairs.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Builds an object from key/value pairs.
    pub fn obj(pairs: Vec<(&str, JsonValue)>) -> JsonValue {
        JsonValue::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// The value at `key` if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string content, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric content, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric content as `u64`, if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The boolean content, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Serializes to a compact single-line JSON string.
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Serializes with two-space indentation (for `manifest.json`).
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Num(n) => write_num(*n, out),
            JsonValue::Str(s) => write_escaped(s, out),
            JsonValue::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            JsonValue::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        let pad = |out: &mut String, n: usize| out.push_str(&"  ".repeat(n));
        match self {
            JsonValue::Arr(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    pad(out, indent + 1);
                    item.write_pretty(out, indent + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                pad(out, indent);
                out.push(']');
            }
            JsonValue::Obj(pairs) if !pairs.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in pairs.iter().enumerate() {
                    pad(out, indent + 1);
                    write_escaped(k, out);
                    out.push_str(": ");
                    v.write_pretty(out, indent + 1);
                    if i + 1 < pairs.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                pad(out, indent);
                out.push('}');
            }
            _ => self.write(out),
        }
    }
}

impl fmt::Display for JsonValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_string_compact())
    }
}

impl From<u64> for JsonValue {
    fn from(n: u64) -> Self {
        JsonValue::Num(n as f64)
    }
}

impl From<usize> for JsonValue {
    fn from(n: usize) -> Self {
        JsonValue::Num(n as f64)
    }
}

impl From<f64> for JsonValue {
    fn from(n: f64) -> Self {
        JsonValue::Num(n)
    }
}

impl From<bool> for JsonValue {
    fn from(b: bool) -> Self {
        JsonValue::Bool(b)
    }
}

impl From<&str> for JsonValue {
    fn from(s: &str) -> Self {
        JsonValue::Str(s.to_string())
    }
}

impl From<String> for JsonValue {
    fn from(s: String) -> Self {
        JsonValue::Str(s)
    }
}

fn write_num(n: f64, out: &mut String) {
    if !n.is_finite() {
        out.push_str("null"); // JSON has no NaN/Inf; null is the convention
    } else if n.fract() == 0.0 {
        // Integer-valued: `{n:.0}` prints the exact decimal expansion of
        // the f64 at any magnitude. A cast through i64 would saturate
        // beyond ±2^63, silently corrupting large u64 counters (which
        // arrive here via `From<u64>`).
        out.push_str(&format!("{n:.0}"));
    } else {
        out.push_str(&format!("{n}"));
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Error produced when JSON parsing fails: a message and the byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset into the input where it went wrong.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parses a complete JSON document (trailing whitespace allowed, trailing
/// garbage rejected).
///
/// # Errors
///
/// Returns a [`JsonError`] naming the offending byte offset on malformed
/// input.
pub fn parse(input: &str) -> Result<JsonValue, JsonError> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonError {
        JsonError { message: message.to_string(), offset: self.pos }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else { return Err(self.err("unterminated string")) };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else { return Err(self.err("bad escape")) };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| self.err("non-utf8 \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not emitted by our
                            // serializer; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                b if b < 0x80 => out.push(b as char),
                _ => {
                    // Multi-byte UTF-8: the input is a &str, so this is
                    // guaranteed valid; copy the full character.
                    let start = self.pos - 1;
                    let s = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|_| self.err("invalid utf8"))?;
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos = start + c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        text.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| JsonError { message: format!("bad number '{text}'"), offset: start })
    }
}

/// Parses one JSONL document per non-empty line.
///
/// # Errors
///
/// Returns the first line's error, tagged with its 1-based line number.
pub fn parse_jsonl(input: &str) -> Result<Vec<JsonValue>, String> {
    input
        .lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty())
        .map(|(i, l)| parse(l).map_err(|e| format!("line {}: {e}", i + 1)))
        .collect()
}

/// Sorts an object's keys recursively (handy for order-insensitive
/// comparisons in tests).
pub fn canonicalize(v: &JsonValue) -> JsonValue {
    match v {
        JsonValue::Arr(items) => JsonValue::Arr(items.iter().map(canonicalize).collect()),
        JsonValue::Obj(pairs) => {
            let map: BTreeMap<String, JsonValue> =
                pairs.iter().map(|(k, v)| (k.clone(), canonicalize(v))).collect();
            JsonValue::Obj(map.into_iter().collect())
        }
        other => other.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_compact() {
        let v = JsonValue::obj(vec![
            ("name", "mix2_01".into()),
            ("count", 42u64.into()),
            ("ratio", 0.5.into()),
            ("ok", true.into()),
            ("none", JsonValue::Null),
            ("tags", JsonValue::Arr(vec!["a".into(), "b".into()])),
        ]);
        let text = v.to_string_compact();
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn round_trips_pretty() {
        let v = JsonValue::obj(vec![
            ("outer", JsonValue::obj(vec![("inner", 1u64.into())])),
            ("empty", JsonValue::Obj(Vec::new())),
            ("list", JsonValue::Arr(vec![1u64.into(), 2u64.into()])),
        ]);
        assert_eq!(parse(&v.to_string_pretty()).unwrap(), v);
    }

    #[test]
    fn escapes_survive() {
        let v = JsonValue::Str("quote \" slash \\ newline \n tab \t unicode é".into());
        assert_eq!(parse(&v.to_string_compact()).unwrap(), v);
    }

    #[test]
    fn integers_emit_without_fraction() {
        assert_eq!(JsonValue::from(1_000_000u64).to_string_compact(), "1000000");
        assert_eq!(JsonValue::from(0.25).to_string_compact(), "0.25");
    }

    #[test]
    fn huge_integers_emit_every_digit() {
        // Above the old 9e15 cutoff the writer used to fall through to
        // `{}` and, worse, an i64 cast path; both must emit the exact
        // value. 2^63 and 2^64 are exactly representable in f64.
        assert_eq!(JsonValue::from(1u64 << 53).to_string_compact(), "9007199254740992");
        assert_eq!(
            JsonValue::from(9_300_000_000_000_000u64).to_string_compact(),
            "9300000000000000"
        );
        assert_eq!(
            JsonValue::from(9_223_372_036_854_775_808.0f64).to_string_compact(),
            "9223372036854775808"
        );
        assert_eq!(
            JsonValue::from(18_446_744_073_709_551_616.0f64).to_string_compact(),
            "18446744073709551616"
        );
        assert_eq!(
            JsonValue::from(-9_223_372_036_854_775_808.0f64).to_string_compact(),
            "-9223372036854775808"
        );
    }

    #[test]
    fn huge_integers_round_trip_at_the_boundaries() {
        // Every boundary the writer branches on: the last exact u64
        // (2^53), the old cutoff's neighborhood, i64::MIN/MAX magnitude,
        // the u64 range edge, and far beyond any integer type.
        for v in [
            (1u64 << 53) as f64,
            9e15,
            9.3e15,
            9_223_372_036_854_775_808.0,
            -9_223_372_036_854_775_808.0,
            18_446_744_073_709_551_616.0,
            1e300,
        ] {
            let doc = JsonValue::obj(vec![("n", JsonValue::Num(v))]);
            let back = parse(&doc.to_string_compact()).expect("writer emits valid JSON");
            assert_eq!(back.get("n").and_then(JsonValue::as_f64), Some(v), "value {v}");
        }
    }

    #[test]
    fn accessors_work() {
        let v = parse(r#"{"a": 3, "b": "x", "c": [1, 2], "d": true}"#).unwrap();
        assert_eq!(v.get("a").and_then(JsonValue::as_u64), Some(3));
        assert_eq!(v.get("b").and_then(JsonValue::as_str), Some("x"));
        assert_eq!(v.get("c").and_then(JsonValue::as_arr).map(<[_]>::len), Some(2));
        assert_eq!(v.get("d").and_then(JsonValue::as_bool), Some(true));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("hello").is_err());
        assert!(parse("{} trailing").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn parses_exponents_and_negatives() {
        assert_eq!(parse("-12").unwrap().as_f64(), Some(-12.0));
        assert_eq!(parse("1e3").unwrap().as_f64(), Some(1000.0));
        assert_eq!(parse("-12").unwrap().as_u64(), None);
    }

    #[test]
    fn jsonl_parses_lines() {
        let lines = "{\"a\":1}\n\n{\"a\":2}\n";
        let vals = parse_jsonl(lines).unwrap();
        assert_eq!(vals.len(), 2);
        assert!(parse_jsonl("{\"a\":1}\nnot json\n").is_err());
    }

    #[test]
    fn canonicalize_sorts_keys() {
        let a = parse(r#"{"b":1,"a":{"z":1,"y":2}}"#).unwrap();
        let b = parse(r#"{"a":{"y":2,"z":1},"b":1}"#).unwrap();
        assert_eq!(canonicalize(&a), canonicalize(&b));
    }
}
