//! Epoch-level telemetry: the event model and pluggable event sinks.
//!
//! The abstract's mechanism — DelinquentPC monitoring, Next-Use
//! histograms, cost-benefit PC selection — is driven entirely by
//! per-epoch statistics, but end-of-run aggregates cannot show *why* a
//! selection flipped mid-run. This module defines the shared vocabulary
//! for recording that evolution:
//!
//! * [`Event`] — the epoch-granular things a simulation can report:
//!   run banners, periodic LLC counter snapshots, and NUcache selection
//!   epochs (chosen PC set, cost-benefit scores, Next-Use summaries,
//!   DeliWays occupancy);
//! * [`EventSink`] — the consumer interface. Simulation code holds a
//!   `&mut dyn EventSink` and never knows where events go;
//! * [`NullSink`] — the zero-cost default: reports itself disabled so
//!   producers skip snapshot construction entirely;
//! * [`CounterSink`] — tallies event counts and final LLC totals, for
//!   tests that cross-check telemetry against the simulator's own
//!   counters;
//! * [`JsonlSink`] — serializes each event as one JSON line through
//!   [`crate::json`], the machine-readable format the `report` binary
//!   and the run manifests consume.
//!
//! Events are emitted at epoch granularity (every ~100k accesses), never
//! per access, so a run with telemetry enabled performs the same
//! simulation work as one without — a property the sim crate's
//! determinism tests assert.

use crate::json::JsonValue;
use crate::stats::CacheStats;
use crate::Pc;
use std::io::Write;

/// Which simulation stage an LLC snapshot belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Cache warm-up; statistics are discarded before measurement.
    Warmup,
    /// The measured window every reported number comes from.
    Measure,
}

impl Stage {
    /// Stable lowercase name used in JSONL streams.
    pub const fn name(self) -> &'static str {
        match self {
            Stage::Warmup => "warmup",
            Stage::Measure => "measure",
        }
    }

    /// Inverse of [`Stage::name`].
    pub fn from_name(name: &str) -> Option<Stage> {
        match name {
            "warmup" => Some(Stage::Warmup),
            "measure" => Some(Stage::Measure),
            _ => None,
        }
    }
}

/// Per-PC state captured at a selection epoch: fills, whether the PC was
/// chosen, and a summary of its Next-Use histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct PcSnapshot {
    /// The delinquent PC.
    pub pc: Pc,
    /// Combined fill count over the decayed window (demand misses +
    /// DeliWays insertions).
    pub fills: u64,
    /// Whether the selector admitted this PC to the DeliWays.
    pub chosen: bool,
    /// Samples in the PC's Next-Use histogram (0 = none recorded).
    pub samples: u64,
    /// Next-Use distance quantiles in set-accesses (`None` when the
    /// histogram is empty or the mass sits in the overflow bucket).
    pub p25: Option<u64>,
    /// Median Next-Use distance.
    pub p50: Option<u64>,
    /// 75th-percentile Next-Use distance.
    pub p75: Option<u64>,
    /// 90th-percentile Next-Use distance.
    pub p90: Option<u64>,
}

/// One epoch-granular telemetry event.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// Emitted once at the start of a telemetered run.
    RunStart {
        /// Mix name.
        mix: String,
        /// Scheme name (as the LLC reports it).
        scheme: String,
        /// Core count.
        cores: u64,
        /// Simulation seed.
        seed: u64,
    },
    /// Periodic LLC counter snapshot (cumulative within the stage).
    LlcEpoch {
        /// Stage the counters accumulate over.
        stage: Stage,
        /// 0-based snapshot index within the stage.
        index: u64,
        /// Total accesses issued by all cores in the stage so far.
        accesses: u64,
        /// Cumulative per-core LLC counters.
        per_core: Vec<CacheStats>,
        /// Cumulative aggregate LLC counters (includes write-backs, so
        /// it is not simply the sum of `per_core`).
        totals: CacheStats,
    },
    /// A NUcache PC-selection epoch: what the monitor saw and what the
    /// cost-benefit pass decided.
    SelectionEpoch {
        /// 1-based selection epoch counter.
        epoch: u64,
        /// Accesses in the decayed selection window (the cost model's
        /// fill-rate denominator).
        window_accesses: u64,
        /// PCs admitted to the DeliWays, ascending.
        chosen: Vec<Pc>,
        /// The selector's objective value (expected DeliWays hits).
        expected_hits: u64,
        /// Extra lifetime (set-accesses) the chosen set enjoys.
        extra_lifetime: u64,
        /// Cumulative DeliWays hits at this epoch.
        deli_hits: u64,
        /// Cumulative MainWays→DeliWays transfers at this epoch.
        deli_fills: u64,
        /// Valid lines currently resident in DeliWays across all sets.
        deli_occupancy: u64,
        /// Total DeliWays line slots (occupancy denominator).
        deli_capacity: u64,
        /// The top candidate PCs presented to the selector, with their
        /// Next-Use evidence, ordered by descending fills.
        top_pcs: Vec<PcSnapshot>,
    },
    /// Emitted once at the end of a telemetered run with the frozen
    /// per-core results.
    RunEnd {
        /// Scheme name.
        scheme: String,
        /// Measured IPC per core.
        ipcs: Vec<f64>,
        /// Frozen per-core LLC counters (measurement window).
        per_core: Vec<CacheStats>,
        /// Aggregate LLC counters over the measurement window.
        totals: CacheStats,
    },
}

fn stats_json(s: &CacheStats) -> JsonValue {
    JsonValue::obj(vec![
        ("hits", s.hits.into()),
        ("misses", s.misses.into()),
        ("evictions", s.evictions.into()),
        ("writebacks", s.writebacks.into()),
    ])
}

fn stats_from_json(v: &JsonValue) -> Option<CacheStats> {
    Some(CacheStats {
        hits: v.get("hits")?.as_u64()?,
        misses: v.get("misses")?.as_u64()?,
        evictions: v.get("evictions")?.as_u64()?,
        writebacks: v.get("writebacks")?.as_u64()?,
    })
}

fn opt_u64_json(v: Option<u64>) -> JsonValue {
    v.map_or(JsonValue::Null, JsonValue::from)
}

impl Event {
    /// The stable `type` tag this event serializes under.
    pub const fn type_name(&self) -> &'static str {
        match self {
            Event::RunStart { .. } => "run_start",
            Event::LlcEpoch { .. } => "llc_epoch",
            Event::SelectionEpoch { .. } => "selection_epoch",
            Event::RunEnd { .. } => "run_end",
        }
    }

    /// Serializes the event to the JSON object the JSONL streams carry.
    pub fn to_json(&self) -> JsonValue {
        match self {
            Event::RunStart { mix, scheme, cores, seed } => JsonValue::obj(vec![
                ("type", self.type_name().into()),
                ("mix", mix.as_str().into()),
                ("scheme", scheme.as_str().into()),
                ("cores", (*cores).into()),
                ("seed", (*seed).into()),
            ]),
            Event::LlcEpoch { stage, index, accesses, per_core, totals } => JsonValue::obj(vec![
                ("type", self.type_name().into()),
                ("stage", stage.name().into()),
                ("index", (*index).into()),
                ("accesses", (*accesses).into()),
                ("per_core", JsonValue::Arr(per_core.iter().map(stats_json).collect())),
                ("totals", stats_json(totals)),
            ]),
            Event::SelectionEpoch {
                epoch,
                window_accesses,
                chosen,
                expected_hits,
                extra_lifetime,
                deli_hits,
                deli_fills,
                deli_occupancy,
                deli_capacity,
                top_pcs,
            } => JsonValue::obj(vec![
                ("type", self.type_name().into()),
                ("epoch", (*epoch).into()),
                ("window_accesses", (*window_accesses).into()),
                ("chosen", JsonValue::Arr(chosen.iter().map(|pc| pc.0.into()).collect())),
                ("expected_hits", (*expected_hits).into()),
                ("extra_lifetime", (*extra_lifetime).into()),
                ("deli_hits", (*deli_hits).into()),
                ("deli_fills", (*deli_fills).into()),
                ("deli_occupancy", (*deli_occupancy).into()),
                ("deli_capacity", (*deli_capacity).into()),
                (
                    "top_pcs",
                    JsonValue::Arr(
                        top_pcs
                            .iter()
                            .map(|p| {
                                JsonValue::obj(vec![
                                    ("pc", p.pc.0.into()),
                                    ("fills", p.fills.into()),
                                    ("chosen", p.chosen.into()),
                                    ("samples", p.samples.into()),
                                    ("p25", opt_u64_json(p.p25)),
                                    ("p50", opt_u64_json(p.p50)),
                                    ("p75", opt_u64_json(p.p75)),
                                    ("p90", opt_u64_json(p.p90)),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]),
            Event::RunEnd { scheme, ipcs, per_core, totals } => JsonValue::obj(vec![
                ("type", self.type_name().into()),
                ("scheme", scheme.as_str().into()),
                ("ipcs", JsonValue::Arr(ipcs.iter().map(|&i| i.into()).collect())),
                ("per_core", JsonValue::Arr(per_core.iter().map(stats_json).collect())),
                ("totals", stats_json(totals)),
            ]),
        }
    }

    /// Reconstructs an event from its JSON form (inverse of
    /// [`Event::to_json`]); `None` when the object is not a well-formed
    /// event.
    pub fn from_json(v: &JsonValue) -> Option<Event> {
        let stats_vec = |key: &str| -> Option<Vec<CacheStats>> {
            v.get(key)?.as_arr()?.iter().map(stats_from_json).collect()
        };
        match v.get("type")?.as_str()? {
            "run_start" => Some(Event::RunStart {
                mix: v.get("mix")?.as_str()?.to_string(),
                scheme: v.get("scheme")?.as_str()?.to_string(),
                cores: v.get("cores")?.as_u64()?,
                seed: v.get("seed")?.as_u64()?,
            }),
            "llc_epoch" => Some(Event::LlcEpoch {
                stage: Stage::from_name(v.get("stage")?.as_str()?)?,
                index: v.get("index")?.as_u64()?,
                accesses: v.get("accesses")?.as_u64()?,
                per_core: stats_vec("per_core")?,
                totals: stats_from_json(v.get("totals")?)?,
            }),
            "selection_epoch" => Some(Event::SelectionEpoch {
                epoch: v.get("epoch")?.as_u64()?,
                window_accesses: v.get("window_accesses")?.as_u64()?,
                chosen: v
                    .get("chosen")?
                    .as_arr()?
                    .iter()
                    .map(|p| p.as_u64().map(Pc::new))
                    .collect::<Option<Vec<Pc>>>()?,
                expected_hits: v.get("expected_hits")?.as_u64()?,
                extra_lifetime: v.get("extra_lifetime")?.as_u64()?,
                deli_hits: v.get("deli_hits")?.as_u64()?,
                deli_fills: v.get("deli_fills")?.as_u64()?,
                deli_occupancy: v.get("deli_occupancy")?.as_u64()?,
                deli_capacity: v.get("deli_capacity")?.as_u64()?,
                top_pcs: v
                    .get("top_pcs")?
                    .as_arr()?
                    .iter()
                    .map(|p| {
                        Some(PcSnapshot {
                            pc: Pc::new(p.get("pc")?.as_u64()?),
                            fills: p.get("fills")?.as_u64()?,
                            chosen: p.get("chosen")?.as_bool()?,
                            samples: p.get("samples")?.as_u64()?,
                            p25: p.get("p25")?.as_u64(),
                            p50: p.get("p50")?.as_u64(),
                            p75: p.get("p75")?.as_u64(),
                            p90: p.get("p90")?.as_u64(),
                        })
                    })
                    .collect::<Option<Vec<PcSnapshot>>>()?,
            }),
            "run_end" => Some(Event::RunEnd {
                scheme: v.get("scheme")?.as_str()?.to_string(),
                ipcs: v
                    .get("ipcs")?
                    .as_arr()?
                    .iter()
                    .map(JsonValue::as_f64)
                    .collect::<Option<Vec<f64>>>()?,
                per_core: stats_vec("per_core")?,
                totals: stats_from_json(v.get("totals")?)?,
            }),
            _ => None,
        }
    }
}

/// Consumer of telemetry events.
///
/// Producers must call [`EventSink::is_enabled`] before building
/// expensive snapshots, so a disabled sink costs one branch per epoch
/// and nothing else.
pub trait EventSink {
    /// Consumes one event.
    fn record_event(&mut self, event: &Event);

    /// Consumes one event, surfacing I/O failure eagerly.
    ///
    /// In-memory sinks cannot fail and use the default (record_event, then
    /// `Ok`); file-backed sinks override this so producers that *can*
    /// degrade gracefully — drop telemetry, keep simulating — learn
    /// about a dead stream at the first failing write instead of at
    /// teardown. [`EventSink::record_event`] remains infallible for producers
    /// that defer error handling to the sink.
    ///
    /// # Errors
    ///
    /// Returns the I/O error that prevented the event from being
    /// durably recorded.
    fn try_record(&mut self, event: &Event) -> std::io::Result<()> {
        self.record_event(event);
        Ok(())
    }

    /// Whether producers should bother constructing events at all.
    fn is_enabled(&self) -> bool {
        true
    }
}

/// The zero-cost default sink: discards everything and tells producers
/// not to construct events in the first place.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl EventSink for NullSink {
    fn record_event(&mut self, _event: &Event) {}

    fn is_enabled(&self) -> bool {
        false
    }
}

/// Tallies events and remembers the final counters, for cross-checking
/// telemetry against the simulator's own statistics.
#[derive(Debug, Clone, Default)]
pub struct CounterSink {
    /// Events seen, by type: (run_start, llc_epoch, selection_epoch,
    /// run_end).
    pub run_starts: u64,
    /// `llc_epoch` events seen.
    pub llc_epochs: u64,
    /// `selection_epoch` events seen.
    pub selection_epochs: u64,
    /// `run_end` events seen.
    pub run_ends: u64,
    /// Aggregate LLC counters from the last `run_end`.
    pub final_totals: CacheStats,
    /// Per-core LLC counters from the last `run_end`.
    pub final_per_core: Vec<CacheStats>,
    /// Distinct chosen-PC sets observed across selection epochs, in
    /// order (selection churn is `transitions()`).
    pub chosen_history: Vec<Vec<Pc>>,
}

impl CounterSink {
    /// Total events consumed.
    pub fn total(&self) -> u64 {
        self.run_starts + self.llc_epochs + self.selection_epochs + self.run_ends
    }

    /// Number of epochs whose chosen set differed from the previous
    /// epoch's (selection churn).
    pub fn transitions(&self) -> u64 {
        self.chosen_history.windows(2).filter(|w| w[0] != w[1]).count() as u64
    }
}

impl EventSink for CounterSink {
    fn record_event(&mut self, event: &Event) {
        match event {
            Event::RunStart { .. } => self.run_starts += 1,
            Event::LlcEpoch { .. } => self.llc_epochs += 1,
            Event::SelectionEpoch { chosen, .. } => {
                self.selection_epochs += 1;
                self.chosen_history.push(chosen.clone());
            }
            Event::RunEnd { per_core, totals, .. } => {
                self.run_ends += 1;
                self.final_totals = *totals;
                self.final_per_core = per_core.clone();
            }
        }
    }
}

/// Serializes each event as one JSON line into a writer.
///
/// The stream is machine-readable by design: `report` and the
/// regeneration workflow documented in `README.md` parse it back through
/// [`crate::json::parse_jsonl`].
#[derive(Debug)]
pub struct JsonlSink<W: Write> {
    out: W,
    lines: u64,
    error: Option<std::io::Error>,
}

impl<W: Write> JsonlSink<W> {
    /// Creates a sink writing to `out`.
    pub fn new(out: W) -> Self {
        JsonlSink { out, lines: 0, error: None }
    }

    /// Lines written so far.
    pub const fn lines(&self) -> u64 {
        self.lines
    }

    /// Marks the sink as failed with `error`, as if a write had failed;
    /// later records are dropped and [`JsonlSink::finish`] returns the
    /// error. No-op when a real error is already recorded.
    ///
    /// This is the hook deterministic fault injection
    /// ([`crate::fault::FaultSite::TelemetryWrite`]) uses to exercise
    /// the degraded-stream paths without an actually failing filesystem.
    pub fn inject_error(&mut self, error: std::io::Error) {
        if self.error.is_none() {
            self.error = Some(error);
        }
    }

    /// Flushes and returns the writer; surfaces any I/O error swallowed
    /// during recording (sinks must not perturb simulations, so write
    /// errors are deferred to here).
    ///
    /// # Errors
    ///
    /// Returns the first I/O error encountered while recording or
    /// flushing.
    pub fn finish(mut self) -> std::io::Result<W> {
        if let Some(e) = self.error {
            return Err(e);
        }
        self.out.flush()?;
        Ok(self.out)
    }
}

impl JsonlSink<std::io::BufWriter<std::fs::File>> {
    /// Creates a sink writing to a freshly created file (parent
    /// directories are created as needed).
    ///
    /// # Errors
    ///
    /// Returns an error when the file cannot be created.
    pub fn create(path: &std::path::Path) -> std::io::Result<Self> {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        Ok(JsonlSink::new(std::io::BufWriter::new(std::fs::File::create(path)?)))
    }
}

impl<W: Write> EventSink for JsonlSink<W> {
    fn record_event(&mut self, event: &Event) {
        let _ = self.try_record(event);
    }

    fn try_record(&mut self, event: &Event) -> std::io::Result<()> {
        // A failed stream stays failed: report the original failure
        // (by kind and message — `io::Error` is not `Clone`) so a
        // producer polling `try_record` sees a stable diagnosis.
        if let Some(e) = &self.error {
            return Err(std::io::Error::new(e.kind(), e.to_string()));
        }
        let line = event.to_json().to_string_compact();
        if let Err(e) = writeln!(self.out, "{line}") {
            let reported = std::io::Error::new(e.kind(), e.to_string());
            self.error = Some(e);
            return Err(reported);
        }
        self.lines += 1;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn sample_events() -> Vec<Event> {
        vec![
            Event::RunStart {
                mix: "mix2_01".into(),
                scheme: "nucache-d8".into(),
                cores: 2,
                seed: 7,
            },
            Event::LlcEpoch {
                stage: Stage::Measure,
                index: 0,
                accesses: 100_000,
                per_core: vec![
                    CacheStats { hits: 10, misses: 5, evictions: 4, writebacks: 1 },
                    CacheStats { hits: 20, misses: 2, evictions: 2, writebacks: 0 },
                ],
                totals: CacheStats { hits: 30, misses: 7, evictions: 6, writebacks: 1 },
            },
            Event::SelectionEpoch {
                epoch: 3,
                window_accesses: 123_456,
                chosen: vec![Pc::new(0x400), Pc::new(0x520)],
                expected_hits: 900,
                extra_lifetime: 640,
                deli_hits: 1_000,
                deli_fills: 2_000,
                deli_occupancy: 512,
                deli_capacity: 1024,
                top_pcs: vec![PcSnapshot {
                    pc: Pc::new(0x400),
                    fills: 321,
                    chosen: true,
                    samples: 900,
                    p25: Some(63),
                    p50: Some(63),
                    p75: Some(127),
                    p90: None,
                }],
            },
            Event::RunEnd {
                scheme: "nucache-d8".into(),
                ipcs: vec![0.5, 0.25],
                per_core: vec![CacheStats::default(), CacheStats::default()],
                totals: CacheStats { hits: 40, misses: 9, evictions: 8, writebacks: 2 },
            },
        ]
    }

    #[test]
    fn events_round_trip_through_json() {
        for e in sample_events() {
            let back = Event::from_json(&e.to_json()).expect("parses back");
            assert_eq!(back, e);
        }
    }

    #[test]
    fn jsonl_sink_round_trips_through_parser() {
        let events = sample_events();
        let mut sink = JsonlSink::new(Vec::new());
        for e in &events {
            sink.record_event(e);
        }
        assert_eq!(sink.lines(), events.len() as u64);
        let bytes = sink.finish().expect("no io error");
        let text = String::from_utf8(bytes).expect("utf8");
        let parsed = json::parse_jsonl(&text).expect("valid jsonl");
        let back: Vec<Event> = parsed.iter().map(|v| Event::from_json(v).expect("event")).collect();
        assert_eq!(back, events);
    }

    #[test]
    fn null_sink_reports_disabled() {
        let sink = NullSink;
        assert!(!sink.is_enabled());
        // And the trait default is enabled:
        assert!(CounterSink::default().is_enabled());
    }

    #[test]
    fn counter_sink_tallies_and_tracks_churn() {
        let mut sink = CounterSink::default();
        for e in sample_events() {
            sink.record_event(&e);
        }
        assert_eq!(sink.run_starts, 1);
        assert_eq!(sink.llc_epochs, 1);
        assert_eq!(sink.selection_epochs, 1);
        assert_eq!(sink.run_ends, 1);
        assert_eq!(sink.total(), 4);
        assert_eq!(sink.final_totals.hits, 40);
        // Churn: identical -> no transition; changed -> transition.
        let sel = |pcs: Vec<u64>| Event::SelectionEpoch {
            epoch: 0,
            window_accesses: 0,
            chosen: pcs.into_iter().map(Pc::new).collect(),
            expected_hits: 0,
            extra_lifetime: 0,
            deli_hits: 0,
            deli_fills: 0,
            deli_occupancy: 0,
            deli_capacity: 0,
            top_pcs: Vec::new(),
        };
        let mut churn = CounterSink::default();
        churn.record_event(&sel(vec![1, 2]));
        churn.record_event(&sel(vec![1, 2]));
        churn.record_event(&sel(vec![1, 3]));
        assert_eq!(churn.transitions(), 1);
    }

    #[test]
    fn try_record_surfaces_injected_errors_eagerly() {
        let mut sink = JsonlSink::new(Vec::new());
        let events = sample_events();
        sink.try_record(&events[0]).expect("in-memory write succeeds");
        sink.inject_error(std::io::Error::other("injected fault: telemetry-write"));
        let err = sink.try_record(&events[1]).expect_err("failed stream stays failed");
        assert!(err.to_string().contains("injected fault"));
        assert_eq!(sink.lines(), 1, "no lines counted after the failure");
        // record() keeps swallowing, finish() still surfaces the error.
        sink.record_event(&events[2]);
        let err = sink.finish().expect_err("finish reports the first error");
        assert!(err.to_string().contains("injected fault"));
    }

    #[test]
    fn stage_names_round_trip() {
        for s in [Stage::Warmup, Stage::Measure] {
            assert_eq!(Stage::from_name(s.name()), Some(s));
        }
        assert_eq!(Stage::from_name("bogus"), None);
    }

    #[test]
    fn malformed_events_rejected() {
        assert!(Event::from_json(&json::parse(r#"{"type":"unknown"}"#).unwrap()).is_none());
        assert!(Event::from_json(&json::parse(r#"{"no_type":1}"#).unwrap()).is_none());
        assert!(
            Event::from_json(&json::parse(r#"{"type":"run_start","mix":"m"}"#).unwrap()).is_none()
        );
    }
}
