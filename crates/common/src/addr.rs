//! Strongly-typed addresses, line addresses, program counters and core ids.
//!
//! Newtypes keep byte addresses, cache-line addresses and instruction
//! addresses (PCs) from being confused with one another — all three are
//! `u64` underneath, and mixing them up is the classic cache-simulator bug.

use core::fmt;

/// A byte-granular physical address.
///
/// # Examples
///
/// ```
/// use nucache_common::Addr;
/// let a = Addr::new(0x1234);
/// assert_eq!(a.line(6).0, 0x48); // 64-byte blocks
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Addr(pub u64);

impl Addr {
    /// Creates an address from a raw byte value.
    pub const fn new(raw: u64) -> Self {
        Addr(raw)
    }

    /// Returns the cache-line address for a block of `2^block_bits` bytes.
    pub const fn line(self, block_bits: u32) -> LineAddr {
        LineAddr(self.0 >> block_bits)
    }

    /// Returns the byte offset of this address within its block.
    pub const fn block_offset(self, block_bits: u32) -> u64 {
        self.0 & ((1 << block_bits) - 1)
    }
}

impl From<u64> for Addr {
    fn from(raw: u64) -> Self {
        Addr(raw)
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl fmt::LowerHex for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

/// A cache-line (block) address: a byte address shifted right by the
/// block-size bits.
///
/// The cache substrate indexes sets and matches tags on `LineAddr`s only;
/// byte offsets never reach it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LineAddr(pub u64);

impl LineAddr {
    /// Creates a line address from a raw block number.
    pub const fn new(raw: u64) -> Self {
        LineAddr(raw)
    }

    /// Set index for a cache with `2^set_bits` sets.
    pub const fn set_index(self, set_bits: u32) -> usize {
        (self.0 & ((1 << set_bits) - 1)) as usize
    }

    /// Tag for a cache with `2^set_bits` sets.
    pub const fn tag(self, set_bits: u32) -> u64 {
        self.0 >> set_bits
    }

    /// Reconstructs the line address from a `(tag, set)` pair produced by
    /// [`LineAddr::tag`] and [`LineAddr::set_index`].
    pub const fn from_tag_set(tag: u64, set: usize, set_bits: u32) -> Self {
        LineAddr((tag << set_bits) | set as u64)
    }

    /// The first byte address covered by this line.
    pub const fn base_addr(self, block_bits: u32) -> Addr {
        Addr(self.0 << block_bits)
    }
}

impl From<u64> for LineAddr {
    fn from(raw: u64) -> Self {
        LineAddr(raw)
    }
}

impl fmt::Display for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{:#x}", self.0)
    }
}

/// The address of a static memory instruction (program counter).
///
/// NUcache is a *PC-centric* organization: allocation decisions key on the
/// instruction that caused the miss, not on the data address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Pc(pub u64);

impl Pc {
    /// Creates a PC from a raw instruction address.
    pub const fn new(raw: u64) -> Self {
        Pc(raw)
    }

    /// Returns a PC made unique across cores by folding the core id into
    /// the high bits. Shared LLC structures index per-(core, PC) so that
    /// identical synthetic PCs from different cores stay distinct.
    pub const fn globalize(self, core: CoreId) -> Pc {
        Pc(self.0 | ((core.0 as u64) << 56))
    }
}

impl From<u64> for Pc {
    fn from(raw: u64) -> Self {
        Pc(raw)
    }
}

impl fmt::Display for Pc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pc:{:#x}", self.0)
    }
}

/// Identifier of a core in the simulated multicore (0-based, dense).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct CoreId(pub u8);

impl CoreId {
    /// Creates a core id.
    pub const fn new(raw: u8) -> Self {
        CoreId(raw)
    }

    /// Returns the id as a `usize` index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u8> for CoreId {
    fn from(raw: u8) -> Self {
        CoreId(raw)
    }
}

impl fmt::Display for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "core{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_line_and_offset_roundtrip() {
        let a = Addr::new(0xdead_beef);
        let line = a.line(6);
        assert_eq!(line.0, 0xdead_beef >> 6);
        assert_eq!(a.block_offset(6), 0xdead_beef & 0x3f);
        assert_eq!(line.base_addr(6).0 + a.block_offset(6), a.0);
    }

    #[test]
    fn line_tag_set_roundtrip() {
        let line = LineAddr::new(0x1234_5678);
        let set_bits = 10;
        let tag = line.tag(set_bits);
        let set = line.set_index(set_bits);
        assert_eq!(LineAddr::from_tag_set(tag, set, set_bits), line);
    }

    #[test]
    fn set_index_is_bounded() {
        let line = LineAddr::new(u64::MAX);
        assert!(line.set_index(8) < 256);
    }

    #[test]
    fn pc_globalize_distinguishes_cores() {
        let pc = Pc::new(0x400_0000);
        assert_ne!(pc.globalize(CoreId::new(0)), pc.globalize(CoreId::new(3)));
        assert_eq!(pc.globalize(CoreId::new(0)), pc);
    }

    #[test]
    fn display_impls_are_nonempty() {
        assert!(!format!("{}", Addr::new(0)).is_empty());
        assert!(!format!("{}", LineAddr::new(0)).is_empty());
        assert!(!format!("{}", Pc::new(0)).is_empty());
        assert!(!format!("{}", CoreId::new(0)).is_empty());
    }

    #[test]
    fn conversions_from_raw() {
        assert_eq!(Addr::from(7u64), Addr::new(7));
        assert_eq!(LineAddr::from(7u64), LineAddr::new(7));
        assert_eq!(Pc::from(7u64), Pc::new(7));
        assert_eq!(CoreId::from(2u8), CoreId::new(2));
    }
}
