//! Deterministic random-number generation.
//!
//! Every stochastic component of the reproduction (workload generators,
//! random replacement, BIP coin flips, PIPP promotion probability) draws
//! from a [`DetRng`] seeded explicitly, so a simulation config plus its
//! seeds fully determines the output bit-for-bit.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// A seeded RNG with helpers for deriving independent substreams.
///
/// # Examples
///
/// ```
/// use nucache_common::DetRng;
/// let mut a = DetRng::seed(42);
/// let mut b = DetRng::seed(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug)]
pub struct DetRng {
    inner: StdRng,
}

impl DetRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed(seed: u64) -> Self {
        DetRng { inner: StdRng::seed_from_u64(seed) }
    }

    /// Derives an independent substream from a parent seed and a stream
    /// label. Distinct labels give statistically independent streams;
    /// identical (seed, label) pairs give identical streams.
    pub fn substream(seed: u64, label: u64) -> Self {
        // SplitMix64-style mixing keeps nearby labels uncorrelated.
        DetRng::seed(mix64(seed ^ label.wrapping_mul(0x9e37_79b9_7f4a_7c15)))
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.inner.random()
    }

    /// Uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is 0.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        self.inner.random_range(0..bound)
    }

    /// Uniform `usize` in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is 0.
    #[inline]
    pub fn index(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "bound must be positive");
        self.inner.random_range(0..bound)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0,1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.inner.random_bool(p.clamp(0.0, 1.0))
    }

    /// Uniform `f64` in `[0,1)`.
    #[inline]
    pub fn unit(&mut self) -> f64 {
        self.inner.random()
    }

    /// Samples a geometric-ish gap: uniform in `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    #[inline]
    pub fn range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty range");
        self.inner.random_range(lo..=hi)
    }

    /// Fisher–Yates shuffles a slice in place.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.index(i + 1);
            slice.swap(i, j);
        }
    }

    /// Uniform draw from a precomputed [`FastRange`] — bit-identical to
    /// [`DetRng::below`] / [`DetRng::range_inclusive`] with the same
    /// bounds, but without the per-draw hardware division. Hot loops that
    /// draw from a fixed range repeatedly (trace generation) precompute
    /// the range once and use this.
    #[inline]
    pub fn draw(&mut self, range: &FastRange) -> u64 {
        range.lo + range.reduce(self.next_u64())
    }
}

/// The SplitMix64 finalizer: a cheap bijective avalanche over `u64`.
///
/// Every output bit depends on every input bit, so sequential or
/// low-entropy inputs (keys, labels, counters) spread uniformly over the
/// full range. [`DetRng::substream`] uses it to decorrelate stream
/// labels; the concurrent cache front-end uses it to pick a shard from a
/// key whose low bits also index the kernel's set array (without the
/// mix, shard choice and set index would correlate and skew occupancy).
#[inline]
#[must_use]
pub fn mix64(x: u64) -> u64 {
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A uniform integer range with a precomputed Granlund–Montgomery
/// reciprocal, so repeated draws replace the `x % span` hardware divide
/// with a widening multiply plus one conditional subtract.
///
/// The reduction is exact — `reduce(x) == x % span` for every `x` — so
/// [`DetRng::draw`] consumes and produces the very same values as the
/// division-based helpers ([`DetRng::below`], [`DetRng::range_inclusive`])
/// and can replace them without perturbing any stream.
///
/// # Examples
///
/// ```
/// use nucache_common::{DetRng, FastRange};
/// let mut a = DetRng::seed(7);
/// let mut b = DetRng::seed(7);
/// let gap = FastRange::inclusive(2, 9);
/// for _ in 0..100 {
///     assert_eq!(a.draw(&gap), b.range_inclusive(2, 9));
/// }
/// ```
#[derive(Debug, Clone, Copy)]
pub struct FastRange {
    lo: u64,
    /// Number of representable values; 0 encodes the full 2^64 span.
    span: u64,
    /// `floor(2^64 / span)`; 0 when `span` is a power of two (mask path).
    magic: u64,
}

impl FastRange {
    /// Range `[0, bound)`, matching [`DetRng::below`].
    ///
    /// # Panics
    ///
    /// Panics if `bound` is 0.
    pub fn below(bound: u64) -> Self {
        assert!(bound > 0, "bound must be positive");
        Self::inclusive(0, bound - 1)
    }

    /// Range `[lo, hi]`, matching [`DetRng::range_inclusive`].
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn inclusive(lo: u64, hi: u64) -> Self {
        assert!(lo <= hi, "empty range");
        let Some(span) = (hi - lo).checked_add(1) else {
            return FastRange { lo, span: 0, magic: 0 };
        };
        // For non-powers of two, floor((2^64-1)/span) == floor(2^64/span)
        // (span would have to divide 2^64, i.e. be a power of two).
        let magic = if span.is_power_of_two() { 0 } else { u64::MAX / span };
        FastRange { lo, span, magic }
    }

    /// Exact `x % span` via the precomputed reciprocal.
    ///
    /// With `m = floor(2^64/span)`, `q = (x*m) >> 64` satisfies
    /// `q ∈ {x/span - 1, x/span}`, so `x - q*span < 2*span` and a single
    /// conditional subtract recovers the exact remainder.
    ///
    /// Public because it doubles as a division-free hash-to-bucket
    /// reduction: `FastRange::below(n).reduce(mix64(key))` maps a key
    /// uniformly onto `n` buckets (the concurrent front-end's shard
    /// routing) with the same two-instruction cost as the RNG path.
    #[inline]
    #[must_use]
    pub fn reduce(&self, x: u64) -> u64 {
        if self.magic == 0 {
            // Power-of-two span (mask) or full-range (span == 0: the
            // wrapping sub makes the mask u64::MAX, i.e. `x` unchanged).
            return x & self.span.wrapping_sub(1);
        }
        let q = ((x as u128 * self.magic as u128) >> 64) as u64;
        let r = x - q * self.span;
        if r >= self.span {
            r - self.span
        } else {
            r
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::seed(7);
        let mut b = DetRng::seed(7);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_labels_differ() {
        let mut a = DetRng::substream(7, 0);
        let mut b = DetRng::substream(7, 1);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2, "substreams should be independent");
    }

    #[test]
    fn below_respects_bound() {
        let mut r = DetRng::seed(1);
        for _ in 0..1000 {
            assert!(r.below(10) < 10);
            assert!(r.index(3) < 3);
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = DetRng::seed(1);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        // Out-of-range probabilities are clamped rather than panicking.
        assert!(r.chance(2.0));
        assert!(!r.chance(-1.0));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = DetRng::seed(3);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn fast_range_matches_division_helpers() {
        // Identical streams: the reciprocal draw must consume and produce
        // exactly what the division-based helpers do, for pow2 and
        // non-pow2 spans alike.
        for bound in [1u64, 2, 3, 7, 10, 64, 1000, 1 << 33, u64::MAX] {
            let mut a = DetRng::seed(41);
            let mut b = DetRng::seed(41);
            let fast = FastRange::below(bound);
            for _ in 0..200 {
                assert_eq!(a.draw(&fast), b.below(bound), "bound {bound}");
            }
        }
        for (lo, hi) in [(0u64, 0u64), (2, 4), (5, 5), (100, 1 << 40), (0, u64::MAX)] {
            let mut a = DetRng::seed(17);
            let mut b = DetRng::seed(17);
            let fast = FastRange::inclusive(lo, hi);
            for _ in 0..200 {
                assert_eq!(a.draw(&fast), b.range_inclusive(lo, hi), "range {lo}..={hi}");
            }
        }
    }

    #[test]
    fn fast_range_reduce_is_exact_modulo() {
        for span in [3u64, 5, 6, 7, 9, 100, (1 << 20) - 1, u64::MAX - 1] {
            let f = FastRange::below(span);
            for x in [0u64, 1, span - 1, span, span + 1, u64::MAX / 2, u64::MAX] {
                assert_eq!(f.reduce(x), x % span, "x {x} span {span}");
            }
        }
    }

    #[test]
    fn range_inclusive_hits_endpoints() {
        let mut r = DetRng::seed(9);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..500 {
            match r.range_inclusive(1, 3) {
                1 => lo_seen = true,
                3 => hi_seen = true,
                2 => {}
                other => panic!("out of range: {other}"),
            }
        }
        assert!(lo_seen && hi_seen);
    }
}
