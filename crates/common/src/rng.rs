//! Deterministic random-number generation.
//!
//! Every stochastic component of the reproduction (workload generators,
//! random replacement, BIP coin flips, PIPP promotion probability) draws
//! from a [`DetRng`] seeded explicitly, so a simulation config plus its
//! seeds fully determines the output bit-for-bit.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// A seeded RNG with helpers for deriving independent substreams.
///
/// # Examples
///
/// ```
/// use nucache_common::DetRng;
/// let mut a = DetRng::seed(42);
/// let mut b = DetRng::seed(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug)]
pub struct DetRng {
    inner: StdRng,
}

impl DetRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed(seed: u64) -> Self {
        DetRng { inner: StdRng::seed_from_u64(seed) }
    }

    /// Derives an independent substream from a parent seed and a stream
    /// label. Distinct labels give statistically independent streams;
    /// identical (seed, label) pairs give identical streams.
    pub fn substream(seed: u64, label: u64) -> Self {
        // SplitMix64-style mixing keeps nearby labels uncorrelated.
        let mut z = seed ^ label.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        DetRng::seed(z ^ (z >> 31))
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.random()
    }

    /// Uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is 0.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        self.inner.random_range(0..bound)
    }

    /// Uniform `usize` in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is 0.
    pub fn index(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "bound must be positive");
        self.inner.random_range(0..bound)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0,1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.inner.random_bool(p.clamp(0.0, 1.0))
    }

    /// Uniform `f64` in `[0,1)`.
    pub fn unit(&mut self) -> f64 {
        self.inner.random()
    }

    /// Samples a geometric-ish gap: uniform in `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty range");
        self.inner.random_range(lo..=hi)
    }

    /// Fisher–Yates shuffles a slice in place.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.index(i + 1);
            slice.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::seed(7);
        let mut b = DetRng::seed(7);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_labels_differ() {
        let mut a = DetRng::substream(7, 0);
        let mut b = DetRng::substream(7, 1);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2, "substreams should be independent");
    }

    #[test]
    fn below_respects_bound() {
        let mut r = DetRng::seed(1);
        for _ in 0..1000 {
            assert!(r.below(10) < 10);
            assert!(r.index(3) < 3);
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = DetRng::seed(1);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        // Out-of-range probabilities are clamped rather than panicking.
        assert!(r.chance(2.0));
        assert!(!r.chance(-1.0));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = DetRng::seed(3);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn range_inclusive_hits_endpoints() {
        let mut r = DetRng::seed(9);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..500 {
            match r.range_inclusive(1, 3) {
                1 => lo_seen = true,
                3 => hi_seen = true,
                2 => {}
                other => panic!("out of range: {other}"),
            }
        }
        assert!(lo_seen && hi_seen);
    }
}
