//! Tiny aligned-text-table and CSV helpers used by the experiment binaries.
//!
//! The experiment binaries print the same rows/series the paper reports;
//! this module keeps that formatting in one place so every figure looks
//! consistent and every table also lands in a machine-readable CSV.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// An in-memory table: a header row plus data rows, rendered as aligned
/// monospace text or CSV.
///
/// # Examples
///
/// ```
/// use nucache_common::table::Table;
/// let mut t = Table::new(["workload", "mpki"]);
/// t.row(["mcf_like".to_string(), format!("{:.2}", 31.4)]);
/// let text = t.to_text();
/// assert!(text.contains("mcf_like"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<I, S>(header: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Table { header: header.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Appends a data row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row<I, S>(&mut self, cells: I) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "row width must match header");
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders as an aligned monospace table with a separator rule.
    pub fn to_text(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let emit = |out: &mut String, cells: &[String]| {
            for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{cell:<w$}");
            }
            // Trailing spaces from padding the last column are noise.
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        emit(&mut out, &self.header);
        let rule: usize = widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1);
        out.push_str(&"-".repeat(rule));
        out.push('\n');
        for row in &self.rows {
            emit(&mut out, row);
        }
        out
    }

    /// Renders as CSV (commas and quotes in cells are escaped).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let emit = |out: &mut String, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                    let escaped = cell.replace('"', "\"\"");
                    let _ = write!(out, "\"{escaped}\"");
                } else {
                    out.push_str(cell);
                }
            }
            out.push('\n');
        };
        emit(&mut out, &self.header);
        for row in &self.rows {
            emit(&mut out, row);
        }
        out
    }

    /// Writes the CSV rendering to `path`, creating parent directories.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from directory creation or the write.
    pub fn write_csv<P: AsRef<Path>>(&self, path: P) -> io::Result<()> {
        if let Some(parent) = path.as_ref().parent() {
            fs::create_dir_all(parent)?;
        }
        fs::write(path, self.to_csv())
    }
}

/// Formats a float with 3 decimal places (the workhorse for speedups).
pub fn f3(v: f64) -> String {
    format!("{v:.3}")
}

/// Formats a float with 2 decimal places.
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

/// Formats a ratio as a percentage with 1 decimal place, e.g. `9.6%`.
pub fn pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_alignment() {
        let mut t = Table::new(["a", "longheader"]);
        t.row(["xxxxxx", "1"]);
        let text = t.to_text();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("a       "));
        assert!(lines[2].starts_with("xxxxxx"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_checked() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only-one"]);
    }

    #[test]
    fn csv_escaping() {
        let mut t = Table::new(["name", "note"]);
        t.row(["plain", "a,b"]);
        t.row(["quoted", "say \"hi\""]);
        let csv = t.to_csv();
        assert!(csv.contains("\"a,b\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    fn csv_roundtrip_dims() {
        let mut t = Table::new(["x"]);
        t.row(["1"]).row(["2"]);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        assert_eq!(t.to_csv().lines().count(), 3);
    }

    #[test]
    fn write_csv_creates_dirs() {
        let dir = std::env::temp_dir().join("nucache_table_test");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("nested/out.csv");
        let mut t = Table::new(["x"]);
        t.row(["1"]);
        t.write_csv(&path).unwrap();
        assert!(path.exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn formatters() {
        assert_eq!(f3(1.23456), "1.235");
        assert_eq!(f2(1.23456), "1.23");
        assert_eq!(pct(0.096), "9.6%");
    }
}
