//! Timing model and multiprogrammed-performance metrics.
//!
//! The evaluation reports *relative* numbers (speedups over a shared-LRU
//! baseline), which are driven by miss counts; a simple in-order model —
//! one cycle per instruction plus the latency of the level that served
//! each access — translates miss-rate differences into cycle counts
//! monotonically and is the standard choice for LLC-policy studies when
//! the full out-of-order machinery is out of scope (see DESIGN.md §3).
//!
//! # Examples
//!
//! ```
//! use nucache_cpu::{CoreClock, ServiceLevel, TimingConfig};
//!
//! let t = TimingConfig::default();
//! let mut clock = CoreClock::new();
//! clock.charge(4, t.latency(ServiceLevel::LlcHit)); // 4-instr gap + LLC hit
//! assert_eq!(clock.instructions(), 5);
//! assert_eq!(clock.cycles(), 4 + t.llc_hit as u64);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod metrics;
pub mod timing;

pub use metrics::MultiProgramMetrics;
pub use timing::{CoreClock, ServiceLevel, TimingConfig};
