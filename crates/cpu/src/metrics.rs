//! Multiprogrammed performance metrics.
//!
//! The standard trio for shared-cache studies:
//!
//! * **Weighted speedup**: `Σ IPC_shared,i / IPC_alone,i` — system
//!   throughput normalized to each application's solo performance;
//! * **ANTT** (average normalized turnaround time):
//!   `(1/n) Σ IPC_alone,i / IPC_shared,i` — user-perceived slowdown,
//!   lower is better;
//! * **Harmonic mean of speedups**: balances throughput and fairness.

use nucache_common::stats::{harmonic_mean, mean};

/// Per-mix multiprogrammed metrics computed from per-core shared and solo
/// IPCs.
///
/// # Examples
///
/// ```
/// use nucache_cpu::MultiProgramMetrics;
/// let m = MultiProgramMetrics::new(&[0.5, 1.0], &[1.0, 1.0]);
/// assert!((m.weighted_speedup - 1.5).abs() < 1e-12);
/// assert!((m.antt - 1.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MultiProgramMetrics {
    /// Per-core normalized speedups (`IPC_shared / IPC_alone`).
    pub per_core_speedup: Vec<f64>,
    /// Sum of normalized speedups.
    pub weighted_speedup: f64,
    /// Average normalized turnaround time (lower is better).
    pub antt: f64,
    /// Harmonic mean of the normalized speedups.
    pub harmonic_speedup: f64,
    /// Raw throughput: sum of shared IPCs.
    pub throughput: f64,
    /// Fairness: min speedup / max speedup (1 = perfectly fair).
    pub fairness: f64,
}

impl MultiProgramMetrics {
    /// Computes the metrics from shared-mode and solo IPC vectors.
    ///
    /// # Panics
    ///
    /// Panics if the vectors' lengths differ, are empty, or any solo IPC
    /// is non-positive (a core that never ran alone cannot be
    /// normalized).
    pub fn new(shared_ipc: &[f64], solo_ipc: &[f64]) -> Self {
        assert_eq!(shared_ipc.len(), solo_ipc.len(), "core-count mismatch");
        assert!(!shared_ipc.is_empty(), "no cores");
        assert!(solo_ipc.iter().all(|&i| i > 0.0), "non-positive solo IPC");
        let per_core_speedup: Vec<f64> =
            shared_ipc.iter().zip(solo_ipc).map(|(&s, &a)| s / a).collect();
        let weighted_speedup = per_core_speedup.iter().sum();
        let antt = mean(
            &per_core_speedup
                .iter()
                .map(|&s| if s > 0.0 { 1.0 / s } else { f64::INFINITY })
                .collect::<Vec<_>>(),
        );
        let harmonic_speedup = harmonic_mean(&per_core_speedup);
        let throughput = shared_ipc.iter().sum();
        let min = per_core_speedup.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = per_core_speedup.iter().cloned().fold(0.0, f64::max);
        let fairness = if max > 0.0 { min / max } else { 0.0 };
        MultiProgramMetrics {
            per_core_speedup,
            weighted_speedup,
            antt,
            harmonic_speedup,
            throughput,
            fairness,
        }
    }

    /// Number of cores in the mix.
    pub fn num_cores(&self) -> usize {
        self.per_core_speedup.len()
    }
}

/// Relative improvement of `ours` over `baseline` for a higher-is-better
/// metric (e.g. weighted speedup): `ours / baseline - 1`.
pub fn improvement(ours: f64, baseline: f64) -> f64 {
    if baseline == 0.0 {
        0.0
    } else {
        ours / baseline - 1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solo_equals_shared_gives_unit_metrics() {
        let m = MultiProgramMetrics::new(&[0.8, 0.6], &[0.8, 0.6]);
        assert!((m.weighted_speedup - 2.0).abs() < 1e-12);
        assert!((m.antt - 1.0).abs() < 1e-12);
        assert!((m.harmonic_speedup - 1.0).abs() < 1e-12);
        assert!((m.fairness - 1.0).abs() < 1e-12);
        assert_eq!(m.num_cores(), 2);
    }

    #[test]
    fn asymmetric_slowdown_reflected() {
        let m = MultiProgramMetrics::new(&[0.4, 0.9], &[0.8, 0.9]);
        assert!((m.weighted_speedup - 1.5).abs() < 1e-12);
        assert!((m.antt - (2.0 + 1.0) / 2.0).abs() < 1e-12);
        assert!((m.fairness - 0.5).abs() < 1e-12);
        assert!((m.throughput - 1.3).abs() < 1e-12);
    }

    #[test]
    fn improvement_math() {
        assert!((improvement(1.1, 1.0) - 0.1).abs() < 1e-12);
        assert!((improvement(0.9, 1.0) + 0.1).abs() < 1e-12);
        assert_eq!(improvement(1.0, 0.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "core-count mismatch")]
    fn mismatched_lengths_rejected() {
        let _ = MultiProgramMetrics::new(&[1.0], &[1.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "non-positive solo")]
    fn zero_solo_rejected() {
        let _ = MultiProgramMetrics::new(&[1.0], &[0.0]);
    }
}
