//! Per-core cycle accounting.

use std::fmt;

/// Which level of the hierarchy served an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ServiceLevel {
    /// Served by the private L1.
    L1Hit,
    /// Served by the private L2.
    L2Hit,
    /// Served by the shared LLC.
    LlcHit,
    /// Served by main memory (LLC miss).
    Memory,
}

/// Access latencies in cycles for each service level.
///
/// Defaults follow the usual simulation parameters of the period: 1-cycle
/// L1, 10-cycle L2, 30-cycle shared LLC, 200-cycle memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimingConfig {
    /// L1 hit latency.
    pub l1_hit: u32,
    /// L2 hit latency.
    pub l2_hit: u32,
    /// Shared-LLC hit latency.
    pub llc_hit: u32,
    /// Main-memory latency.
    pub memory: u32,
}

impl Default for TimingConfig {
    fn default() -> Self {
        TimingConfig { l1_hit: 1, l2_hit: 10, llc_hit: 30, memory: 200 }
    }
}

impl TimingConfig {
    /// Latency of an access served at `level`.
    pub const fn latency(&self, level: ServiceLevel) -> u32 {
        match level {
            ServiceLevel::L1Hit => self.l1_hit,
            ServiceLevel::L2Hit => self.l2_hit,
            ServiceLevel::LlcHit => self.llc_hit,
            ServiceLevel::Memory => self.memory,
        }
    }

    /// Validates that latencies increase down the hierarchy.
    ///
    /// # Panics
    ///
    /// Panics if any outer level is not slower than the one above it.
    pub fn validate(&self) {
        assert!(
            self.l1_hit < self.l2_hit && self.l2_hit < self.llc_hit && self.llc_hit < self.memory,
            "latencies must increase down the hierarchy"
        );
    }
}

impl fmt::Display for TimingConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "L1={}cy L2={}cy LLC={}cy MEM={}cy",
            self.l1_hit, self.l2_hit, self.llc_hit, self.memory
        )
    }
}

/// Cycle and instruction counters for one core, with a freezable
/// measurement snapshot.
///
/// In multiprogrammed runs every core executes a fixed instruction quota;
/// cores that finish early keep running (to keep generating contention)
/// but their metrics freeze at the quota. [`CoreClock::freeze`] captures
/// that snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CoreClock {
    cycles: u64,
    instructions: u64,
    frozen: Option<(u64, u64)>,
}

impl CoreClock {
    /// Creates a zeroed clock.
    pub fn new() -> Self {
        CoreClock::default()
    }

    /// Charges one access: `gap` single-cycle instructions followed by
    /// the memory access with the given latency.
    pub fn charge(&mut self, gap: u32, latency: u32) {
        self.cycles += gap as u64 + latency as u64;
        self.instructions += gap as u64 + 1;
    }

    /// Cycles elapsed (live counter).
    pub const fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Instructions executed (live counter).
    pub const fn instructions(&self) -> u64 {
        self.instructions
    }

    /// Live IPC; 0 for an unstarted clock.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// Freezes the measurement snapshot at the current counters (first
    /// call wins; later calls are ignored).
    pub fn freeze(&mut self) {
        if self.frozen.is_none() {
            self.frozen = Some((self.cycles, self.instructions));
        }
    }

    /// Whether the snapshot has been frozen.
    pub const fn is_frozen(&self) -> bool {
        self.frozen.is_some()
    }

    /// Cycles at the freeze point (live value if never frozen).
    pub fn measured_cycles(&self) -> u64 {
        self.frozen.map_or(self.cycles, |(c, _)| c)
    }

    /// Instructions at the freeze point (live value if never frozen).
    pub fn measured_instructions(&self) -> u64 {
        self.frozen.map_or(self.instructions, |(_, i)| i)
    }

    /// IPC at the freeze point.
    pub fn measured_ipc(&self) -> f64 {
        let c = self.measured_cycles();
        if c == 0 {
            0.0
        } else {
            self.measured_instructions() as f64 / c as f64
        }
    }

    /// Resets everything, including the snapshot.
    pub fn reset(&mut self) {
        *self = CoreClock::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_latencies_ordered() {
        TimingConfig::default().validate();
    }

    #[test]
    #[should_panic(expected = "increase down the hierarchy")]
    fn inverted_latencies_rejected() {
        TimingConfig { l1_hit: 10, l2_hit: 5, llc_hit: 30, memory: 200 }.validate();
    }

    #[test]
    fn latency_lookup() {
        let t = TimingConfig::default();
        assert_eq!(t.latency(ServiceLevel::L1Hit), 1);
        assert_eq!(t.latency(ServiceLevel::Memory), 200);
    }

    #[test]
    fn charge_accumulates() {
        let mut c = CoreClock::new();
        c.charge(3, 1); // 3 gap instrs + L1 access
        c.charge(0, 200); // back-to-back miss
        assert_eq!(c.instructions(), 5);
        assert_eq!(c.cycles(), 3 + 1 + 200);
        assert!(c.ipc() > 0.0);
    }

    #[test]
    fn freeze_snapshots_once() {
        let mut c = CoreClock::new();
        c.charge(9, 1);
        c.freeze();
        c.charge(9, 200);
        assert_eq!(c.measured_instructions(), 10);
        assert_eq!(c.instructions(), 20);
        c.freeze(); // no-op
        assert_eq!(c.measured_instructions(), 10);
        assert!(c.is_frozen());
    }

    #[test]
    fn unfrozen_measures_live() {
        let mut c = CoreClock::new();
        c.charge(1, 1);
        assert_eq!(c.measured_cycles(), c.cycles());
        assert!((c.measured_ipc() - c.ipc()).abs() < 1e-12);
    }

    #[test]
    fn reset_clears_all() {
        let mut c = CoreClock::new();
        c.charge(1, 1);
        c.freeze();
        c.reset();
        assert_eq!(c.cycles(), 0);
        assert!(!c.is_frozen());
        assert_eq!(c.ipc(), 0.0);
    }
}
