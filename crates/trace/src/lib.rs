//! Synthetic PC-attributed workload generation for the NUcache
//! reproduction.
//!
//! The paper evaluates on SPEC CPU binaries run through a cycle-accurate
//! simulator. Those binaries and traces are not redistributable, so this
//! crate builds the closest synthetic equivalent: each workload is a set
//! of *sites* (static instructions, i.e. PCs) with archetypal memory
//! behaviours — streaming, cyclic loops, uniform random, pointer chasing —
//! over disjoint address regions, mixed by weight, with a configurable
//! density of non-memory instructions between accesses.
//!
//! What matters to NUcache and the partitioning baselines is exactly what
//! these generators control: which PCs produce the misses, how each PC's
//! reuse (Next-Use) distances cluster, how working sets compare to the
//! LLC, and how memory-intensive each co-runner is. See `DESIGN.md` §3
//! for the substitution argument.
//!
//! # Examples
//!
//! ```
//! use nucache_trace::{SpecWorkload, TraceGen};
//! use nucache_common::CoreId;
//!
//! let spec = SpecWorkload::SphinxLike.spec();
//! let mut gen = TraceGen::new(&spec, CoreId::new(0), 42);
//! let first = gen.next().unwrap();
//! assert_eq!(first.core, CoreId::new(0));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gen;
pub mod io;
pub mod mix;
pub mod spec;
pub mod stats;
pub mod workload;

pub use gen::{TraceGen, BLOCK_BITS, BLOCK_BYTES, TRACE_BLOCK};
pub use mix::{Mix, MixBuilder};
pub use spec::SpecWorkload;
pub use stats::TraceSummary;
pub use workload::{Behavior, Phase, SiteSpec, WorkloadSpec};
