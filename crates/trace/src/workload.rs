//! Workload specifications: sites, behaviours and phases.

use std::fmt;

/// Archetypal memory behaviour of one site (static instruction).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Behavior {
    /// Sequential walk with a fixed stride over a region of `lines` cache
    /// lines, wrapping at the end. With a region much larger than the
    /// LLC this models a pure stream: no temporal reuse within a run.
    Stream {
        /// Region size in cache lines.
        lines: u64,
        /// Step between consecutive accesses, in lines.
        stride: u64,
    },
    /// Cyclic walk over `lines` cache lines: every line's reuse distance
    /// equals the region size. Regions below the private-cache capacity
    /// model hot, cache-friendly data; regions near the LLC capacity
    /// model the retention-sensitive loops NUcache targets.
    Loop {
        /// Region (working-set) size in cache lines.
        lines: u64,
    },
    /// Uniform random accesses over `lines` cache lines (GUPS-style).
    RandomUniform {
        /// Region size in cache lines.
        lines: u64,
    },
    /// A full-period pseudo-random cycle over `lines` cache lines,
    /// modelling dependent pointer chasing: like [`Behavior::Loop`] in
    /// reuse distance, but with no spatial regularity.
    PointerChase {
        /// Region size in cache lines (rounded up to a power of two
        /// internally to obtain a full-period cycle).
        lines: u64,
    },
}

impl Behavior {
    /// Region size in cache lines.
    pub const fn lines(&self) -> u64 {
        match *self {
            Behavior::Stream { lines, .. }
            | Behavior::Loop { lines }
            | Behavior::RandomUniform { lines }
            | Behavior::PointerChase { lines } => lines,
        }
    }

    /// Short label for tables.
    pub const fn kind_name(&self) -> &'static str {
        match self {
            Behavior::Stream { .. } => "stream",
            Behavior::Loop { .. } => "loop",
            Behavior::RandomUniform { .. } => "random",
            Behavior::PointerChase { .. } => "chase",
        }
    }
}

impl fmt::Display for Behavior {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}({} lines)", self.kind_name(), self.lines())
    }
}

/// One static memory instruction: a behaviour, a selection weight and a
/// write fraction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SiteSpec {
    /// Behaviour of the accesses this site issues.
    pub behavior: Behavior,
    /// Relative probability of this site issuing the next access.
    pub weight: u32,
    /// Fraction of this site's accesses that are writes (`0.0..=1.0`).
    pub write_frac: f64,
}

impl SiteSpec {
    /// Creates a read-mostly site (20% writes).
    pub const fn new(behavior: Behavior, weight: u32) -> Self {
        SiteSpec { behavior, weight, write_frac: 0.2 }
    }

    /// Sets the write fraction, builder-style.
    pub const fn with_writes(mut self, write_frac: f64) -> Self {
        self.write_frac = write_frac;
        self
    }
}

/// One phase of a workload: a set of sites active for `accesses` memory
/// accesses before the next phase takes over. Workloads cycle through
/// their phases.
#[derive(Debug, Clone, PartialEq)]
pub struct Phase {
    /// Sites active during this phase. Site indices are global across
    /// phases (a site keeps its PC and its position in its region when
    /// its phase resumes).
    pub sites: Vec<SiteSpec>,
    /// Phase length in memory accesses.
    pub accesses: u64,
}

/// A complete workload: a name, phases, and the instruction-gap range
/// controlling memory intensity.
///
/// The gap is the number of non-memory instructions between consecutive
/// accesses, drawn uniformly from `gap` per access: small gaps mean a
/// memory-bound application, large gaps a compute-bound one.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSpec {
    /// Workload name as it appears in tables.
    pub name: String,
    /// Phases cycled through in order (single-phase is the common case).
    pub phases: Vec<Phase>,
    /// Inclusive range of non-memory instructions between accesses.
    pub gap: (u32, u32),
}

impl WorkloadSpec {
    /// Creates a single-phase workload.
    ///
    /// # Panics
    ///
    /// Panics if `sites` is empty, all weights are zero, or the gap range
    /// is inverted.
    pub fn single_phase(name: impl Into<String>, sites: Vec<SiteSpec>, gap: (u32, u32)) -> Self {
        let spec = WorkloadSpec {
            name: name.into(),
            phases: vec![Phase { sites, accesses: u64::MAX }],
            gap,
        };
        spec.validate();
        spec
    }

    /// Creates a multi-phase workload cycling through `phases`.
    ///
    /// # Panics
    ///
    /// Panics on the same invalid inputs as
    /// [`WorkloadSpec::single_phase`], or if `phases` is empty.
    pub fn phased(name: impl Into<String>, phases: Vec<Phase>, gap: (u32, u32)) -> Self {
        let spec = WorkloadSpec { name: name.into(), phases, gap };
        spec.validate();
        spec
    }

    fn validate(&self) {
        assert!(!self.phases.is_empty(), "workload needs at least one phase");
        for phase in &self.phases {
            assert!(!phase.sites.is_empty(), "phase needs at least one site");
            assert!(phase.sites.iter().any(|s| s.weight > 0), "all site weights are zero");
            assert!(phase.accesses > 0, "zero-length phase");
            for s in &phase.sites {
                assert!(s.behavior.lines() > 0, "zero-sized region");
                assert!((0.0..=1.0).contains(&s.write_frac), "write_frac out of range");
                if let Behavior::Stream { stride, .. } = s.behavior {
                    assert!(stride > 0, "zero stream stride");
                }
            }
        }
        assert!(self.gap.0 <= self.gap.1, "inverted gap range");
    }

    /// Total number of distinct sites across all phases.
    pub fn num_sites(&self) -> usize {
        self.phases.iter().map(|p| p.sites.len()).sum()
    }

    /// Sum of all regions' sizes in lines (an upper bound on the
    /// workload's footprint).
    pub fn footprint_lines(&self) -> u64 {
        self.phases.iter().flat_map(|p| &p.sites).map(|s| s.behavior.lines()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn behavior_accessors() {
        let b = Behavior::Stream { lines: 100, stride: 2 };
        assert_eq!(b.lines(), 100);
        assert_eq!(b.kind_name(), "stream");
        assert!(format!("{b}").contains("stream"));
    }

    #[test]
    fn site_builder() {
        let s = SiteSpec::new(Behavior::Loop { lines: 10 }, 5).with_writes(0.5);
        assert_eq!(s.weight, 5);
        assert!((s.write_frac - 0.5).abs() < 1e-12);
    }

    #[test]
    fn single_phase_construction() {
        let w = WorkloadSpec::single_phase(
            "w",
            vec![SiteSpec::new(Behavior::Loop { lines: 10 }, 1)],
            (1, 4),
        );
        assert_eq!(w.num_sites(), 1);
        assert_eq!(w.footprint_lines(), 10);
    }

    #[test]
    #[should_panic(expected = "at least one site")]
    fn empty_sites_rejected() {
        let _ = WorkloadSpec::single_phase("w", vec![], (1, 4));
    }

    #[test]
    #[should_panic(expected = "inverted gap")]
    fn inverted_gap_rejected() {
        let _ = WorkloadSpec::single_phase(
            "w",
            vec![SiteSpec::new(Behavior::Loop { lines: 10 }, 1)],
            (4, 1),
        );
    }

    #[test]
    #[should_panic(expected = "weights are zero")]
    fn zero_weights_rejected() {
        let _ = WorkloadSpec::single_phase(
            "w",
            vec![SiteSpec::new(Behavior::Loop { lines: 10 }, 0)],
            (1, 4),
        );
    }

    #[test]
    #[should_panic(expected = "write_frac")]
    fn bad_write_frac_rejected() {
        let _ = WorkloadSpec::single_phase(
            "w",
            vec![SiteSpec::new(Behavior::Loop { lines: 10 }, 1).with_writes(1.5)],
            (1, 4),
        );
    }

    #[test]
    fn phased_counts_sites_across_phases() {
        let p1 =
            Phase { sites: vec![SiteSpec::new(Behavior::Loop { lines: 10 }, 1)], accesses: 100 };
        let p2 = Phase {
            sites: vec![
                SiteSpec::new(Behavior::Stream { lines: 50, stride: 1 }, 1),
                SiteSpec::new(Behavior::RandomUniform { lines: 20 }, 2),
            ],
            accesses: 100,
        };
        let w = WorkloadSpec::phased("pw", vec![p1, p2], (0, 0));
        assert_eq!(w.num_sites(), 3);
        assert_eq!(w.footprint_lines(), 80);
    }
}
