//! Trace characterization: footprint, intensity and per-PC structure.

use crate::gen::{BLOCK_BITS, BLOCK_BYTES};
use nucache_common::Access;
use std::collections::BTreeMap;

/// Summary statistics of a (prefix of a) trace.
///
/// Used by the workload-inventory table and by tests asserting that the
/// generators produce the intended behaviour.
///
/// # Examples
///
/// ```
/// use nucache_trace::{SpecWorkload, TraceGen, TraceSummary};
/// use nucache_common::CoreId;
///
/// let spec = SpecWorkload::HmmerLike.spec();
/// let summary = TraceSummary::from_accesses(TraceGen::new(&spec, CoreId::new(0), 1).take(10_000));
/// assert_eq!(summary.accesses, 10_000);
/// assert!(summary.distinct_pcs >= 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSummary {
    /// Memory accesses observed.
    pub accesses: u64,
    /// Total instructions (accesses + gaps).
    pub instructions: u64,
    /// Distinct cache lines touched.
    pub distinct_lines: u64,
    /// Distinct PCs observed.
    pub distinct_pcs: usize,
    /// Fraction of accesses that were writes.
    pub write_frac: f64,
    /// Accesses per PC, descending.
    pub accesses_per_pc: Vec<(u64, u64)>,
}

impl TraceSummary {
    /// Computes a summary over an access stream (consumes it).
    pub fn from_accesses<I: IntoIterator<Item = Access>>(iter: I) -> Self {
        let mut accesses = 0u64;
        let mut instructions = 0u64;
        let mut writes = 0u64;
        // nucache-audit: allow(nondeterministic-iteration) -- only len() is read
        let mut lines = std::collections::HashSet::new();
        let mut per_pc: BTreeMap<u64, u64> = BTreeMap::new();
        for a in iter {
            accesses += 1;
            instructions += a.instructions();
            if a.kind.is_write() {
                writes += 1;
            }
            lines.insert(a.addr.line(BLOCK_BITS).0);
            *per_pc.entry(a.pc.0).or_insert(0) += 1;
        }
        let mut accesses_per_pc: Vec<(u64, u64)> = per_pc.into_iter().collect();
        accesses_per_pc.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        TraceSummary {
            accesses,
            instructions,
            distinct_lines: lines.len() as u64,
            distinct_pcs: accesses_per_pc.len(),
            write_frac: if accesses == 0 { 0.0 } else { writes as f64 / accesses as f64 },
            accesses_per_pc,
        }
    }

    /// Memory intensity: accesses per kilo-instruction.
    pub fn apki(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.accesses as f64 * 1000.0 / self.instructions as f64
        }
    }

    /// Footprint in bytes ([`BLOCK_BYTES`]-sized lines).
    pub fn footprint_bytes(&self) -> u64 {
        self.distinct_lines * BLOCK_BYTES
    }

    /// Fraction of accesses issued by the `k` most active PCs.
    pub fn top_pc_coverage(&self, k: usize) -> f64 {
        if self.accesses == 0 {
            return 0.0;
        }
        let top: u64 = self.accesses_per_pc.iter().take(k).map(|&(_, n)| n).sum();
        top as f64 / self.accesses as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::TraceGen;
    use crate::spec::SpecWorkload;
    use crate::workload::{Behavior, SiteSpec, WorkloadSpec};
    use nucache_common::CoreId;

    #[test]
    fn empty_stream_summary() {
        let s = TraceSummary::from_accesses(std::iter::empty());
        assert_eq!(s.accesses, 0);
        assert_eq!(s.apki(), 0.0);
        assert_eq!(s.top_pc_coverage(3), 0.0);
    }

    #[test]
    fn loop_summary_matches_spec() {
        let spec = WorkloadSpec::single_phase(
            "l",
            vec![SiteSpec::new(Behavior::Loop { lines: 50 }, 1)],
            (4, 4),
        );
        let s = TraceSummary::from_accesses(TraceGen::new(&spec, CoreId::new(0), 1).take(1000));
        assert_eq!(s.accesses, 1000);
        assert_eq!(s.instructions, 5000);
        assert_eq!(s.distinct_lines, 50);
        assert_eq!(s.distinct_pcs, 1);
        assert!((s.apki() - 200.0).abs() < 1e-9);
        assert_eq!(s.footprint_bytes(), 50 * 64);
    }

    #[test]
    fn coverage_is_monotone_in_k() {
        let spec = SpecWorkload::McfLike.spec();
        let s = TraceSummary::from_accesses(TraceGen::new(&spec, CoreId::new(0), 1).take(20_000));
        let c1 = s.top_pc_coverage(1);
        let c2 = s.top_pc_coverage(2);
        let call = s.top_pc_coverage(s.distinct_pcs);
        assert!(c1 <= c2 && c2 <= call);
        assert!((call - 1.0).abs() < 1e-12);
    }

    #[test]
    fn memory_bound_beats_compute_bound_intensity() {
        let mcf = TraceSummary::from_accesses(
            TraceGen::new(&SpecWorkload::McfLike.spec(), CoreId::new(0), 1).take(20_000),
        );
        let hmmer = TraceSummary::from_accesses(
            TraceGen::new(&SpecWorkload::HmmerLike.spec(), CoreId::new(0), 1).take(20_000),
        );
        assert!(mcf.apki() > 2.0 * hmmer.apki());
    }
}
