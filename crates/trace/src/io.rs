//! Trace serialization: write access streams to disk and replay them.
//!
//! The simulator normally generates traces on the fly, but a file format
//! makes runs portable (e.g. replaying the exact same LLC-level stream
//! against an external simulator) and supports capturing filtered
//! streams. The format is a compact fixed-width binary record:
//!
//! ```text
//! magic "NUTR" | version u32 | record count u64 |
//! repeat: core u8 | kind u8 | mlp u8 | pad u8 | gap u32 | pc u64 | addr u64
//! ```
//!
//! All integers are little-endian.

use nucache_common::fault::{active_fault_plan, FaultPlan, FaultSite};
use nucache_common::{Access, AccessKind, Addr, CoreId, Pc};
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 4] = b"NUTR";
const VERSION: u32 = 1;
const RECORD_BYTES: usize = 24;

/// Writes `accesses` to `path` in the trace format.
///
/// # Errors
///
/// Returns any I/O error from creating or writing the file.
///
/// # Examples
///
/// ```no_run
/// use nucache_trace::io::{read_trace, write_trace};
/// use nucache_trace::{SpecWorkload, TraceGen};
/// use nucache_common::CoreId;
///
/// # fn main() -> std::io::Result<()> {
/// let accesses: Vec<_> =
///     TraceGen::new(&SpecWorkload::McfLike.spec(), CoreId::new(0), 1).take(1000).collect();
/// write_trace("mcf.nutr", &accesses)?;
/// let back = read_trace("mcf.nutr")?;
/// assert_eq!(back, accesses);
/// # Ok(())
/// # }
/// ```
pub fn write_trace<P: AsRef<Path>>(path: P, accesses: &[Access]) -> io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    w.write_all(MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    w.write_all(&(accesses.len() as u64).to_le_bytes())?;
    for a in accesses {
        let mut rec = [0u8; RECORD_BYTES];
        rec[0] = a.core.0;
        rec[1] = u8::from(a.kind.is_write());
        rec[2] = a.mlp;
        rec[4..8].copy_from_slice(&a.gap.to_le_bytes());
        rec[8..16].copy_from_slice(&a.pc.0.to_le_bytes());
        rec[16..24].copy_from_slice(&a.addr.0.to_le_bytes());
        w.write_all(&rec)?;
    }
    w.flush()
}

/// Reads a trace previously written by [`write_trace`].
///
/// When a process-wide fault plan is active
/// ([`nucache_common::fault::active_fault_plan`]), reads additionally
/// surface deterministically injected malformed records as
/// `InvalidData` errors, exercising callers' degradation paths.
///
/// # Errors
///
/// Returns `InvalidData` for a bad magic, unsupported version or
/// truncated file, and propagates underlying I/O errors.
pub fn read_trace<P: AsRef<Path>>(path: P) -> io::Result<Vec<Access>> {
    read_trace_with_plan(path, active_fault_plan())
}

/// [`read_trace`] with an explicit fault plan (`None` disables
/// injection regardless of the process-wide plan). A plan makes record
/// `i` malformed whenever the plan's
/// [`TraceRecord`](FaultSite::TraceRecord) stream faults at `i`.
///
/// # Errors
///
/// As [`read_trace`], plus an `InvalidData` error at every injected
/// malformed record.
pub fn read_trace_with_plan<P: AsRef<Path>>(
    path: P,
    plan: Option<FaultPlan>,
) -> io::Result<Vec<Access>> {
    let mut r = BufReader::new(File::open(path)?);
    let mut header = [0u8; 16];
    r.read_exact(&mut header)?;
    if &header[0..4] != MAGIC {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "not a NUTR trace (bad magic)"));
    }
    let version = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes"));
    if version != VERSION {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unsupported trace version {version}"),
        ));
    }
    let count = u64::from_le_bytes(header[8..16].try_into().expect("8 bytes"));
    let mut out = Vec::with_capacity(count.min(1 << 24) as usize);
    let mut rec = [0u8; RECORD_BYTES];
    for i in 0..count {
        r.read_exact(&mut rec).map_err(|e| {
            if e.kind() == io::ErrorKind::UnexpectedEof {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("trace truncated at record {i} of {count}"),
                )
            } else {
                e
            }
        })?;
        if let Some(plan) = &plan {
            if plan.should_fault(FaultSite::TraceRecord, i) {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("{} of {count}", plan.message(FaultSite::TraceRecord, i)),
                ));
            }
        }
        let kind = if rec[1] != 0 { AccessKind::Write } else { AccessKind::Read };
        let gap = u32::from_le_bytes(rec[4..8].try_into().expect("4 bytes"));
        let pc = u64::from_le_bytes(rec[8..16].try_into().expect("8 bytes"));
        let addr = u64::from_le_bytes(rec[16..24].try_into().expect("8 bytes"));
        out.push(
            Access::with_gap(CoreId::new(rec[0]), Pc::new(pc), Addr::new(addr), kind, gap)
                .with_mlp(rec[2]),
        );
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SpecWorkload, TraceGen};

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("nucache_trace_io");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        dir.join(name)
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let accesses: Vec<Access> =
            TraceGen::new(&SpecWorkload::McfLike.spec(), CoreId::new(3), 9).take(2_000).collect();
        let path = tmp("roundtrip.nutr");
        write_trace(&path, &accesses).expect("write");
        let back = read_trace(&path).expect("read");
        assert_eq!(back, accesses);
    }

    #[test]
    fn empty_trace_roundtrips() {
        let path = tmp("empty.nutr");
        write_trace(&path, &[]).expect("write");
        assert_eq!(read_trace(&path).expect("read"), vec![]);
    }

    #[test]
    fn bad_magic_rejected() {
        let path = tmp("bad_magic.nutr");
        std::fs::write(&path, b"NOPE\x01\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00").unwrap();
        let err = read_trace(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("magic"));
    }

    #[test]
    fn truncation_detected() {
        let accesses: Vec<Access> =
            TraceGen::new(&SpecWorkload::LbmLike.spec(), CoreId::new(0), 1).take(10).collect();
        let path = tmp("trunc.nutr");
        write_trace(&path, &accesses).expect("write");
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 5]).unwrap();
        let err = read_trace(&path).unwrap_err();
        assert!(err.to_string().contains("truncated"));
    }

    #[test]
    fn injected_malformed_records_surface_as_invalid_data() {
        use nucache_common::fault::{FaultPlan, FaultSite};
        let accesses: Vec<Access> =
            TraceGen::new(&SpecWorkload::McfLike.spec(), CoreId::new(0), 5).take(5_000).collect();
        let path = tmp("inject.nutr");
        write_trace(&path, &accesses).expect("write");
        // Find a seed whose TraceRecord stream faults somewhere in range
        // (the per-record rate is low, so scan a few seeds).
        let plan = (0..64)
            .map(FaultPlan::new)
            .find(|p| (0..5_000).any(|i| p.should_fault(FaultSite::TraceRecord, i)))
            .expect("some small seed faults within 5000 records");
        let err = read_trace_with_plan(&path, Some(plan)).expect_err("injected record fails");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("injected fault"), "got: {err}");
        // Same plan, same outcome; no plan, clean read.
        assert!(read_trace_with_plan(&path, Some(plan)).is_err());
        assert_eq!(read_trace_with_plan(&path, None).expect("clean read"), accesses);
    }

    #[test]
    fn wrong_version_rejected() {
        let path = tmp("version.nutr");
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&99u32.to_le_bytes());
        bytes.extend_from_slice(&0u64.to_le_bytes());
        std::fs::write(&path, bytes).unwrap();
        let err = read_trace(&path).unwrap_err();
        assert!(err.to_string().contains("version"));
    }
}
