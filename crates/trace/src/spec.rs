//! Named SPEC-like synthetic workloads.
//!
//! Each workload models the *memory behaviour class* of a well-known SPEC
//! CPU benchmark — the names carry a `*_like` suffix because they are
//! synthetic stand-ins, not the benchmarks themselves (see DESIGN.md §3).
//! Working-set sizes are expressed relative to [`REF_LLC_LINES`], the
//! 1 MiB reference LLC used throughout the evaluation, and stay *fixed*
//! across experiments so cache-size sweeps mean something.
//!
//! The classes cover the behaviours the NUcache mechanism is sensitive
//! to:
//!
//! * pure streamers (no reuse, high intensity) — pollution sources;
//! * retention-sensitive loops near the LLC capacity — NUcache's targets;
//! * pointer chasers (loop-like reuse, no spatial pattern);
//! * uniform-random workloads (low locality at any size);
//! * cache-friendly, compute-bound applications — largely LLC-neutral.

use crate::workload::{Behavior, SiteSpec, WorkloadSpec};

/// Lines in the 1 MiB / 64 B reference LLC that workload footprints are
/// scaled against.
pub const REF_LLC_LINES: u64 = 16 * 1024;

fn scaled(factor: f64) -> u64 {
    ((REF_LLC_LINES as f64) * factor).round() as u64
}

/// The synthetic workload roster used throughout the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)]
pub enum SpecWorkload {
    LibquantumLike,
    LbmLike,
    MilcLike,
    McfLike,
    OmnetppLike,
    SphinxLike,
    SoplexLike,
    XalancLike,
    AstarLike,
    GccLike,
    Bzip2Like,
    HmmerLike,
    GobmkLike,
    SjengLike,
}

impl SpecWorkload {
    /// Every workload, in roster order.
    pub const ALL: [SpecWorkload; 14] = [
        SpecWorkload::LibquantumLike,
        SpecWorkload::LbmLike,
        SpecWorkload::MilcLike,
        SpecWorkload::McfLike,
        SpecWorkload::OmnetppLike,
        SpecWorkload::SphinxLike,
        SpecWorkload::SoplexLike,
        SpecWorkload::XalancLike,
        SpecWorkload::AstarLike,
        SpecWorkload::GccLike,
        SpecWorkload::Bzip2Like,
        SpecWorkload::HmmerLike,
        SpecWorkload::GobmkLike,
        SpecWorkload::SjengLike,
    ];

    /// Name used in tables (e.g. `"mcf_like"`).
    pub const fn name(&self) -> &'static str {
        match self {
            SpecWorkload::LibquantumLike => "libquantum_like",
            SpecWorkload::LbmLike => "lbm_like",
            SpecWorkload::MilcLike => "milc_like",
            SpecWorkload::McfLike => "mcf_like",
            SpecWorkload::OmnetppLike => "omnetpp_like",
            SpecWorkload::SphinxLike => "sphinx_like",
            SpecWorkload::SoplexLike => "soplex_like",
            SpecWorkload::XalancLike => "xalanc_like",
            SpecWorkload::AstarLike => "astar_like",
            SpecWorkload::GccLike => "gcc_like",
            SpecWorkload::Bzip2Like => "bzip2_like",
            SpecWorkload::HmmerLike => "hmmer_like",
            SpecWorkload::GobmkLike => "gobmk_like",
            SpecWorkload::SjengLike => "sjeng_like",
        }
    }

    /// Looks a workload up by its table name.
    pub fn from_name(name: &str) -> Option<SpecWorkload> {
        SpecWorkload::ALL.iter().copied().find(|w| w.name() == name)
    }

    /// Behaviour class for the workload tables.
    pub const fn class(&self) -> &'static str {
        match self {
            SpecWorkload::LibquantumLike | SpecWorkload::LbmLike => "streaming",
            SpecWorkload::MilcLike => "streaming+random",
            SpecWorkload::McfLike | SpecWorkload::AstarLike => "pointer-chasing",
            SpecWorkload::OmnetppLike | SpecWorkload::SjengLike => "random-dominated",
            SpecWorkload::SphinxLike | SpecWorkload::SoplexLike | SpecWorkload::XalancLike => {
                "retention-sensitive"
            }
            SpecWorkload::GccLike | SpecWorkload::Bzip2Like => "mixed",
            SpecWorkload::HmmerLike | SpecWorkload::GobmkLike => "cache-friendly",
        }
    }

    /// Builds the concrete workload specification.
    pub fn spec(&self) -> WorkloadSpec {
        let s = |b, w| SiteSpec::new(b, w);
        let stream = |factor: f64, stride: u64| Behavior::Stream { lines: scaled(factor), stride };
        let lp = |factor: f64| Behavior::Loop { lines: scaled(factor) };
        let small_loop = |lines: u64| Behavior::Loop { lines };
        let rnd = |factor: f64| Behavior::RandomUniform { lines: scaled(factor) };
        let chase = |factor: f64| Behavior::PointerChase { lines: scaled(factor) };

        match self {
            // Pure streamer over a huge array; extremely memory-bound.
            SpecWorkload::LibquantumLike => WorkloadSpec::single_phase(
                self.name(),
                vec![s(stream(8.0, 1), 90), s(small_loop(64), 10)],
                (2, 6),
            ),
            // Two streaming sweeps, write-heavy (stencil update).
            SpecWorkload::LbmLike => WorkloadSpec::single_phase(
                self.name(),
                vec![
                    s(stream(6.0, 1), 45).with_writes(0.5),
                    s(stream(6.0, 1), 45).with_writes(0.5),
                    s(small_loop(128), 10),
                ],
                (3, 8),
            ),
            // Large streaming plus scattered random field accesses.
            SpecWorkload::MilcLike => WorkloadSpec::single_phase(
                self.name(),
                vec![s(stream(4.0, 2), 50), s(rnd(2.0), 30), s(small_loop(256), 20)],
                (4, 10),
            ),
            // Dominant pointer chase over a large graph, a reusable node
            // subset, and a cold scan; the classic delinquent-PC profile.
            SpecWorkload::McfLike => WorkloadSpec::single_phase(
                self.name(),
                vec![
                    s(chase(2.5), 35),
                    s(lp(0.55), 30),
                    s(stream(4.0, 1), 15),
                    s(small_loop(256), 20),
                ],
                (1, 4),
            ),
            // Event-queue churn: random over a large heap dominates the
            // traffic; a modest event-table loop is reused at a Next-Use
            // distance just beyond LRU reach — the DelinquentPC/Next-Use
            // structure the paper documents.
            SpecWorkload::OmnetppLike => WorkloadSpec::single_phase(
                self.name(),
                vec![s(rnd(1.5), 62), s(lp(0.42), 18), s(small_loop(128), 20)],
                (2, 8),
            ),
            // Acoustic-model tables: a small set of delinquent loads reuse
            // a compact model at distances beyond baseline reach because a
            // dominant feature stream (from the same application)
            // intervenes: NUcache's sweet spot, invisible to core-granular
            // partitioning.
            SpecWorkload::SphinxLike => WorkloadSpec::single_phase(
                self.name(),
                vec![s(lp(0.42), 20), s(stream(2.0, 1), 60), s(small_loop(256), 20)],
                (3, 8),
            ),
            // Strided matrix sweeps dominate; the reusable basis loop's
            // Next-Use lands just beyond LRU reach.
            SpecWorkload::SoplexLike => WorkloadSpec::single_phase(
                self.name(),
                vec![s(stream(3.0, 8), 58), s(lp(0.45), 22), s(small_loop(64), 20)],
                (2, 6),
            ),
            // DOM traversal slightly exceeding the LLC plus hot symbol
            // tables: retention-sensitive but hard for everyone.
            SpecWorkload::XalancLike => WorkloadSpec::single_phase(
                self.name(),
                vec![s(lp(1.3), 45), s(small_loop(512), 40), s(stream(2.0, 1), 15)],
                (3, 9),
            ),
            // Medium pointer chase whose nodes fit when protected, amid a
            // dominant map stream from the same application.
            SpecWorkload::AstarLike => WorkloadSpec::single_phase(
                self.name(),
                vec![s(chase(0.4), 25), s(small_loop(256), 20), s(stream(1.0, 1), 55)],
                (4, 10),
            ),
            // Many moderate loops (pass-local data) plus an IR stream.
            SpecWorkload::GccLike => WorkloadSpec::single_phase(
                self.name(),
                vec![
                    s(lp(0.12), 15),
                    s(lp(0.2), 15),
                    s(lp(0.3), 15),
                    s(small_loop(1024), 20),
                    s(small_loop(2048), 20),
                    s(stream(1.5, 1), 15),
                ],
                (5, 14),
            ),
            // Block-sorting: sequential scan plus a compact working set.
            SpecWorkload::Bzip2Like => WorkloadSpec::single_phase(
                self.name(),
                vec![s(stream(1.0, 1), 30), s(lp(0.25), 35), s(small_loop(128), 35)],
                (4, 10),
            ),
            // Compute-bound with a small resident profile table.
            SpecWorkload::HmmerLike => WorkloadSpec::single_phase(
                self.name(),
                vec![s(small_loop(2048), 75), s(lp(0.1), 25)],
                (8, 20),
            ),
            // Game tree: friendly board state, occasional random probes.
            SpecWorkload::GobmkLike => WorkloadSpec::single_phase(
                self.name(),
                vec![s(small_loop(4096), 70), s(rnd(0.3), 30)],
                (8, 24),
            ),
            // Hash-table probes over a medium table.
            SpecWorkload::SjengLike => WorkloadSpec::single_phase(
                self.name(),
                vec![s(rnd(0.5), 50), s(small_loop(1024), 50)],
                (6, 16),
            ),
        }
    }
}

impl std::fmt::Display for SpecWorkload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_specs_validate() {
        for w in SpecWorkload::ALL {
            let spec = w.spec(); // would panic if invalid
            assert_eq!(spec.name, w.name());
            assert!(spec.num_sites() >= 2 || w == SpecWorkload::HmmerLike || spec.num_sites() >= 1);
        }
    }

    #[test]
    fn names_roundtrip() {
        for w in SpecWorkload::ALL {
            assert_eq!(SpecWorkload::from_name(w.name()), Some(w));
        }
        assert_eq!(SpecWorkload::from_name("nonsense"), None);
    }

    #[test]
    fn names_unique() {
        let mut names: Vec<_> = SpecWorkload::ALL.iter().map(|w| w.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), SpecWorkload::ALL.len());
    }

    #[test]
    fn streamers_have_large_footprints() {
        let lib = SpecWorkload::LibquantumLike.spec();
        assert!(lib.footprint_lines() > 6 * REF_LLC_LINES);
        let hmmer = SpecWorkload::HmmerLike.spec();
        assert!(hmmer.footprint_lines() < REF_LLC_LINES / 4);
    }

    #[test]
    fn classes_cover_roster() {
        for w in SpecWorkload::ALL {
            assert!(!w.class().is_empty());
        }
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(format!("{}", SpecWorkload::McfLike), "mcf_like");
    }
}
