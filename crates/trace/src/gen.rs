//! The trace generator: turns a [`WorkloadSpec`] into an infinite,
//! deterministic stream of [`Access`]es.

use crate::workload::{Behavior, WorkloadSpec};
use nucache_common::{Access, AccessKind, Addr, CoreId, DetRng, FastRange, Pc};

/// Cache-line size assumed by the generators (64 bytes).
pub const BLOCK_BYTES: u64 = 64;
/// log2 of [`BLOCK_BYTES`]: the byte-to-line shift every consumer of
/// generated addresses must use (the driver routes its `Addr::line`
/// calls through this constant rather than a magic number).
pub const BLOCK_BITS: u32 = 6;

/// Natural batch size for [`TraceGen::fill_block`]: large enough to
/// amortize per-phase lookups, small enough that a per-core buffer stays
/// a few cache lines.
pub const TRACE_BLOCK: usize = 64;

/// Line-address spacing between site regions: 2^26 lines = 4 GiB of
/// address space per region, far larger than any region we generate.
const REGION_SPACING_LINES: u64 = 1 << 26;

/// Line-address spacing between cores' address spaces.
const CORE_SPACING_LINES: u64 = 1 << 40;

/// Per-site runtime state.
#[derive(Debug)]
struct SiteState {
    /// Position within the region (behaviour-specific meaning).
    cursor: u64,
    /// Base line address of the region.
    base_line: u64,
    /// LCG parameters for pointer chasing (full-period over pow2 region).
    chase_modulus: u64,
    /// Precomputed `[0, lines)` draw for `RandomUniform` probing — the
    /// per-draw division is paid once here, at construction.
    uniform: FastRange,
}

/// A deterministic, infinite iterator of accesses for one workload bound
/// to one core.
///
/// Site `i` of the workload gets PC `0x40_0000 + 0x10*i` (globalized with
/// the core id) and a private address region; two generators with equal
/// `(spec, core, seed)` produce identical streams.
///
/// # Examples
///
/// ```
/// use nucache_trace::{Behavior, SiteSpec, TraceGen, WorkloadSpec};
/// use nucache_common::CoreId;
///
/// let spec = WorkloadSpec::single_phase(
///     "demo",
///     vec![SiteSpec::new(Behavior::Loop { lines: 8 }, 1)],
///     (0, 0),
/// );
/// let accesses: Vec<_> = TraceGen::new(&spec, CoreId::new(0), 1).take(16).collect();
/// assert_eq!(accesses.len(), 16);
/// // A loop of 8 lines revisits the same 8 line addresses.
/// let first_line = accesses[0].addr.line(6);
/// assert_eq!(accesses[8].addr.line(6), first_line);
/// ```
#[derive(Debug)]
pub struct TraceGen {
    spec: WorkloadSpec,
    core: CoreId,
    rng: DetRng,
    sites: Vec<SiteState>,
    /// (phase index, site index within phase) -> global site index.
    phase_site_base: Vec<usize>,
    cum_weights: Vec<Vec<u32>>,
    /// Per-phase `[0, total_weight)` draw for site selection.
    phase_pick: Vec<FastRange>,
    /// Workload-wide `[gap.0, gap.1]` draw for instruction gaps.
    gap_pick: FastRange,
    phase: usize,
    phase_left: u64,
    emitted: u64,
}

impl TraceGen {
    /// Creates a generator for `spec` on `core` with an explicit seed.
    pub fn new(spec: &WorkloadSpec, core: CoreId, seed: u64) -> Self {
        let mut sites = Vec::new();
        let mut phase_site_base = Vec::new();
        let mut cum_weights = Vec::new();
        let mut phase_pick = Vec::new();
        let mut rng = DetRng::substream(seed, trace_stream_label(core));
        for phase in &spec.phases {
            phase_site_base.push(sites.len());
            let mut cum = Vec::with_capacity(phase.sites.len());
            let mut acc = 0u32;
            for s in &phase.sites {
                acc += s.weight;
                cum.push(acc);
                let global_idx = sites.len() as u64;
                let base_line = CORE_SPACING_LINES * (core.index() as u64 + 1)
                    + REGION_SPACING_LINES * (global_idx + 1);
                let chase_modulus = s.behavior.lines().next_power_of_two();
                // Randomize starting positions so co-scheduled copies of
                // the same workload do not march in lockstep.
                let cursor = rng.below(s.behavior.lines());
                let uniform = FastRange::below(s.behavior.lines());
                sites.push(SiteState { cursor, base_line, chase_modulus, uniform });
            }
            phase_pick.push(FastRange::below(acc as u64));
            cum_weights.push(cum);
        }
        let phase_left = spec.phases[0].accesses;
        let gap_pick = FastRange::inclusive(spec.gap.0 as u64, spec.gap.1 as u64);
        TraceGen {
            spec: spec.clone(),
            core,
            rng,
            sites,
            phase_site_base,
            cum_weights,
            phase_pick,
            gap_pick,
            phase: 0,
            phase_left,
            emitted: 0,
        }
    }

    /// The core this generator is bound to.
    pub const fn core(&self) -> CoreId {
        self.core
    }

    /// The workload name.
    pub fn workload_name(&self) -> &str {
        &self.spec.name
    }

    /// Accesses emitted so far.
    pub const fn emitted(&self) -> u64 {
        self.emitted
    }

    /// PC assigned to global site index `i` (before core globalization).
    pub fn site_pc(i: usize) -> Pc {
        Pc::new(0x40_0000 + 0x10 * i as u64)
    }

    fn pick_site(&mut self) -> usize {
        let local =
            pick_in(&self.cum_weights[self.phase], &self.phase_pick[self.phase], &mut self.rng);
        self.phase_site_base[self.phase] + local
    }

    fn advance_site(&mut self, global_idx: usize, behavior: Behavior) -> u64 {
        step_site(&mut self.sites[global_idx], &mut self.rng, behavior)
    }

    /// Fills `out` with the next `out.len()` accesses of the stream —
    /// byte-identical to calling [`Iterator::next`] that many times, but
    /// batched: phase bookkeeping, site-table base, and gap bounds are
    /// hoisted out of the per-access path and re-resolved only at phase
    /// boundaries, so the inner loop is draws and site stepping only.
    pub fn fill_block(&mut self, out: &mut [Access]) {
        let mut idx = 0;
        while idx < out.len() {
            self.advance_phase();
            let phase = self.phase;
            let run = (out.len() - idx).min(self.phase_left as usize);
            let base = self.phase_site_base[phase];
            // Split borrows: the RNG and site states advance while the
            // spec, cumulative weights, and precomputed ranges are
            // read-only.
            let TraceGen { spec, core, rng, sites, cum_weights, phase_pick, gap_pick, .. } = self;
            let cum = &cum_weights[phase];
            let pick = phase_pick[phase];
            let gap_pick = *gap_pick;
            let site_specs = &spec.phases[phase].sites;
            let core = *core;
            for slot in &mut out[idx..idx + run] {
                let local = pick_in(cum, &pick, rng);
                let site = site_specs[local];
                let line = step_site(&mut sites[base + local], rng, site.behavior);
                let kind =
                    if rng.chance(site.write_frac) { AccessKind::Write } else { AccessKind::Read };
                let gap = rng.draw(&gap_pick) as u32;
                let pc = Self::site_pc(base + local).globalize(core);
                *slot = Access::with_gap(core, pc, Addr::new(line << BLOCK_BITS), kind, gap)
                    .with_mlp(Self::mlp_of(site.behavior));
            }
            self.phase_left -= run as u64;
            self.emitted += run as u64;
            idx += run;
        }
    }

    fn advance_phase(&mut self) {
        if self.phase_left == 0 {
            self.phase = (self.phase + 1) % self.spec.phases.len();
            self.phase_left = self.spec.phases[self.phase].accesses;
        }
    }

    /// Memory-level parallelism by behaviour class: independent streaming
    /// loads overlap deeply (prefetcher + MSHRs), array loops overlap
    /// moderately, and random probes somewhat; a pointer chase is a
    /// dependence chain with no overlap at all.
    const fn mlp_of(behavior: Behavior) -> u8 {
        match behavior {
            Behavior::Stream { .. } => 4,
            Behavior::Loop { .. } => 2,
            Behavior::RandomUniform { .. } => 2,
            Behavior::PointerChase { .. } => 1,
        }
    }
}

/// Substream label mixing the core id in, so per-core generators sharing
/// one seed stay independent.
const fn trace_stream_label(core: CoreId) -> u64 {
    0x7ace_0000 + core.0 as u64
}

/// Weighted site selection within one phase: one uniform draw against the
/// cumulative weight table. Shared by the per-access and batched paths so
/// both consume the RNG identically; `pick` is the phase's precomputed
/// `[0, total_weight)` range, so no division is paid per draw.
#[inline]
fn pick_in(cum: &[u32], pick: &FastRange, rng: &mut DetRng) -> usize {
    let draw = rng.draw(pick) as u32;
    cum.partition_point(|&c| c <= draw)
}

/// Advances one site and returns the line it touched. Shared by the
/// per-access and batched paths so both consume the RNG identically.
#[inline]
fn step_site(state: &mut SiteState, rng: &mut DetRng, behavior: Behavior) -> u64 {
    match behavior {
        Behavior::Stream { lines, stride } => {
            let line = state.base_line + state.cursor;
            // `cursor < lines` is invariant, so for in-range strides the
            // modulo is a single conditional subtract.
            let next = state.cursor + stride;
            state.cursor = if stride <= lines {
                if next >= lines {
                    next - lines
                } else {
                    next
                }
            } else {
                next % lines
            };
            line
        }
        Behavior::Loop { lines } => {
            let line = state.base_line + state.cursor;
            let next = state.cursor + 1;
            state.cursor = if next == lines { 0 } else { next };
            line
        }
        Behavior::RandomUniform { lines: _ } => state.base_line + rng.draw(&state.uniform),
        Behavior::PointerChase { lines: _ } => {
            // Full-period LCG over the power-of-two modulus: next =
            // (5*cur + 1) mod m visits every value exactly once per
            // period (a ≡ 1 mod 4, c odd), giving loop-like reuse with
            // no spatial pattern.
            let m = state.chase_modulus;
            let line = state.base_line + state.cursor;
            state.cursor = (5 * state.cursor + 1) & (m - 1);
            line
        }
    }
}

impl Iterator for TraceGen {
    type Item = Access;

    fn next(&mut self) -> Option<Access> {
        self.advance_phase();
        let global_idx = self.pick_site();
        let phase = &self.spec.phases[self.phase];
        let local = global_idx - self.phase_site_base[self.phase];
        let site = phase.sites[local];
        let line = self.advance_site(global_idx, site.behavior);
        let kind =
            if self.rng.chance(site.write_frac) { AccessKind::Write } else { AccessKind::Read };
        let gap = self.rng.draw(&self.gap_pick) as u32;
        let pc = Self::site_pc(global_idx).globalize(self.core);
        self.phase_left -= 1;
        self.emitted += 1;
        Some(
            Access::with_gap(self.core, pc, Addr::new(line << BLOCK_BITS), kind, gap)
                .with_mlp(Self::mlp_of(site.behavior)),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{Phase, SiteSpec};

    fn loop_spec(lines: u64) -> WorkloadSpec {
        WorkloadSpec::single_phase("loop", vec![SiteSpec::new(Behavior::Loop { lines }, 1)], (2, 4))
    }

    #[test]
    fn deterministic_across_instances() {
        let spec = loop_spec(100);
        let a: Vec<_> = TraceGen::new(&spec, CoreId::new(0), 9).take(500).collect();
        let b: Vec<_> = TraceGen::new(&spec, CoreId::new(0), 9).take(500).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let spec = loop_spec(100);
        let a: Vec<_> = TraceGen::new(&spec, CoreId::new(0), 1).take(100).collect();
        let b: Vec<_> = TraceGen::new(&spec, CoreId::new(0), 2).take(100).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn loop_footprint_is_exact() {
        let spec = loop_spec(37);
        let distinct: std::collections::HashSet<u64> =
            TraceGen::new(&spec, CoreId::new(0), 1).take(500).map(|a| a.addr.line(6).0).collect();
        assert_eq!(distinct.len(), 37);
    }

    #[test]
    fn pointer_chase_visits_whole_region() {
        let spec = WorkloadSpec::single_phase(
            "chase",
            vec![SiteSpec::new(Behavior::PointerChase { lines: 64 }, 1)],
            (0, 0),
        );
        let distinct: std::collections::HashSet<u64> =
            TraceGen::new(&spec, CoreId::new(0), 1).take(64).map(|a| a.addr.line(6).0).collect();
        assert_eq!(distinct.len(), 64, "full-period cycle must cover the region");
    }

    #[test]
    fn stream_respects_stride() {
        let spec = WorkloadSpec::single_phase(
            "stream",
            vec![SiteSpec::new(Behavior::Stream { lines: 1 << 20, stride: 4 }, 1)],
            (0, 0),
        );
        let lines: Vec<u64> =
            TraceGen::new(&spec, CoreId::new(0), 1).take(10).map(|a| a.addr.line(6).0).collect();
        for w in lines.windows(2) {
            assert_eq!(w[1] - w[0], 4);
        }
    }

    #[test]
    fn gaps_within_range() {
        let spec = loop_spec(10);
        for a in TraceGen::new(&spec, CoreId::new(0), 3).take(200) {
            assert!((2..=4).contains(&a.gap));
        }
    }

    #[test]
    fn write_fraction_approximate() {
        let spec = WorkloadSpec::single_phase(
            "wr",
            vec![SiteSpec::new(Behavior::Loop { lines: 10 }, 1).with_writes(0.5)],
            (0, 0),
        );
        let writes = TraceGen::new(&spec, CoreId::new(0), 5)
            .take(2000)
            .filter(|a| a.kind.is_write())
            .count();
        assert!((800..1200).contains(&writes), "expected ~1000 writes, got {writes}");
    }

    #[test]
    fn cores_use_disjoint_address_spaces_and_pcs() {
        let spec = loop_spec(100);
        let a: Vec<_> = TraceGen::new(&spec, CoreId::new(0), 1).take(50).collect();
        let b: Vec<_> = TraceGen::new(&spec, CoreId::new(1), 1).take(50).collect();
        let lines_a: std::collections::HashSet<u64> = a.iter().map(|x| x.addr.line(6).0).collect();
        let lines_b: std::collections::HashSet<u64> = b.iter().map(|x| x.addr.line(6).0).collect();
        assert!(lines_a.is_disjoint(&lines_b));
        assert_ne!(a[0].pc, b[0].pc);
    }

    #[test]
    fn phases_cycle() {
        let p1 = Phase { sites: vec![SiteSpec::new(Behavior::Loop { lines: 4 }, 1)], accesses: 10 };
        let p2 = Phase { sites: vec![SiteSpec::new(Behavior::Loop { lines: 4 }, 1)], accesses: 10 };
        let spec = WorkloadSpec::phased("pp", vec![p1, p2], (0, 0));
        let accesses: Vec<_> = TraceGen::new(&spec, CoreId::new(0), 1).take(40).collect();
        // Phase 1's site is global index 0, phase 2's is 1: PCs alternate
        // in blocks of 10.
        let pc0 = TraceGen::site_pc(0).globalize(CoreId::new(0));
        let pc1 = TraceGen::site_pc(1).globalize(CoreId::new(0));
        assert!(accesses[..10].iter().all(|a| a.pc == pc0));
        assert!(accesses[10..20].iter().all(|a| a.pc == pc1));
        assert!(accesses[20..30].iter().all(|a| a.pc == pc0), "phases must cycle");
    }

    #[test]
    fn weighted_site_selection() {
        let spec = WorkloadSpec::single_phase(
            "weights",
            vec![
                SiteSpec::new(Behavior::Loop { lines: 8 }, 9),
                SiteSpec::new(Behavior::Loop { lines: 8 }, 1),
            ],
            (0, 0),
        );
        let pc0 = TraceGen::site_pc(0).globalize(CoreId::new(0));
        let n0 = TraceGen::new(&spec, CoreId::new(0), 7).take(5000).filter(|a| a.pc == pc0).count();
        assert!((4200..4800).contains(&n0), "expected ~4500 from the 90% site, got {n0}");
    }
}
