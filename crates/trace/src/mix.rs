//! Multi-programmed workload mixes for 2/4/8-core experiments.

use crate::spec::SpecWorkload;
use std::fmt;

/// A multi-programmed mix: one workload per core.
///
/// # Examples
///
/// ```
/// use nucache_trace::{Mix, SpecWorkload};
/// let mix = Mix::new("demo", vec![SpecWorkload::McfLike, SpecWorkload::LbmLike]);
/// assert_eq!(mix.num_cores(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mix {
    name: String,
    workloads: Vec<SpecWorkload>,
}

impl Mix {
    /// Creates a named mix.
    ///
    /// # Panics
    ///
    /// Panics if `workloads` is empty.
    pub fn new(name: impl Into<String>, workloads: Vec<SpecWorkload>) -> Self {
        assert!(!workloads.is_empty(), "empty mix");
        Mix { name: name.into(), workloads }
    }

    /// The mix name as it appears in tables.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Workloads, indexed by core.
    pub fn workloads(&self) -> &[SpecWorkload] {
        &self.workloads
    }

    /// Number of cores the mix occupies.
    pub fn num_cores(&self) -> usize {
        self.workloads.len()
    }

    /// Canonical 2-core mixes (the paper evaluates dual, quad and
    /// eight-core SPEC mixes; these combine the same behaviour classes:
    /// retention-sensitive applications against streamers, chasers and
    /// friendly co-runners).
    pub fn dual_core_suite() -> Vec<Mix> {
        use SpecWorkload::*;
        vec![
            Mix::new("mix2_01", vec![SphinxLike, LibquantumLike]),
            Mix::new("mix2_02", vec![McfLike, LbmLike]),
            Mix::new("mix2_03", vec![SoplexLike, MilcLike]),
            Mix::new("mix2_04", vec![AstarLike, LibquantumLike]),
            Mix::new("mix2_05", vec![OmnetppLike, LbmLike]),
            Mix::new("mix2_06", vec![SphinxLike, McfLike]),
            Mix::new("mix2_07", vec![XalancLike, MilcLike]),
            Mix::new("mix2_08", vec![Bzip2Like, LibquantumLike]),
            Mix::new("mix2_09", vec![GccLike, LbmLike]),
            Mix::new("mix2_10", vec![SoplexLike, SphinxLike]),
            Mix::new("mix2_11", vec![HmmerLike, McfLike]),
            Mix::new("mix2_12", vec![AstarLike, GobmkLike]),
        ]
    }

    /// Canonical 4-core mixes.
    pub fn quad_core_suite() -> Vec<Mix> {
        use SpecWorkload::*;
        vec![
            Mix::new("mix4_01", vec![SphinxLike, LibquantumLike, McfLike, LbmLike]),
            Mix::new("mix4_02", vec![SoplexLike, MilcLike, AstarLike, LibquantumLike]),
            Mix::new("mix4_03", vec![OmnetppLike, LbmLike, SphinxLike, MilcLike]),
            Mix::new("mix4_04", vec![XalancLike, LibquantumLike, Bzip2Like, LbmLike]),
            Mix::new("mix4_05", vec![McfLike, SoplexLike, GccLike, MilcLike]),
            Mix::new("mix4_06", vec![AstarLike, SphinxLike, HmmerLike, LibquantumLike]),
            Mix::new("mix4_07", vec![SoplexLike, OmnetppLike, LbmLike, GobmkLike]),
            Mix::new("mix4_08", vec![SphinxLike, XalancLike, MilcLike, SjengLike]),
            Mix::new("mix4_09", vec![McfLike, AstarLike, LibquantumLike, LbmLike]),
            Mix::new("mix4_10", vec![Bzip2Like, GccLike, SoplexLike, MilcLike]),
        ]
    }

    /// Canonical 8-core mixes.
    pub fn eight_core_suite() -> Vec<Mix> {
        use SpecWorkload::*;
        vec![
            Mix::new(
                "mix8_01",
                vec![
                    SphinxLike,
                    LibquantumLike,
                    McfLike,
                    LbmLike,
                    SoplexLike,
                    MilcLike,
                    AstarLike,
                    LibquantumLike,
                ],
            ),
            Mix::new(
                "mix8_02",
                vec![
                    OmnetppLike,
                    LbmLike,
                    SphinxLike,
                    MilcLike,
                    XalancLike,
                    LibquantumLike,
                    Bzip2Like,
                    LbmLike,
                ],
            ),
            Mix::new(
                "mix8_03",
                vec![
                    McfLike,
                    SoplexLike,
                    GccLike,
                    MilcLike,
                    AstarLike,
                    SphinxLike,
                    HmmerLike,
                    LibquantumLike,
                ],
            ),
            Mix::new(
                "mix8_04",
                vec![
                    SoplexLike,
                    OmnetppLike,
                    LbmLike,
                    GobmkLike,
                    SphinxLike,
                    XalancLike,
                    MilcLike,
                    SjengLike,
                ],
            ),
            Mix::new(
                "mix8_05",
                vec![
                    McfLike,
                    AstarLike,
                    LibquantumLike,
                    LbmLike,
                    Bzip2Like,
                    GccLike,
                    SoplexLike,
                    MilcLike,
                ],
            ),
            Mix::new(
                "mix8_06",
                vec![
                    SphinxLike,
                    SphinxLike,
                    SoplexLike,
                    AstarLike,
                    LibquantumLike,
                    LbmLike,
                    MilcLike,
                    McfLike,
                ],
            ),
        ]
    }
}

impl fmt::Display for Mix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.name)?;
        for (i, w) in self.workloads.iter().enumerate() {
            if i > 0 {
                f.write_str(",")?;
            }
            f.write_str(w.name())?;
        }
        f.write_str(")")
    }
}

/// Incremental construction of ad-hoc mixes.
///
/// # Examples
///
/// ```
/// use nucache_trace::{MixBuilder, SpecWorkload};
/// let mix = MixBuilder::new("custom")
///     .add(SpecWorkload::McfLike)
///     .add(SpecWorkload::SphinxLike)
///     .build();
/// assert_eq!(mix.num_cores(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct MixBuilder {
    name: String,
    workloads: Vec<SpecWorkload>,
}

impl MixBuilder {
    /// Starts a mix with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        MixBuilder { name: name.into(), workloads: Vec::new() }
    }

    /// Appends a workload on the next core.
    #[must_use]
    #[allow(clippy::should_implement_trait)] // builder push, not arithmetic
    pub fn add(mut self, w: SpecWorkload) -> Self {
        self.workloads.push(w);
        self
    }

    /// Finishes the mix.
    ///
    /// # Panics
    ///
    /// Panics if no workloads were added.
    pub fn build(self) -> Mix {
        Mix::new(self.name, self.workloads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suites_have_expected_shapes() {
        assert_eq!(Mix::dual_core_suite().len(), 12);
        assert!(Mix::dual_core_suite().iter().all(|m| m.num_cores() == 2));
        assert_eq!(Mix::quad_core_suite().len(), 10);
        assert!(Mix::quad_core_suite().iter().all(|m| m.num_cores() == 4));
        assert_eq!(Mix::eight_core_suite().len(), 6);
        assert!(Mix::eight_core_suite().iter().all(|m| m.num_cores() == 8));
    }

    #[test]
    fn suite_names_unique() {
        let mut names: Vec<String> = Mix::dual_core_suite()
            .iter()
            .chain(Mix::quad_core_suite().iter())
            .chain(Mix::eight_core_suite().iter())
            .map(|m| m.name().to_string())
            .collect();
        let n = names.len();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), n);
    }

    #[test]
    fn builder_accumulates() {
        let m = MixBuilder::new("b").add(SpecWorkload::McfLike).add(SpecWorkload::LbmLike).build();
        assert_eq!(m.workloads()[1], SpecWorkload::LbmLike);
    }

    #[test]
    #[should_panic(expected = "empty mix")]
    fn empty_mix_rejected() {
        let _ = MixBuilder::new("e").build();
    }

    #[test]
    fn display_lists_members() {
        let m = Mix::new("d", vec![SpecWorkload::McfLike]);
        assert_eq!(format!("{m}"), "d(mcf_like)");
    }
}
