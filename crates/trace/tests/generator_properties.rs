//! Property-based tests over the workload generators.

use nucache_common::CoreId;
use nucache_trace::{Behavior, SiteSpec, SpecWorkload, TraceGen, WorkloadSpec};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    /// Loop generators never leave their region and visit it completely.
    #[test]
    fn loop_stays_in_region(lines in 1u64..500, take in 1usize..2000) {
        let spec = WorkloadSpec::single_phase(
            "p",
            vec![SiteSpec::new(Behavior::Loop { lines }, 1)],
            (0, 0),
        );
        let mut seen = std::collections::HashSet::new();
        let mut min = u64::MAX;
        let mut max = 0;
        for a in TraceGen::new(&spec, CoreId::new(0), 1).take(take) {
            let l = a.addr.line(6).0;
            seen.insert(l);
            min = min.min(l);
            max = max.max(l);
        }
        prop_assert!(max - min < lines, "loop wandered outside its region");
        prop_assert!(seen.len() as u64 <= lines);
        if take as u64 >= lines {
            prop_assert_eq!(seen.len() as u64, lines, "full pass must cover the region");
        }
    }

    /// Random sites stay within their declared region too.
    #[test]
    fn random_stays_in_region(lines in 1u64..1000) {
        let spec = WorkloadSpec::single_phase(
            "p",
            vec![SiteSpec::new(Behavior::RandomUniform { lines }, 1)],
            (0, 0),
        );
        let base = TraceGen::new(&spec, CoreId::new(0), 2).next().unwrap().addr.line(6).0
            / (1 << 26)
            * (1 << 26);
        for a in TraceGen::new(&spec, CoreId::new(0), 2).take(500) {
            let offset = a.addr.line(6).0 - base;
            prop_assert!(offset < lines, "random access escaped: offset {offset} >= {lines}");
        }
    }

    /// Generator determinism holds for arbitrary multi-site specs.
    #[test]
    fn arbitrary_specs_deterministic(
        sizes in prop::collection::vec(1u64..300, 1..5),
        seed in any::<u64>(),
        gap_lo in 0u32..5,
        gap_span in 0u32..5,
    ) {
        let sites: Vec<SiteSpec> = sizes
            .iter()
            .enumerate()
            .map(|(i, &lines)| {
                let behavior = match i % 4 {
                    0 => Behavior::Loop { lines },
                    1 => Behavior::Stream { lines, stride: 1 + (i as u64 % 3) },
                    2 => Behavior::RandomUniform { lines },
                    _ => Behavior::PointerChase { lines },
                };
                SiteSpec::new(behavior, 1 + i as u32)
            })
            .collect();
        let spec = WorkloadSpec::single_phase("p", sites, (gap_lo, gap_lo + gap_span));
        let a: Vec<_> = TraceGen::new(&spec, CoreId::new(1), seed).take(300).collect();
        let b: Vec<_> = TraceGen::new(&spec, CoreId::new(1), seed).take(300).collect();
        prop_assert_eq!(a, b);
    }

    /// Every emitted access carries the right core, a gap within the
    /// declared range, and an MLP of at least 1.
    #[test]
    fn emitted_fields_valid(seed in any::<u64>(), core in 0u8..8) {
        let spec = SpecWorkload::McfLike.spec();
        for a in TraceGen::new(&spec, CoreId::new(core), seed).take(300) {
            prop_assert_eq!(a.core, CoreId::new(core));
            prop_assert!((spec.gap.0..=spec.gap.1).contains(&a.gap));
            prop_assert!(a.mlp >= 1);
        }
    }

    /// The block-batched generator is an amortization, not a new
    /// generator: `fill_block` must emit byte-identical streams to the
    /// per-access `Iterator` facade — across the whole roster, arbitrary
    /// seeds, and block sizes that do and don't divide phase lengths.
    #[test]
    fn fill_block_matches_iterator(
        seed in any::<u64>(),
        workload_idx in 0usize..SpecWorkload::ALL.len(),
        block in 1usize..129,
        blocks in 1usize..8,
    ) {
        let spec = SpecWorkload::ALL[workload_idx].spec();
        let total = block * blocks;
        let expected: Vec<_> =
            TraceGen::new(&spec, CoreId::new(2), seed).take(total).collect();
        let mut gen = TraceGen::new(&spec, CoreId::new(2), seed);
        let mut buf = vec![
            nucache_common::Access::new(
                CoreId::new(0),
                nucache_common::Pc::new(0),
                nucache_common::Addr::new(0),
                nucache_common::AccessKind::Read,
            );
            block
        ];
        let mut got = Vec::with_capacity(total);
        for _ in 0..blocks {
            gen.fill_block(&mut buf);
            got.extend_from_slice(&buf);
        }
        prop_assert_eq!(expected, got, "fill_block diverged from next()");
    }

    /// Distinct seeds virtually never produce identical 100-access
    /// prefixes for a stochastic workload.
    #[test]
    fn seeds_differentiate(seed in 0u64..10_000) {
        let spec = SpecWorkload::OmnetppLike.spec();
        let a: Vec<_> = TraceGen::new(&spec, CoreId::new(0), seed).take(100).collect();
        let b: Vec<_> = TraceGen::new(&spec, CoreId::new(0), seed + 1).take(100).collect();
        prop_assert_ne!(a, b);
    }
}

#[test]
fn all_roster_workloads_generate_within_spacing() {
    // Region spacing is 2^26 lines; no site may bleed into a neighbour's
    // region even across the full roster.
    for w in SpecWorkload::ALL {
        let spec = w.spec();
        for a in TraceGen::new(&spec, CoreId::new(0), 3).take(5_000) {
            let line = a.addr.line(6).0;
            let offset = line % (1 << 26);
            assert!(
                offset < (1 << 25),
                "{}: offset {offset:#x} suspiciously deep into a region",
                w.name()
            );
        }
    }
}
