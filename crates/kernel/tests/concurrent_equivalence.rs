//! Equivalence and linearizability checks for the concurrent sharded
//! front-end (`nucache_kernel::concurrent`):
//!
//! 1. **Bit-identity, 1 shard / 1 thread** — property test: a
//!    [`ConcurrentNucache`] with one shard in [`EpochMode::Inline`]
//!    must produce exactly the serial [`NucacheKernel`]'s outcomes on
//!    the same access stream — per-access hit/miss, cumulative
//!    counters, epoch count, chosen classes and selection objective
//!    (the style of `crates/core/tests/kernel_equivalence.rs`).
//! 2. **Deferred-selection identity** — property test: a kernel in
//!    deferred mode whose boundary snapshots are taken, computed
//!    off-kernel and installed before the next chosen-consulting
//!    operation matches the inline kernel bit-for-bit, including
//!    drained telemetry. This is the seam the background epoch thread
//!    relies on.
//! 3. **Linearizability smoke** — real threads over disjoint key
//!    ranges: every observed hit carries the exact value its owner put
//!    (so it was previously put and never torn or cross-wired), and a
//!    removed key stays gone until its owner re-puts it.

#![cfg(feature = "concurrent")]

use nucache_kernel::concurrent::{ConcurrentConfig, ConcurrentNucache, EpochMode};
use nucache_kernel::{InsertionClass, KernelConfig, NucacheKernel, SelectionStrategy};
use proptest::prelude::*;
use std::sync::Arc;

fn class(raw: u64) -> InsertionClass {
    InsertionClass::new(raw)
}

/// A serial-equivalent demand access against the concurrent front-end:
/// get, then put on miss. Returns whether it hit.
fn concurrent_access(cache: &ConcurrentNucache<u64>, key: u64, c: u64) -> bool {
    if cache.get(key, class(c)).is_some() {
        true
    } else {
        cache.put(key, class(c), key ^ 0xace);
        false
    }
}

/// The same demand access against a serial kernel.
fn serial_access(kernel: &mut NucacheKernel<u64>, key: u64, c: u64) -> bool {
    if kernel.get(key, class(c)).is_hit() {
        true
    } else {
        kernel.put(key, class(c), key ^ 0xace);
        false
    }
}

fn small_config(strategy: SelectionStrategy) -> KernelConfig {
    let mut config = KernelConfig::default()
        .with_sets(16)
        .with_ways(4)
        .with_deli_ways(2)
        .with_epoch_len(64)
        .with_strategy(strategy)
        .with_seed(7);
    config.monitor_shift = 0; // observe every set so epochs have evidence
    config
}

/// `(key, class)` streams biased toward reuse so epochs see real
/// delinquency, plus occasional removes.
fn stream() -> impl Strategy<Value = Vec<(u64, u64, bool)>> {
    prop::collection::vec((0u64..96, 0u64..6, prop::bool::weighted(0.05)), 1..600)
}

proptest! {
    // Shrunk under Miri to stay in interpreter-budget (CI convention).
    #![proptest_config(ProptestConfig::with_cases(if cfg!(miri) { 6 } else { 64 }))]

    /// Acceptance pin: 1 shard + 1 thread of the concurrent front-end
    /// is the serial kernel, bit for bit.
    #[test]
    fn one_shard_one_thread_is_bit_identical_to_serial(
        ops in stream(),
        cost_benefit in any::<bool>(),
    ) {
        let strategy =
            if cost_benefit { SelectionStrategy::CostBenefit } else { SelectionStrategy::StaticTopK(2) };
        let config = small_config(strategy);
        let cache: ConcurrentNucache<u64> = ConcurrentNucache::init(ConcurrentConfig {
            shards: 1,
            shard: config,
            epoch_mode: EpochMode::Inline,
        }).expect("valid config");
        let mut serial: NucacheKernel<u64> = NucacheKernel::init(config).expect("valid config");

        for &(key, c, remove) in &ops {
            prop_assert_eq!(cache.shard_of(key), 0, "one shard routes everything to 0");
            if remove {
                let a = cache.remove(key).map(|e| (e.key, e.value));
                let b = serial.remove(key).map(|e| (e.key, e.value));
                prop_assert_eq!(a, b, "remove outcome diverged");
            } else {
                let a = concurrent_access(&cache, key, c);
                let b = serial_access(&mut serial, key, c);
                prop_assert_eq!(a, b, "hit/miss diverged at key {}", key);
            }
        }

        let stats = cache.stats();
        prop_assert_eq!(stats.hits, serial.hits());
        prop_assert_eq!(stats.misses, serial.misses());
        prop_assert_eq!(stats.deli_hits, serial.deli_hits());
        prop_assert_eq!(stats.deli_fills, serial.deli_fills());
        prop_assert_eq!(stats.epochs, serial.epochs());
        prop_assert_eq!(stats.len, serial.len() as u64);
        let (chosen, last, accesses) = cache.with_shard(0, |shard| {
            (shard.chosen_classes(), shard.last_selection().clone(), shard.selection_accesses())
        });
        prop_assert_eq!(chosen, serial.chosen_classes());
        prop_assert_eq!(&last, serial.last_selection());
        prop_assert_eq!(accesses, serial.selection_accesses());
    }

    /// The deferred path (boundary snapshot → compute off-kernel →
    /// install), with the install driven before the next
    /// chosen-consulting operation, equals the inline path exactly —
    /// state, counters and telemetry.
    ///
    /// Promotion is disabled because a DeliWays-hit promotion inside the
    /// boundary access itself consults the chosen set before any
    /// external driver can install (see `install_selection`'s staleness
    /// contract); every other access path leaves a pump point.
    #[test]
    fn deferred_selection_matches_inline(ops in stream()) {
        let mut config = small_config(SelectionStrategy::CostBenefit);
        config.promote_on_deli_hit = false;
        config.deli_hit_refresh = true;
        let mut inline_k: NucacheKernel<u64> = NucacheKernel::init(config).expect("valid config");
        let mut deferred_k: NucacheKernel<u64> = NucacheKernel::init(config).expect("valid config");
        deferred_k.set_deferred_selection(true);
        inline_k.set_telemetry(true);
        deferred_k.set_telemetry(true);
        inline_k.enable_audit();
        deferred_k.enable_audit();

        let pump = |k: &mut NucacheKernel<u64>| {
            if let Some(inputs) = k.take_epoch_inputs() {
                let selection = inputs.compute();
                k.install_selection(inputs, selection);
            }
        };
        for &(key, c, remove) in &ops {
            if remove {
                let a = inline_k.remove(key).map(|e| (e.key, e.value));
                let b = deferred_k.remove(key).map(|e| (e.key, e.value));
                prop_assert_eq!(a, b);
            } else {
                let a = serial_access(&mut inline_k, key, c);
                // Same demand access, but the install lands between the
                // boundary get and the chosen-consulting put.
                let hit = deferred_k.get(key, class(c)).is_hit();
                pump(&mut deferred_k);
                if !hit {
                    deferred_k.put(key, class(c), key ^ 0xace);
                }
                prop_assert_eq!(a, hit, "hit/miss diverged at key {}", key);
            }
        }

        prop_assert_eq!(inline_k.hits(), deferred_k.hits());
        prop_assert_eq!(inline_k.misses(), deferred_k.misses());
        prop_assert_eq!(inline_k.deli_hits(), deferred_k.deli_hits());
        prop_assert_eq!(inline_k.deli_fills(), deferred_k.deli_fills());
        prop_assert_eq!(inline_k.epochs(), deferred_k.epochs());
        prop_assert_eq!(inline_k.chosen_classes(), deferred_k.chosen_classes());
        prop_assert_eq!(inline_k.last_selection(), deferred_k.last_selection());
        prop_assert_eq!(inline_k.selection_accesses(), deferred_k.selection_accesses());
        prop_assert_eq!(inline_k.drain_epochs(), deferred_k.drain_epochs());
        prop_assert_eq!(inline_k.epoch_checks(), deferred_k.epoch_checks());
    }
}

/// Value an owner thread stores for `key`: key-derived, so any observed
/// hit proves which put produced it.
fn owned_value(owner: u64, key: u64) -> u64 {
    key.wrapping_mul(0x9e37_79b9).wrapping_add(owner)
}

/// Multi-thread linearizability smoke: every observed hit was
/// previously put (it carries the owner's key-derived value) and not
/// yet evicted; a removed key misses until re-put.
#[test]
fn multi_thread_hits_are_previously_put_values() {
    const THREADS: u64 = 4;
    let keys_per_thread: u64 = if cfg!(miri) { 48 } else { 512 };
    let rounds: usize = if cfg!(miri) { 2 } else { 6 };

    let shard =
        KernelConfig::default().with_sets(256).with_ways(8).with_deli_ways(4).with_epoch_len(1024);
    let cache: Arc<ConcurrentNucache<u64>> =
        Arc::new(ConcurrentNucache::init(ConcurrentConfig::new(8, shard)).expect("valid config"));

    let workers: Vec<_> = (0..THREADS)
        .map(|owner| {
            let cache = Arc::clone(&cache);
            std::thread::spawn(move || {
                let base = owner * keys_per_thread;
                let c = class(owner);
                for round in 0..rounds {
                    for k in 0..keys_per_thread {
                        let key = base + k;
                        // Only the owner writes `key`, so a hit must
                        // carry exactly the owner's value.
                        match cache.get(key, c) {
                            Some(v) => assert_eq!(
                                v,
                                owned_value(owner, key),
                                "hit returned a value nobody put"
                            ),
                            None => {
                                cache.put(key, c, owned_value(owner, key));
                            }
                        }
                        // Neighbors' keys: reads must either miss or
                        // see the neighbor's exact value.
                        let neighbor = (owner + 1) % THREADS;
                        let nkey = neighbor * keys_per_thread + k;
                        if let Some(v) = cache.get_with(nkey, c, |v| *v) {
                            assert_eq!(v, owned_value(neighbor, nkey));
                        }
                    }
                    // Remove a slice of owned keys; until this thread
                    // re-puts them, nobody else will, so they must miss.
                    for k in (0..keys_per_thread).step_by(7) {
                        let key = base + k;
                        cache.remove(key);
                        assert!(
                            cache.get_with(key, c, |v| *v).is_none(),
                            "round {round}: removed key {key} still resident"
                        );
                    }
                }
            })
        })
        .collect();
    for w in workers {
        w.join().expect("no worker panics");
    }
    let stats = cache.stats();
    assert!(stats.hits > 0, "the smoke must actually observe hits");
    assert_eq!(stats.poison_recoveries, 0, "clean run must not poison");
}
