//! Kernel configuration: geometry, policy knobs and the selection
//! strategy, validated by [`NucacheKernel::init`](crate::NucacheKernel::init).

use core::fmt;

/// How the set of chosen insertion classes is computed each epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SelectionStrategy {
    /// The paper's mechanism: greedy cost-benefit maximization of expected
    /// DeliWays hits using Next-Use histograms.
    CostBenefit,
    /// Exhaustive subset search over the top candidates (the selection
    /// upper bound the greedy pass is compared against; exponential, so
    /// the candidate pool is capped — see
    /// [`KernelConfig::oracle_pool`]).
    Exhaustive,
    /// Always choose the `k` classes with the most misses, ignoring
    /// Next-Use information (ablation: shows delinquency alone is not
    /// enough).
    StaticTopK(usize),
    /// Choose `k` candidate classes uniformly at random each epoch
    /// (ablation lower bound).
    Random(usize),
    /// Never choose any class: DeliWays stay empty and the cache degrades
    /// to an LRU cache of MainWays associativity (worst case sanity
    /// bound).
    None,
}

impl fmt::Display for SelectionStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SelectionStrategy::CostBenefit => f.write_str("cost-benefit"),
            SelectionStrategy::Exhaustive => f.write_str("exhaustive"),
            SelectionStrategy::StaticTopK(k) => write!(f, "static-top-{k}"),
            SelectionStrategy::Random(k) => write!(f, "random-{k}"),
            SelectionStrategy::None => f.write_str("none"),
        }
    }
}

/// Default number of sets (a standalone mid-size design point).
pub const DEFAULT_SETS: usize = 1024;
/// Default ways per set (the 16-way baseline LLC of the paper).
pub const DEFAULT_WAYS: usize = 16;
/// Default DeliWays per set (half of the 16-way baseline).
pub const DEFAULT_DELI_WAYS: usize = 8;
/// Default accesses between class re-selections.
pub const DEFAULT_EPOCH_LEN: u64 = 100_000;
/// Default candidate pool per selection.
pub const DEFAULT_MAX_CANDIDATES: usize = 32;
/// Default candidate cap for the exhaustive selection oracle.
pub const DEFAULT_ORACLE_POOL: usize = 12;
/// Default monitor sampling: one set in `2^DEFAULT_MONITOR_SHIFT`.
pub const DEFAULT_MONITOR_SHIFT: u32 = 5;
/// Default entries per sampled monitor set.
pub const DEFAULT_MONITOR_DEPTH: usize = 64;
/// Default buckets per per-class Next-Use histogram.
pub const DEFAULT_HISTOGRAM_BUCKETS: usize = 32;

/// Configuration of a [`NucacheKernel`](crate::NucacheKernel).
///
/// The policy defaults are the design point of the simulator's headline
/// results (half the ways as DeliWays, 32 candidates, sampling 1 set in
/// 32, 100k-access epochs); `crates/sim/tests/config_contract.rs` pins
/// them against the simulator's `DEFAULT_*`/`BASELINE_*` constants.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelConfig {
    /// Number of sets; must be a power of two.
    pub sets: usize,
    /// Ways per set (1..=64).
    pub ways: usize,
    /// Ways per set reserved as DeliWays (the rest are MainWays; at
    /// least one MainWay must remain).
    pub deli_ways: usize,
    /// Accesses between class re-selections.
    pub epoch_len: u64,
    /// How many of the most-missing classes are candidates for selection.
    pub max_candidates: usize,
    /// Candidate-pool cap for [`SelectionStrategy::Exhaustive`].
    pub oracle_pool: usize,
    /// Next-Use monitor samples one set in `2^monitor_shift` (clamped so
    /// at least one set is sampled).
    pub monitor_shift: u32,
    /// Entries in each sampled set's eviction buffer.
    pub monitor_depth: usize,
    /// Buckets in each per-class Next-Use histogram (1..=64).
    pub histogram_buckets: usize,
    /// On a DeliWays hit, promote the entry back into the MainWays (MRU)
    /// instead of leaving it to age out of the FIFO.
    pub promote_on_deli_hit: bool,
    /// On a DeliWays hit without promotion, refresh the entry's FIFO
    /// position (move it to the tail) so actively reused entries are not
    /// dropped on schedule. Only meaningful when `promote_on_deli_hit`
    /// is off.
    pub deli_hit_refresh: bool,
    /// Selection strategy.
    pub strategy: SelectionStrategy,
    /// Seed for the stochastic strategies.
    pub seed: u64,
}

impl Default for KernelConfig {
    fn default() -> Self {
        KernelConfig {
            sets: DEFAULT_SETS,
            ways: DEFAULT_WAYS,
            deli_ways: DEFAULT_DELI_WAYS,
            epoch_len: DEFAULT_EPOCH_LEN,
            max_candidates: DEFAULT_MAX_CANDIDATES,
            oracle_pool: DEFAULT_ORACLE_POOL,
            monitor_shift: DEFAULT_MONITOR_SHIFT,
            monitor_depth: DEFAULT_MONITOR_DEPTH,
            histogram_buckets: DEFAULT_HISTOGRAM_BUCKETS,
            promote_on_deli_hit: true,
            deli_hit_refresh: false,
            strategy: SelectionStrategy::CostBenefit,
            seed: 0xcafe,
        }
    }
}

impl KernelConfig {
    /// Returns a copy with a different set count.
    #[must_use]
    pub fn with_sets(mut self, sets: usize) -> Self {
        self.sets = sets;
        self
    }

    /// Returns a copy with a different associativity.
    #[must_use]
    pub fn with_ways(mut self, ways: usize) -> Self {
        self.ways = ways;
        self
    }

    /// Returns a copy with a different DeliWays count.
    #[must_use]
    pub fn with_deli_ways(mut self, deli_ways: usize) -> Self {
        self.deli_ways = deli_ways;
        self
    }

    /// Returns a copy with a different epoch length.
    #[must_use]
    pub fn with_epoch_len(mut self, epoch_len: u64) -> Self {
        self.epoch_len = epoch_len;
        self
    }

    /// Returns a copy with a different selection strategy.
    #[must_use]
    pub fn with_strategy(mut self, strategy: SelectionStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Returns a copy with a different seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Validates the configuration ([`NucacheKernel::init`](crate::NucacheKernel::init)
    /// calls this; exposed so embedders can check untrusted configs
    /// without constructing).
    ///
    /// # Errors
    ///
    /// Returns the first [`ConfigError`] violated, if any.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.sets == 0 || !self.sets.is_power_of_two() {
            return Err(ConfigError::SetsNotPowerOfTwo(self.sets));
        }
        if self.ways == 0 || self.ways > 64 {
            return Err(ConfigError::WaysOutOfRange(self.ways));
        }
        if self.deli_ways >= self.ways {
            return Err(ConfigError::NoMainWays { ways: self.ways, deli_ways: self.deli_ways });
        }
        if self.epoch_len == 0 {
            return Err(ConfigError::ZeroEpochLen);
        }
        if self.max_candidates == 0 {
            return Err(ConfigError::ZeroCandidates);
        }
        if self.monitor_depth == 0 {
            return Err(ConfigError::ZeroMonitorDepth);
        }
        if self.histogram_buckets == 0 || self.histogram_buckets > 64 {
            return Err(ConfigError::HistogramBucketsOutOfRange(self.histogram_buckets));
        }
        if self.oracle_pool == 0 || self.oracle_pool > 20 {
            return Err(ConfigError::OraclePoolOutOfRange(self.oracle_pool));
        }
        Ok(())
    }
}

/// A rejected [`KernelConfig`], reported by [`KernelConfig::validate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigError {
    /// `sets` must be a non-zero power of two (set indexing is a mask).
    SetsNotPowerOfTwo(usize),
    /// `ways` must be in `1..=64` (occupancy is a 64-bit mask per set).
    WaysOutOfRange(usize),
    /// `deli_ways` must leave at least one MainWay.
    NoMainWays {
        /// Total ways per set.
        ways: usize,
        /// Requested DeliWays.
        deli_ways: usize,
    },
    /// `epoch_len` must be non-zero.
    ZeroEpochLen,
    /// `max_candidates` must be non-zero.
    ZeroCandidates,
    /// `monitor_depth` must be non-zero.
    ZeroMonitorDepth,
    /// `histogram_buckets` must be in `1..=64`.
    HistogramBucketsOutOfRange(usize),
    /// `oracle_pool` must be in `1..=20` (the exhaustive search is
    /// exponential in it).
    OraclePoolOutOfRange(usize),
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::SetsNotPowerOfTwo(s) => {
                write!(f, "sets must be a non-zero power of two, got {s}")
            }
            ConfigError::WaysOutOfRange(w) => write!(f, "ways must be in 1..=64, got {w}"),
            ConfigError::NoMainWays { ways, deli_ways } => write!(
                f,
                "deli_ways ({deli_ways}) must leave at least one MainWay of {ways} total ways"
            ),
            ConfigError::ZeroEpochLen => f.write_str("epoch_len must be non-zero"),
            ConfigError::ZeroCandidates => f.write_str("max_candidates must be non-zero"),
            ConfigError::ZeroMonitorDepth => f.write_str("monitor_depth must be non-zero"),
            ConfigError::HistogramBucketsOutOfRange(b) => {
                write!(f, "histogram_buckets must be in 1..=64, got {b}")
            }
            ConfigError::OraclePoolOutOfRange(p) => {
                write!(f, "oracle_pool must be in 1..=20, got {p}")
            }
        }
    }
}

#[cfg(feature = "std")]
impl std::error::Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;
    use alloc::format;

    #[test]
    fn default_validates() {
        KernelConfig::default().validate().expect("default config is valid");
    }

    #[test]
    fn builders_apply() {
        let c = KernelConfig::default()
            .with_sets(64)
            .with_ways(8)
            .with_deli_ways(4)
            .with_epoch_len(5)
            .with_strategy(SelectionStrategy::Random(3))
            .with_seed(9);
        assert_eq!((c.sets, c.ways, c.deli_ways, c.epoch_len), (64, 8, 4, 5));
        assert_eq!(c.strategy, SelectionStrategy::Random(3));
        assert_eq!(c.seed, 9);
        c.validate().expect("valid");
    }

    #[test]
    fn rejections() {
        let bad = |c: KernelConfig| c.validate().expect_err("must be rejected");
        assert_eq!(bad(KernelConfig::default().with_sets(48)), ConfigError::SetsNotPowerOfTwo(48));
        assert_eq!(bad(KernelConfig::default().with_ways(0)), ConfigError::WaysOutOfRange(0));
        assert_eq!(bad(KernelConfig::default().with_ways(65)), ConfigError::WaysOutOfRange(65));
        assert_eq!(
            bad(KernelConfig::default().with_ways(8).with_deli_ways(8)),
            ConfigError::NoMainWays { ways: 8, deli_ways: 8 }
        );
        assert_eq!(bad(KernelConfig::default().with_epoch_len(0)), ConfigError::ZeroEpochLen);
        let c = KernelConfig { histogram_buckets: 65, ..KernelConfig::default() };
        assert_eq!(bad(c), ConfigError::HistogramBucketsOutOfRange(65));
        let c = KernelConfig { oracle_pool: 21, ..KernelConfig::default() };
        assert_eq!(bad(c), ConfigError::OraclePoolOutOfRange(21));
    }

    #[test]
    fn strategy_display() {
        assert_eq!(format!("{}", SelectionStrategy::CostBenefit), "cost-benefit");
        assert_eq!(format!("{}", SelectionStrategy::StaticTopK(5)), "static-top-5");
        assert_eq!(format!("{}", SelectionStrategy::Random(2)), "random-2");
        assert_eq!(format!("{}", SelectionStrategy::Exhaustive), "exhaustive");
        assert_eq!(format!("{}", SelectionStrategy::None), "none");
    }
}
