//! Cost-benefit class selection.
//!
//! Given the epoch's delinquent-class candidates, their measured fill
//! (miss) counts, and their Next-Use histograms, choose the subset of
//! classes whose entries should be admitted into the DeliWays.
//!
//! The trade-off: with `D` DeliWays per set and a chosen set `S` whose
//! members fill at a combined rate of `r(S)` fills per set-access, the
//! FIFO grants each admitted entry an extra lifetime of about `D / r(S)`
//! set-accesses. A class's benefit is its Next-Use histogram mass at or
//! below that lifetime — evictions that would have been re-requested in
//! time. Adding a class adds its benefit but raises `r(S)`, shrinking
//! the lifetime for everyone; the selection maximizes the *total*
//! expected DeliWays hits.

use crate::config::SelectionStrategy;
use alloc::collections::BTreeMap;
use alloc::vec::Vec;
use core::fmt::Debug;
use nucache_common::{DetRng, Log2Histogram};

/// One candidate class presented to the selector.
#[derive(Debug, Clone)]
pub struct Candidate<C> {
    /// The insertion class.
    pub class: C,
    /// Fills (misses) attributed to the class this epoch.
    pub fills: u64,
    /// Next-Use histogram measured for the class (distances in
    /// set-accesses), if the monitor captured any.
    pub histogram: Option<Log2Histogram>,
}

/// Outcome of a selection pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Selection<C> {
    /// The chosen classes.
    pub chosen: Vec<C>,
    /// Expected DeliWays hits per epoch for the chosen set (the
    /// objective value; 0 for the non-analytic strategies).
    pub expected_hits: u64,
    /// The extra lifetime (set-accesses) the chosen set enjoys.
    pub extra_lifetime: u64,
}

/// Expected extra lifetime for a combined fill count, given the epoch's
/// sampled set-accesses and the DeliWays depth.
///
/// `fills` and `accesses` must be measured over the same window (the
/// monitor's sampled sets); the result is in set-accesses.
fn extra_lifetime(deli_ways: usize, fills: u64, accesses: u64) -> u64 {
    if fills == 0 {
        return u64::MAX;
    }
    // lifetime = D / (fills per set-access) = D * accesses / fills
    (deli_ways as u64).saturating_mul(accesses) / fills
}

/// Objective: expected DeliWays hits for subset `idx` of `candidates`.
fn expected_hits<C>(
    candidates: &[Candidate<C>],
    idx: &[usize],
    deli_ways: usize,
    accesses: u64,
) -> (u64, u64) {
    let fills: u64 = idx.iter().map(|&i| candidates[i].fills).sum();
    let life = extra_lifetime(deli_ways, fills, accesses);
    let hits =
        idx.iter().map(|&i| candidates[i].histogram.as_ref().map_or(0, |h| h.count_le(life))).sum();
    (hits, life)
}

/// Recomputes the selection objective for an explicit chosen class set.
///
/// The audit oracle uses this to cross-check a [`Selection`] produced by
/// the analytic strategies: re-deriving `(expected_hits, extra_lifetime)`
/// for `selection.chosen` from the same candidates must reproduce the
/// values the strategy reported.
///
/// Returns `None` when a chosen class is not among the candidates
/// (itself an invariant violation the caller reports).
pub fn evaluate_chosen<C: Copy + Ord>(
    candidates: &[Candidate<C>],
    chosen: &[C],
    deli_ways: usize,
    accesses: u64,
) -> Option<(u64, u64)> {
    let idx: Vec<usize> = chosen
        .iter()
        .map(|class| candidates.iter().position(|c| c.class == *class))
        .collect::<Option<_>>()?;
    Some(expected_hits(candidates, &idx, deli_ways, accesses))
}

/// Runs the configured selection strategy.
///
/// `accesses` is the number of set-accesses observed by the monitor over
/// the same window as the candidates' `fills` (both come from the
/// sampled sets, so their ratio is the per-set fill rate).
///
/// # Examples
///
/// ```
/// use nucache_kernel::selector::{select_classes, Candidate};
/// use nucache_kernel::{InsertionClass, SelectionStrategy};
/// use nucache_common::Log2Histogram;
///
/// let mut h = Log2Histogram::new(16);
/// h.record_n(10, 100); // reused soon after eviction
/// let c = InsertionClass::new(1);
/// let cands = vec![Candidate { class: c, fills: 50, histogram: Some(h) }];
/// let sel = select_classes(&cands, 8, 10_000, SelectionStrategy::CostBenefit, 0);
/// assert_eq!(sel.chosen, vec![c]);
/// ```
pub fn select_classes<C: Copy + Ord + Debug>(
    candidates: &[Candidate<C>],
    deli_ways: usize,
    accesses: u64,
    strategy: SelectionStrategy,
    seed: u64,
) -> Selection<C> {
    match strategy {
        SelectionStrategy::CostBenefit => greedy_cost_benefit(candidates, deli_ways, accesses),
        SelectionStrategy::Exhaustive => exhaustive(candidates, deli_ways, accesses),
        SelectionStrategy::StaticTopK(k) => {
            let mut by_fills: Vec<usize> = (0..candidates.len()).collect();
            by_fills.sort_by(|&a, &b| {
                candidates[b]
                    .fills
                    .cmp(&candidates[a].fills)
                    .then(candidates[a].class.cmp(&candidates[b].class))
            });
            let idx: Vec<usize> = by_fills.into_iter().take(k).collect();
            let (hits, life) = expected_hits(candidates, &idx, deli_ways, accesses);
            Selection {
                chosen: idx.iter().map(|&i| candidates[i].class).collect(),
                expected_hits: hits,
                extra_lifetime: life,
            }
        }
        SelectionStrategy::Random(k) => {
            let mut rng = DetRng::substream(seed, 0x5e1ec7);
            let mut idx: Vec<usize> = (0..candidates.len()).collect();
            rng.shuffle(&mut idx);
            idx.truncate(k);
            idx.sort_unstable();
            let (hits, life) = expected_hits(candidates, &idx, deli_ways, accesses);
            Selection {
                chosen: idx.iter().map(|&i| candidates[i].class).collect(),
                expected_hits: hits,
                extra_lifetime: life,
            }
        }
        SelectionStrategy::None => {
            Selection { chosen: Vec::new(), expected_hits: 0, extra_lifetime: 0 }
        }
    }
}

/// The paper's mechanism: grow the chosen set greedily, accepting the
/// class that maximizes total expected hits, until no addition improves
/// it.
fn greedy_cost_benefit<C: Copy + Ord>(
    candidates: &[Candidate<C>],
    deli_ways: usize,
    accesses: u64,
) -> Selection<C> {
    let mut chosen_idx: Vec<usize> = Vec::new();
    let mut best_hits = 0u64;
    let mut best_life = 0u64;
    loop {
        let mut best_add: Option<(u64, u64, usize)> = None;
        for i in 0..candidates.len() {
            if chosen_idx.contains(&i) {
                continue;
            }
            let mut trial = chosen_idx.clone();
            trial.push(i);
            let (hits, life) = expected_hits(candidates, &trial, deli_ways, accesses);
            let better = match best_add {
                None => hits > best_hits,
                Some((bh, _, bi)) => {
                    hits > bh || (hits == bh && candidates[i].class < candidates[bi].class)
                }
            };
            if better {
                best_add = Some((hits, life, i));
            }
        }
        match best_add {
            Some((hits, life, i)) if hits > best_hits => {
                chosen_idx.push(i);
                best_hits = hits;
                best_life = life;
            }
            _ => break,
        }
    }
    chosen_idx.sort_unstable();
    Selection {
        chosen: chosen_idx.iter().map(|&i| candidates[i].class).collect(),
        expected_hits: best_hits,
        extra_lifetime: best_life,
    }
}

/// Exhaustive subset search (selection upper bound for the ablation).
/// Exponential in the candidate count — callers cap the pool.
fn exhaustive<C: Copy + Ord>(
    candidates: &[Candidate<C>],
    deli_ways: usize,
    accesses: u64,
) -> Selection<C> {
    let n = candidates.len().min(20);
    let mut best: (u64, u64, u32) = (0, 0, 0); // (hits, life, mask)
    for mask in 1u32..(1 << n) {
        let idx: Vec<usize> = (0..n).filter(|&i| mask & (1 << i) != 0).collect();
        let (hits, life) = expected_hits(candidates, &idx, deli_ways, accesses);
        if hits > best.0 {
            best = (hits, life, mask);
        }
    }
    let idx: Vec<usize> = (0..n).filter(|&i| best.2 & (1 << i) != 0).collect();
    Selection {
        chosen: idx.iter().map(|&i| candidates[i].class).collect(),
        expected_hits: best.0,
        extra_lifetime: best.1,
    }
}

/// Builds candidates from the tracker's top classes and the monitor's
/// histograms (the glue the kernel uses each epoch).
pub fn build_candidates<C: Copy + Ord>(
    top: &[(C, u64)],
    histograms: &BTreeMap<C, Log2Histogram>,
) -> Vec<Candidate<C>> {
    top.iter()
        .map(|&(class, fills)| Candidate {
            class,
            fills,
            histogram: histograms.get(&class).cloned(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::InsertionClass;
    use alloc::vec;

    fn hist(dist: u64, n: u64) -> Option<Log2Histogram> {
        let mut h = Log2Histogram::new(24);
        h.record_n(dist, n);
        Some(h)
    }

    fn cand(class: u64, fills: u64, h: Option<Log2Histogram>) -> Candidate<InsertionClass> {
        Candidate { class: InsertionClass::new(class), fills, histogram: h }
    }

    fn class(raw: u64) -> InsertionClass {
        InsertionClass::new(raw)
    }

    #[test]
    fn selects_reusable_class_rejects_stream() {
        // Class 1: 1000 fills, reused 60 set-accesses after eviction.
        // Class 2: a stream — 2000 fills, never reused (no histogram).
        let c = vec![cand(1, 1000, hist(60, 900)), cand(2, 2000, None)];
        let sel = select_classes(&c, 8, 100_000, SelectionStrategy::CostBenefit, 0);
        assert_eq!(sel.chosen, vec![class(1)]);
        assert_eq!(sel.expected_hits, 900);
    }

    #[test]
    fn greedy_matches_exhaustive_on_small_pools() {
        let c = vec![
            cand(1, 800, hist(100, 700)),
            cand(2, 1200, hist(300, 900)),
            cand(3, 5000, hist(20_000, 2_000)),
            cand(4, 300, hist(40, 250)),
        ];
        let g = select_classes(&c, 8, 200_000, SelectionStrategy::CostBenefit, 0);
        let o = select_classes(&c, 8, 200_000, SelectionStrategy::Exhaustive, 0);
        assert!(g.expected_hits <= o.expected_hits);
        assert_eq!(g.expected_hits, o.expected_hits);
    }

    #[test]
    fn static_and_random_strategies_have_expected_sizes() {
        let c: Vec<Candidate<InsertionClass>> =
            (0..10).map(|i| cand(i, 100 + i, hist(50, 50))).collect();
        let s = select_classes(&c, 8, 10_000, SelectionStrategy::StaticTopK(3), 0);
        assert_eq!(s.chosen.len(), 3);
        assert_eq!(s.chosen[0], class(9), "top-k orders by fills");
        let r = select_classes(&c, 8, 10_000, SelectionStrategy::Random(4), 1);
        assert_eq!(r.chosen.len(), 4);
        let r2 = select_classes(&c, 8, 10_000, SelectionStrategy::Random(4), 1);
        assert_eq!(r.chosen, r2.chosen, "random selection is seed-deterministic");
        let n = select_classes(&c, 8, 10_000, SelectionStrategy::None, 0);
        assert!(n.chosen.is_empty());
    }

    #[test]
    fn evaluate_chosen_reproduces_selection_objective() {
        let c = vec![
            cand(1, 800, hist(100, 700)),
            cand(2, 1200, hist(300, 900)),
            cand(4, 300, hist(40, 250)),
        ];
        let sel = select_classes(&c, 8, 200_000, SelectionStrategy::CostBenefit, 0);
        assert!(!sel.chosen.is_empty());
        assert_eq!(
            evaluate_chosen(&c, &sel.chosen, 8, 200_000),
            Some((sel.expected_hits, sel.extra_lifetime))
        );
        assert_eq!(evaluate_chosen(&c, &[class(99)], 8, 200_000), None, "unknown class");
    }

    #[test]
    fn zero_fills_means_infinite_lifetime() {
        let c = vec![cand(1, 0, hist(1_000_000, 10))];
        let sel = select_classes(&c, 8, 1000, SelectionStrategy::CostBenefit, 0);
        assert_eq!(sel.chosen, vec![class(1)]);
    }
}
