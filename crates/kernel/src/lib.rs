//! An embeddable NUcache kernel: set-associative caching with
//! Next-Use-driven selective retention, usable from any Rust program
//! (including `no_std + alloc` targets).
//!
//! This crate is the mechanism of *NUcache: An efficient multicore
//! cache organization based on Next-Use distance* (Manikantan,
//! Rajan & Govindarajan, HPCA 2011), factored out of the simulator in
//! this workspace and re-keyed for software caches: where the hardware
//! design classifies cache lines by the program counter of the missing
//! load, the library accepts an opaque [`InsertionClass`] chosen by the
//! caller — a tenant id, an endpoint/query template, an object type.
//!
//! # The mechanism
//!
//! Each cache set's ways are split in two:
//!
//! - **MainWays** — ordinary LRU ways. Every insertion lands here.
//! - **DeliWays** — a FIFO region that *retains* entries evicted from
//!   the MainWays, but only entries whose insertion class is currently
//!   *chosen*.
//!
//! The bet is the paper's DelinquentPC observation: a handful of
//! insertion sources produce most misses, and for some of those
//! sources the evicted entries come back soon ("near" Next-Use
//! distance). Retaining exactly those classes converts their misses to
//! hits at far lower cost than growing the whole cache.
//!
//! # Epoch flow
//!
//! Learning happens in epochs of [`KernelConfig::epoch_len`] accesses:
//!
//! 1. **Observe.** During the epoch, a [`DelinquentTracker`] counts
//!    misses per class, and a sampled [`NextUseMonitor`] measures
//!    Next-Use distances: in one set out of `2^monitor_shift`, each
//!    MainWays eviction is buffered, and when the evicted key is
//!    requested again the elapsed set-access count is recorded into the
//!    evicting class's log2 histogram.
//! 2. **Select.** At the epoch boundary the top classes by combined
//!    fills (misses + DeliWays insertions) become candidates. The
//!    cost-benefit selector estimates, for each candidate mix, the
//!    *extra lifetime* the DeliWays would grant (`deli_ways ×
//!    accesses / fills`) and counts the histogram mass with Next-Use
//!    distance within that lifetime — the expected extra hits. The
//!    best mix becomes the chosen set ([`SelectionStrategy`] offers
//!    greedy cost-benefit, an exhaustive oracle, and baselines).
//! 3. **Decay.** Tracker counts, histograms and window denominators
//!    halve, so selection adapts to phase changes while keeping
//!    history.
//!
//! Between epochs the data path is cheap: a MainWays hit touches an
//! LRU stamp and allocates nothing.
//!
//! # Quickstart
//!
//! ```
//! use nucache_kernel::{InsertionClass, KernelConfig, Lookup, NucacheKernel};
//!
//! // 64 sets x 8 ways, 4 of which retain evictions of chosen classes.
//! let config = KernelConfig::default()
//!     .with_sets(64)
//!     .with_ways(8)
//!     .with_deli_ways(4);
//! let mut cache: NucacheKernel<String> = NucacheKernel::init(config)?;
//!
//! // Classify insertions by their source; here, per tenant.
//! let tenant_a = InsertionClass::new(1);
//! let tenant_b = InsertionClass::new(2);
//!
//! let key = 0xdead_beef;
//! match cache.get(key, tenant_a) {
//!     Lookup::Hit { value, .. } => println!("hit: {value}"),
//!     Lookup::Miss => {
//!         // The kernel recorded the miss for selection; the caller
//!         // decides whether to insert (demand-fill policy).
//!         let fetched = "expensive result".to_string();
//!         cache.put(key, tenant_a, fetched);
//!     }
//! }
//! cache.put(0x42, tenant_b, "other tenant".to_string());
//! assert!(cache.get(key, tenant_a).is_hit());
//! cache.remove(0x42);
//! # Ok::<(), nucache_kernel::ConfigError>(())
//! ```
//!
//! Keys are plain `u64`s: the low `log2(sets)` bits pick the set, the
//! rest are the tag, so any stable unique id works (a line address, an
//! object id, a hash of a URL).
//!
//! # Choosing insertion classes
//!
//! Selection quality depends on classes that separate reuse behaviour;
//! see [`InsertionClass`] for a classification guide with examples and
//! anti-patterns.
//!
//! # Features
//!
//! - `std` *(default)* — implements [`std::error::Error`] for
//!   [`ConfigError`]. Disable for `no_std + alloc` embedding:
//!   `default-features = false`.
//! - `concurrent` *(default, implies `std`)* — the sharded thread-safe
//!   front-end ([`concurrent::ConcurrentNucache`]): keys hash to one of
//!   N independently locked kernels, and a background epoch driver runs
//!   each shard's cost-benefit selection outside the shard lock.
//!
//! # Observability
//!
//! [`NucacheKernel::set_telemetry`] buffers an [`EpochSummary`] per
//! selection epoch (chosen classes, objective values, per-class
//! Next-Use quantiles); [`NucacheKernel::enable_audit`] turns on a
//! differential oracle that mirrors every array operation into a naive
//! residency model and checks epoch invariants, panicking at the first
//! divergence.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![cfg_attr(not(feature = "std"), no_std)]

extern crate alloc;

pub mod class;
#[cfg(feature = "concurrent")]
pub mod concurrent;
pub mod config;
pub mod kernel;
pub mod monitor;
pub mod selector;
pub mod tracker;

pub use class::InsertionClass;
pub use config::{
    ConfigError, KernelConfig, SelectionStrategy, DEFAULT_DELI_WAYS, DEFAULT_EPOCH_LEN,
    DEFAULT_HISTOGRAM_BUCKETS, DEFAULT_MAX_CANDIDATES, DEFAULT_MONITOR_DEPTH,
    DEFAULT_MONITOR_SHIFT, DEFAULT_ORACLE_POOL, DEFAULT_SETS, DEFAULT_WAYS,
};
pub use kernel::{
    ClassSnapshot, EpochInputs, EpochSummary, Evicted, Lookup, NucacheKernel, Region,
};
pub use monitor::NextUseMonitor;
pub use selector::{build_candidates, evaluate_chosen, select_classes, Candidate, Selection};
pub use tracker::DelinquentTracker;
