//! Insertion classes: the caller-defined generalization of the paper's
//! "delinquent PC".
//!
//! NUcache retains evicted lines in the DeliWays only when they were
//! inserted by one of the currently *chosen* classes. Inside the
//! simulator the class of a fill is the program counter of the missing
//! load; an embedding application instead supplies any stable label
//! whose members share a reuse pattern. See the type-level docs for a
//! classification guide.

use core::fmt;

/// An opaque insertion-class tag supplied by the caller on every
/// [`get`](crate::NucacheKernel::get) and
/// [`put`](crate::NucacheKernel::put).
///
/// The class plays the role of the delinquent PC in the original
/// hardware design: the kernel tracks misses, fills and Next-Use
/// distances *per class*, and each epoch chooses the subset of classes
/// whose evicted entries are worth keeping around in the DeliWays.
/// Classes are never interpreted — only counted, compared and grouped —
/// so any `u64` encoding works.
///
/// # Choosing a classification
///
/// The mechanism works when a class groups entries with a *shared reuse
/// pattern*: either its entries tend to be re-requested shortly after
/// eviction (worth retaining) or they do not (worth bypassing). Good
/// classifications in a serving context:
///
/// * **Per tenant** — multi-tenant caches where each tenant's traffic
///   has its own temporal locality: `InsertionClass::new(tenant_id)`.
///   A scanning tenant stops polluting the retention space of a looping
///   tenant.
/// * **Per endpoint / query template** — requests produced by the same
///   handler or prepared statement usually touch their working set the
///   same way: `InsertionClass::new(hash(endpoint_name))`.
/// * **Per object type** — e.g. thumbnails vs. session blobs vs. feed
///   entries in a CDN or object cache: `InsertionClass::new(type_tag)`.
///
/// Poor classifications defeat the selection: one class for everything
/// (nothing to discriminate), or a unique class per key (no class
/// accumulates enough Next-Use evidence before it decays).
///
/// # Examples
///
/// ```
/// use nucache_kernel::InsertionClass;
///
/// let tenant_7 = InsertionClass::new(7);
/// assert_eq!(tenant_7.raw(), 7);
/// assert_eq!(InsertionClass::from(7u64), tenant_7);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct InsertionClass(u64);

impl InsertionClass {
    /// Wraps a raw class tag.
    #[inline]
    pub const fn new(raw: u64) -> Self {
        InsertionClass(raw)
    }

    /// The raw tag value.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl From<u64> for InsertionClass {
    fn from(raw: u64) -> Self {
        InsertionClass(raw)
    }
}

impl fmt::Display for InsertionClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "class:{:#x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alloc::format;

    #[test]
    fn round_trips_and_orders() {
        let a = InsertionClass::new(3);
        let b = InsertionClass::from(9u64);
        assert!(a < b);
        assert_eq!(b.raw(), 9);
        assert_eq!(format!("{a}"), "class:0x3");
    }
}
