//! A concurrent sharded front-end over [`NucacheKernel`].
//!
//! The kernel itself is a single-threaded state machine: every access
//! mutates replacement state, so wrapping one kernel in a lock
//! serializes the entire cache. This module shards the key space over
//! `N` independent kernels — each with its own Next-Use monitor,
//! delinquency tracker and epoch selection — and routes each key to its
//! shard with the division-free [`FastRange`] reduction over a
//! [`mix64`]-avalanched key. The mix matters: the kernel indexes its
//! set array with the key's low bits, so routing on raw key bits would
//! correlate shard choice with set index and skew per-shard occupancy.
//!
//! # Epoch protocol
//!
//! The selection *computation* is the expensive epoch task (it scales
//! with `candidates × deli_ways × buckets` and is exponential for the
//! exhaustive oracle), so [`EpochMode::Deferred`] moves it off the
//! request path: shards run with
//! [deferred selection](NucacheKernel::set_deferred_selection) — the
//! access that crosses the epoch boundary snapshots the selection
//! inputs and decays the window, exactly as inline would, but skips the
//! computation — and a driver ([`EpochThread`] or an explicit
//! [`pump_epochs`] call) sweeps the shards:
//!
//! 1. lock the shard, [take](NucacheKernel::take_epoch_inputs) the
//!    pending snapshot (an `Option::take`), unlock;
//! 2. [compute](EpochInputs::compute) the selection **without the
//!    lock** — request threads keep hitting the shard;
//! 3. relock briefly and [install](NucacheKernel::install_selection)
//!    the new chosen set.
//!
//! Readers never wait on the selection computation; the only added
//! critical section is the O(chosen) install swap. Between the boundary
//! snapshot and the install the shard simply keeps using the previous
//! chosen set.
//! [`EpochMode::Inline`] keeps the kernel's default behavior (the
//! boundary access runs selection under the shard lock) and is
//! bit-identical to a serial kernel per shard — the equivalence tests
//! pin that.
//!
//! # Poisoned-shard recovery
//!
//! A request-thread panic while holding a shard lock (in practice: a
//! caller closure passed to [`get_with`](ConcurrentNucache::get_with),
//! or an injected fault in the load generator) poisons that shard's
//! mutex. Kernel methods themselves do not panic on the access path —
//! the `panic-in-hot-path` audit gate enforces that contract — so the
//! kernel behind a poisoned lock is still consistent and the front-end
//! recovers it with [`std::sync::PoisonError::into_inner`], counting
//! each recovery
//! in [`poison_recoveries`](ConcurrentNucache::poison_recoveries).
//! Batch-level isolation (catching the panic, abandoning the batch,
//! moving on) is the caller's job; the load generator in
//! `crates/bench` demonstrates it.
//!
//! [`pump_epochs`]: ConcurrentNucache::pump_epochs

use crate::config::{ConfigError, KernelConfig};
use crate::kernel::{EpochInputs, Evicted, Lookup, NucacheKernel};
use core::fmt::Debug;
use nucache_common::rng::{mix64, FastRange};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::Duration;

/// When the per-shard selection epochs run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EpochMode {
    /// The kernel default: the access that crosses the epoch boundary
    /// runs selection inline, under the shard lock. Per shard this is
    /// bit-identical to a serial [`NucacheKernel`].
    Inline,
    /// Selection is deferred: the boundary access snapshots the
    /// selection inputs, and a driver ([`EpochThread`] or
    /// [`ConcurrentNucache::pump_epochs`]) computes the selection
    /// outside the shard lock and installs the result.
    Deferred,
}

/// Configuration for [`ConcurrentNucache::init`].
#[derive(Debug, Clone, Copy)]
pub struct ConcurrentConfig {
    /// Number of independent shards (≥ 1). Each shard holds
    /// `shard.sets × shard.ways` entries, so total capacity scales with
    /// the shard count.
    pub shards: usize,
    /// The per-shard kernel configuration.
    pub shard: KernelConfig,
    /// When selection epochs run.
    pub epoch_mode: EpochMode,
}

impl ConcurrentConfig {
    /// A deferred-epoch configuration with `shards` shards.
    pub fn new(shards: usize, shard: KernelConfig) -> Self {
        ConcurrentConfig { shards, shard, epoch_mode: EpochMode::Deferred }
    }
}

/// Aggregated counters over every shard, via
/// [`ConcurrentNucache::stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ConcurrentStats {
    /// Lookups that hit, summed over shards.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Hits satisfied from DeliWays.
    pub deli_hits: u64,
    /// Entries moved into DeliWays.
    pub deli_fills: u64,
    /// Selection epochs completed, summed over shards.
    pub epochs: u64,
    /// Resident entries.
    pub len: u64,
    /// Poisoned-shard locks recovered via `PoisonError::into_inner`.
    pub poison_recoveries: u64,
}

/// A sharded, thread-safe NUcache front-end. See the [module
/// docs](self) for the shard layout, epoch protocol and poison
/// recovery.
///
/// # Examples
///
/// ```
/// use nucache_kernel::concurrent::{ConcurrentConfig, ConcurrentNucache};
/// use nucache_kernel::{InsertionClass, KernelConfig};
///
/// let shard = KernelConfig::default().with_sets(64).with_ways(8).with_deli_ways(4);
/// let cache: ConcurrentNucache<String> =
///     ConcurrentNucache::init(ConcurrentConfig::new(4, shard))?;
/// let tenant = InsertionClass::new(1);
/// assert_eq!(cache.get(7, tenant), None);
/// cache.put(7, tenant, "payload".to_string());
/// assert_eq!(cache.get(7, tenant).as_deref(), Some("payload"));
/// # Ok::<(), nucache_kernel::ConfigError>(())
/// ```
#[derive(Debug)]
pub struct ConcurrentNucache<V, C = crate::InsertionClass> {
    shards: Vec<Mutex<NucacheKernel<V, C>>>,
    /// Precomputed `key_hash % shards` reduction.
    route: FastRange,
    epoch_mode: EpochMode,
    poison_recoveries: AtomicU64,
}

impl<V, C: Copy + Ord + Debug> ConcurrentNucache<V, C> {
    /// Builds a sharded cache from a validated configuration.
    ///
    /// # Errors
    ///
    /// Returns the first [`ConfigError`] the per-shard configuration
    /// violates.
    ///
    /// # Panics
    ///
    /// Panics if `config.shards` is 0.
    pub fn init(config: ConcurrentConfig) -> Result<Self, ConfigError> {
        assert!(config.shards >= 1, "shard count must be at least 1");
        let mut shards = Vec::with_capacity(config.shards);
        for _ in 0..config.shards {
            let mut kernel = NucacheKernel::init(config.shard)?;
            if config.epoch_mode == EpochMode::Deferred {
                kernel.set_deferred_selection(true);
            }
            shards.push(Mutex::new(kernel));
        }
        Ok(ConcurrentNucache {
            shards,
            route: FastRange::below(config.shards as u64),
            epoch_mode: config.epoch_mode,
            poison_recoveries: AtomicU64::new(0),
        })
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard `key` routes to: the [`FastRange`] reduction of the
    /// [`mix64`]-avalanched key.
    pub fn shard_of(&self, key: u64) -> usize {
        self.route.reduce(mix64(key)) as usize
    }

    /// Locks shard `i`, recovering (and counting) a poisoned lock. The
    /// kernel behind a poisoned lock is consistent because kernel
    /// methods do not panic on the access path (see the module docs).
    fn lock_shard(&self, i: usize) -> MutexGuard<'_, NucacheKernel<V, C>> {
        match self.shards[i].lock() {
            Ok(guard) => guard,
            Err(poisoned) => {
                self.poison_recoveries.fetch_add(1, Ordering::Relaxed);
                poisoned.into_inner()
            }
        }
    }

    /// Looks up `key`, cloning the stored value out of the shard so the
    /// lock is released before the caller touches it. Advances the
    /// shard's replacement, monitor and epoch state exactly like
    /// [`NucacheKernel::get`].
    pub fn get(&self, key: u64, class: C) -> Option<V>
    where
        V: Clone,
    {
        self.get_with(key, class, |v| v.clone())
    }

    /// Looks up `key` and applies `f` to the stored value under the
    /// shard lock (zero-copy reads, in-place updates). If `f` panics the
    /// shard lock is poisoned; the next access recovers it (see the
    /// module docs on poison recovery).
    pub fn get_with<R>(&self, key: u64, class: C, f: impl FnOnce(&mut V) -> R) -> Option<R> {
        let mut shard = self.lock_shard(self.shard_of(key));
        match shard.get(key, class) {
            Lookup::Hit { value, .. } => Some(f(value)),
            Lookup::Miss => None,
        }
    }

    /// Inserts `key` with `class` and `value`, returning the entry that
    /// left the cache, if any (semantics of [`NucacheKernel::put`]).
    pub fn put(&self, key: u64, class: C, value: V) -> Option<Evicted<V, C>> {
        self.lock_shard(self.shard_of(key)).put(key, class, value)
    }

    /// Removes `key` if resident (semantics of
    /// [`NucacheKernel::remove`]).
    pub fn remove(&self, key: u64) -> Option<Evicted<V, C>> {
        self.lock_shard(self.shard_of(key)).remove(key)
    }

    /// Whether `key` is resident, without perturbing any shard state.
    pub fn contains(&self, key: u64) -> bool {
        self.lock_shard(self.shard_of(key)).contains(key)
    }

    /// Runs one epoch sweep: for every shard with a
    /// [due](NucacheKernel::selection_due) deferred selection, takes the
    /// epoch inputs, computes the selection *outside* the shard lock and
    /// installs it. Returns the number of selections installed.
    ///
    /// A no-op (returns 0) in [`EpochMode::Inline`].
    pub fn pump_epochs(&self) -> usize {
        let mut installed = 0;
        for i in 0..self.shards.len() {
            let inputs: Option<EpochInputs<C>> = self.lock_shard(i).take_epoch_inputs();
            let Some(inputs) = inputs else { continue };
            // The expensive part runs with no lock held; request
            // threads keep hitting this shard against the old chosen
            // set.
            let selection = inputs.compute();
            self.lock_shard(i).install_selection(inputs, selection);
            installed += 1;
        }
        installed
    }

    /// The configured epoch mode.
    pub const fn epoch_mode(&self) -> EpochMode {
        self.epoch_mode
    }

    /// Poisoned shard locks recovered so far.
    pub fn poison_recoveries(&self) -> u64 {
        self.poison_recoveries.load(Ordering::Relaxed)
    }

    /// Aggregates every shard's counters. Locks shards one at a time (no
    /// nested locks), so the snapshot is per-shard consistent but not a
    /// global atomic cut — fine for the monitoring it exists for.
    pub fn stats(&self) -> ConcurrentStats {
        let mut s = ConcurrentStats {
            poison_recoveries: self.poison_recoveries(),
            ..ConcurrentStats::default()
        };
        for i in 0..self.shards.len() {
            let shard = self.lock_shard(i);
            s.hits += shard.hits();
            s.misses += shard.misses();
            s.deli_hits += shard.deli_hits();
            s.deli_fills += shard.deli_fills();
            s.epochs += shard.epochs();
            s.len += shard.len() as u64;
        }
        s
    }

    /// Runs `f` with exclusive access to shard `i` — the escape hatch
    /// for telemetry toggles, audits and equivalence tests.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn with_shard<R>(&self, i: usize, f: impl FnOnce(&mut NucacheKernel<V, C>) -> R) -> R {
        assert!(i < self.shards.len(), "shard index out of range");
        f(&mut self.lock_shard(i))
    }
}

/// A background thread that periodically calls
/// [`ConcurrentNucache::pump_epochs`], so deferred selections run
/// without any request thread paying for them.
///
/// Stop it explicitly with [`stop`](EpochThread::stop) to learn how
/// many selections it installed; dropping it also stops and joins the
/// thread.
#[derive(Debug)]
pub struct EpochThread {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<u64>>,
}

impl EpochThread {
    /// Spawns the epoch thread over `cache`, sweeping every `interval`.
    ///
    /// The interval trades selection staleness against wakeup overhead;
    /// something around `epoch_len / expected_ops_per_sec` keeps
    /// deferred selection as fresh as inline.
    pub fn spawn<V, C>(cache: Arc<ConcurrentNucache<V, C>>, interval: Duration) -> EpochThread
    where
        V: Send + 'static,
        C: Copy + Ord + Debug + Send + 'static,
    {
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let handle = std::thread::spawn(move || {
            let mut installed: u64 = 0;
            while !stop_flag.load(Ordering::SeqCst) {
                installed += cache.pump_epochs() as u64;
                std::thread::sleep(interval);
            }
            // Final sweep so selections due at shutdown still land.
            installed + cache.pump_epochs() as u64
        });
        EpochThread { stop, handle: Some(handle) }
    }

    /// Stops and joins the thread, returning how many selections it
    /// installed.
    pub fn stop(mut self) -> u64 {
        self.stop.store(true, Ordering::SeqCst);
        match self.handle.take() {
            // A panic inside pump_epochs would mean a kernel invariant
            // already failed; surface it rather than swallowing it.
            // nucache-audit: allow(unwrap-in-lib) -- propagating an epoch-thread panic is the point
            Some(handle) => handle.join().expect("epoch thread must not panic"),
            None => 0,
        }
    }
}

impl Drop for EpochThread {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.handle.take() {
            // Drop cannot propagate the join result; `stop()` is the
            // path that reports it.
            drop(handle.join());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::InsertionClass;

    fn cfg() -> KernelConfig {
        KernelConfig::default().with_sets(64).with_ways(8).with_deli_ways(4).with_epoch_len(256)
    }

    fn class(raw: u64) -> InsertionClass {
        InsertionClass::new(raw)
    }

    #[test]
    fn routes_cover_every_shard() {
        let cache: ConcurrentNucache<u64> =
            ConcurrentNucache::init(ConcurrentConfig::new(8, cfg())).expect("valid config");
        let mut seen = vec![0u64; cache.shard_count()];
        for key in 0..4096 {
            seen[cache.shard_of(key)] += 1;
        }
        for (i, &n) in seen.iter().enumerate() {
            assert!(n > 0, "shard {i} never routed to");
        }
    }

    #[test]
    fn get_put_remove_round_trip() {
        let cache: ConcurrentNucache<u64> =
            ConcurrentNucache::init(ConcurrentConfig::new(4, cfg())).expect("valid config");
        let c = class(1);
        assert_eq!(cache.get(42, c), None);
        cache.put(42, c, 4200);
        assert_eq!(cache.get(42, c), Some(4200));
        assert!(cache.contains(42));
        assert_eq!(cache.remove(42).map(|e| e.value), Some(4200));
        assert!(!cache.contains(42));
        let s = cache.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
    }

    #[test]
    fn deferred_epochs_install_via_pump() {
        let cache: ConcurrentNucache<u64> =
            ConcurrentNucache::init(ConcurrentConfig::new(2, cfg())).expect("valid config");
        let c = class(7);
        let rounds = if cfg!(miri) { 700 } else { 2048 };
        for key in 0..rounds {
            if cache.get(key % 512, c).is_none() {
                cache.put(key % 512, c, key);
            }
        }
        // Boundary accesses snapshot the epoch (each shard holds one
        // pending snapshot), but no selection installs until the pump.
        let pending = cache.stats().epochs;
        assert!(pending > 0, "epoch boundaries were due");
        let installed = cache.pump_epochs();
        assert_eq!(installed as u64, pending, "one install per pending snapshot");
        assert_eq!(cache.pump_epochs(), 0, "nothing left pending after the pump");
    }

    #[test]
    fn poisoned_shard_recovers_and_counts() {
        let cache: ConcurrentNucache<u64> =
            ConcurrentNucache::init(ConcurrentConfig::new(2, cfg())).expect("valid config");
        let c = class(1);
        cache.put(5, c, 500);
        let panicked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            cache.get_with(5, c, |_| panic!("injected fault: test poison"))
        }));
        assert!(panicked.is_err());
        // The shard recovers, the recovery is counted, and the kernel
        // behind the poisoned lock is still consistent.
        assert_eq!(cache.get(5, c), Some(500));
        assert!(cache.poison_recoveries() >= 1);
    }

    #[test]
    fn epoch_thread_sweeps_in_background() {
        let cache: Arc<ConcurrentNucache<u64>> = Arc::new(
            ConcurrentNucache::init(ConcurrentConfig::new(2, cfg())).expect("valid config"),
        );
        let thread = EpochThread::spawn(Arc::clone(&cache), Duration::from_millis(1));
        let c = class(3);
        let rounds = if cfg!(miri) { 1200 } else { 4096 };
        for key in 0..rounds {
            if cache.get(key % 256, c).is_none() {
                cache.put(key % 256, c, key);
            }
        }
        // The sweep interval is 1ms; give the thread time to observe
        // the due epochs, then stop (which runs a final sweep anyway).
        let installed = thread.stop();
        assert!(installed > 0, "background thread installed selections");
        assert!(cache.stats().epochs > 0);
    }
}
