//! The Next-Use monitor.
//!
//! The Next-Use distance of an entry is the number of accesses to its set
//! between its eviction from the MainWays and the next request for it.
//! This is exactly the quantity DeliWays retention can convert into a
//! hit: an entry whose Next-Use distance is within the extra lifetime the
//! DeliWays provide would have hit had its insertion class been chosen.
//!
//! Measuring Next-Use for every entry would be prohibitively expensive
//! (the hardware design set-samples for the same reason), so the monitor
//! observes one set in `2^sample_shift`: MainWays evictions there are
//! recorded into a small circular buffer of `(tag, class,
//! eviction-time)` entries; when a later request in the same set matches
//! a buffered tag, the elapsed set-access count is recorded into the
//! evicting class's log2 histogram.

use alloc::collections::BTreeMap;
use alloc::vec;
use alloc::vec::Vec;
use core::fmt::Debug;
use nucache_common::Log2Histogram;

/// One buffered eviction awaiting its next use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Pending<C> {
    tag: u64,
    class: C,
    evicted_at: u64,
}

/// Per-sampled-set state: a circular eviction buffer and an access clock.
#[derive(Debug, Clone)]
struct SetMonitor<C> {
    buffer: Vec<Option<Pending<C>>>,
    next_slot: usize,
    clock: u64,
}

impl<C: Copy> SetMonitor<C> {
    fn new(depth: usize) -> Self {
        SetMonitor { buffer: vec![None; depth], next_slot: 0, clock: 0 }
    }
}

/// Sampled Next-Use monitoring across the cache, generic over the
/// insertion-class type `C` (the simulator instantiates it with a
/// program counter, a library embedder with
/// [`InsertionClass`](crate::InsertionClass)).
///
/// Keys are the same raw `u64` keys the kernel is addressed with; the
/// monitor splits them into set index (low `set_bits` bits) and tag.
///
/// # Examples
///
/// ```
/// use nucache_kernel::monitor::NextUseMonitor;
/// use nucache_kernel::InsertionClass;
///
/// // 16 sets (set_bits = 4), sample every set, 4-deep buffers.
/// let mut m: NextUseMonitor<InsertionClass> = NextUseMonitor::new(4, 0, 4, 16);
/// let key = 0x30;
/// m.on_set_access(key);
/// m.on_evict(key, InsertionClass::new(7));
/// m.on_set_access(key);
/// m.on_set_access(key);
/// assert_eq!(m.on_next_use(key), Some((InsertionClass::new(7), 2)));
/// ```
#[derive(Debug)]
pub struct NextUseMonitor<C> {
    set_bits: u32,
    sample_shift: u32,
    depth: usize,
    buckets: usize,
    sets: Vec<SetMonitor<C>>,
    /// Per-class histograms in a `BTreeMap`: consumers iterate these when
    /// building selection candidates, and class-ordered traversal keeps
    /// the whole selection pipeline independent of hasher state.
    histograms: BTreeMap<C, Log2Histogram>,
    /// Total accesses observed in sampled sets (rate denominators).
    sampled_accesses: u64,
    /// Evictions recorded / matched (monitor effectiveness stats).
    recorded: u64,
    matched: u64,
}

impl<C: Copy + Ord + Debug> NextUseMonitor<C> {
    /// Creates a monitor over a cache with `2^set_bits` sets, sampling
    /// one set in `2^sample_shift`, with per-set buffers of `depth`
    /// entries and `buckets`-bucket histograms.
    ///
    /// # Panics
    ///
    /// Panics if the sampling leaves no sets, or `depth` is zero.
    pub fn new(set_bits: u32, sample_shift: u32, depth: usize, buckets: usize) -> Self {
        let num_sets = 1usize << set_bits;
        let sampled = num_sets >> sample_shift;
        assert!(sampled > 0, "sampling eliminates every set");
        assert!(depth > 0, "zero buffer depth");
        NextUseMonitor {
            set_bits,
            sample_shift,
            depth,
            buckets,
            sets: (0..sampled).map(|_| SetMonitor::new(depth)).collect(),
            histograms: BTreeMap::new(),
            sampled_accesses: 0,
            recorded: 0,
            matched: 0,
        }
    }

    fn sampled_index(&self, key: u64) -> Option<usize> {
        let set = (key & ((1u64 << self.set_bits) - 1)) as usize;
        if set & ((1usize << self.sample_shift) - 1) != 0 {
            None
        } else {
            Some(set >> self.sample_shift)
        }
    }

    /// Advances the sampled set's access clock (call on *every* access to
    /// the cache; unsampled sets are ignored cheaply).
    pub fn on_set_access(&mut self, key: u64) {
        if let Some(i) = self.sampled_index(key) {
            self.sets[i].clock += 1;
            self.sampled_accesses += 1;
        }
    }

    /// Records a MainWays eviction of `key`, inserted by `class`.
    pub fn on_evict(&mut self, key: u64, class: C) {
        let Some(i) = self.sampled_index(key) else { return };
        let tag = key >> self.set_bits;
        let sm = &mut self.sets[i];
        let entry = Pending { tag, class, evicted_at: sm.clock };
        sm.buffer[sm.next_slot] = Some(entry);
        sm.next_slot = (sm.next_slot + 1) % self.depth;
        self.recorded += 1;
    }

    /// Reports that `key` was requested again after a MainWays eviction —
    /// on a miss, *or* on a DeliWays hit (a salvaged next use is still a
    /// next use; without this, a chosen class's evidence would disappear
    /// the moment choosing it starts working, and selection would
    /// oscillate). If the key's eviction is buffered, its Next-Use
    /// distance is recorded and `(class, distance)` returned.
    pub fn on_next_use(&mut self, key: u64) -> Option<(C, u64)> {
        let i = self.sampled_index(key)?;
        let tag = key >> self.set_bits;
        let sm = &mut self.sets[i];
        let slot = sm.buffer.iter().position(|e| matches!(e, Some(p) if p.tag == tag))?;
        let pending = sm.buffer[slot].take().expect("slot just matched");
        let distance = sm.clock - pending.evicted_at;
        self.matched += 1;
        let buckets = self.buckets;
        self.histograms
            .entry(pending.class)
            // audit:allow-alloc(lazy per-class histogram, bounded by live classes)
            .or_insert_with(|| Log2Histogram::new(buckets))
            .record(distance);
        Some((pending.class, distance))
    }

    /// The Next-Use histogram of `class`, if any distance has been
    /// recorded.
    pub fn histogram(&self, class: C) -> Option<&Log2Histogram> {
        self.histograms.get(&class)
    }

    /// All per-class histograms, in class order.
    pub fn histograms(&self) -> &BTreeMap<C, Log2Histogram> {
        &self.histograms
    }

    /// Accesses observed in sampled sets.
    pub const fn sampled_accesses(&self) -> u64 {
        self.sampled_accesses
    }

    /// Evictions recorded into buffers.
    pub const fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Buffered evictions later matched by a request.
    pub const fn matched(&self) -> u64 {
        self.matched
    }

    /// Number of sets being sampled.
    pub fn sampled_sets(&self) -> usize {
        self.sets.len()
    }

    /// Epoch decay: halves histogram mass and the rate denominators, and
    /// drops empty histograms.
    pub fn decay(&mut self) {
        self.histograms.retain(|_, h| {
            h.decay();
            h.total() > 0
        });
        self.sampled_accesses /= 2;
        self.recorded /= 2;
        self.matched /= 2;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::InsertionClass;

    fn key_in_set(set: u64, tag: u64, set_bits: u32) -> u64 {
        (tag << set_bits) | set
    }

    fn class(raw: u64) -> InsertionClass {
        InsertionClass::new(raw)
    }

    #[test]
    fn distance_counts_set_accesses_only() {
        let mut m = NextUseMonitor::new(4, 0, 4, 16);
        let target = key_in_set(2, 7, 4);
        let other_set = key_in_set(3, 1, 4);
        m.on_set_access(target);
        m.on_evict(target, class(0x10));
        // Accesses to a different set must not advance this set's clock.
        for _ in 0..10 {
            m.on_set_access(other_set);
        }
        m.on_set_access(target);
        m.on_set_access(target);
        m.on_set_access(target);
        assert_eq!(m.on_next_use(target), Some((class(0x10), 3)));
    }

    #[test]
    fn unmatched_request_returns_none() {
        let mut m: NextUseMonitor<InsertionClass> = NextUseMonitor::new(4, 0, 4, 16);
        assert_eq!(m.on_next_use(key_in_set(0, 9, 4)), None);
    }

    #[test]
    fn entry_consumed_after_match() {
        let mut m = NextUseMonitor::new(4, 0, 4, 16);
        let k = key_in_set(0, 9, 4);
        m.on_evict(k, class(1));
        assert!(m.on_next_use(k).is_some());
        assert!(m.on_next_use(k).is_none(), "matched entries must be consumed");
    }

    #[test]
    fn circular_buffer_overwrites_oldest() {
        let mut m = NextUseMonitor::new(4, 0, 2, 16);
        let k1 = key_in_set(0, 1, 4);
        let k2 = key_in_set(0, 2, 4);
        let k3 = key_in_set(0, 3, 4);
        m.on_evict(k1, class(1));
        m.on_evict(k2, class(2));
        m.on_evict(k3, class(3)); // overwrites k1
        assert!(m.on_next_use(k1).is_none());
        assert!(m.on_next_use(k2).is_some());
        assert!(m.on_next_use(k3).is_some());
    }

    #[test]
    fn sampling_skips_unsampled_sets() {
        let mut m = NextUseMonitor::new(4, 2, 4, 16); // sets 0,4,8,12 sampled
        let sampled = key_in_set(4, 1, 4);
        let unsampled = key_in_set(5, 1, 4);
        m.on_set_access(sampled);
        m.on_set_access(unsampled);
        assert_eq!(m.sampled_accesses(), 1);
        m.on_evict(unsampled, class(1));
        assert_eq!(m.recorded(), 0);
        assert_eq!(m.sampled_sets(), 4);
    }

    #[test]
    fn histograms_accumulate_per_class() {
        let mut m = NextUseMonitor::new(4, 0, 8, 16);
        let c = class(0x40);
        for tag in 0..5u64 {
            let k = key_in_set(0, 10 + tag, 4);
            m.on_evict(k, c);
            m.on_set_access(k);
            m.on_set_access(k);
            assert!(m.on_next_use(k).is_some());
        }
        let h = m.histogram(c).expect("histogram exists");
        assert_eq!(h.total(), 5);
        assert_eq!(m.matched(), 5);
    }

    #[test]
    fn decay_prunes_empty_histograms() {
        let mut m = NextUseMonitor::new(4, 0, 4, 16);
        let k = key_in_set(0, 1, 4);
        m.on_evict(k, class(7));
        m.on_set_access(k);
        m.on_next_use(k);
        assert_eq!(m.histogram(class(7)).unwrap().total(), 1);
        m.decay();
        assert!(m.histogram(class(7)).is_none(), "single-sample histogram decays away");
    }
}
